file(REMOVE_RECURSE
  "CMakeFiles/starlink_geo.dir/geo_access.cpp.o"
  "CMakeFiles/starlink_geo.dir/geo_access.cpp.o.d"
  "CMakeFiles/starlink_geo.dir/pep.cpp.o"
  "CMakeFiles/starlink_geo.dir/pep.cpp.o.d"
  "libstarlink_geo.a"
  "libstarlink_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
