file(REMOVE_RECURSE
  "libstarlink_geo.a"
)
