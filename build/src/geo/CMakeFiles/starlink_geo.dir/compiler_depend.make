# Empty compiler generated dependencies file for starlink_geo.
# This may be replaced when dependencies are built.
