file(REMOVE_RECURSE
  "libstarlink_tcp.a"
)
