file(REMOVE_RECURSE
  "CMakeFiles/starlink_tcp.dir/bbr.cpp.o"
  "CMakeFiles/starlink_tcp.dir/bbr.cpp.o.d"
  "CMakeFiles/starlink_tcp.dir/congestion.cpp.o"
  "CMakeFiles/starlink_tcp.dir/congestion.cpp.o.d"
  "CMakeFiles/starlink_tcp.dir/tcp.cpp.o"
  "CMakeFiles/starlink_tcp.dir/tcp.cpp.o.d"
  "libstarlink_tcp.a"
  "libstarlink_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
