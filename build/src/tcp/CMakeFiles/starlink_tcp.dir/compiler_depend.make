# Empty compiler generated dependencies file for starlink_tcp.
# This may be replaced when dependencies are built.
