file(REMOVE_RECURSE
  "libstarlink_phy.a"
)
