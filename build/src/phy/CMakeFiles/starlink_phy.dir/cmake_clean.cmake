file(REMOVE_RECURSE
  "CMakeFiles/starlink_phy.dir/gilbert_elliott.cpp.o"
  "CMakeFiles/starlink_phy.dir/gilbert_elliott.cpp.o.d"
  "CMakeFiles/starlink_phy.dir/load_process.cpp.o"
  "CMakeFiles/starlink_phy.dir/load_process.cpp.o.d"
  "CMakeFiles/starlink_phy.dir/outage.cpp.o"
  "CMakeFiles/starlink_phy.dir/outage.cpp.o.d"
  "libstarlink_phy.a"
  "libstarlink_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
