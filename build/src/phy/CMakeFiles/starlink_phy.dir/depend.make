# Empty dependencies file for starlink_phy.
# This may be replaced when dependencies are built.
