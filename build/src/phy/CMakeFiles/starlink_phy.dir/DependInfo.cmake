
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/gilbert_elliott.cpp" "src/phy/CMakeFiles/starlink_phy.dir/gilbert_elliott.cpp.o" "gcc" "src/phy/CMakeFiles/starlink_phy.dir/gilbert_elliott.cpp.o.d"
  "/root/repo/src/phy/load_process.cpp" "src/phy/CMakeFiles/starlink_phy.dir/load_process.cpp.o" "gcc" "src/phy/CMakeFiles/starlink_phy.dir/load_process.cpp.o.d"
  "/root/repo/src/phy/outage.cpp" "src/phy/CMakeFiles/starlink_phy.dir/outage.cpp.o" "gcc" "src/phy/CMakeFiles/starlink_phy.dir/outage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/starlink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
