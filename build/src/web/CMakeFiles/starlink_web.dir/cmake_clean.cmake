file(REMOVE_RECURSE
  "CMakeFiles/starlink_web.dir/browser.cpp.o"
  "CMakeFiles/starlink_web.dir/browser.cpp.o.d"
  "CMakeFiles/starlink_web.dir/dns.cpp.o"
  "CMakeFiles/starlink_web.dir/dns.cpp.o.d"
  "CMakeFiles/starlink_web.dir/page.cpp.o"
  "CMakeFiles/starlink_web.dir/page.cpp.o.d"
  "CMakeFiles/starlink_web.dir/server.cpp.o"
  "CMakeFiles/starlink_web.dir/server.cpp.o.d"
  "libstarlink_web.a"
  "libstarlink_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
