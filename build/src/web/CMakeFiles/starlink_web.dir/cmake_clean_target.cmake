file(REMOVE_RECURSE
  "libstarlink_web.a"
)
