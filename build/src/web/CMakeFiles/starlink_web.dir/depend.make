# Empty dependencies file for starlink_web.
# This may be replaced when dependencies are built.
