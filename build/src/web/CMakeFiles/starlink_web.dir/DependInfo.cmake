
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/browser.cpp" "src/web/CMakeFiles/starlink_web.dir/browser.cpp.o" "gcc" "src/web/CMakeFiles/starlink_web.dir/browser.cpp.o.d"
  "/root/repo/src/web/dns.cpp" "src/web/CMakeFiles/starlink_web.dir/dns.cpp.o" "gcc" "src/web/CMakeFiles/starlink_web.dir/dns.cpp.o.d"
  "/root/repo/src/web/page.cpp" "src/web/CMakeFiles/starlink_web.dir/page.cpp.o" "gcc" "src/web/CMakeFiles/starlink_web.dir/page.cpp.o.d"
  "/root/repo/src/web/server.cpp" "src/web/CMakeFiles/starlink_web.dir/server.cpp.o" "gcc" "src/web/CMakeFiles/starlink_web.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/starlink_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/starlink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
