file(REMOVE_RECURSE
  "CMakeFiles/starlink_apps.dir/h3.cpp.o"
  "CMakeFiles/starlink_apps.dir/h3.cpp.o.d"
  "CMakeFiles/starlink_apps.dir/messages.cpp.o"
  "CMakeFiles/starlink_apps.dir/messages.cpp.o.d"
  "CMakeFiles/starlink_apps.dir/ping.cpp.o"
  "CMakeFiles/starlink_apps.dir/ping.cpp.o.d"
  "CMakeFiles/starlink_apps.dir/speedtest.cpp.o"
  "CMakeFiles/starlink_apps.dir/speedtest.cpp.o.d"
  "libstarlink_apps.a"
  "libstarlink_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
