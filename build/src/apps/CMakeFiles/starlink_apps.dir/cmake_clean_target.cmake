file(REMOVE_RECURSE
  "libstarlink_apps.a"
)
