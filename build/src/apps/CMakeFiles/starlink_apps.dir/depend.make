# Empty dependencies file for starlink_apps.
# This may be replaced when dependencies are built.
