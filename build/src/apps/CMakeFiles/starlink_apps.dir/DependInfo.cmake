
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/h3.cpp" "src/apps/CMakeFiles/starlink_apps.dir/h3.cpp.o" "gcc" "src/apps/CMakeFiles/starlink_apps.dir/h3.cpp.o.d"
  "/root/repo/src/apps/messages.cpp" "src/apps/CMakeFiles/starlink_apps.dir/messages.cpp.o" "gcc" "src/apps/CMakeFiles/starlink_apps.dir/messages.cpp.o.d"
  "/root/repo/src/apps/ping.cpp" "src/apps/CMakeFiles/starlink_apps.dir/ping.cpp.o" "gcc" "src/apps/CMakeFiles/starlink_apps.dir/ping.cpp.o.d"
  "/root/repo/src/apps/speedtest.cpp" "src/apps/CMakeFiles/starlink_apps.dir/speedtest.cpp.o" "gcc" "src/apps/CMakeFiles/starlink_apps.dir/speedtest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/starlink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/starlink_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/quic/CMakeFiles/starlink_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
