file(REMOVE_RECURSE
  "CMakeFiles/starlink_measure.dir/campaign.cpp.o"
  "CMakeFiles/starlink_measure.dir/campaign.cpp.o.d"
  "CMakeFiles/starlink_measure.dir/loss.cpp.o"
  "CMakeFiles/starlink_measure.dir/loss.cpp.o.d"
  "CMakeFiles/starlink_measure.dir/testbed.cpp.o"
  "CMakeFiles/starlink_measure.dir/testbed.cpp.o.d"
  "libstarlink_measure.a"
  "libstarlink_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
