file(REMOVE_RECURSE
  "libstarlink_measure.a"
)
