# Empty dependencies file for starlink_measure.
# This may be replaced when dependencies are built.
