file(REMOVE_RECURSE
  "libstarlink_quic.a"
)
