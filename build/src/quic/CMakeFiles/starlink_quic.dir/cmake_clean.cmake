file(REMOVE_RECURSE
  "CMakeFiles/starlink_quic.dir/qlog.cpp.o"
  "CMakeFiles/starlink_quic.dir/qlog.cpp.o.d"
  "CMakeFiles/starlink_quic.dir/quic.cpp.o"
  "CMakeFiles/starlink_quic.dir/quic.cpp.o.d"
  "libstarlink_quic.a"
  "libstarlink_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
