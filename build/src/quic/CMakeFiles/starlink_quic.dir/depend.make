# Empty dependencies file for starlink_quic.
# This may be replaced when dependencies are built.
