
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quic/qlog.cpp" "src/quic/CMakeFiles/starlink_quic.dir/qlog.cpp.o" "gcc" "src/quic/CMakeFiles/starlink_quic.dir/qlog.cpp.o.d"
  "/root/repo/src/quic/quic.cpp" "src/quic/CMakeFiles/starlink_quic.dir/quic.cpp.o" "gcc" "src/quic/CMakeFiles/starlink_quic.dir/quic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/starlink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/starlink_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
