file(REMOVE_RECURSE
  "CMakeFiles/starlink_emu.dir/errant.cpp.o"
  "CMakeFiles/starlink_emu.dir/errant.cpp.o.d"
  "libstarlink_emu.a"
  "libstarlink_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
