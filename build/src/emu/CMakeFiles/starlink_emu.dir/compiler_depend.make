# Empty compiler generated dependencies file for starlink_emu.
# This may be replaced when dependencies are built.
