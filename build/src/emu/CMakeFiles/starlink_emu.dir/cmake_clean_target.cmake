file(REMOVE_RECURSE
  "libstarlink_emu.a"
)
