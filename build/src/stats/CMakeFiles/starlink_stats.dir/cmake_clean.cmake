file(REMOVE_RECURSE
  "CMakeFiles/starlink_stats.dir/ecdf.cpp.o"
  "CMakeFiles/starlink_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/starlink_stats.dir/histogram.cpp.o"
  "CMakeFiles/starlink_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/starlink_stats.dir/moods_test.cpp.o"
  "CMakeFiles/starlink_stats.dir/moods_test.cpp.o.d"
  "CMakeFiles/starlink_stats.dir/quantiles.cpp.o"
  "CMakeFiles/starlink_stats.dir/quantiles.cpp.o.d"
  "CMakeFiles/starlink_stats.dir/summary.cpp.o"
  "CMakeFiles/starlink_stats.dir/summary.cpp.o.d"
  "CMakeFiles/starlink_stats.dir/table.cpp.o"
  "CMakeFiles/starlink_stats.dir/table.cpp.o.d"
  "CMakeFiles/starlink_stats.dir/timeseries.cpp.o"
  "CMakeFiles/starlink_stats.dir/timeseries.cpp.o.d"
  "libstarlink_stats.a"
  "libstarlink_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
