file(REMOVE_RECURSE
  "libstarlink_stats.a"
)
