# Empty compiler generated dependencies file for starlink_stats.
# This may be replaced when dependencies are built.
