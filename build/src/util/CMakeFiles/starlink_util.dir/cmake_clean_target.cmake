file(REMOVE_RECURSE
  "libstarlink_util.a"
)
