# Empty dependencies file for starlink_util.
# This may be replaced when dependencies are built.
