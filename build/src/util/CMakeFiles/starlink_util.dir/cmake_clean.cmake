file(REMOVE_RECURSE
  "CMakeFiles/starlink_util.dir/flags.cpp.o"
  "CMakeFiles/starlink_util.dir/flags.cpp.o.d"
  "CMakeFiles/starlink_util.dir/log.cpp.o"
  "CMakeFiles/starlink_util.dir/log.cpp.o.d"
  "CMakeFiles/starlink_util.dir/rng.cpp.o"
  "CMakeFiles/starlink_util.dir/rng.cpp.o.d"
  "CMakeFiles/starlink_util.dir/units.cpp.o"
  "CMakeFiles/starlink_util.dir/units.cpp.o.d"
  "libstarlink_util.a"
  "libstarlink_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
