# Empty compiler generated dependencies file for starlink_mbox.
# This may be replaced when dependencies are built.
