file(REMOVE_RECURSE
  "CMakeFiles/starlink_mbox.dir/tracebox.cpp.o"
  "CMakeFiles/starlink_mbox.dir/tracebox.cpp.o.d"
  "CMakeFiles/starlink_mbox.dir/traceroute.cpp.o"
  "CMakeFiles/starlink_mbox.dir/traceroute.cpp.o.d"
  "CMakeFiles/starlink_mbox.dir/wehe.cpp.o"
  "CMakeFiles/starlink_mbox.dir/wehe.cpp.o.d"
  "libstarlink_mbox.a"
  "libstarlink_mbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_mbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
