
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mbox/tracebox.cpp" "src/mbox/CMakeFiles/starlink_mbox.dir/tracebox.cpp.o" "gcc" "src/mbox/CMakeFiles/starlink_mbox.dir/tracebox.cpp.o.d"
  "/root/repo/src/mbox/traceroute.cpp" "src/mbox/CMakeFiles/starlink_mbox.dir/traceroute.cpp.o" "gcc" "src/mbox/CMakeFiles/starlink_mbox.dir/traceroute.cpp.o.d"
  "/root/repo/src/mbox/wehe.cpp" "src/mbox/CMakeFiles/starlink_mbox.dir/wehe.cpp.o" "gcc" "src/mbox/CMakeFiles/starlink_mbox.dir/wehe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/starlink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
