file(REMOVE_RECURSE
  "libstarlink_mbox.a"
)
