# Empty compiler generated dependencies file for starlink_leo.
# This may be replaced when dependencies are built.
