file(REMOVE_RECURSE
  "libstarlink_leo.a"
)
