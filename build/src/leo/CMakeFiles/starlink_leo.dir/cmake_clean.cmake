file(REMOVE_RECURSE
  "CMakeFiles/starlink_leo.dir/access.cpp.o"
  "CMakeFiles/starlink_leo.dir/access.cpp.o.d"
  "CMakeFiles/starlink_leo.dir/constellation.cpp.o"
  "CMakeFiles/starlink_leo.dir/constellation.cpp.o.d"
  "CMakeFiles/starlink_leo.dir/geodesy.cpp.o"
  "CMakeFiles/starlink_leo.dir/geodesy.cpp.o.d"
  "CMakeFiles/starlink_leo.dir/handover.cpp.o"
  "CMakeFiles/starlink_leo.dir/handover.cpp.o.d"
  "CMakeFiles/starlink_leo.dir/isl.cpp.o"
  "CMakeFiles/starlink_leo.dir/isl.cpp.o.d"
  "libstarlink_leo.a"
  "libstarlink_leo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_leo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
