file(REMOVE_RECURSE
  "CMakeFiles/starlink_sim.dir/event_queue.cpp.o"
  "CMakeFiles/starlink_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/starlink_sim.dir/host.cpp.o"
  "CMakeFiles/starlink_sim.dir/host.cpp.o.d"
  "CMakeFiles/starlink_sim.dir/link.cpp.o"
  "CMakeFiles/starlink_sim.dir/link.cpp.o.d"
  "CMakeFiles/starlink_sim.dir/nat.cpp.o"
  "CMakeFiles/starlink_sim.dir/nat.cpp.o.d"
  "CMakeFiles/starlink_sim.dir/packet.cpp.o"
  "CMakeFiles/starlink_sim.dir/packet.cpp.o.d"
  "CMakeFiles/starlink_sim.dir/routing.cpp.o"
  "CMakeFiles/starlink_sim.dir/routing.cpp.o.d"
  "CMakeFiles/starlink_sim.dir/simulator.cpp.o"
  "CMakeFiles/starlink_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/starlink_sim.dir/trace.cpp.o"
  "CMakeFiles/starlink_sim.dir/trace.cpp.o.d"
  "libstarlink_sim.a"
  "libstarlink_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
