file(REMOVE_RECURSE
  "libstarlink_sim.a"
)
