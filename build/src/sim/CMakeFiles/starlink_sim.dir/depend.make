# Empty dependencies file for starlink_sim.
# This may be replaced when dependencies are built.
