# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/leo_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/quic_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/web_test[1]_include.cmake")
include("/root/repo/build/tests/mbox_test[1]_include.cmake")
include("/root/repo/build/tests/emu_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/bbr_test[1]_include.cmake")
include("/root/repo/build/tests/qlog_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/dns_test[1]_include.cmake")
