# Empty dependencies file for leo_test.
# This may be replaced when dependencies are built.
