file(REMOVE_RECURSE
  "CMakeFiles/leo_test.dir/leo_test.cpp.o"
  "CMakeFiles/leo_test.dir/leo_test.cpp.o.d"
  "leo_test"
  "leo_test.pdb"
  "leo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
