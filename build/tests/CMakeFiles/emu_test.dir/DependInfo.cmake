
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/emu_test.cpp" "tests/CMakeFiles/emu_test.dir/emu_test.cpp.o" "gcc" "tests/CMakeFiles/emu_test.dir/emu_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/emu/CMakeFiles/starlink_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/starlink_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/starlink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/starlink_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
