# Empty dependencies file for qlog_test.
# This may be replaced when dependencies are built.
