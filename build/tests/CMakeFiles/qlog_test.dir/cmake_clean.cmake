file(REMOVE_RECURSE
  "CMakeFiles/qlog_test.dir/qlog_test.cpp.o"
  "CMakeFiles/qlog_test.dir/qlog_test.cpp.o.d"
  "qlog_test"
  "qlog_test.pdb"
  "qlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
