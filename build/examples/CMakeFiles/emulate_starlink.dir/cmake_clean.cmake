file(REMOVE_RECURSE
  "CMakeFiles/emulate_starlink.dir/emulate_starlink.cpp.o"
  "CMakeFiles/emulate_starlink.dir/emulate_starlink.cpp.o.d"
  "emulate_starlink"
  "emulate_starlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emulate_starlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
