# Empty dependencies file for emulate_starlink.
# This may be replaced when dependencies are built.
