file(REMOVE_RECURSE
  "CMakeFiles/starlink_cli.dir/starlink_cli.cpp.o"
  "CMakeFiles/starlink_cli.dir/starlink_cli.cpp.o.d"
  "starlink_cli"
  "starlink_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
