# Empty dependencies file for starlink_cli.
# This may be replaced when dependencies are built.
