file(REMOVE_RECURSE
  "CMakeFiles/table2_loss_ratios.dir/table2_loss_ratios.cpp.o"
  "CMakeFiles/table2_loss_ratios.dir/table2_loss_ratios.cpp.o.d"
  "table2_loss_ratios"
  "table2_loss_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_loss_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
