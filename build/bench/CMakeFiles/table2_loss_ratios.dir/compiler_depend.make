# Empty compiler generated dependencies file for table2_loss_ratios.
# This may be replaced when dependencies are built.
