file(REMOVE_RECURSE
  "CMakeFiles/fig1_rtt_anchors.dir/fig1_rtt_anchors.cpp.o"
  "CMakeFiles/fig1_rtt_anchors.dir/fig1_rtt_anchors.cpp.o.d"
  "fig1_rtt_anchors"
  "fig1_rtt_anchors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_rtt_anchors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
