# Empty dependencies file for fig1_rtt_anchors.
# This may be replaced when dependencies are built.
