file(REMOVE_RECURSE
  "CMakeFiles/fig4_loss_bursts.dir/fig4_loss_bursts.cpp.o"
  "CMakeFiles/fig4_loss_bursts.dir/fig4_loss_bursts.cpp.o.d"
  "fig4_loss_bursts"
  "fig4_loss_bursts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_loss_bursts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
