# Empty compiler generated dependencies file for fig4_loss_bursts.
# This may be replaced when dependencies are built.
