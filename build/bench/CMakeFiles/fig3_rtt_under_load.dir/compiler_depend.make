# Empty compiler generated dependencies file for fig3_rtt_under_load.
# This may be replaced when dependencies are built.
