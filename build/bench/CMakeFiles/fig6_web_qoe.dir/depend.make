# Empty dependencies file for fig6_web_qoe.
# This may be replaced when dependencies are built.
