file(REMOVE_RECURSE
  "CMakeFiles/fig6_web_qoe.dir/fig6_web_qoe.cpp.o"
  "CMakeFiles/fig6_web_qoe.dir/fig6_web_qoe.cpp.o.d"
  "fig6_web_qoe"
  "fig6_web_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_web_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
