# Empty dependencies file for ablation_cc.
# This may be replaced when dependencies are built.
