# Empty compiler generated dependencies file for sec35_middleboxes.
# This may be replaced when dependencies are built.
