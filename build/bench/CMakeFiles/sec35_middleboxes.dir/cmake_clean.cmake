file(REMOVE_RECURSE
  "CMakeFiles/sec35_middleboxes.dir/sec35_middleboxes.cpp.o"
  "CMakeFiles/sec35_middleboxes.dir/sec35_middleboxes.cpp.o.d"
  "sec35_middleboxes"
  "sec35_middleboxes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec35_middleboxes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
