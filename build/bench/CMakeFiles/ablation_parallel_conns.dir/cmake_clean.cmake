file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_conns.dir/ablation_parallel_conns.cpp.o"
  "CMakeFiles/ablation_parallel_conns.dir/ablation_parallel_conns.cpp.o.d"
  "ablation_parallel_conns"
  "ablation_parallel_conns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_conns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
