# Empty compiler generated dependencies file for ablation_parallel_conns.
# This may be replaced when dependencies are built.
