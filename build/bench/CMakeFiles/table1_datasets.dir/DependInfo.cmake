
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_datasets.cpp" "bench/CMakeFiles/table1_datasets.dir/table1_datasets.cpp.o" "gcc" "bench/CMakeFiles/table1_datasets.dir/table1_datasets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/starlink_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/starlink_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/starlink_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/leo/CMakeFiles/starlink_leo.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/starlink_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/quic/CMakeFiles/starlink_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/starlink_web.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/starlink_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/mbox/CMakeFiles/starlink_mbox.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/starlink_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/starlink_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/starlink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starlink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
