# Empty compiler generated dependencies file for errant_profiles.
# This may be replaced when dependencies are built.
