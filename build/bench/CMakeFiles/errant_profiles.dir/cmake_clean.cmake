file(REMOVE_RECURSE
  "CMakeFiles/errant_profiles.dir/errant_profiles.cpp.o"
  "CMakeFiles/errant_profiles.dir/errant_profiles.cpp.o.d"
  "errant_profiles"
  "errant_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/errant_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
