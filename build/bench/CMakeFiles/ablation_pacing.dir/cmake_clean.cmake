file(REMOVE_RECURSE
  "CMakeFiles/ablation_pacing.dir/ablation_pacing.cpp.o"
  "CMakeFiles/ablation_pacing.dir/ablation_pacing.cpp.o.d"
  "ablation_pacing"
  "ablation_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
