file(REMOVE_RECURSE
  "CMakeFiles/ablation_isl.dir/ablation_isl.cpp.o"
  "CMakeFiles/ablation_isl.dir/ablation_isl.cpp.o.d"
  "ablation_isl"
  "ablation_isl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_isl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
