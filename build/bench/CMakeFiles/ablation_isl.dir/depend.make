# Empty dependencies file for ablation_isl.
# This may be replaced when dependencies are built.
