file(REMOVE_RECURSE
  "CMakeFiles/ablation_pep.dir/ablation_pep.cpp.o"
  "CMakeFiles/ablation_pep.dir/ablation_pep.cpp.o.d"
  "ablation_pep"
  "ablation_pep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
