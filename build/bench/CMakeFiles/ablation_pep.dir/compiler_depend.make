# Empty compiler generated dependencies file for ablation_pep.
# This may be replaced when dependencies are built.
