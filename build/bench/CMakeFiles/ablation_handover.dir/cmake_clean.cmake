file(REMOVE_RECURSE
  "CMakeFiles/ablation_handover.dir/ablation_handover.cpp.o"
  "CMakeFiles/ablation_handover.dir/ablation_handover.cpp.o.d"
  "ablation_handover"
  "ablation_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
