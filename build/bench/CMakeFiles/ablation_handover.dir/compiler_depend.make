# Empty compiler generated dependencies file for ablation_handover.
# This may be replaced when dependencies are built.
