file(REMOVE_RECURSE
  "CMakeFiles/fig2_rtt_timeseries.dir/fig2_rtt_timeseries.cpp.o"
  "CMakeFiles/fig2_rtt_timeseries.dir/fig2_rtt_timeseries.cpp.o.d"
  "fig2_rtt_timeseries"
  "fig2_rtt_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_rtt_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
