# Empty dependencies file for fig2_rtt_timeseries.
# This may be replaced when dependencies are built.
