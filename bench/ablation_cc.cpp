// Ablation — congestion control on a LEO access (§4 outlook).
//
// The paper measured Cubic everywhere. This bench swaps the congestion
// controller of a single bulk TCP download over the Starlink access:
// loss-based control (Cubic, NewReno) pays for every medium-loss burst,
// while model-based BBR shrugs them off and keeps the queue shallow.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "measure/testbed.hpp"
#include "runner/pool.hpp"
#include "tcp/tcp.hpp"

namespace {

using namespace slp;

struct CcResult {
  double mbps = 0.0;
  double srtt_ms = 0.0;
  std::uint64_t retransmissions = 0;
  obs::Snapshot obs;
};

CcResult run_one(std::uint64_t seed, cc::CcAlgorithm algorithm, bool heavy_medium_loss,
                 const obs::Options& obs_opts) {
  measure::TestbedConfig config;
  config.seed = seed;
  config.with_satcom = false;
  config.obs = obs_opts;
  if (heavy_medium_loss) {
    // A rainy/obstructed installation: medium-loss bursts every ~3 s.
    config.starlink.medium_loss.mean_good = Duration::from_seconds(3.0);
    config.starlink.uplink_medium_good = Duration::from_seconds(3.0);
  }
  measure::Testbed bed{config};
  tcp::TcpStack client_stack{bed.client(measure::AccessKind::kStarlink)};
  tcp::TcpStack server_stack{bed.campus_server()};
  std::uint64_t delivered = 0;
  TimePoint first, last;
  tcp::TcpConfig server_tcp;
  server_tcp.algorithm = algorithm;
  server_tcp.initial_rcv_buffer = 1024 * 1024;
  server_stack.listen(80, [&](tcp::TcpConnection& c) {
    c.on_data = [&c](std::uint64_t) { c.send(120'000'000); };
  }, server_tcp);
  tcp::TcpConnection& conn = client_stack.connect(bed.campus_server().addr(), 80);
  conn.on_data = [&](std::uint64_t n) {
    if (delivered == 0) first = bed.sim().now();
    delivered += n;
    last = bed.sim().now();
  };
  conn.on_established = [&conn] { conn.send(100); };
  bed.sim().run_until(TimePoint::epoch() + Duration::minutes(3));

  CcResult result;
  if (delivered > 1'000'000) {
    result.mbps = delivered * 8.0 / (last - first).to_seconds() / 1e6;
  }
  result.srtt_ms = conn.srtt().to_millis();
  result.obs = bed.take_obs();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("Ablation: congestion control",
                "single bulk TCP download over Starlink, per controller");

  struct Row {
    const char* name;
    cc::CcAlgorithm algorithm;
  };
  const Row rows[] = {{"cubic (paper)", cc::CcAlgorithm::kCubic},
                      {"newreno", cc::CcAlgorithm::kNewReno},
                      {"bbr", cc::CcAlgorithm::kBbr}};

  // Every (loss regime, controller, replication) is an independent cell —
  // run them all on one pool and read results back in cell order, so the
  // table is identical for any --jobs.
  const int runs = args.scaled(3) * args.seeds;
  std::vector<CcResult> cells(2 * 3 * static_cast<std::size_t>(runs));
  {
    runner::Pool pool{args.jobs};
    std::size_t cell = 0;
    for (const bool heavy : {false, true}) {
      for (const Row& row : rows) {
        for (int i = 0; i < runs; ++i, ++cell) {
          const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(i) * 13;
          pool.submit([&cells, cell, seed, algorithm = row.algorithm, heavy,
                       obs_opts = args.obs()] {
            cells[cell] = run_one(seed, algorithm, heavy, obs_opts);
          });
        }
      }
    }
    pool.drain();
  }

  std::size_t cell = 0;
  for (const bool heavy : {false, true}) {
    std::printf("%s\n", heavy ? "\nheavy medium loss (bursts every ~3 s — rainy/obstructed dish):"
                               : "default calibration (bursts every ~24 s):");
    stats::TextTable table{{"controller", "p25 Mbit/s", "median Mbit/s", "p75 Mbit/s"}};
    for (const Row& row : rows) {
      stats::Samples mbps;
      for (int i = 0; i < runs; ++i, ++cell) mbps.add(cells[cell].mbps);
      using stats::TextTable;
      table.add_row({row.name, TextTable::num(mbps.percentile(25), 0),
                     TextTable::num(mbps.median(), 0),
                     TextTable::num(mbps.percentile(75), 0)});
    }
    std::printf("%s", table.str().c_str());
  }
  std::printf("\nExpected shape: with rare loss events the three controllers are "
              "comparable; as medium loss intensifies, loss-based control "
              "(NewReno worst, Cubic next) backs off for every burst while "
              "BBR's model ignores them (§3.2's closing remark: transports "
              "cannot tell medium loss from congestion — unless they stop "
              "using loss as the signal).\n");

  // Cells were filled by completion order but are merged by index — the
  // export is --jobs invariant like everything else.
  obs::Snapshot all_obs;
  for (const CcResult& c : cells) obs::merge(all_obs, c.obs);
  bench::write_obs(args, all_obs);
  return 0;
}
