// Table 1 — overview of the datasets.
//
// The paper's campaign inventory, side by side with this reproduction's
// compressed equivalents (what each bench binary runs at --scale=1).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("Table 1", "overview of the datasets (paper vs reproduction)");

  stats::TextTable table{{"measure", "network", "paper duration", "paper target",
                          "reproduction (scale=1)"}};
  table.add_row({"Latency", "Starlink", "5 months", "11 anchors",
                 "48h @ 5min cadence (fig1) + 146d compressed (fig2)"});
  table.add_row({"Throughput", "Starlink", "4 months", "Ookla servers",
                 "16 tests x 12s x 8 conns (fig5)"});
  table.add_row({"", "SatCom", "2 weeks", "", "8 tests (fig5)"});
  table.add_row({"Web browsing", "Starlink", "4 months", "120 websites",
                 "40 visits over the 120-site catalog (fig6)"});
  table.add_row({"", "SatCom", "2 weeks", "", "25 visits (fig6)"});
  table.add_row({"QUIC H3", "Starlink", "5 months", "campus server",
                 "6 x 100MB down + 3 x 40MB up (fig3/4, table2)"});
  table.add_row({"QUIC messages", "Starlink", "5 months", "campus server",
                 "4-6 sessions x 2min x 25 msg/s (fig3/4, table2)"});
  std::printf("%s", table.str().c_str());
  std::printf("\nIncrease --scale to push any bench toward paper-scale sample"
              " counts; all campaigns are seeded and reproducible.\n");

  // This bench runs no simulation; the obs flags still produce valid
  // (empty) documents so tooling can treat every bench uniformly.
  obs::Snapshot empty;
  empty.cells = 1;
  bench::write_obs(args, empty);
  return 0;
}
