// Figure 1 — Distribution of the RTT to the 11 anchors (boxplots).
//
// Paper values to match in shape: Belgian anchors median in [46, 52] ms with
// minima in [24, 28] ms; the German probes lowest at ~42 ms median (minimum
// 20.5 ms overall); San Francisco ~184 ms and Singapore ~270 ms via the same
// European exits (no ISLs).
//
// Extra flags: --fleet=N (simulated neighbours contending under the pings;
// see bench_common.hpp for the continental/aggregation/sharding knobs) and
// --multivantage=1, which inverts the experiment: instead of one dish
// pinging 11 anchors, every anchor city hosts a measured dish in one shared
// fleet (measure::MultiVantageCampaign) and the table reports each city's
// own access RTT and elastic-share capacity.
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"
#include "measure/multivantage.hpp"

namespace {

int run_multivantage(const slp::bench::CommonArgs& args, const slp::Flags& flags) {
  using namespace slp;
  bench::banner("Figure 1 (multi-vantage)",
                "the 11 anchor metros as measured terminals in one fleet");

  measure::MultiVantageCampaign::Config config;
  config.seed = args.seed;
  config.duration = flags.get_duration(
      "duration", Duration::hours(static_cast<std::int64_t>(24 * args.scale)));
  config.cadence = Duration::minutes(5);
  config.fleet = bench::parse_fleet(flags);
  config.obs = args.obs();
  bench::warn_unused(flags);

  const auto result =
      runner::run_merged<measure::MultiVantageCampaign>(args.sweep(), config);

  std::printf("fleet: %d terminals, %llu hot cells, %llu supercells "
              "(%llu terminals aggregated)\n\n",
              config.fleet.size, static_cast<unsigned long long>(result.hot_cells),
              static_cast<unsigned long long>(result.supercells),
              static_cast<unsigned long long>(result.aggregated_terminals));

  stats::TextTable table{{"vantage", "min", "p5", "p25", "median", "p75", "p95",
                          "down p50 (Mbps)"}};
  for (const auto& v : result.vantages) {
    std::vector<std::string> row = bench::boxplot_row(v.name, v.rtt_ms, "");
    row.back() = v.down_mbps.empty() ? "-" : stats::TextTable::num(v.down_mbps.median(), 1);
    table.add_row(row);
  }
  std::printf("%s", table.str().c_str());
  std::uint64_t sent = 0;
  std::uint64_t lost = 0;
  for (const auto& v : result.vantages) {
    sent += v.probes_sent;
    lost += v.probes_lost;
  }
  std::printf("\nprobes sent: %llu, lost: %llu\n", static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(lost));
  std::printf("Take-away: every metro sees the same ~frame+propagation access floor; "
              "contention moves the capacity column, not the RTT floor.\n");
  bench::write_obs(args, result.obs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  if (flags.get_bool("multivantage", false)) return run_multivantage(args, flags);

  bench::banner("Figure 1", "RTT distribution towards the 11 anchors (ping)");

  measure::PingCampaign::Config config;
  config.seed = args.seed;
  // Compressed campaign: same 5-minute cadence, fewer days (scale with
  // --scale; 1.0 ~ 2 days of pings, plenty for stable quantiles).
  config.duration = Duration::hours(static_cast<std::int64_t>(48 * args.scale));
  config.cadence = Duration::minutes(5);
  config.epochs = false;  // Figure 1 aggregates; epochs belong to Figure 2
  config.fleet = bench::parse_fleet(flags);
  bench::warn_unused(flags);
  const auto result = bench::run_sweep<measure::PingCampaign>(args, config);

  // The paper's published per-anchor reference points (median / min).
  const char* paper[] = {
      "46-52 / 24-28", "46-52 / 24-28", "46-52 / 24-28", "46-52 / 24-28",
      "~46-50 / ~24",  "~46-50 / ~24",  "~42 / 20.5",    "~42 / 20.5",
      "~130-150 / -",  "184 / -",       "270 / -",
  };

  stats::TextTable table{
      {"anchor", "min", "p5", "p25", "median", "p75", "p95", "paper med/min"}};
  for (std::size_t i = 0; i < result.anchors.size(); ++i) {
    table.add_row(bench::boxplot_row(result.anchors[i].name, result.anchors[i].rtt_ms,
                                     paper[i]));
  }
  std::printf("%s", table.str().c_str());
  std::printf("\npings sent: %llu, lost: %llu (%.2f%%)\n",
              static_cast<unsigned long long>(result.pings_sent),
              static_cast<unsigned long long>(result.pings_lost),
              100.0 * static_cast<double>(result.pings_lost) /
                  static_cast<double>(result.pings_sent));
  std::printf("Paper take-away: minimum latency ~20 ms for close destinations; "
              "distant anchors exit through the same European PoPs.\n");
  bench::write_obs(args, result.obs);
  return 0;
}
