// Figure 1 — Distribution of the RTT to the 11 anchors (boxplots).
//
// Paper values to match in shape: Belgian anchors median in [46, 52] ms with
// minima in [24, 28] ms; the German probes lowest at ~42 ms median (minimum
// 20.5 ms overall); San Francisco ~184 ms and Singapore ~270 ms via the same
// European exits (no ISLs).
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("Figure 1", "RTT distribution towards the 11 anchors (ping)");

  measure::PingCampaign::Config config;
  config.seed = args.seed;
  // Compressed campaign: same 5-minute cadence, fewer days (scale with
  // --scale; 1.0 ~ 2 days of pings, plenty for stable quantiles).
  config.duration = Duration::hours(static_cast<std::int64_t>(48 * args.scale));
  config.cadence = Duration::minutes(5);
  config.epochs = false;  // Figure 1 aggregates; epochs belong to Figure 2
  const auto result = bench::run_sweep<measure::PingCampaign>(args, config);

  // The paper's published per-anchor reference points (median / min).
  const char* paper[] = {
      "46-52 / 24-28", "46-52 / 24-28", "46-52 / 24-28", "46-52 / 24-28",
      "~46-50 / ~24",  "~46-50 / ~24",  "~42 / 20.5",    "~42 / 20.5",
      "~130-150 / -",  "184 / -",       "270 / -",
  };

  stats::TextTable table{
      {"anchor", "min", "p5", "p25", "median", "p75", "p95", "paper med/min"}};
  for (std::size_t i = 0; i < result.anchors.size(); ++i) {
    table.add_row(bench::boxplot_row(result.anchors[i].name, result.anchors[i].rtt_ms,
                                     paper[i]));
  }
  std::printf("%s", table.str().c_str());
  std::printf("\npings sent: %llu, lost: %llu (%.2f%%)\n",
              static_cast<unsigned long long>(result.pings_sent),
              static_cast<unsigned long long>(result.pings_lost),
              100.0 * static_cast<double>(result.pings_lost) /
                  static_cast<double>(result.pings_sent));
  std::printf("Paper take-away: minimum latency ~20 ms for close destinations; "
              "distant anchors exit through the same European PoPs.\n");
  bench::write_obs(args, result.obs);
  return 0;
}
