// Figure 7 (mobility extension) — latency and loss while the terminal is in
// motion: RTT/loss per speed bin and the outage-duration ECDF for a
// highway-vs-rural route pair.
//
// The paper measured a fixed roof-mounted dish; this regenerator extends the
// reproduction to the "Starlink for RVs" question the paper raises in §5:
// how much of the stationary latency budget survives at 120 km/h behind
// tree lines and tunnels? The highway route (Brussels -> Liege, fast, tree
// lines + two tunnels) is compared against a rural loop (Louvain-la-Neuve,
// slow, open sky).
//
// Flags beyond the common set (bench_common.hpp):
//   --route=NAME     run one route instead of the pair (highway | rural)
//   --speed=F        speed scale applied to every leg (default 1.0)
//   --cadence=DUR    probe cadence (default 1s)
//   --duration=DUR   probe window (default: the whole route + 30 s)
//   --obstructions=0 strip the route's obstruction masks (ablation)
//   --fleet=N        simulated neighbour terminals (cell migrations then
//                    land in arbiters with real background members)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "measure/campaign.hpp"
#include "mobility/routes.hpp"
#include "stats/ecdf.hpp"

namespace {

using namespace slp;

std::string bin_label(std::uint64_t key) {
  return std::to_string(key * 20) + "-" + std::to_string((key + 1) * 20) + " km/h";
}

void report(const std::string& name, const measure::RoadTripCampaign::Result& r) {
  std::printf("\n--- route: %s (%.1f km) ---\n", name.c_str(), r.route_km);
  const double loss_pct = r.probes_sent > 0
                              ? 100.0 * static_cast<double>(r.probes_lost) /
                                    static_cast<double>(r.probes_sent)
                              : 0.0;
  std::printf("probes: %llu sent, %llu lost (%.2f%%) | reroutes %llu, "
              "cell migrations %llu, tunnels %llu\n",
              static_cast<unsigned long long>(r.probes_sent),
              static_cast<unsigned long long>(r.probes_lost), loss_pct,
              static_cast<unsigned long long>(r.reroutes),
              static_cast<unsigned long long>(r.cell_migrations),
              static_cast<unsigned long long>(r.tunnels));

  stats::TextTable table{{"speed bin", "probes", "loss %", "rtt p50", "rtt p95"}};
  for (const auto& [key, group] : r.loss_by_speed.groups()) {
    using stats::TextTable;
    const auto* rtt = [&]() -> const stats::KeyedSamples::Group* {
      const auto it = r.rtt_by_speed.groups().find(key);
      return it == r.rtt_by_speed.groups().end() ? nullptr : &it->second;
    }();
    table.add_row({bin_label(key), std::to_string(group.summary.count()),
                   TextTable::num(group.summary.mean() * 100.0, 2),
                   rtt != nullptr ? TextTable::num(r.rtt_by_speed.quantile(key, 0.5), 1) : "-",
                   rtt != nullptr ? TextTable::num(r.rtt_by_speed.quantile(key, 0.95), 1) : "-"});
  }
  std::printf("%s", table.str().c_str());

  if (r.outage_s.empty()) {
    std::printf("outages: none\n");
  } else {
    std::printf("outages: %zu (longest %.0f s), duration ECDF:\n", r.outage_s.size(),
                r.outage_s.max());
    const stats::Ecdf ecdf{r.outage_s};
    const double probs[] = {0.5, 0.9, 0.99};
    std::printf("%s", stats::render_cdf_rows(ecdf, probs, " s").c_str());
  }

  std::int64_t attributed = 0;
  for (const std::int64_t c : r.comp_ns) attributed += c;
  if (attributed > 0) {
    const double stall_share =
        static_cast<double>(r.comp_ns[obs::kHandoverStall]) / static_cast<double>(attributed);
    std::printf("provenance: handover_stall %.1f%% of attributed RTT "
                "(%.1f ms total across probes)\n",
                100.0 * stall_share,
                static_cast<double>(r.comp_ns[obs::kHandoverStall]) * 1e-6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  const std::string only_route = flags.get("route", "");
  const double speed = flags.get_double("speed", 1.0);
  const Duration cadence = flags.get_duration("cadence", Duration::seconds(1));
  const Duration duration = flags.get_duration("duration", Duration::zero());
  const bool obstructions = flags.get_bool("obstructions", true);
  const int fleet_size = static_cast<int>(flags.get_int("fleet", 0));
  bench::warn_unused(flags);

  bench::banner("Figure 7 (extension)", "RTT and loss in motion: the road-trip campaigns");

  std::vector<std::string> routes;
  if (only_route.empty()) {
    routes = {"highway", "rural"};
  } else {
    routes = {only_route};
  }

  obs::Snapshot all_obs;
  std::uint64_t seed_offset = 0;
  for (const std::string& name : routes) {
    measure::RoadTripCampaign::Config config;
    config.seed = args.seed + seed_offset++;
    config.route = name;
    config.speed_scale = speed;
    config.cadence = cadence;
    config.duration = duration;
    config.obstructions = obstructions;
    config.fleet.size = fleet_size;
    const auto result = bench::run_sweep<measure::RoadTripCampaign>(args, config);
    obs::merge(all_obs, result.obs);
    report(name, result);
  }

  std::printf("\nShape to check: the highway's fast bins carry the loss and the "
              "long outages (tree lines + tunnels force re-acquisitions at "
              "speed); the rural loop stays close to the stationary baseline.\n");
  bench::write_obs(args, all_obs);
  return 0;
}
