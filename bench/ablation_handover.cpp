// Ablation — the 15-second handover structure.
//
// Starlink reassigns user terminals to satellites on a 15 s grid; the paper
// models this as the source of slot-to-slot RTT dispersion (Figure 1's
// boxplot width). This bench probes at 250 ms cadence and folds the RTT
// series onto the slot phase: latency is near-constant inside a slot and
// steps at slot boundaries; disabling the slot penalty shrinks the steps to
// the geometry-only component.
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/ping.hpp"
#include "bench_common.hpp"
#include "measure/testbed.hpp"
#include "runner/pool.hpp"

namespace {

using namespace slp;

struct FoldResult {
  std::array<stats::Samples, 15> by_phase;  ///< second within the 15 s slot
  stats::Samples slot_medians;
  stats::Samples boundary_steps_ms;
  obs::Snapshot obs;
};

FoldResult probe_phase_fold(std::uint64_t seed, Duration slot_penalty,
                            const obs::Options& obs_opts) {
  measure::TestbedConfig config;
  config.seed = seed;
  config.with_satcom = false;
  config.starlink.slot_penalty_max = slot_penalty;
  config.obs = obs_opts;
  measure::Testbed bed{config};

  FoldResult result;
  std::vector<std::pair<double, double>> series;  // (t_seconds, rtt_ms)
  std::vector<std::unique_ptr<apps::PingApp>> live;

  const int probes = 1200;  // 5 minutes at 250 ms
  for (int i = 0; i < probes; ++i) {
    const TimePoint at = TimePoint::epoch() + Duration::millis(250) * static_cast<double>(i);
    bed.sim().schedule_at(at, [&, at] {
      apps::PingApp::Config ping_config;
      ping_config.target = bed.anchor(0).host->addr();
      ping_config.count = 1;
      live.push_back(std::make_unique<apps::PingApp>(
          bed.client(measure::AccessKind::kStarlink), ping_config));
      apps::PingApp* ping = live.back().get();
      ping->on_complete = [&, at](const std::vector<apps::PingApp::Probe>& probes_out) {
        if (!probes_out.empty() && !probes_out[0].lost) {
          series.emplace_back(at.to_seconds(), probes_out[0].rtt.to_millis());
        }
      };
      ping->start();
    });
  }
  bed.sim().run();

  // Fold and detect slot-boundary steps.
  stats::Samples current_slot;
  std::int64_t current_index = -1;
  double previous_median = -1.0;
  for (const auto& [t, rtt] : series) {
    const auto phase = static_cast<std::size_t>(static_cast<std::int64_t>(t) % 15);
    result.by_phase[phase].add(rtt);
    const auto slot = static_cast<std::int64_t>(t / 15.0);
    if (slot != current_index) {
      if (!current_slot.empty()) {
        const double median = current_slot.median();
        result.slot_medians.add(median);
        if (previous_median >= 0.0) {
          result.boundary_steps_ms.add(std::abs(median - previous_median));
        }
        previous_median = median;
      }
      current_slot.clear();
      current_index = slot;
    }
    current_slot.add(rtt);
  }
  result.obs = bed.take_obs();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("Ablation: handovers", "RTT structure on the 15-second scheduling grid");

  // One cell per (penalty, seed replication); folds append in cell order so
  // the output is --jobs invariant.
  const double penalties_ms[] = {8.0, 0.0};
  std::vector<FoldResult> cells(2 * static_cast<std::size_t>(args.seeds));
  {
    runner::Pool pool{args.jobs};
    for (std::size_t p = 0; p < 2; ++p) {
      for (int s = 0; s < args.seeds; ++s) {
        const std::size_t cell = p * static_cast<std::size_t>(args.seeds) +
                                 static_cast<std::size_t>(s);
        const std::uint64_t seed =
            runner::cell_seed(args.seed, static_cast<std::uint64_t>(s));
        const Duration penalty = Duration::from_millis(penalties_ms[p]);
        pool.submit([&cells, cell, seed, penalty, obs_opts = args.obs()] {
          cells[cell] = probe_phase_fold(seed, penalty, obs_opts);
        });
      }
    }
    pool.drain();
  }

  // Merge obs by cell index before the fold below moves cells out.
  obs::Snapshot all_obs;
  for (const FoldResult& c : cells) obs::merge(all_obs, c.obs);

  for (std::size_t p = 0; p < 2; ++p) {
    const double penalty_ms = penalties_ms[p];
    FoldResult fold = std::move(cells[p * static_cast<std::size_t>(args.seeds)]);
    for (int s = 1; s < args.seeds; ++s) {
      const FoldResult& from =
          cells[p * static_cast<std::size_t>(args.seeds) + static_cast<std::size_t>(s)];
      for (std::size_t i = 0; i < fold.by_phase.size(); ++i) {
        fold.by_phase[i].add_all(from.by_phase[i].values());
      }
      fold.slot_medians.add_all(from.slot_medians.values());
      fold.boundary_steps_ms.add_all(from.boundary_steps_ms.values());
    }
    std::printf("\nslot penalty U(0, %.0f ms):\n  median RTT by second-in-slot:", penalty_ms);
    for (const auto& phase : fold.by_phase) {
      std::printf(" %5.1f", phase.empty() ? 0.0 : phase.median());
    }
    std::printf("\n  per-slot medians: p25 %.1f / p75 %.1f ms | slot-boundary "
                "median |step|: %.1f ms (n=%zu)\n",
                fold.slot_medians.percentile(25), fold.slot_medians.percentile(75),
                fold.boundary_steps_ms.empty() ? 0.0 : fold.boundary_steps_ms.median(),
                fold.boundary_steps_ms.size());
  }
  std::printf("\nExpected shape: with the per-slot allocation penalty the slot "
              "medians disperse and step by several ms at boundaries (the "
              "mechanism behind Figure 1's box width); without it only the "
              "geometry component remains.\n");
  bench::write_obs(args, all_obs);
  return 0;
}
