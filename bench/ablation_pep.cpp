// Ablation — the SatCom PEP (§1, §3.5).
//
// PEPs exist because vanilla TCP is miserable over a 600 ms pipe. This bench
// runs the SatCom download speedtest and the web QoE workload with the PEP
// enabled (the paper's measured reality) and disabled (the counterfactual
// that motivated deploying PEPs — and the situation QUIC is always in).
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("Ablation: PEP", "SatCom with and without the splitting proxy");

  stats::TextTable table{{"configuration", "ookla down median", "web onLoad median",
                          "conn setup mean", "note"}};
  obs::Snapshot all_obs;
  for (const bool pep : {true, false}) {
    measure::SpeedtestCampaign::Config st_config;
    st_config.seed = args.seed;
    st_config.access = measure::AccessKind::kSatCom;
    st_config.tests = args.scaled(5);
    st_config.satcom_pep = pep;
    measure::WebCampaign::Config web_config;
    web_config.seed = args.seed + 1;
    web_config.access = measure::AccessKind::kSatCom;
    web_config.visits = args.scaled(12);
    web_config.satcom_pep = pep;

    const auto st = bench::run_sweep<measure::SpeedtestCampaign>(args, st_config);
    const auto web = bench::run_sweep<measure::WebCampaign>(args, web_config);
    obs::merge(all_obs, st.obs);
    obs::merge(all_obs, web.obs);
    using stats::TextTable;
    table.add_row({pep ? "PEP enabled (paper)" : "PEP disabled",
                   TextTable::num(st.mbps.median(), 0),
                   TextTable::num(web.onload_s.median(), 2),
                   TextTable::num(web.setup_ms.mean(), 0) + " ms",
                   pep ? "paper: 82 Mbit/s, onLoad 10.9 s" : "counterfactual"});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nExpected shape: disabling the PEP collapses bulk throughput "
              "(slow start over 600 ms) while connection setup stays ~3 RTT "
              "either way — PEPs cannot fix handshakes, which is why SatCom "
              "web QoE is poor even with them.\n");
  bench::write_obs(args, all_obs);
  return 0;
}
