// Figure 2 — RTT towards the European anchors over the five-month campaign
// (6-hour bins, percentile bands), plus the Mood's-median-test paragraph.
//
// Shape targets: flat ~50 ms median band between 40 (p25) and 60 ms (p75);
// a small downward step around Feb 11 (constellation densification); a rise
// across late April / early May; and hour-of-day samples whose medians a
// Mood's test cannot distinguish (no diurnal pattern).
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"
#include "stats/moods_test.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  // --fleet=N replaces the synthetic shared-cell load under the ping rounds
  // with N simulated terminals contending for real per-cell capacity
  // (src/fleet/); 0 keeps the paper-calibrated LoadProcess.
  const int fleet_size = static_cast<int>(flags.get_int("fleet", 0));
  bench::warn_unused(flags);
  bench::banner("Figure 2", "RTT to European anchors over the campaign timeline");
  if (fleet_size > 0) {
    std::printf("shared-cell load: real contention from a %d-terminal fleet\n", fleet_size);
  }

  measure::PingCampaign::Config config;
  config.seed = args.seed;
  config.duration = Duration::days(146);
  // Compressed cadence (the paper pinged every 5 minutes; we default to a
  // sparser grid over the full timeline — same bins, fewer samples per bin).
  config.cadence = Duration::minutes(static_cast<std::int64_t>(120 / args.scale));
  config.epochs = true;
  config.fleet.size = fleet_size;
  const auto result = bench::run_sweep<measure::PingCampaign>(args, config);

  // One row per ~6-day stride of 6h bins to keep the series readable.
  stats::TextTable table{{"day", "min", "p25", "median", "p75", "p95", "samples"}};
  const auto rows = result.eu_timeline.rows();
  const std::size_t stride = std::max<std::size_t>(1, rows.size() / 24);
  for (std::size_t i = 0; i < rows.size(); i += stride) {
    const auto& row = rows[i];
    using stats::TextTable;
    table.add_row({TextTable::num(row.start.to_seconds() / 86400.0, 1),
                   TextTable::num(row.min, 1), TextTable::num(row.p25, 1),
                   TextTable::num(row.median, 1), TextTable::num(row.p75, 1),
                   TextTable::num(row.p95, 1), std::to_string(row.count)});
  }
  std::printf("%s", table.str().c_str());

  // The Feb-11 step and late-April rise, quantified.
  stats::Samples before_step;
  stats::Samples after_step;
  stats::Samples late_april;
  for (const auto& row : rows) {
    const double day = row.start.to_seconds() / 86400.0;
    if (day < 53) before_step.add(row.median);
    if (day >= 55 && day < 120) after_step.add(row.median);
    if (day >= 126 && day < 138) late_april.add(row.median);
  }
  if (!before_step.empty() && !after_step.empty() && !late_april.empty()) {
    std::printf("\nepoch medians of 6h-bin medians:\n");
    std::printf("  before Feb 11 : %s ms\n",
                bench::vs(before_step.median(), "slightly above the rest").c_str());
    std::printf("  Feb 11-Apr 24 : %s ms (paper: a few ms below the early period)\n",
                stats::TextTable::num(after_step.median(), 1).c_str());
    std::printf("  late Apr-May  : %s ms (paper: visible rise)\n",
                stats::TextTable::num(late_april.median(), 1).c_str());
  }

  // Hour-of-day analysis (paper: "distribution of RTT is rather flat over
  // the hours of the day", Mood's test consistent with equal medians).
  // Samples within a ping round share the same 15s scheduling slot, so the
  // raw test would be pseudo-replicated; subsample one observation per round
  // per hour group before testing, and report the effect size directly.
  std::vector<std::vector<double>> groups;
  double min_median = 1e9;
  double max_median = -1e9;
  for (const auto& hour_samples : result.eu_by_hour) {
    if (hour_samples.size() < 48) continue;
    stats::Samples all{std::vector<double>(hour_samples.begin(), hour_samples.end())};
    min_median = std::min(min_median, all.median());
    max_median = std::max(max_median, all.median());
    const std::size_t stride = std::max<std::size_t>(1, hour_samples.size() / 1000);
    std::vector<double> sub;
    for (std::size_t i = 0; i < hour_samples.size(); i += stride) {
      sub.push_back(hour_samples[i]);
    }
    groups.push_back(std::move(sub));
  }
  if (!groups.empty()) {
    std::printf("\nhour-of-day medians span %.2f-%.2f ms (flat: spread %.2f ms)\n",
                min_median, max_median, max_median - min_median);
  }
  const auto moods = stats::moods_median_test(groups);
  if (moods.valid) {
    std::printf("Mood's median test across %zu hour-of-day groups (decorrelated "
                "subsample): chi2=%.1f p=%.3f (paper: same median across hours)\n",
                groups.size(), moods.chi2, moods.p_value);
  }
  bench::write_obs(args, result.obs);
  return 0;
}
