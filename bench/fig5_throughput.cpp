// Figure 5 — throughput distributions: Ookla-style TCP speedtests on
// Starlink and SatCom, and single-connection QUIC H3 on Starlink.
//
// Paper reference points (Mbit/s):
//   Starlink Ookla down: median 178, max 386; up: median 17, max 64
//   SatCom Ookla down: median 82; up: median 4.5
//   Starlink H3 down: mostly 100-150; H3 up: ~17, more stable than TCP
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"

namespace {

slp::stats::Samples speedtest(const slp::bench::CommonArgs& args, std::uint64_t seed,
                              slp::measure::AccessKind access, bool download, int tests,
                              int fleet_size, slp::obs::Snapshot& all_obs) {
  slp::measure::SpeedtestCampaign::Config config;
  config.seed = seed;
  config.access = access;
  config.download = download;
  config.tests = tests;
  config.fleet.size = fleet_size;  // ignored for SatCom (synthetic load stays)
  auto result = slp::bench::run_sweep<slp::measure::SpeedtestCampaign>(args, config);
  slp::obs::merge(all_obs, result.obs);
  return std::move(result.mbps);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  // --fleet=N replaces the synthetic shared-cell load under the Starlink
  // tests with N simulated terminals contending for real per-cell capacity
  // (src/fleet/); 0 keeps the paper-calibrated LoadProcess.
  const int fleet_size = static_cast<int>(flags.get_int("fleet", 0));
  bench::warn_unused(flags);
  bench::banner("Figure 5", "throughput distributions (Ookla TCP vs QUIC H3)");
  if (fleet_size > 0) {
    std::printf("shared-cell load: real contention from a %d-terminal fleet\n", fleet_size);
  }

  const int tests = args.scaled(16);
  obs::Snapshot all_obs;
  stats::TextTable table{
      {"experiment", "min", "p5", "p25", "median", "p75", "p95", "paper median"}};

  table.add_row(bench::boxplot_row(
      "starlink ookla down",
      speedtest(args, args.seed, measure::AccessKind::kStarlink, true, tests, fleet_size,
                all_obs),
      "178 (max 386)"));
  table.add_row(bench::boxplot_row(
      "starlink ookla up",
      speedtest(args, args.seed + 1, measure::AccessKind::kStarlink, false, tests, fleet_size,
                all_obs),
      "17 (max 64)"));
  table.add_row(bench::boxplot_row(
      "satcom ookla down",
      speedtest(args, args.seed + 2, measure::AccessKind::kSatCom, true,
                std::max(2, tests / 2), 0, all_obs),
      "82"));
  table.add_row(bench::boxplot_row(
      "satcom ookla up",
      speedtest(args, args.seed + 3, measure::AccessKind::kSatCom, false,
                std::max(2, tests / 2), 0, all_obs),
      "4.5"));

  {
    measure::H3Campaign::Config config;
    config.seed = args.seed + 4;
    config.download = true;
    config.transfers = args.scaled(8);
    config.fleet.size = fleet_size;
    const auto h3 = bench::run_sweep<measure::H3Campaign>(args, config);
    obs::merge(all_obs, h3.obs);
    table.add_row(bench::boxplot_row("starlink H3 down", h3.goodput_mbps, "100-150"));
  }
  {
    measure::H3Campaign::Config config;
    config.seed = args.seed + 5;
    config.download = false;
    config.transfers = args.scaled(4);
    config.bytes = 40ull * 1000 * 1000;
    config.fleet.size = fleet_size;
    const auto h3 = bench::run_sweep<measure::H3Campaign>(args, config);
    obs::merge(all_obs, h3.obs);
    table.add_row(bench::boxplot_row("starlink H3 up", h3.goodput_mbps, "~17, stable"));
  }

  std::printf("%s", table.str().c_str());
  std::printf("\nPaper take-aways to check: Starlink beats SatCom both ways; "
              "single-connection QUIC downloads sit below the multi-connection "
              "TCP tests; uploads agree across protocols.\n");
  bench::write_obs(args, all_obs);
  return 0;
}
