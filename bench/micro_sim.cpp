// Microbenchmarks (google-benchmark) for the simulator's hot paths: event
// queue churn, link packet forwarding, congestion-controller updates, QUIC
// transfer event rate, and constellation visibility queries. These guard the
// performance envelope that makes the compressed campaigns tractable.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "fleet/cell_arbiter.hpp"
#include "fleet/fleet.hpp"
#include "leo/access.hpp"
#include "leo/constellation.hpp"
#include "leo/places.hpp"
#include "mobility/obstruction.hpp"
#include "mobility/routes.hpp"
#include "qoe/abr.hpp"
#include "qoe/vc.hpp"
#include "quic/quic.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "tcp/congestion.hpp"

namespace {

using namespace slp;
using namespace slp::literals;
using sim::make_addr;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_in(Duration::micros(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_TimerRearm(benchmark::State& state) {
  sim::Simulator sim;
  sim::Timer timer{sim};
  for (auto _ : state) {
    timer.arm(1_ms, [] {});
  }
  timer.cancel();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerRearm);

void BM_LinkPacketForwarding(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Network net{sim};
    sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
    sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
    net.connect(a.uplink(), b.uplink(),
                sim::Network::symmetric(DataRate::gbps(10), 1_ms, 64 * 1024 * 1024));
    std::uint64_t delivered = 0;
    b.bind(sim::Protocol::kUdp, 1, [&](const sim::Packet&) { ++delivered; });
    for (int i = 0; i < 1000; ++i) {
      sim::Packet pkt;
      pkt.dst = b.addr();
      pkt.dst_port = 1;
      pkt.proto = sim::Protocol::kUdp;
      pkt.size_bytes = 1250;
      a.send(std::move(pkt));
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkPacketForwarding);

void BM_PacketPoolAllocFree(benchmark::State& state) {
  // The payload hot loop: acquire a slot, construct a QUIC-record-sized
  // payload, copy the ref (the sent_ bookkeeping share), release both.
  // Steady state must touch only the pool free list — zero malloc.
  sim::PacketPool pool;
  struct Record {
    std::uint64_t pn;
    std::byte body[200];
  };
  for (auto _ : state) {
    sim::PayloadRef ref = pool.make<Record>();
    sim::PayloadRef share = ref;
    benchmark::DoNotOptimize(share.as<Record>());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolAllocFree);

void BM_CubicOnAck(benchmark::State& state) {
  cc::Cubic cubic{cc::CcConfig{}};
  TimePoint now;
  for (auto _ : state) {
    now = now + Duration::micros(100);
    cubic.on_ack(1448, Duration::millis(50), now);
    benchmark::DoNotOptimize(cubic.cwnd_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CubicOnAck);

void BM_QuicOneMegabyteTransfer(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim{9};
    sim::Network net{sim};
    sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
    sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
    net.connect(a.uplink(), b.uplink(),
                sim::Network::symmetric(DataRate::mbps(200), 10_ms, 4 * 1024 * 1024));
    quic::QuicStack ca{a};
    quic::QuicStack cb{b};
    std::uint64_t got = 0;
    cb.listen(443, [&](quic::QuicConnection& c) {
      c.on_stream_data = [&](std::uint64_t n) { got += n; };
    });
    quic::QuicConnection& conn = ca.connect(b.addr(), 443);
    conn.on_established = [&conn] { conn.send_stream(1'000'000); };
    sim.run();
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_QuicOneMegabyteTransfer);

void BM_ConstellationVisibility(benchmark::State& state) {
  leo::Constellation shell{leo::Constellation::Config{}};
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 15;
    const auto visible = shell.visible_from(leo::places::kLouvainLaNeuve,
                                            TimePoint::epoch() + Duration::seconds(t), 25.0);
    benchmark::DoNotOptimize(visible.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConstellationVisibility);

void BM_ConstellationVisibilityReuse(benchmark::State& state) {
  // The handover scheduler's steady-state shape: one warmed buffer reused
  // every 15 s tick, so the query allocates nothing.
  leo::Constellation shell{leo::Constellation::Config{}};
  std::vector<leo::Constellation::VisibleSat> buf;
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 15;
    shell.visible_from(leo::places::kLouvainLaNeuve,
                       TimePoint::epoch() + Duration::seconds(t), 25.0, 0, buf);
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConstellationVisibilityReuse);

void BM_ConstellationBestVisible(benchmark::State& state) {
  leo::Constellation shell{leo::Constellation::Config{}};
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 15;
    const auto best = shell.best_visible(leo::places::kLouvainLaNeuve,
                                         TimePoint::epoch() + Duration::seconds(t), 25.0);
    benchmark::DoNotOptimize(best.has_value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConstellationBestVisible);

void BM_FleetAttachDetach(benchmark::State& state) {
  // Membership churn on one cell: attach/detach keep the id-ordered member
  // vector sorted; the fleet's epoch loop does this for every demand-session
  // boundary, so it must stay cheap at realistic per-cell populations.
  fleet::CellArbiter arb{fleet::CellArbiter::Config{}, Rng{3}.fork("d"), Rng{3}.fork("u")};
  for (fleet::TerminalId id = 0; id < 128; ++id) arb.attach(id, 1.0, false);
  fleet::TerminalId next = 128;
  for (auto _ : state) {
    arb.attach(next, 1.0, false);
    arb.detach(next - 128);
    ++next;
  }
  benchmark::DoNotOptimize(arb.members());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FleetAttachDetach);

void BM_CellArbiterReallocate(benchmark::State& state) {
  // One full water-filling epoch over a busy cell (every member active, all
  // demands perturbed each round so the epoch is never a clean no-op).
  fleet::CellArbiter arb{fleet::CellArbiter::Config{}, Rng{4}.fork("d"), Rng{4}.fork("u")};
  arb.attach(0xFFFFFFFFu, 1.0, true);
  for (fleet::TerminalId id = 0; id < 128; ++id) arb.attach(id, 1.0, false);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 2;
    for (fleet::TerminalId id = 0; id < 128; ++id) {
      const double mbps = 1.0 + static_cast<double>((id + t) % 40);
      arb.set_demand(id, DataRate::mbps(mbps), DataRate::mbps(mbps / 8.0));
    }
    arb.reallocate(TimePoint::epoch() + Duration::seconds(t));
    benchmark::DoNotOptimize(arb.background_allocated(fleet::CellArbiter::kDown));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CellArbiterReallocate);

void BM_HierarchicalGridLookup(benchmark::State& state) {
  // The aggregation hot path: point -> base cell -> supercell. Every fold
  // into / promotion out of an aggregate does exactly this pair of lookups,
  // and the continental placement does it once per populated cell per tick
  // when publishing analytic utilization.
  fleet::HierarchicalGrid hier{24.0, 8};
  std::int64_t i = 0;
  for (auto _ : state) {
    ++i;
    const leo::GeoPoint p{40.0 + static_cast<double>(i % 2000) * 0.01,
                          -10.0 + static_cast<double>((i * 7) % 4000) * 0.01};
    const fleet::CellId base = hier.base().cell_of(p);
    benchmark::DoNotOptimize(hier.super_of(base));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchicalGridLookup);

void BM_ShardedArbiterEpoch(benchmark::State& state) {
  // One fleet epoch over a continental hot set (every populated cell live,
  // no aggregation), stepped serially (arg 1) or across a worker pool
  // (arg 4). The exported bytes are identical either way — this measures
  // the wall-time of the shard + fold cycle that tick() runs.
  sim::Simulator sim{7};
  sim::Network net{sim};
  leo::StarlinkAccess access{net, leo::StarlinkAccess::Config{}};
  fleet::Fleet::Config fc;
  fc.size = 20000;
  fc.placement = fleet::Placement::continental_europe();
  fc.aggregate_idle = false;
  fc.handovers = false;
  fc.shards = static_cast<int>(state.range(0));
  sim.schedule_in(Duration::hours(24 * 365), [] {});  // keep the timer armed
  fleet::Fleet fleet{sim, access, fc};
  const Duration epoch = fc.epoch;
  for (auto _ : state) {
    sim.run_for(epoch);
    benchmark::DoNotOptimize(fleet.epochs());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(fleet.cell_count()));
}
BENCHMARK(BM_ShardedArbiterEpoch)->Arg(1)->Arg(4);

void BM_TrajectoryPositionAt(benchmark::State& state) {
  // Closed-form O(1) state lookup on the highway route — this is the per-tick
  // cost of the mobility epoch (and the per-probe cost of speed binning), so
  // it must stay cheap enough to run at 1 Hz x campaign length for free.
  const mobility::Route route = mobility::routes::highway();
  const std::int64_t total_ns = route.trajectory.total_duration().ns();
  std::int64_t i = 0;
  for (auto _ : state) {
    // Pseudo-scan: jump around the route so segment search isn't warm-cached
    // on one leg.
    const auto t = Duration::nanos((++i * 977 * 1'000'000) % total_ns);
    benchmark::DoNotOptimize(route.trajectory.state_at(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrajectoryPositionAt);

void BM_ObstructionMaskQuery(benchmark::State& state) {
  // Candidate-filter cost: one blocks() per visible satellite per slot
  // recompute while a mask is active.
  const mobility::ObstructionMask mask{{
      {20.0, 160.0, 50.0},
      {200.0, 340.0, 50.0},
      {60.0, 120.0, 42.0},
  }};
  std::int64_t i = 0;
  for (auto _ : state) {
    ++i;
    const double az = static_cast<double>((i * 37) % 360);
    const double el = static_cast<double>((i * 13) % 90);
    const double heading = static_cast<double>((i * 101) % 360);
    benchmark::DoNotOptimize(mask.blocks(az, el, heading));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObstructionMaskQuery);

void BM_AbrLadderDecision(benchmark::State& state) {
  // One rate-ladder pick per segment boundary: the ABR client's only
  // per-segment control-plane cost (qoe::AbrVideoSession).
  const qoe::AbrLadder ladder;
  std::int64_t i = 0;
  for (auto _ : state) {
    ++i;
    const double buffer_s = static_cast<double>((i * 7) % 320) * 0.1;
    benchmark::DoNotOptimize(ladder.pick(buffer_s));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbrLadderDecision);

void BM_JitterBufferPlayout(benchmark::State& state) {
  // The videoconference receiver's per-frame hot path (qoe::VcSession):
  // datagram parts land in the reassembly maps, due frames are finalized
  // against the playout deadline, and each 30-frame window folds into an
  // E-model MOS.
  constexpr std::uint32_t kParts = 3;
  constexpr std::uint64_t kWindow = 30;
  std::map<std::uint64_t, std::uint32_t> arrived;
  std::map<std::uint64_t, TimePoint> complete_at;
  std::uint64_t frame = 0;
  std::uint64_t next_final = 0;
  std::uint64_t window_bad = 0;
  double mos_acc = 0.0;
  for (auto _ : state) {
    const TimePoint capture = TimePoint::epoch() + Duration::millis(static_cast<std::int64_t>(frame) * 33);
    for (std::uint32_t p = 0; p < kParts; ++p) {
      if (++arrived[frame] == kParts) complete_at[frame] = capture + Duration::millis(40);
    }
    ++frame;
    while (next_final + 2 < frame) {  // two frames of reorder slack, as in VcSession
      const auto it = complete_at.find(next_final);
      const bool late = it == complete_at.end() ||
                        it->second > capture + Duration::millis(120);
      if (late) ++window_bad;
      arrived.erase(next_final);
      if (it != complete_at.end()) complete_at.erase(it);
      if (++next_final % kWindow == 0) {
        const double loss_pct = 100.0 * static_cast<double>(window_bad) / kWindow;
        mos_acc += qoe::emodel_mos(85.0, loss_pct);
        window_bad = 0;
      }
    }
  }
  benchmark::DoNotOptimize(mos_acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JitterBufferPlayout);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // Schedule + cancel without draining: exercises O(1) cancel, slot reuse and
  // the compaction bound (RTO-rearm churn is this pattern at transport scale).
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    ++t;
    const sim::EventId id = q.schedule(TimePoint::epoch() + Duration::micros(t), [] {});
    q.cancel(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancelChurn);

}  // namespace

BENCHMARK_MAIN();
