#!/usr/bin/env python3
"""Perf-regression harness: micro + macro timings -> BENCH_micro.json.

Runs the google-benchmark micro suite (``micro_sim``) plus two macro
measurements (wall time of the fig5 throughput campaign at smoke scale, and
of a million-terminal continental fleet hour) and writes a stable-schema
JSON report::

    { "<bench>": { "ns_per_op": <float>, "items_per_s": <float> }, ... }

Modes
-----
* ``--out PATH``        write a fresh report (the committed baseline is the
                        repo-root ``BENCH_micro.json``).
* ``--check BASELINE``  additionally compare the fresh numbers against a
                        committed baseline: fail (exit 1) if any benchmark got
                        slower than ``tolerance`` x baseline ns_per_op, or if a
                        baseline benchmark disappeared. The default tolerance
                        is deliberately loose (2x) because CI runners are noisy
                        shared machines; the harness is meant to catch
                        order-of-magnitude regressions (an accidental
                        allocation re-introduced per event), not 10% drift.

Only the Python standard library is used.
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

# (report key, bench binary, argv). The fleet macro is the acceptance
# workout for the hierarchical grid: 1M terminals, one simulated hour,
# idle cells aggregated analytically, epochs sharded across 8 workers.
MACROS = [
    ("MACRO_Fig5ThroughputWall", "fig5_throughput",
     ["--scale=0.1", "--seeds=2", "--jobs=2"]),
    ("MACRO_FleetMillionWall", "fleet_scale",
     ["--terminals=1000000", "--continental=1", "--shards=8", "--duration=3600s"]),
]
# --profile re-runs only the fig5 macro (the packet-level campaign with
# subsystem wall sections; the fleet macro is analytic and has none).
PROFILE_MACRO = MACROS[0]


def run_micro(micro_sim: Path) -> dict:
    """Runs the google-benchmark suite, returns {name: {ns_per_op, items_per_s}}."""
    proc = subprocess.run(
        # Bare-double min_time: the "0.05s" spelling needs google-benchmark
        # >= 1.8, plain 0.05 works on every version either side.
        [str(micro_sim), "--benchmark_format=json", "--benchmark_min_time=0.05"],
        check=True,
        capture_output=True,
        text=True,
    )
    doc = json.loads(proc.stdout)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") != "iteration":
            continue  # skip aggregate rows if repetitions are ever enabled
        name = bench["name"]
        # google-benchmark reports real_time in time_unit; normalise to ns.
        unit = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[bench.get("time_unit", "ns")]
        ns_per_op = bench["real_time"] * unit
        items = bench.get("items_per_second", 1e9 / ns_per_op if ns_per_op else 0.0)
        out[name] = {"ns_per_op": round(ns_per_op, 3), "items_per_s": round(items, 3)}
    if not out:
        raise SystemExit("perf_report: micro_sim produced no benchmark rows")
    return out


def run_profile(bench_dir: Path) -> None:
    """Re-runs the fig5 macro campaign with subsystem wall-profiling and echoes
    the testbed's ``wall-profile`` stderr lines (obs::WallProfile report)."""
    _, binary, argv = PROFILE_MACRO
    proc = subprocess.run([str(bench_dir / binary), *argv, "--profile=1"],
                          check=True, capture_output=True, text=True)
    lines = [l for l in proc.stderr.splitlines() if l.startswith("wall-profile")]
    if lines:
        print("\nsubsystem wall profile (fig5 macro campaign):")
        for line in lines:
            print(f"  {line}")
    else:
        print("\nperf_report: --profile produced no wall-profile lines", file=sys.stderr)


def run_macros(bench_dir: Path) -> dict:
    """Times each end-to-end macro campaign once, wall-clock."""
    out = {}
    for name, binary, argv in MACROS:
        start = time.monotonic_ns()
        subprocess.run([str(bench_dir / binary), *argv], check=True, capture_output=True)
        elapsed_ns = time.monotonic_ns() - start
        out[name] = {
            "ns_per_op": float(elapsed_ns),
            "items_per_s": round(1e9 / elapsed_ns, 6),
        }
    return out


def _ns_per_op(entry):
    """ns_per_op of a report entry; None for non-benchmark entries so a
    schema extension (metadata keys, profile blobs) never crashes --check."""
    if isinstance(entry, dict) and isinstance(entry.get("ns_per_op"), (int, float)):
        return float(entry["ns_per_op"])
    return None


def check(fresh: dict, baseline_path: Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    print(f"{'benchmark':<40} {'baseline ns':>14} {'current ns':>14} {'ratio':>7}")
    for name in sorted(baseline):
        base_ns = _ns_per_op(baseline[name])
        if base_ns is None:
            continue
        if name not in fresh or _ns_per_op(fresh[name]) is None:
            failures.append(f"{name}: present in baseline but not produced")
            print(f"{name:<40} {base_ns:>14.1f} {'MISSING':>14}")
            continue
        cur_ns = _ns_per_op(fresh[name])
        ratio = cur_ns / base_ns if base_ns else float("inf")
        flag = ""
        if ratio > tolerance:
            failures.append(f"{name}: {cur_ns:.1f} ns vs baseline {base_ns:.1f} ns "
                            f"({ratio:.2f}x > {tolerance:.2f}x tolerance)")
            flag = "  <-- REGRESSION"
        print(f"{name:<40} {base_ns:>14.1f} {cur_ns:>14.1f} {ratio:>6.2f}x{flag}")
    for name in sorted(set(fresh) - set(baseline)):
        cur_ns = _ns_per_op(fresh[name])
        if cur_ns is not None:
            print(f"{name:<40} {'(new)':>14} {cur_ns:>14.1f}")
    if failures:
        print("\nperf_report: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf_report: OK (all benchmarks within tolerance)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", type=Path, required=True,
                        help="directory holding the built micro_sim and fig5_throughput")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the fresh report JSON here")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline BENCH_micro.json to compare against")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="max allowed current/baseline ns_per_op ratio (default 2.0)")
    parser.add_argument("--profile", action="store_true",
                        help="also run the macro campaign with --profile=1 and "
                             "print the subsystem wall-profile report")
    args = parser.parse_args()

    fresh = run_micro(args.bench_dir / "micro_sim")
    fresh.update(run_macros(args.bench_dir))
    if args.profile:
        run_profile(args.bench_dir)

    if args.out is not None:
        args.out.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
        print(f"perf_report: wrote {args.out} ({len(fresh)} benchmarks)")

    if args.check is not None:
        return check(fresh, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
