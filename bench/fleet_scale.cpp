// Fleet-scale campaign — 10k terminals contending for shared ground cells.
//
// Not a paper figure: this is the scale/determinism workout for src/fleet/.
// It drives FleetCampaign (placement -> demand -> per-cell proportional-fair
// arbitration) for a simulated hour and reports the per-cell utilization and
// per-terminal allocation distributions, plus what the measured foreground
// terminal sees. The merged --metrics export is byte-identical for any
// --jobs value (CI diffs --jobs=1 against --jobs=8).
//
// Extra flags: --terminals=N (default 10000, incl. the foreground),
// --duration=DUR (default 1h), --cell-km=F, --demand-scale=F, plus the
// continental-scale knobs from bench_common.hpp: --continental=0|1 (European
// placement preset + aggregation), --aggregate=0|1 (analytic idle cells),
// --shards=K (parallel arbiter epochs, byte-identical for any K) and
// --supercell-km=F / --supercell-factor=K (aggregation grid).
#include <cstdio>

#include "bench_common.hpp"
#include "fleet/campaign.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  const int terminals = static_cast<int>(flags.get_int("terminals", 10000));
  const Duration duration = flags.get_duration("duration", Duration::hours(1));
  const double demand_scale = flags.get_double("demand-scale", 1.0);

  bench::banner("Fleet scale", "multi-terminal contention: placement, demand, per-cell PF");

  fleet::FleetCampaign::Config config;
  config.seed = args.seed;
  config.duration = duration;
  config.fleet = bench::parse_fleet(flags);
  config.fleet.size = std::max(1, static_cast<int>(terminals * args.scale));
  config.fleet.placement.cell_km = flags.get_double("cell-km", config.fleet.placement.cell_km);
  config.fleet.demand.scale_down = demand_scale;
  config.fleet.demand.scale_up = demand_scale;
  bench::warn_unused(flags);

  std::printf("fleet: %d terminals, %.0f s simulated, %d seed cell(s), %d job(s), "
              "%d shard(s)%s\n\n",
              config.fleet.size, duration.to_seconds(), args.seeds, args.jobs,
              config.fleet.shards,
              config.fleet.aggregate_idle ? ", idle cells aggregated" : "");

  const auto result = bench::run_sweep<fleet::FleetCampaign>(args, config);

  std::printf("placement: %llu background terminals, %llu hot cells",
              static_cast<unsigned long long>(result.terminals),
              static_cast<unsigned long long>(result.cells));
  if (result.supercells > 0) {
    std::printf(", %llu supercells (%llu terminals aggregated)",
                static_cast<unsigned long long>(result.supercells),
                static_cast<unsigned long long>(result.aggregated_terminals));
  }
  std::printf("\n");
  std::printf("epochs: %llu   attaches: %llu   detaches: %llu   handovers: %llu   "
              "reallocations: %llu\n\n",
              static_cast<unsigned long long>(result.epochs),
              static_cast<unsigned long long>(result.attaches),
              static_cast<unsigned long long>(result.detaches),
              static_cast<unsigned long long>(result.handovers),
              static_cast<unsigned long long>(result.reallocations));

  stats::TextTable util{{"distribution", "n", "mean", "p50", "p95", "max"}};
  const auto util_row = [&](const std::string& name, const stats::KeyedSamples& ks) {
    const stats::StreamingSummary pooled = ks.pooled();
    if (pooled.empty()) {
      util.add_row({name, "0", "-", "-", "-", "-"});
      return;
    }
    using stats::TextTable;
    util.add_row({name, std::to_string(pooled.count()), TextTable::num(pooled.mean(), 3),
                  TextTable::num(ks.pooled_quantile(0.50), 3),
                  TextTable::num(ks.pooled_quantile(0.95), 3),
                  TextTable::num(pooled.max(), 3)});
  };
  util_row("cell util down", result.cell_util_down);
  util_row("cell util up", result.cell_util_up);
  util_row("terminal alloc down (Mbit/s)", result.terminal_down_mbps);
  std::printf("%s\n", util.str().c_str());

  stats::TextTable fg{{"foreground capacity", "min", "p5", "p25", "p50", "p75", "p95",
                       "paper median"}};
  fg.add_row(bench::boxplot_row("downlink (Mbit/s)", result.foreground_down_mbps, "178"));
  fg.add_row(bench::boxplot_row("uplink (Mbit/s)", result.foreground_up_mbps, "17"));
  std::printf("%s", fg.str().c_str());
  std::printf("\n(the paper's Figure 5 medians are end-to-end goodput; the capacity the\n"
              " arbiter leaves the foreground should sit near/above them)\n");

  bench::write_obs(args, result.obs);
  return 0;
}
