// Figure 2b (companion) — where the RTT comes from: per-component latency
// decomposition of the European-anchor ping timeline.
//
// Runs the Figure-2 ping campaign with --provenance forced ON, then prints
//   * the fig2-style RTT time series annotated with the dominant latency
//     cause per bin (propagation vs. queueing vs. handover stalls, ...);
//   * a stacked-component quantile/ECDF table from the merged per-component
//     breakdown (obs::breakdown_components), whose "measured" row is the
//     exact end-to-end RTT each component sum telescopes to.
//
// Shape targets: propagation dominates the flat ~50 ms band; the loaded
// late-April period shifts dominance toward queueing; handover-slot stalls
// appear as a heavy p95 tail rather than a median shift.
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"
#include "obs/breakdown.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  auto args = bench::CommonArgs::parse(argc, argv);
  args.provenance = true;  // the decomposition IS the figure
  bench::banner("Figure 2b", "RTT decomposition of the European-anchor timeline");

  measure::PingCampaign::Config config;
  config.seed = args.seed;
  config.duration = Duration::days(146);
  config.cadence = Duration::minutes(static_cast<std::int64_t>(120 / args.scale));
  config.epochs = true;
  const auto result = bench::run_sweep<measure::PingCampaign>(args, config);

  // --- timeline with dominant cause per bin -----------------------------
  using stats::TextTable;
  stats::TextTable timeline{{"day", "median", "p95", "samples", "dominant", "mean ms"}};
  const auto rows = result.eu_timeline.rows();
  const std::size_t stride = std::max<std::size_t>(1, rows.size() / 24);
  for (std::size_t i = 0; i < rows.size(); i += stride) {
    const auto& row = rows[i];
    // eu_components mirrors eu_timeline bin-for-bin (same adds, same width),
    // so the bin holding this row is indexed by its start time.
    const auto bin =
        static_cast<std::size_t>(row.start.ns() / result.eu_timeline.bin_width().ns());
    int dominant = -1;
    double dominant_ms = 0.0;
    for (int c = 0; c < obs::kTagComponents; ++c) {
      if (static_cast<std::size_t>(c) >= result.eu_components.size()) break;
      if (bin >= result.eu_components[static_cast<std::size_t>(c)].bins()) continue;
      const stats::Samples& s = result.eu_components[static_cast<std::size_t>(c)].bin(bin);
      if (!s.empty() && s.mean() > dominant_ms) {
        dominant_ms = s.mean();
        dominant = c;
      }
    }
    timeline.add_row({TextTable::num(row.start.to_seconds() / 86400.0, 1),
                      TextTable::num(row.median, 1), TextTable::num(row.p95, 1),
                      std::to_string(row.count),
                      dominant < 0 ? "-" : obs::component_name(dominant),
                      TextTable::num(dominant_ms, 2)});
  }
  std::printf("%s", timeline.str().c_str());

  // --- stacked component distribution ------------------------------------
  const stats::KeyedSamples& comps = result.obs.breakdown_components;
  double measured_sum = 0.0;
  if (const auto it = comps.groups().find(obs::kMeasured); it != comps.groups().end()) {
    measured_sum = it->second.summary.sum();
  }
  std::printf("\ncomponent distribution over all tagged deliveries (ms):\n");
  stats::TextTable table{{"component", "count", "mean", "p50", "p95", "max", "share"}};
  for (const auto& [key, group] : comps.groups()) {
    const auto component = static_cast<int>(key);
    const double share =
        measured_sum > 0.0 ? 100.0 * group.summary.sum() / measured_sum : 0.0;
    table.add_row({obs::component_name(component), std::to_string(group.summary.count()),
                   TextTable::num(group.summary.mean(), 3),
                   TextTable::num(comps.quantile(key, 0.5), 3),
                   TextTable::num(comps.quantile(key, 0.95), 3),
                   TextTable::num(group.summary.max(), 3),
                   component == obs::kMeasured ? "100.0" : TextTable::num(share, 1)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\n(components sum exactly to \"measured\" per packet; \"share\" is the\n"
              " fraction of total end-to-end latency each stage accounts for)\n");

  bench::write_obs(args, result.obs);
  return 0;
}
