// Ablation — inter-satellite links (§3.1, §4).
//
// The paper verified via traceroute that transatlantic traffic exited
// through the same European PoPs (no ISLs yet) and anticipated activation.
// This bench compares the measured bent-pipe RTTs of the distant anchors
// against the ISL analytic model and the terrestrial-fiber reference.
#include <cstdio>

#include "bench_common.hpp"
#include "leo/isl.hpp"
#include "leo/places.hpp"
#include "measure/campaign.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("Ablation: ISLs", "bent-pipe (measured) vs ISL routing (model)");

  measure::PingCampaign::Config config;
  config.seed = args.seed;
  config.duration = Duration::hours(static_cast<std::int64_t>(12 * args.scale));
  config.cadence = Duration::minutes(5);
  config.epochs = false;
  const auto pings = bench::run_sweep<measure::PingCampaign>(args, config);

  struct Target {
    const char* anchor_name;
    leo::GeoPoint location;
    const char* paper_rtt;
  };
  const Target targets[] = {
      {"new-york", leo::places::kNewYork, "~130-150 ms"},
      {"fremont", leo::places::kFremont, "184 ms"},
      {"singapore", leo::places::kSingapore, "270 ms"},
  };

  stats::TextTable table{{"destination", "bent-pipe median (measured)", "paper",
                          "ISL model RTT", "fiber reference RTT", "ISL hops"}};
  for (const Target& target : targets) {
    double measured = 0.0;
    for (const auto& anchor : pings.anchors) {
      if (anchor.name == target.anchor_name && !anchor.rtt_ms.empty()) {
        measured = anchor.rtt_ms.median();
      }
    }
    const auto isl = leo::isl_latency(leo::places::kLouvainLaNeuve, target.location);
    const Duration fiber = leo::fiber_rtt(leo::places::kLouvainLaNeuve, target.location);
    using stats::TextTable;
    table.add_row({target.anchor_name, TextTable::num(measured, 0) + " ms", target.paper_rtt,
                   TextTable::num(isl.rtt.to_millis(), 0) + " ms",
                   TextTable::num(fiber.to_millis(), 0) + " ms", std::to_string(isl.hops)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nExpected shape: ISL routing undercuts the bent-pipe + fiber "
              "detour substantially on transcontinental routes (laser at c in "
              "vacuum vs fiber at 2c/3 with path stretch).\n");
  bench::write_obs(args, pings.obs);
  return 0;
}
