// Figure 6 — web browsing QoE: onLoad and SpeedIndex ECDFs for Starlink,
// SatCom and wired, plus the connection-setup numbers of §3.4.
//
// Paper reference points:
//   onLoad medians: Starlink 2.12 s (IQR 1.60-2.78), SatCom 10.91 s
//   (8.36-13.59), wired 1.24 s.
//   SpeedIndex medians: Starlink 1.82 s, SatCom 8.19 s, wired 1.0 s.
//   Connection setup: Starlink 167 ms vs SatCom 2030 ms; ~15 connections
//   per visit on average.
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"
#include "stats/ecdf.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  // --fleet=N loads the Starlink cells with simulated neighbours for the
  // Starlink rows (plus the continental/aggregation knobs, bench_common.hpp);
  // SatCom/wired accesses ignore it.
  const fleet::Fleet::Config fleet_config = bench::parse_fleet(flags);
  bench::warn_unused(flags);
  bench::banner("Figure 6", "web QoE: onLoad and SpeedIndex across accesses");

  struct Row {
    const char* name;
    measure::AccessKind access;
    int visits;
    const char* paper_onload;
    const char* paper_speedindex;
  };
  const Row rows[] = {
      {"starlink", measure::AccessKind::kStarlink, args.scaled(40), "2.12 (1.60-2.78)", "1.82"},
      {"satcom", measure::AccessKind::kSatCom, args.scaled(25), "10.91 (8.36-13.59)", "8.19"},
      {"wired", measure::AccessKind::kWired, args.scaled(40), "1.24", "1.0"},
  };

  stats::TextTable onload{{"access", "p10", "p25", "median", "p75", "p90", "paper median"}};
  stats::TextTable speedindex{{"access", "p10", "p25", "median", "p75", "p90", "paper median"}};
  std::vector<measure::WebCampaign::Result> results;

  for (const Row& row : rows) {
    measure::WebCampaign::Config config;
    config.seed = args.seed;
    config.access = row.access;
    config.visits = row.visits;
    config.fleet = fleet_config;
    const auto result = bench::run_sweep<measure::WebCampaign>(args, config);
    results.push_back(result);
    using stats::TextTable;
    auto table_row = [&](const stats::Samples& s, const char* paper) {
      return std::vector<std::string>{row.name,
                                      TextTable::num(s.percentile(10), 2),
                                      TextTable::num(s.percentile(25), 2),
                                      TextTable::num(s.median(), 2),
                                      TextTable::num(s.percentile(75), 2),
                                      TextTable::num(s.percentile(90), 2),
                                      paper};
    };
    onload.add_row(table_row(result.onload_s, row.paper_onload));
    speedindex.add_row(table_row(result.speedindex_s, row.paper_speedindex));
  }

  std::printf("(a) onLoad, seconds:\n%s", onload.str().c_str());
  std::printf("\n(b) SpeedIndex, seconds:\n%s", speedindex.str().c_str());

  std::printf("\nconnection setup (TCP+TLS) and pooling:\n");
  const char* setup_paper[] = {"167 ms", "2030 ms", "(fast)"};
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("  %-9s mean setup %s, mean connections/visit %.1f (paper: ~15), "
                "visits %d (timeouts %d)\n",
                rows[i].name,
                bench::vs(results[i].setup_ms.mean(), setup_paper[i], 0).c_str(),
                results[i].mean_connections, results[i].visits_completed,
                results[i].visits_timed_out);
  }
  std::printf("\nPaper take-away: Starlink is 75-80%% faster than SatCom on "
              "QoE metrics and close to wired.\n");

  obs::Snapshot all_obs;
  for (const auto& result : results) obs::merge(all_obs, result.obs);
  bench::write_obs(args, all_obs);
  return 0;
}
