// §3.5 — middleboxes and traffic discrimination.
//
// Paper findings to reproduce: traceroute over Starlink reveals two NAT
// levels (192.168.1.1, then 100.64.0.1); Tracebox finds no PEP — the TCP
// handshake completes in the destination network and only checksums are
// altered; ten Wehe runs find no traffic differentiation. The SatCom run
// (the technology PEPs were built for) is included as the positive control.
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"

namespace {

void print_audit(const char* name, const slp::measure::MiddleboxAudit::Result& result) {
  std::printf("--- %s ---\n", name);
  std::printf("traceroute:\n");
  for (const auto& hop : result.traceroute) {
    std::printf("  %2d  %-16s %7.1f ms%s\n", hop.ttl,
                hop.reporter == 0 ? "*" : slp::sim::addr_to_string(hop.reporter).c_str(),
                hop.rtt.to_millis(), hop.reached_destination ? "  <- destination" : "");
  }
  std::printf("tracebox: destination at %d hops, handshake answered at TTL %d -> %s\n",
              result.tracebox.destination_distance, result.tracebox.handshake_ttl,
              result.tracebox.pep_detected ? "PEP DETECTED" : "no PEP");
  std::printf("  modified fields:");
  if (result.tracebox.all_modified_fields.empty()) std::printf(" (none)");
  for (const auto& field : result.tracebox.all_modified_fields) {
    std::printf(" %s", field.c_str());
  }
  std::printf("\n");
  std::printf("wehe: original %.2f Mbit/s vs randomized %.2f Mbit/s -> %s\n\n",
              result.wehe.mean_original_mbps, result.wehe.mean_randomized_mbps,
              result.wehe.differentiation_detected ? "DIFFERENTIATION DETECTED"
                                                   : "no differentiation");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("§3.5", "middleboxes (traceroute, Tracebox) and TD (Wehe)");

  obs::Snapshot all_obs;
  {
    measure::MiddleboxAudit::Config config;
    config.seed = args.seed;
    config.access = measure::AccessKind::kStarlink;
    config.obs = args.obs();
    const auto result = measure::MiddleboxAudit::run(config);
    obs::merge(all_obs, result.obs);
    print_audit("Starlink (paper: 2 NATs, checksums only, no PEP, no TD)", result);
  }
  {
    measure::MiddleboxAudit::Config config;
    config.seed = args.seed + 1;
    config.access = measure::AccessKind::kSatCom;
    config.obs = args.obs();
    const auto result = measure::MiddleboxAudit::run(config);
    obs::merge(all_obs, result.obs);
    print_audit("SatCom control (PEPs are the norm on GEO links)", result);
  }
  bench::write_obs(args, all_obs);
  return 0;
}
