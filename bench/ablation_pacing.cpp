// Ablation — quiche's missing pacing (§3.1).
//
// The paper attributes the messages-upload RTT inflation to quiche not
// pacing: "The largest messages (25 kB) are thus stacked in the network's
// buffers making the RTT increase lightly." This bench re-runs the upload
// messages workload with pacing off (quiche ba87786) and on, and shows the
// RTT tail contracting.
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("Ablation: pacing", "messages-upload RTT with and without QUIC pacing");

  stats::TextTable table{
      {"configuration", "median", "p95", "p99", "msg latency p99", "paper"}};
  obs::Snapshot all_obs;
  for (const bool pacing : {false, true}) {
    measure::MessageCampaign::Config config;
    config.seed = args.seed;
    config.upload = true;
    config.sessions = args.scaled(4);
    config.pacing = pacing;
    const auto result = bench::run_sweep<measure::MessageCampaign>(args, config);
    obs::merge(all_obs, result.obs);
    using stats::TextTable;
    table.add_row({pacing ? "pacing on" : "pacing off (quiche)",
                   TextTable::num(result.rtt_ms.median(), 0),
                   TextTable::num(result.rtt_ms.percentile(95), 0),
                   TextTable::num(result.rtt_ms.percentile(99), 0),
                   TextTable::num(result.latency_ms.percentile(99), 0),
                   pacing ? "(counterfactual)" : "66 / 87 / 143"});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nReading: for this low-rate flow cwnd stays far above the BDP, so\n"
              "cwnd/srtt pacing still releases a 25 kB message near line rate — the\n"
              "upload inflation is dominated by the burst's own serialization, and\n"
              "pacing moves the tail only slightly. Consistent with the paper's\n"
              "modest effect (+16 ms on the median vs downloads).\n");
  bench::write_obs(args, all_obs);
  return 0;
}
