// Figure 4 — measured loss-burst-length distributions (CDFs), H3 vs messages.
//
// Shape targets: during H3 uploads most loss events are single packets;
// H3 downloads have >75% multi-packet events; messages events are rarer but
// longer when they happen (bursts of tens, occasionally >100 packets).
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"

namespace {

void print_cdf(const char* name, const slp::stats::IntHistogram& bursts) {
  std::printf("%s (events: %llu)\n", name,
              static_cast<unsigned long long>(bursts.total()));
  if (bursts.total() == 0) return;
  std::printf("  burst length : ");
  for (const std::uint64_t len : {1, 2, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21}) {
    std::printf("%6llu", static_cast<unsigned long long>(len));
  }
  std::printf("\n  CDF          : ");
  for (const std::uint64_t len : {1, 2, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21}) {
    std::printf("%6.2f", bursts.cdf(len));
  }
  std::printf("\n  max burst    : %llu packets\n",
              static_cast<unsigned long long>(bursts.max_value()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  // --fleet=N puts simulated neighbour contention under all four transfers
  // (plus the continental/aggregation knobs, bench_common.hpp).
  const fleet::Fleet::Config fleet_config = bench::parse_fleet(flags);
  bench::warn_unused(flags);
  bench::banner("Figure 4", "loss burst length distributions (H3 vs messages)");

  measure::H3Campaign::Config h3_down_cfg;
  h3_down_cfg.seed = args.seed;
  h3_down_cfg.transfers = args.scaled(6);
  h3_down_cfg.fleet = fleet_config;
  const auto h3_down = bench::run_sweep<measure::H3Campaign>(args, h3_down_cfg);

  measure::H3Campaign::Config h3_up_cfg;
  h3_up_cfg.seed = args.seed + 1;
  h3_up_cfg.download = false;
  h3_up_cfg.transfers = args.scaled(3);
  h3_up_cfg.bytes = 40ull * 1000 * 1000;
  h3_up_cfg.fleet = fleet_config;
  const auto h3_up = bench::run_sweep<measure::H3Campaign>(args, h3_up_cfg);

  measure::MessageCampaign::Config msg_down_cfg;
  msg_down_cfg.seed = args.seed + 2;
  msg_down_cfg.upload = false;
  msg_down_cfg.sessions = args.scaled(6);
  msg_down_cfg.fleet = fleet_config;
  const auto msg_down = bench::run_sweep<measure::MessageCampaign>(args, msg_down_cfg);

  measure::MessageCampaign::Config msg_up_cfg;
  msg_up_cfg.seed = args.seed + 3;
  msg_up_cfg.upload = true;
  msg_up_cfg.sessions = args.scaled(6);
  msg_up_cfg.fleet = fleet_config;
  const auto msg_up = bench::run_sweep<measure::MessageCampaign>(args, msg_up_cfg);

  std::printf("(a) H3 transfers — paper: uploads mostly single-packet events; "
              ">75%% of download events span several packets\n");
  print_cdf("H3 download", h3_down.loss.burst_lengths);
  print_cdf("H3 upload", h3_up.loss.burst_lengths);

  std::printf("\n(b) messaging transfers — paper: rarer events, longer bursts, "
              "occasionally >100 packets\n");
  print_cdf("messages download", msg_down.loss.burst_lengths);
  print_cdf("messages upload", msg_up.loss.burst_lengths);

  obs::Snapshot all_obs;
  obs::merge(all_obs, h3_down.obs);
  obs::merge(all_obs, h3_up.obs);
  obs::merge(all_obs, msg_down.obs);
  obs::merge(all_obs, msg_up.obs);
  bench::write_obs(args, all_obs);
  return 0;
}
