// Figure 3 + §3.1 "Latency under load" — RTT of every acknowledged packet
// during H3 bulk transfers, and during the low-rate messages workload.
//
// Paper reference points (median / p95 / p99, ms):
//   H3 download: 95 / 175 / 210        H3 upload: 104 / 237 / 310
//   messages dl: 50 /  71 /  87        messages ul: 66 /  87 / 143
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"

namespace {

void print_row(slp::stats::TextTable& table, const std::string& name,
               const slp::stats::Samples& rtt_ms, const std::string& paper) {
  using slp::stats::TextTable;
  if (rtt_ms.empty()) {
    table.add_row({name, "-", "-", "-", "-", paper});
    return;
  }
  table.add_row({name, std::to_string(rtt_ms.size()), TextTable::num(rtt_ms.median(), 0),
                 TextTable::num(rtt_ms.percentile(95), 0),
                 TextTable::num(rtt_ms.percentile(99), 0), paper});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  // --fleet=N replaces the synthetic shared-cell load under the H3 transfers
  // with N simulated terminals contending for real per-cell capacity
  // (src/fleet/); 0 keeps the paper-calibrated LoadProcess.
  const int fleet_size = static_cast<int>(flags.get_int("fleet", 0));
  bench::warn_unused(flags);
  bench::banner("Figure 3 / §3.1", "RTT under load: H3 bulk and messages, both directions");
  if (fleet_size > 0) {
    std::printf("shared-cell load: real contention from a %d-terminal fleet\n", fleet_size);
  }

  stats::TextTable table{{"workload", "samples", "median", "p95", "p99", "paper med/p95/p99"}};
  obs::Snapshot all_obs;

  {
    measure::H3Campaign::Config config;
    config.seed = args.seed;
    config.download = true;
    config.transfers = args.scaled(6);
    config.fleet.size = fleet_size;
    const auto down = bench::run_sweep<measure::H3Campaign>(args, config);
    obs::merge(all_obs, down.obs);
    print_row(table, "H3 download", down.rtt_ms, "95 / 175 / 210");
  }
  {
    measure::H3Campaign::Config config;
    config.seed = args.seed + 1;
    config.download = false;
    config.transfers = args.scaled(3);
    config.fleet.size = fleet_size;
    config.bytes = 40ull * 1000 * 1000;  // uploads at ~17 Mbit/s take a while
    const auto up = bench::run_sweep<measure::H3Campaign>(args, config);
    obs::merge(all_obs, up.obs);
    print_row(table, "H3 upload", up.rtt_ms, "104 / 237 / 310");
  }
  {
    measure::MessageCampaign::Config config;
    config.seed = args.seed + 2;
    config.upload = false;
    config.sessions = args.scaled(4);
    const auto down = bench::run_sweep<measure::MessageCampaign>(args, config);
    obs::merge(all_obs, down.obs);
    print_row(table, "messages download", down.rtt_ms, "50 / 71 / 87");
  }
  {
    measure::MessageCampaign::Config config;
    config.seed = args.seed + 3;
    config.upload = true;
    config.sessions = args.scaled(4);
    const auto up = bench::run_sweep<measure::MessageCampaign>(args, config);
    obs::merge(all_obs, up.obs);
    print_row(table, "messages upload", up.rtt_ms, "66 / 87 / 143");
  }

  std::printf("%s", table.str().c_str());
  std::printf("\nPaper take-aways to check: uploads inflate more than downloads "
              "(asymmetric draining); messages stay mostly under 100 ms, with the "
              "upload tail driven by quiche's missing pacing (25 kB bursts).\n");
  bench::write_obs(args, all_obs);
  return 0;
}
