// Ablation — parallel connections (§3.3).
//
// The paper's explanation for the Ookla-vs-H3 download gap: "regular
// speedtests use at least four concurrent TCP connections while the QUIC
// download uses one single connection, reacting more strongly to losses."
// This bench sweeps the connection count of the TCP speedtest on Starlink.
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("Ablation: parallel connections",
                "Starlink download throughput vs TCP connection count");

  stats::TextTable table{{"connections", "p25", "median", "p75", "note"}};
  obs::Snapshot all_obs;
  for (const int connections : {1, 2, 4, 8, 16}) {
    measure::SpeedtestCampaign::Config config;
    config.seed = args.seed;
    config.access = measure::AccessKind::kStarlink;
    config.tests = args.scaled(8);
    config.connections = connections;
    const auto result = bench::run_sweep<measure::SpeedtestCampaign>(args, config);
    obs::merge(all_obs, result.obs);
    using stats::TextTable;
    table.add_row({std::to_string(connections),
                   TextTable::num(result.mbps.percentile(25), 0),
                   TextTable::num(result.mbps.median(), 0),
                   TextTable::num(result.mbps.percentile(75), 0),
                   connections == 1 ? "single flow, like the H3 transfers"
                   : connections == 8 ? "Ookla-class (paper median 178)"
                                      : ""});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nExpected shape: throughput grows with the pool and saturates; "
              "the 1-connection row sits noticeably below, explaining the H3 gap.\n");
  bench::write_obs(args, all_obs);
  return 0;
}
