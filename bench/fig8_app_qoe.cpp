// Figure 8 (application-QoE extension) — ABR video, videoconferencing, and
// game traffic as first-class workloads on the Starlink access.
//
// The paper measures the network primitives (RTT, loss, throughput); the
// follow-up literature ("A Multifaceted Look at Starlink Performance")
// measures what those primitives do to real applications. This regenerator
// closes that loop on the simulated testbed: per-application QoE
// distributions plus the *slot-phase* view — every impairment keyed by
// second-of-slot within the 15 s handover grid — so the headline finding
// (rebuffer events, MOS dips, and lag spikes cluster at the slot boundary)
// is a one-glance check.
//
// Unless --scenario overrides it, every app runs twice: once under clear
// sky and once under a built-in "handover storm" (a scenario::maintenance
// timeline: one forced reconfiguration blip per 15 s slot — the severe end
// of the handover-rate axis). The storm run is where the boundary
// clustering becomes unmistakable; the clear-sky run shows the baseline
// penalty-step signature.
//
// Flags beyond the common set (bench_common.hpp):
//   --app=NAME        abr | vc | game | all (default all)
//   --sessions=N      watch sessions / calls / matches per campaign
//   --duration=DUR    per-session content length (watch / call / match)
//   --storm-blip=DUR  storm gate closure per 15 s slot (default 2s; 0
//                     skips the storm runs)
//   --fleet=N         simulated neighbour terminals (load under the QoE)
//   --fleet-mix=NAME  neighbour traffic mix (default|streaming|realtime|mixed)
//   plus --scenario=PATH for the rain/outage ablations (EXPERIMENTS.md).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "measure/qoe_campaign.hpp"
#include "mobility/routes.hpp"

namespace {

using namespace slp;

/// One variant of a campaign run: its label and the timeline under it.
struct Variant {
  std::string label;
  std::shared_ptr<const scenario::Scenario> scenario;
};

/// The variants an app runs: the user's --scenario if given, otherwise
/// clear sky plus the built-in handover storm over `horizon`.
std::vector<Variant> variants(const bench::CommonArgs& args, Duration horizon,
                              Duration storm_blip) {
  if (args.scenario != nullptr) return {{"--scenario " + args.scenario->name, args.scenario}};
  std::vector<Variant> v{{"clear sky", nullptr}};
  if (storm_blip > Duration::zero()) {
    // Blips start one slot in so connection handshakes complete cleanly;
    // every blip lands on the 15 s grid (slot phase 0).
    auto storm = std::make_shared<scenario::Scenario>();
    storm->name = "handover-storm";
    storm->maintenance(TimePoint::epoch() + Duration::seconds(15),
                       TimePoint::epoch() + horizon, Duration::seconds(15), storm_blip);
    storm->validate();
    v.push_back({"handover storm", std::move(storm)});
  }
  return v;
}

/// Aggregated phase histogram: event counts (or MOS means) for each second
/// of the 15 s handover slot, boundary phases marked.
void report_phases(const char* what, const stats::KeyedSamples& by_phase, bool mos) {
  if (by_phase.empty()) {
    std::printf("%s by slot phase: none recorded\n", what);
    return;
  }
  std::printf("%s by second-of-slot (15 s handover grid, * = slot boundary):\n", what);
  for (std::uint64_t phase = 0; phase < 15; ++phase) {
    const auto it = by_phase.groups().find(phase);
    const char* mark = (phase == 0 || phase == 14) ? "*" : " ";
    if (it == by_phase.groups().end()) {
      std::printf("  %s%2llu s: -\n", mark, static_cast<unsigned long long>(phase));
    } else if (mos) {
      std::printf("  %s%2llu s: mean MOS %.2f (%llu windows)\n", mark,
                  static_cast<unsigned long long>(phase), it->second.summary.mean(),
                  static_cast<unsigned long long>(it->second.summary.count()));
    } else {
      std::printf("  %s%2llu s: %llu events\n", mark,
                  static_cast<unsigned long long>(phase),
                  static_cast<unsigned long long>(it->second.summary.count()));
    }
  }
}

/// Share of events landing in the boundary window — phase 14 through phase
/// `lag` — vs the uniform expectation ((lag + 2) / 15): >1 = clustering at
/// the handover seam. `lag` extends the window for impairments that trail
/// the boundary mechanically (a rebuffer onset lags the stall by the buffer
/// depth; a spike or MOS dip is immediate, lag 1).
double boundary_ratio(const stats::KeyedSamples& by_phase, std::uint64_t lag) {
  std::uint64_t boundary = 0;
  std::uint64_t total = 0;
  for (const auto& [phase, group] : by_phase.groups()) {
    total += group.summary.count();
    if (phase <= lag || phase == 14) boundary += group.summary.count();
  }
  if (total == 0) return 0.0;
  return (static_cast<double>(boundary) / static_cast<double>(total)) /
         (static_cast<double>(lag + 2) / 15.0);
}

void run_abr(const bench::CommonArgs& args, const fleet::Fleet::Config& fleet,
             int sessions, Duration duration, Duration storm_blip, obs::Snapshot& all_obs) {
  measure::AbrCampaign::Config config;
  config.seed = args.seed;
  config.sessions = sessions;
  if (duration > Duration::zero()) config.session.watch = duration;
  // Live-edge ladder: short segments and a shallow buffer — the
  // latency-sensitive end of ABR, where handover stalls can outrun the
  // buffer. (A deep VOD buffer simply absorbs 15 s-grid blips: also a
  // paper-family finding, but invisible on a phase plot.)
  config.session.segment = Duration::seconds(2);
  config.session.startup_buffer_s = 2.0;
  config.session.resume_buffer_s = 2.0;
  config.session.max_buffer_s = 2.0;
  // Scale the BBA thresholds to the live buffer (the VOD defaults would pin
  // the ladder to the bottom rung: reservoir 8 s > the whole buffer).
  config.session.ladder.reservoir_s = 0.5;
  config.session.ladder.cushion_s = 3.0;
  config.fleet = fleet;
  const Duration horizon =
      (config.session.watch * 2.0 + config.gap) * static_cast<double>(sessions) +
      Duration::seconds(30);

  std::printf("\n=== ABR video: %d sessions x %.0f s (live-edge: %.0f s segments, "
              "%.0f s buffer) ===\n",
              sessions, config.session.watch.to_seconds(),
              config.session.segment.to_seconds(), config.session.max_buffer_s);
  for (const Variant& variant : variants(args, horizon, storm_blip)) {
    measure::AbrCampaign::Config cfg = config;
    cfg.obs = args.obs();
    cfg.scenario = variant.scenario;
    cfg.fast_forward = args.fast_forward;
    const auto r = runner::run_merged<measure::AbrCampaign>(args.sweep(), cfg);
    obs::merge(all_obs, r.obs);

    std::printf("\n--- %s ---\n", variant.label.c_str());
    stats::TextTable table{{"metric", "min", "p5", "p25", "median", "p75", "p95", "paper"}};
    table.add_row(bench::boxplot_row("startup delay s", r.startup_s, "~1-3"));
    table.add_row(bench::boxplot_row("rebuffer ratio", r.rebuffer_ratio, "<0.03 clear"));
    table.add_row(bench::boxplot_row("bitrate Mbps", r.mean_rung_mbps, "ladder-top"));
    table.add_row(bench::boxplot_row("segment tput Mbps", r.segment_mbps, "-"));
    std::printf("%s", table.str().c_str());
    std::printf("rebuffers: %llu | quality switches: %llu | segments: %llu\n",
                static_cast<unsigned long long>(r.rebuffer_events),
                static_cast<unsigned long long>(r.quality_switches),
                static_cast<unsigned long long>(r.segments));
    report_phases("rebuffer onsets", r.rebuffer_by_phase, /*mos=*/false);
    if (r.rebuffer_events > 0) {
      // Rebuffer onsets trail the boundary stall by up to buffer + blip
      // seconds (the stall begins at the boundary; the buffer takes that
      // long to drain), so the clustering window extends accordingly.
      const auto lag = static_cast<std::uint64_t>(
          config.session.max_buffer_s + storm_blip.to_seconds() + 0.999);
      std::printf("boundary clustering: %.1fx uniform within %llu s of the "
                  "boundary (>1 = stalls follow the handover seam)\n",
                  boundary_ratio(r.rebuffer_by_phase, lag),
                  static_cast<unsigned long long>(lag));
    }
  }
}

void run_vc(const bench::CommonArgs& args, const fleet::Fleet::Config& fleet,
            int calls, Duration duration, Duration storm_blip, obs::Snapshot& all_obs) {
  measure::VcCampaign::Config config;
  config.seed = args.seed;
  config.calls = calls;
  if (duration > Duration::zero()) config.session.duration = duration;
  config.fleet = fleet;
  const Duration horizon =
      (config.session.duration + config.gap) * static_cast<double>(calls) +
      Duration::seconds(30);

  std::printf("\n=== videoconference: %d calls x %.0f s ===\n", calls,
              config.session.duration.to_seconds());
  for (const Variant& variant : variants(args, horizon, storm_blip)) {
    measure::VcCampaign::Config cfg = config;
    cfg.obs = args.obs();
    cfg.scenario = variant.scenario;
    cfg.fast_forward = args.fast_forward;
    const auto r = runner::run_merged<measure::VcCampaign>(args.sweep(), cfg);
    obs::merge(all_obs, r.obs);

    std::printf("\n--- %s ---\n", variant.label.c_str());
    stats::TextTable table{{"metric", "min", "p5", "p25", "median", "p75", "p95", "paper"}};
    table.add_row(bench::boxplot_row("window MOS", r.mos, ">4 mostly"));
    table.add_row(bench::boxplot_row("window loss %", r.window_loss_pct, "0 mostly"));
    table.add_row(bench::boxplot_row("frame transit ms", r.transit_ms, "~30-60"));
    std::printf("%s", table.str().c_str());
    const double miss_pct = r.frames_sent > 0
                                ? 100.0 * static_cast<double>(r.frames_missed) /
                                      static_cast<double>(r.frames_sent)
                                : 0.0;
    std::printf("frames: %llu sent, %llu missed deadline (%.2f%%) | "
                "datagrams lost: %llu (never retransmitted)\n",
                static_cast<unsigned long long>(r.frames_sent),
                static_cast<unsigned long long>(r.frames_missed), miss_pct,
                static_cast<unsigned long long>(r.datagrams_lost));
    report_phases("window MOS", r.mos_by_phase, /*mos=*/true);
  }
}

void run_game(const bench::CommonArgs& args, const fleet::Fleet::Config& fleet,
              int matches, Duration duration, Duration storm_blip,
              obs::Snapshot& all_obs) {
  measure::GameCampaign::Config config;
  config.seed = args.seed;
  config.matches = matches;
  if (duration > Duration::zero()) config.session.duration = duration;
  // Competitive bound: RTT above ~p99 of the clear-sky distribution is felt
  // as lag no matter how gradually it arrived. This is the rule the slot
  // penalty couples to (the median-relative rule cancels constant
  // within-slot offsets by construction).
  config.session.detector.abs_ms = 60.0;
  config.fleet = fleet;
  const Duration horizon =
      (config.session.duration + config.gap) * static_cast<double>(matches) +
      Duration::seconds(30);

  std::printf("\n=== game traffic: %d matches x %.0f s ===\n", matches,
              config.session.duration.to_seconds());
  std::vector<Variant> vars = variants(args, horizon, storm_blip);
  if (args.scenario == nullptr) {
    // In-motion run: the highway route's tunnels and urban canyon produce
    // genuinely unconnected slots, so stalled ticks resolve (late) with
    // multi-second handover_stall in their provenance — the strongest form
    // of the spike/stall correlation.
    auto motion = std::make_shared<scenario::Scenario>();
    motion->name = "in-motion";
    // Time-compress the route so the whole drive — canyon, tree lines, both
    // tunnels — fits inside this campaign's horizon.
    double speed = 1.0;
    if (const auto route = mobility::routes::lookup("highway")) {
      speed = std::max(1.0, route->trajectory.total_duration().to_seconds() /
                                horizon.to_seconds());
    }
    motion->move(TimePoint::epoch(), TimePoint::epoch() + horizon, "highway", speed);
    motion->validate();
    vars.push_back({"in motion (highway route)", std::move(motion)});
  }
  for (const Variant& variant : vars) {
    measure::GameCampaign::Config cfg = config;
    cfg.obs = args.obs();
    // The stall correlation needs per-packet provenance regardless of the
    // export flags (cheap at game-tick rates).
    cfg.obs.provenance = true;
    cfg.scenario = variant.scenario;
    cfg.fast_forward = args.fast_forward;
    const auto r = runner::run_merged<measure::GameCampaign>(args.sweep(), cfg);
    obs::merge(all_obs, r.obs);

    std::printf("\n--- %s ---\n", variant.label.c_str());
    stats::TextTable table{{"metric", "min", "p5", "p25", "median", "p75", "p95", "paper"}};
    table.add_row(bench::boxplot_row("tick RTT ms", r.rtt_ms, "~40 median"));
    table.add_row(bench::boxplot_row("spike stall ms", r.spike_stall_ms, "-"));
    std::printf("%s", table.str().c_str());
    const double spike_pct = r.ticks_sent > 0
                                 ? 100.0 * static_cast<double>(r.spikes) /
                                       static_cast<double>(r.ticks_sent)
                                 : 0.0;
    std::printf("ticks: %llu sent, %llu lost | lag spikes: %llu (%.2f%% of ticks), "
                "%llu with handover stall in their provenance\n",
                static_cast<unsigned long long>(r.ticks_sent),
                static_cast<unsigned long long>(r.ticks_lost),
                static_cast<unsigned long long>(r.spikes), spike_pct,
                static_cast<unsigned long long>(r.spikes_with_stall));
    report_phases("lag spikes", r.spikes_by_phase, /*mos=*/false);
    if (r.spikes > 0) {
      std::printf("boundary clustering: %.1fx uniform\n",
                  boundary_ratio(r.spikes_by_phase, 1));
    }
    if (r.ticks_high_stall > 0 && r.ticks_low_stall > 0) {
      const double high = 100.0 * static_cast<double>(r.spikes_high_stall) /
                          static_cast<double>(r.ticks_high_stall);
      const double low = 100.0 * static_cast<double>(r.spikes_low_stall) /
                         static_cast<double>(r.ticks_low_stall);
      std::printf("stall correlation: spike rate %.2f%% in high-stall slots "
                  "(handover_stall >= %.0f ms, %llu ticks) vs %.2f%% in "
                  "low-stall slots (<= %.0f ms, %llu ticks)\n",
                  high, measure::GameCampaign::kStallHighMs,
                  static_cast<unsigned long long>(r.ticks_high_stall), low,
                  measure::GameCampaign::kStallLowMs,
                  static_cast<unsigned long long>(r.ticks_low_stall));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  const std::string app = flags.get("app", "all");
  const int sessions = static_cast<int>(flags.get_int("sessions", args.scaled(2)));
  const Duration duration = flags.get_duration("duration", Duration::zero());
  const Duration storm_blip = flags.get_duration("storm-blip", Duration::seconds(2));
  const fleet::Fleet::Config fleet = bench::parse_fleet(flags);
  bench::warn_unused(flags);

  if (app != "all" && app != "abr" && app != "vc" && app != "game") {
    std::fprintf(stderr, "error: --app=%s (known: abr vc game all)\n", app.c_str());
    return 2;
  }

  bench::banner("Figure 8 (extension)",
                "application QoE: ABR video, videoconferencing, game traffic");

  obs::Snapshot all_obs;
  if (app == "all" || app == "abr") {
    run_abr(args, fleet, sessions, duration, storm_blip, all_obs);
  }
  if (app == "all" || app == "vc") {
    run_vc(args, fleet, sessions, duration, storm_blip, all_obs);
  }
  if (app == "all" || app == "game") {
    run_game(args, fleet, sessions, duration, storm_blip, all_obs);
  }

  std::printf("\nShape to check: QoE impairments are not uniform in time. Under "
              "the handover storm they snap to the 15 s grid — rebuffer onsets "
              "trail the boundary by the buffer depth, MOS dips and lag spikes "
              "land at phases 14/0/1. In motion, tunnel segments drive "
              "loss-spike bursts off the handover grid, while the spike *rate* "
              "still tracks the per-slot handover_stall penalty (high- vs "
              "low-stall buckets). Clear sky is the control: rare, "
              "near-uniform jitter spikes.\n");
  bench::write_obs(args, all_obs);
  return 0;
}
