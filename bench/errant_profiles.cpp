// ERRANT artifact — the paper's released emulator model (§1, §4).
//
// Fits a Starlink profile from a (compressed) campaign of this simulator,
// prints it next to the reference profiles the paper's artifact bundles
// (3G/4G from MONROE, GEO SatCom, wired), and emits the netem command lines
// a user would install.
#include <cstdio>

#include "bench_common.hpp"
#include "emu/errant.hpp"
#include "measure/campaign.hpp"
#include "stats/moods_test.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("ERRANT artifact", "data-driven emulation profiles + netem export");

  // Gather Starlink samples: throughput from speedtests, RTT from pings.
  measure::SpeedtestCampaign::Config down_cfg;
  down_cfg.seed = args.seed;
  down_cfg.tests = args.scaled(8);
  down_cfg.obs = args.obs();
  const auto down = measure::SpeedtestCampaign::run(down_cfg);

  measure::SpeedtestCampaign::Config up_cfg;
  up_cfg.seed = args.seed + 1;
  up_cfg.tests = args.scaled(8);
  up_cfg.download = false;
  up_cfg.obs = args.obs();
  const auto up = measure::SpeedtestCampaign::run(up_cfg);

  measure::PingCampaign::Config ping_cfg;
  ping_cfg.seed = args.seed + 2;
  ping_cfg.duration = Duration::hours(6);
  ping_cfg.epochs = false;
  ping_cfg.obs = args.obs();
  const auto pings = measure::PingCampaign::run(ping_cfg);
  stats::Samples eu_rtts;
  for (const auto& anchor : pings.anchors) {
    if (anchor.european) eu_rtts.add_all(anchor.rtt_ms.values());
  }

  measure::MessageCampaign::Config msg_cfg;
  msg_cfg.seed = args.seed + 3;
  msg_cfg.sessions = 2;
  msg_cfg.obs = args.obs();
  const auto messages = measure::MessageCampaign::run(msg_cfg);

  const emu::ErrantProfile starlink = emu::ErrantProfile::fit(
      "starlink", down.mbps, up.mbps, eu_rtts, messages.loss.loss_ratio);

  std::printf("fitted profile:\n  %s\n", starlink.describe().c_str());
  std::printf("  (paper-era expectations: down ~178, up ~17 Mbit/s, RTT ~50 ms, "
              "loss ~0.4%%)\n\n");

  std::printf("reference profiles bundled with the artifact:\n");
  for (const auto& profile : {emu::profile_4g_good(), emu::profile_3g(),
                              emu::profile_geo_satcom(), emu::profile_wired()}) {
    std::printf("  %s\n", profile.describe().c_str());
  }

  std::printf("\nnetem export of the fitted Starlink profile (median draw):\n");
  for (const auto& cmd : starlink.median().netem_commands()) {
    std::printf("  %s\n", cmd.c_str());
  }

  // Validation: samples drawn from the fitted profile should be
  // statistically indistinguishable from the campaign measurements (KS).
  {
    Rng vrng{args.seed + 99};
    std::vector<double> fitted_draws;
    for (std::size_t i = 0; i < down.mbps.size() * 50; ++i) {
      fitted_draws.push_back(starlink.sample(vrng).rate_down.to_mbps());
    }
    const auto ks = stats::ks_two_sample(down.mbps.values(), fitted_draws);
    std::printf("\nfit validation (downlink): KS D=%.3f p=%.3f -> %s\n", ks.d, ks.p_value,
                ks.p_value > 0.05 ? "fitted profile matches the campaign samples"
                                  : "distributions differ (small campaign sample)");
  }

  Rng rng{args.seed};
  std::printf("\nthree sampled emulation instances:\n");
  for (int i = 0; i < 3; ++i) {
    const auto params = starlink.sample(rng);
    std::printf("  #%d: down %.0f Mbit/s, up %.1f Mbit/s, one-way %.1f ms, "
                "jitter %.1f ms, loss %.2f%%\n",
                i + 1, params.rate_down.to_mbps(), params.rate_up.to_mbps(),
                params.delay_one_way.to_millis(), params.jitter.to_millis(),
                params.loss_ratio * 100.0);
  }

  obs::Snapshot all_obs;
  obs::merge(all_obs, down.obs);
  obs::merge(all_obs, up.obs);
  obs::merge(all_obs, pings.obs);
  obs::merge(all_obs, messages.obs);
  bench::write_obs(args, all_obs);
  return 0;
}
