// Table 2 — QUIC packet loss ratios, plus §3.2's loss-event durations.
//
// Paper: H3 down 1.56%, H3 up 1.96%, messages down 0.40%, messages up 0.45%.
// Durations (H3 downloads): 244,008 events; median 49 us, p75 58 us,
// p90 113 us, p95 1.5 ms, p99 7.5 ms; messages: p95 104 ms, p99 127 ms;
// both contain occasional >1 s events (connectivity gaps).
#include <cstdio>

#include "bench_common.hpp"
#include "measure/campaign.hpp"

namespace {

void duration_rows(const char* name, const slp::measure::LossAnalyzer::Report& report,
                   const char* paper) {
  const auto& d = report.event_durations_ms;
  if (d.empty()) {
    std::printf("  %s: no loss events captured\n", name);
    return;
  }
  std::printf("  %-18s events=%llu median=%.3fms p75=%.3fms p90=%.3fms p95=%.1fms "
              "p99=%.1fms outages(>1s)=%llu\n",
              name, static_cast<unsigned long long>(report.loss_events), d.median(),
              d.percentile(75), d.percentile(90), d.percentile(95), d.percentile(99),
              static_cast<unsigned long long>(report.outage_events));
  std::printf("  %-18s paper: %s\n", "", paper);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const auto args = bench::CommonArgs::parse(argc, argv);
  bench::banner("Table 2 / §3.2", "QUIC packet loss ratios and loss-event durations");

  measure::H3Campaign::Config h3_down_cfg;
  h3_down_cfg.seed = args.seed;
  h3_down_cfg.download = true;
  h3_down_cfg.transfers = args.scaled(6);
  const auto h3_down = bench::run_sweep<measure::H3Campaign>(args, h3_down_cfg);

  measure::H3Campaign::Config h3_up_cfg;
  h3_up_cfg.seed = args.seed + 1;
  h3_up_cfg.download = false;
  h3_up_cfg.transfers = args.scaled(3);
  h3_up_cfg.bytes = 40ull * 1000 * 1000;
  const auto h3_up = bench::run_sweep<measure::H3Campaign>(args, h3_up_cfg);

  measure::MessageCampaign::Config msg_down_cfg;
  msg_down_cfg.seed = args.seed + 2;
  msg_down_cfg.upload = false;
  msg_down_cfg.sessions = args.scaled(5);
  const auto msg_down = bench::run_sweep<measure::MessageCampaign>(args, msg_down_cfg);

  measure::MessageCampaign::Config msg_up_cfg;
  msg_up_cfg.seed = args.seed + 3;
  msg_up_cfg.upload = true;
  msg_up_cfg.sessions = args.scaled(5);
  const auto msg_up = bench::run_sweep<measure::MessageCampaign>(args, msg_up_cfg);

  using stats::TextTable;
  stats::TextTable table{{"", "H3 down", "H3 up", "messages down", "messages up"}};
  table.add_row({"measured", TextTable::pct(h3_down.loss.loss_ratio),
                 TextTable::pct(h3_up.loss.loss_ratio),
                 TextTable::pct(msg_down.loss.loss_ratio),
                 TextTable::pct(msg_up.loss.loss_ratio)});
  table.add_row({"paper", "1.56%", "1.96%", "0.40%", "0.45%"});
  std::printf("%s", table.str().c_str());

  std::printf("\nloss-event durations:\n");
  duration_rows("H3 download", h3_down.loss,
                "median 49us, p75 58us, p90 113us, p95 1.5ms, p99 7.5ms, some >1s");
  duration_rows("messages download", msg_down.loss,
                "mostly <1ms, p95 104ms, p99 127ms, some >1s");

  std::printf("\nPaper take-away: loaded-link losses are frequent but short "
              "(congestion); unloaded losses are rare but long (medium).\n");

  obs::Snapshot all_obs;
  obs::merge(all_obs, h3_down.obs);
  obs::merge(all_obs, h3_up.obs);
  obs::merge(all_obs, msg_down.obs);
  obs::merge(all_obs, msg_up.obs);
  bench::write_obs(args, all_obs);
  return 0;
}
