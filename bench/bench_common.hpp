// bench_common.hpp — shared scaffolding for the table/figure regenerators.
//
// Every bench binary prints:
//   * a banner naming the paper asset it regenerates;
//   * the measured rows/series;
//   * the paper's published value next to each measured one, so shape
//     agreement is a one-glance check (EXPERIMENTS.md records the pairs).
//
// Common flags: --seed=N, --scale=F (scales campaign sizes; 1.0 = the
// defaults documented in DESIGN.md, larger = closer to paper scale),
// --seeds=N (independent seed replications per campaign, merged cell-id
// ordered) and --jobs=M (worker threads; results are identical for any M).
// --fast-forward=0 disables the analytic fast paths (link express
// serialization, transport scan skipping) and runs the packet-level
// reference; exports are identical either way.
//
// Observability flags (EXPERIMENTS.md "Metrics & tracing"):
//   --metrics=PATH          write the merged metrics JSON document
//   --trace=PATH            write a Chrome trace-event file (.jsonl => JSONL)
//   --sample-interval=DUR   sample gauges (queue depth, cwnd, ...) on a grid
//   --log-level=LEVEL       trace|debug|info|warn|error|off (default warn)
// The merged exports are byte-identical for any --jobs value.
//
// Latency-provenance flags (EXPERIMENTS.md "Latency provenance"):
//   --provenance=0|1        per-packet RTT component tagging (default 0)
//   --breakdown=PATH        write the merged per-flow/component breakdown JSON
//                           (implies --provenance=1)
//   --flight=PATH           write anomaly flight-recorder dumps (implies
//                           --provenance=1; empty document when nothing fired)
//   --profile=0|1           wall-clock subsystem profiling, reported to stderr
//                           as "wall-profile ..." lines (default 0)
//
// Scenario flags (EXPERIMENTS.md "Scenario runs"):
//   --scenario=PATH         replay an environment/fault timeline (scenario.hpp
//                           format; examples/scenarios/*.scn) onto every cell
//   --scenario-offset=DUR   shift the whole timeline later by DUR
// Durations accept unit suffixes: 90s, 15m, 2h (bare numbers = seconds).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "fleet/fleet.hpp"
#include "obs/recorder.hpp"
#include "runner/sweep.hpp"
#include "scenario/scenario.hpp"
#include "stats/quantiles.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

namespace slp::bench {

inline void banner(const std::string& asset, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", asset.c_str(), what.c_str());
  std::printf("  (reproduction of \"A First Look at Starlink Performance\", IMC'22)\n");
  std::printf("==============================================================\n");
}

/// "measured 46.2 (paper 46-52)" helper for prose lines.
inline std::string vs(double measured, const std::string& paper, int precision = 1) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.*f (paper: %s)", precision, measured, paper.c_str());
  return buf;
}

/// Renders one distribution as the boxplot row used across figures.
inline std::vector<std::string> boxplot_row(const std::string& name,
                                            const stats::Samples& samples,
                                            const std::string& paper_median) {
  if (samples.empty()) {
    return {name, "-", "-", "-", "-", "-", "-", paper_median};
  }
  const stats::BoxplotSummary box = boxplot(samples);
  using stats::TextTable;
  return {name,
          TextTable::num(box.min, 1),
          TextTable::num(box.p5, 1),
          TextTable::num(box.p25, 1),
          TextTable::num(box.median, 1),
          TextTable::num(box.p75, 1),
          TextTable::num(box.p95, 1),
          paper_median};
}

/// Typo guard: call after every flag has been read (Flags tracks used keys
/// lazily, so benches with extra flags read them first, then warn once).
inline void warn_unused(const Flags& flags) {
  for (const auto& key : flags.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());
  }
}

/// Shared fleet flags (EXPERIMENTS.md "Continental campaigns"):
///   --fleet=N             simulated neighbour terminals incl. the foreground
///                         (0 = synthetic cell load only, the default)
///   --continental=0|1     continental-Europe placement preset; also turns
///                         idle-cell aggregation on unless --aggregate says
///                         otherwise
///   --aggregate=0|1       analytic idle-cell aggregation (hot cells only)
///   --shards=K            arbiter epoch shards (1 = serial; output is
///                         byte-identical for every K)
///   --supercell-km=F      aggregation supercell edge, converted to a factor
///                         of the cell size (--supercell-factor=K sets it
///                         directly)
///   --fleet-cell-km=F     base cell size for the fleet grid
///   --fleet-mix=NAME      named traffic mix for the neighbour terminals:
///                         default | streaming | realtime | mixed
///                         (fleet::named_mix; "default" is byte-identical to
///                         the pre-mix behaviour)
inline fleet::Fleet::Config parse_fleet(const Flags& flags) {
  fleet::Fleet::Config fc;
  fc.size = static_cast<int>(flags.get_int("fleet", 0));
  const std::string mix = flags.get("fleet-mix", "default");
  try {
    fc.demand = fleet::named_mix(mix);
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "error: --fleet-mix=%s (known:", mix.c_str());
    for (const auto name : fleet::mix_names()) {
      std::fprintf(stderr, " %.*s", static_cast<int>(name.size()), name.data());
    }
    std::fprintf(stderr, ")\n");
    std::exit(2);
  }
  const bool continental = flags.get_bool("continental", false);
  if (continental) fc.placement = fleet::Placement::continental_europe();
  fc.placement.cell_km = flags.get_double("fleet-cell-km", fc.placement.cell_km);
  fc.aggregate_idle = flags.get_bool("aggregate", continental);
  fc.supercell_factor =
      static_cast<int>(flags.get_int("supercell-factor", fc.supercell_factor));
  const double supercell_km = flags.get_double("supercell-km", 0.0);
  if (supercell_km > 0.0) {
    fc.supercell_factor = std::max(
        1, static_cast<int>(supercell_km / std::max(1.0, fc.placement.cell_km) + 0.5));
  }
  fc.shards = std::max(0, static_cast<int>(flags.get_int("shards", 1)));
  return fc;
}

struct CommonArgs {
  std::uint64_t seed = 1;
  double scale = 1.0;
  int seeds = 1;  ///< seed replications per campaign (cells of the sweep)
  int jobs = 1;   ///< worker threads; 0 = hardware concurrency
  std::string metrics;          ///< --metrics=PATH; empty = metrics off
  std::string trace;            ///< --trace=PATH; empty = tracing off
  std::string breakdown;        ///< --breakdown=PATH; empty = no export
  std::string flight;           ///< --flight=PATH; empty = no export
  bool provenance = false;      ///< --provenance=1 or implied by the above
  bool profile = false;         ///< --profile=1 wall-clock subsystem sections
  Duration sample_interval = Duration::zero();  ///< zero = sampling off
  /// --scenario=PATH, already loaded/validated/offset; null = clear sky.
  std::shared_ptr<const scenario::Scenario> scenario;
  /// --fast-forward=0 runs the packet-level reference paths (same exports,
  /// several times slower; see EXPERIMENTS.md "Performance baseline").
  bool fast_forward = true;

  static CommonArgs parse(int argc, char** argv) {
    const Flags flags = Flags::parse(argc, argv);
    CommonArgs args = parse(flags);
    warn_unused(flags);
    return args;
  }

  /// Same, from an existing Flags set — for benches with extra flags, which
  /// read theirs afterwards and then call warn_unused themselves.
  static CommonArgs parse(const Flags& flags) {
    CommonArgs args;
    args.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    args.scale = flags.get_double("scale", 1.0);
    args.seeds = std::max(1, static_cast<int>(flags.get_int("seeds", 1)));
    args.jobs = std::max(0, static_cast<int>(flags.get_int("jobs", 1)));
    args.metrics = flags.get("metrics", "");
    args.trace = flags.get("trace", "");
    args.breakdown = flags.get("breakdown", "");
    args.flight = flags.get("flight", "");
    args.provenance = flags.get_bool("provenance", false) || !args.breakdown.empty() ||
                      !args.flight.empty();
    args.profile = flags.get_bool("profile", false);
    args.sample_interval =
        std::max(Duration::zero(), flags.get_duration("sample-interval", Duration::zero()));
    args.fast_forward = flags.get_bool("fast-forward", true);
    const std::string scenario_path = flags.get("scenario", "");
    const Duration scenario_offset = flags.get_duration("scenario-offset", Duration::zero());
    if (!scenario_path.empty()) {
      try {
        auto scn = scenario::Scenario::load(scenario_path);
        if (scenario_offset != Duration::zero()) scn.shift(scenario_offset);
        args.scenario = std::make_shared<const scenario::Scenario>(std::move(scn));
        std::printf("scenario: %s (%zu events) from %s\n", args.scenario->name.c_str(),
                    args.scenario->events.size(), scenario_path.c_str());
      } catch (const scenario::ScenarioError& e) {
        std::fprintf(stderr, "error: --scenario=%s: %s\n", scenario_path.c_str(), e.what());
        std::exit(2);
      }
    }
    Logger::instance().set_level(
        parse_log_level(flags.get("log-level", "warn"), LogLevel::kWarn));
    return args;
  }

  [[nodiscard]] int scaled(int base) const {
    return std::max(1, static_cast<int>(base * scale));
  }

  [[nodiscard]] runner::SweepConfig sweep() const { return {seeds, jobs}; }

  /// Per-cell observability options implied by the flags.
  [[nodiscard]] obs::Options obs() const {
    obs::Options opts;
    opts.metrics = !metrics.empty();
    opts.trace = !trace.empty();
    opts.provenance = provenance;
    opts.profile = profile;
    if (sample_interval > Duration::zero()) opts.sample_interval = sample_interval;
    return opts;
  }
};

inline void write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

/// Writes the --metrics/--trace outputs a bench collected. A snapshot taken
/// with obs off still yields a valid (mostly empty) document, so benches can
/// call this unconditionally.
inline void write_obs(const CommonArgs& args, const obs::Snapshot& snap) {
  if (!args.metrics.empty()) {
    write_text_file(args.metrics, obs::metrics_json(snap));
    std::printf("\nmetrics -> %s (%zu counters, %zu series, %llu cells)\n",
                args.metrics.c_str(), snap.counters.size(), snap.series.size(),
                static_cast<unsigned long long>(snap.cells));
  }
  if (!args.trace.empty()) {
    const bool jsonl = args.trace.size() >= 6 &&
                       args.trace.compare(args.trace.size() - 6, 6, ".jsonl") == 0;
    write_text_file(args.trace,
                    jsonl ? obs::trace_jsonl(snap.events) : obs::trace_json(snap.events));
    std::printf("trace   -> %s (%zu events)\n", args.trace.c_str(), snap.events.size());
  }
  if (!args.breakdown.empty()) {
    write_text_file(args.breakdown, obs::breakdown_json(snap));
    std::printf("breakdown -> %s (%zu flow groups, %llu cells)\n", args.breakdown.c_str(),
                snap.breakdown_flows.groups().size(),
                static_cast<unsigned long long>(snap.cells));
  }
  if (!args.flight.empty()) {
    write_text_file(args.flight, obs::flight_json(snap));
    std::printf("flights -> %s (%zu dumps)\n", args.flight.c_str(), snap.flights.size());
  }
}

/// Runs `config` once per seed cell (runner/sweep.hpp) and folds the results
/// in cell-id order — the drop-in replacement for `Campaign::run(config)`
/// in every regenerator. With --seeds=1 (the default) the output is exactly
/// the single-seed campaign, whatever --jobs says. The bench's obs flags and
/// --scenario timeline are injected into every cell; the merged Result
/// carries the folded snapshot.
template <typename Campaign>
[[nodiscard]] typename Campaign::Result run_sweep(const CommonArgs& args,
                                                  typename Campaign::Config config) {
  config.obs = args.obs();
  config.scenario = args.scenario;
  config.fast_forward = args.fast_forward;
  return runner::run_merged<Campaign>(args.sweep(), config);
}

}  // namespace slp::bench
