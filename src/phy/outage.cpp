#include "phy/outage.hpp"

namespace slp::phy {

OutageProcess::OutageProcess(Config config, Rng rng) : config_{config}, rng_{rng} {
  outage_start_ = TimePoint::epoch() +
                  Duration::from_seconds(rng_.exponential(config_.mean_interarrival.to_seconds()));
  outage_end_ = outage_start_ +
                Duration::from_seconds(rng_.lognormal(config_.duration_mu, config_.duration_sigma));
}

void OutageProcess::set_obs(obs::Recorder* rec) {
  if (rec == nullptr) {
    obs_outages_ = {};
    obs_dropped_ = {};
    trace_ = nullptr;
    return;
  }
  if (rec->options().metrics) {
    obs_outages_ = rec->registry().counter("phy.outage.windows");
    obs_dropped_ = rec->registry().counter("phy.outage.dropped");
  }
  trace_ = rec->trace().enabled() ? &rec->trace() : nullptr;
  // The first window was drawn in the constructor, before obs was wired.
  if (trace_ != nullptr) trace_->span("phy.outage", "outage", outage_start_, outage_end_);
}

void OutageProcess::advance_to(TimePoint now) {
  while (outage_end_ <= now) {
    outage_start_ = outage_end_ + Duration::from_seconds(
                                      rng_.exponential(config_.mean_interarrival.to_seconds()));
    outage_end_ = outage_start_ + Duration::from_seconds(
                                      rng_.lognormal(config_.duration_mu, config_.duration_sigma));
    stats_.outages_started++;
    obs_outages_.add();
    if (trace_ != nullptr) trace_->span("phy.outage", "outage", outage_start_, outage_end_);
  }
}

bool OutageProcess::in_outage(TimePoint t) {
  advance_to(t);
  return t >= outage_start_ && t < outage_end_;
}

bool OutageProcess::should_drop(TimePoint now, const sim::Packet& pkt) {
  (void)pkt;
  const bool drop = in_outage(now);
  if (drop) {
    stats_.dropped++;
    obs_dropped_.add();
  }
  return drop;
}

}  // namespace slp::phy
