#include "phy/load_process.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace slp::phy {

double LoadProcess::utilization(TimePoint t) {
  // Override short-circuits *reads*, never draws: the noise sequence is a
  // pure function of the step index, so resuming after clear_override() is
  // bit-identical to never having been overridden.
  if (overridden_) return override_;
  const auto idx = static_cast<std::size_t>(std::max<std::int64_t>(0, t.ns() / config_.step.ns()));
  while (noise_.size() <= idx) {
    const double prev = noise_.empty() ? 0.0 : noise_.back();
    const double next =
        prev * (1.0 - config_.reversion) + rng_.normal(0.0, config_.volatility);
    noise_.push_back(next);
  }
  double u = config_.mean_utilization + noise_[idx];
  if (config_.diurnal_amplitude > 0.0) {
    const double phase =
        2.0 * std::numbers::pi * t.to_seconds() / config_.diurnal_period.to_seconds();
    u += config_.diurnal_amplitude * std::sin(phase);
  }
  return std::clamp(u, config_.floor, config_.ceiling);
}

}  // namespace slp::phy
