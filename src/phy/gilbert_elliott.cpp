#include "phy/gilbert_elliott.hpp"

#include <algorithm>

namespace slp::phy {

GilbertElliott::GilbertElliott(Config config, Rng rng) : config_{config}, rng_{rng} {
  next_transition_ =
      TimePoint::epoch() + Duration::from_seconds(rng_.exponential(config_.mean_good.to_seconds()));
}

void GilbertElliott::set_obs(obs::Recorder* rec, std::string label) {
  if (rec == nullptr) {
    obs_bad_periods_ = {};
    obs_dropped_ = {};
    trace_ = nullptr;
    return;
  }
  obs_label_ = std::move(label);
  if (rec->options().metrics) {
    obs_bad_periods_ = rec->registry().counter("phy.ge." + obs_label_ + ".bad_periods");
    obs_dropped_ = rec->registry().counter("phy.ge." + obs_label_ + ".dropped");
  }
  trace_ = rec->trace().enabled() ? &rec->trace() : nullptr;
}

void GilbertElliott::set_good_scale(TimePoint now, double scale) {
  scale = std::max(scale, 0.01);  // never freeze the chain solid
  advance_to(now);
  if (!bad_ && next_transition_ > now) {
    next_transition_ = now + (next_transition_ - now) * (scale / good_scale_);
  }
  good_scale_ = scale;
}

void GilbertElliott::advance_to(TimePoint now) {
  while (next_transition_ <= now) {
    const TimePoint at = next_transition_;
    bad_ = !bad_;
    if (bad_) stats_.bad_periods++;
    const Duration mean = bad_ ? config_.mean_bad : config_.mean_good * good_scale_;
    Duration sojourn = Duration::from_seconds(rng_.exponential(mean.to_seconds()));
    // Guard against a zero draw stalling the chain at one instant.
    if (sojourn <= Duration::zero()) sojourn = Duration::nanos(1);
    next_transition_ = next_transition_ + sojourn;
    if (bad_) {
      obs_bad_periods_.add();
      // The full burst extent is known the moment we enter Bad.
      if (trace_ != nullptr) {
        trace_->span("phy.ge", "bad." + obs_label_, at, next_transition_);
      }
    }
  }
}

bool GilbertElliott::should_drop(TimePoint now, const sim::Packet& pkt) {
  (void)pkt;
  advance_to(now);
  stats_.evaluated++;
  const double p = bad_ ? config_.loss_bad : config_.loss_good;
  const bool drop = rng_.chance(p);
  if (drop) {
    stats_.dropped++;
    obs_dropped_.add();
  }
  return drop;
}

}  // namespace slp::phy
