#include "phy/gilbert_elliott.hpp"

namespace slp::phy {

GilbertElliott::GilbertElliott(Config config, Rng rng) : config_{config}, rng_{rng} {
  next_transition_ =
      TimePoint::epoch() + Duration::from_seconds(rng_.exponential(config_.mean_good.to_seconds()));
}

void GilbertElliott::advance_to(TimePoint now) {
  while (next_transition_ <= now) {
    bad_ = !bad_;
    if (bad_) stats_.bad_periods++;
    const Duration mean = bad_ ? config_.mean_bad : config_.mean_good;
    Duration sojourn = Duration::from_seconds(rng_.exponential(mean.to_seconds()));
    // Guard against a zero draw stalling the chain at one instant.
    if (sojourn <= Duration::zero()) sojourn = Duration::nanos(1);
    next_transition_ = next_transition_ + sojourn;
  }
}

bool GilbertElliott::should_drop(TimePoint now, const sim::Packet& pkt) {
  (void)pkt;
  advance_to(now);
  stats_.evaluated++;
  const double p = bad_ ? config_.loss_bad : config_.loss_good;
  const bool drop = rng_.chance(p);
  if (drop) stats_.dropped++;
  return drop;
}

}  // namespace slp::phy
