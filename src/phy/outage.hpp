// outage.hpp — rare full-connectivity gaps.
//
// Both H3 and messaging captures in the paper contain loss events lasting
// more than one second, "identifying a possible loss of connectivity". The
// OutageProcess models these: Poisson-arriving windows during which every
// packet is destroyed (e.g. a handover glitch or momentary obstruction).
#pragma once

#include <vector>

#include "obs/recorder.hpp"
#include "sim/link.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace slp::phy {

class OutageProcess final : public sim::LossModel {
 public:
  struct Config {
    Duration mean_interarrival = Duration::hours(4);
    /// Outage durations are lognormal: exp(N(mu, sigma)) seconds.
    double duration_mu = 0.2;     ///< median ~1.2 s
    double duration_sigma = 0.5;
  };

  OutageProcess(Config config, Rng rng);

  [[nodiscard]] bool should_drop(TimePoint now, const sim::Packet& pkt) override;

  /// True if `t` falls inside the current/next outage window (advances lazily).
  [[nodiscard]] bool in_outage(TimePoint t);

  struct Stats {
    std::uint64_t outages_started = 0;
    std::uint64_t dropped = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Wires counters and a complete trace span per outage window (category
  /// "phy.outage"). Wire only ONE of a shared up/down pair — both draw
  /// identical windows, so instrumenting both would double every span.
  void set_obs(obs::Recorder* rec);

 private:
  void advance_to(TimePoint now);

  Config config_;
  Rng rng_;
  TimePoint outage_start_;
  TimePoint outage_end_;
  Stats stats_;
  obs::Counter obs_outages_;
  obs::Counter obs_dropped_;
  obs::TraceSink* trace_ = nullptr;
};

/// Drops when any child model drops; children are advanced for every packet
/// so their clocks stay in sync. Children are not owned.
class CompositeLossModel final : public sim::LossModel {
 public:
  explicit CompositeLossModel(std::vector<sim::LossModel*> children)
      : children_{std::move(children)} {}

  [[nodiscard]] bool should_drop(TimePoint now, const sim::Packet& pkt) override {
    bool drop = false;
    for (sim::LossModel* child : children_) {
      if (child->should_drop(now, pkt)) drop = true;
    }
    return drop;
  }

 private:
  std::vector<sim::LossModel*> children_;
};

/// All-or-nothing loss gate: closed = every packet destroyed. Draws no
/// randomness, so opening/closing it never perturbs sibling models' RNG
/// streams. The scenario injector closes it for hard outage windows (PoP
/// outages, maintenance blips); it composes as one more CompositeLossModel
/// child, so the stochastic children keep advancing through the window.
class GateLoss final : public sim::LossModel {
 public:
  [[nodiscard]] bool should_drop(TimePoint now, const sim::Packet& pkt) override {
    (void)now;
    (void)pkt;
    if (open_) return false;
    dropped_++;
    return true;
  }

  void set_open(bool open) { open_ = open; }
  [[nodiscard]] bool is_open() const { return open_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  bool open_ = true;
  std::uint64_t dropped_ = 0;
};

/// Fixed-probability i.i.d. loss — the simplest possible model, used by the
/// ERRANT profiles and as a test fixture.
class BernoulliLoss final : public sim::LossModel {
 public:
  BernoulliLoss(double p, Rng rng) : p_{p}, rng_{rng} {}

  [[nodiscard]] bool should_drop(TimePoint now, const sim::Packet& pkt) override {
    (void)now;
    (void)pkt;
    return rng_.chance(p_);
  }

 private:
  double p_;
  Rng rng_;
};

}  // namespace slp::phy

namespace slp::phy {

/// Utilization-coupled loss: the drop process §3.2 of the paper observes
/// during bulk transfers — frequent events of a few consecutive packets that
/// only occur while the link is loaded. Physically: scheduler/PHY drops at
/// high cell utilization. Engages once the queue fill crosses `threshold`;
/// a short self-exciting boost after each drop produces 1-4 packet bursts.
class UtilizationLoss {
 public:
  struct Config {
    double threshold = 0.35;   ///< queue fill fraction that arms the process
    double p_drop = 0.010;     ///< per-packet drop probability when armed
    double burst_continue = 0.55;  ///< P[next packet also drops]
    int max_burst = 6;
  };

  UtilizationLoss(Config config, Rng rng) : config_{config}, rng_{rng} {}

  [[nodiscard]] bool should_drop(TimePoint now, const sim::Packet& pkt, double queue_fraction) {
    (void)now;
    (void)pkt;
    if (burst_remaining_ > 0) {
      --burst_remaining_;
      if (rng_.chance(config_.burst_continue)) return true;
      burst_remaining_ = 0;
      return false;
    }
    if (queue_fraction < config_.threshold) return false;
    if (!rng_.chance(config_.p_drop)) return false;
    burst_remaining_ = config_.max_burst - 1;
    return true;
  }

 private:
  Config config_;
  Rng rng_;
  int burst_remaining_ = 0;
};

}  // namespace slp::phy
