// gilbert_elliott.hpp — two-state Markov (Gilbert-Elliott) medium loss.
//
// §3.2 of the paper attributes the messages-mode losses to the medium: rare
// events, but bursty when they happen (sometimes >100 consecutive packets).
// A continuous-time Gilbert-Elliott chain reproduces this: the channel
// alternates between a long-lived Good state (near-zero loss) and short Bad
// states (high loss). Because the chain evolves in *time*, a low-rate flow
// sees few loss events while a bulk flow crossing the same Bad window loses
// a burst of consecutive packets — exactly the paper's contrast between H3
// and messaging transfers.
#pragma once

#include <string>

#include "obs/recorder.hpp"
#include "sim/link.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace slp::phy {

class GilbertElliott final : public sim::LossModel {
 public:
  struct Config {
    Duration mean_good = Duration::seconds(120);  ///< mean Good sojourn
    Duration mean_bad = Duration::millis(30);     ///< mean Bad sojourn
    double loss_good = 0.0;                       ///< P[drop | Good]
    double loss_bad = 0.8;                        ///< P[drop | Bad]
  };

  GilbertElliott(Config config, Rng rng);

  [[nodiscard]] bool should_drop(TimePoint now, const sim::Packet& pkt) override;

  [[nodiscard]] bool in_bad_state() const { return bad_; }

  /// Scales the mean Good sojourn (scenario rain fade: scale < 1 means Bad
  /// states arrive proportionally more often). Deterministic: the remaining
  /// time of an in-progress Good sojourn is rescaled in place — memoryless-
  /// consistent for the exponential — and future Good draws use the scaled
  /// mean. Bad sojourns and loss probabilities are untouched.
  void set_good_scale(TimePoint now, double scale);
  [[nodiscard]] double good_scale() const { return good_scale_; }

  struct Stats {
    std::uint64_t evaluated = 0;
    std::uint64_t dropped = 0;
    std::uint64_t bad_periods = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Wires drop/bad-period counters and a complete trace span per Bad burst
  /// under "phy.ge.<label>". nullptr disables.
  void set_obs(obs::Recorder* rec, std::string label);

 private:
  void advance_to(TimePoint now);

  Config config_;
  Rng rng_;
  bool bad_ = false;
  double good_scale_ = 1.0;
  TimePoint next_transition_;
  Stats stats_;
  std::string obs_label_;
  obs::Counter obs_bad_periods_;
  obs::Counter obs_dropped_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace slp::phy
