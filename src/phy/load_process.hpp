// load_process.hpp — time-varying shared-cell utilization.
//
// Starlink capacity is shared per cell. The paper found *no* diurnal pattern
// ("median throughput varies by less than ±10% with no apparent day-night
// cycle") and attributed this to low infrastructure utilization. We model
// utilization as a mean-reverting AR(1) process sampled on a fixed step,
// optionally with a (disabled-by-default) diurnal component — the ablation
// benches flip it on to show what a loaded network would have looked like.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace slp::phy {

class LoadProcess {
 public:
  struct Config {
    double mean_utilization = 0.25;   ///< long-run average share of cell in use
    double volatility = 0.06;         ///< AR(1) innovation std-dev
    double reversion = 0.2;           ///< pull toward the mean per step
    Duration step = Duration::seconds(10);
    double diurnal_amplitude = 0.0;   ///< 0 = flat (paper's observation)
    Duration diurnal_period = Duration::hours(24);
    double floor = 0.02;
    double ceiling = 0.95;
  };

  LoadProcess(Config config, Rng rng) : config_{config}, rng_{rng} {}

  /// Utilization in [floor, ceiling] at time t. Deterministic per seed:
  /// samples are generated lazily and cached per step index.
  [[nodiscard]] double utilization(TimePoint t);

  /// Fraction of nominal capacity available to our user at time t.
  [[nodiscard]] double available_fraction(TimePoint t) { return 1.0 - utilization(t); }

  /// Pins utilization to `target` (clamped to [floor, ceiling]) until
  /// clear_override() — the scenario injector's cell-load-surge hook. The
  /// underlying AR(1) noise keeps being generated per step index, so
  /// clearing the override resumes the unperturbed trajectory.
  void set_utilization_override(double target) {
    override_ = std::clamp(target, config_.floor, config_.ceiling);
    overridden_ = true;
  }
  void clear_override() { overridden_ = false; }
  [[nodiscard]] bool overridden() const { return overridden_; }

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  Rng rng_;
  std::vector<double> noise_;  ///< AR(1) deviation per step, grown lazily
  bool overridden_ = false;
  double override_ = 0.0;
};

}  // namespace slp::phy
