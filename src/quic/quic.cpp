#include "quic/quic.hpp"

#include <algorithm>
#include <cassert>

#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "sim/provenance.hpp"
#include "util/log.hpp"

namespace slp::quic {

namespace {
constexpr std::uint32_t kHandshakeBytes = 1200;  ///< padded Initial
}

// ===================================================================== Stack

QuicStack::QuicStack(sim::Host& host) : host_{&host} {}

QuicStack::~QuicStack() {
  for (const std::uint16_t port : bound_ports_) host_->unbind(sim::Protocol::kUdp, port);
}

QuicConnection& QuicStack::connect(sim::Ipv4Addr remote_addr, std::uint16_t remote_port,
                                   QuicConfig config) {
  const std::uint16_t local_port = host_->ephemeral_port();
  if (bound_ports_.insert(local_port).second) {
    host_->bind(sim::Protocol::kUdp, local_port,
                [this, local_port](const sim::Packet& pkt) { dispatch(local_port, pkt); });
  }
  auto conn = std::unique_ptr<QuicConnection>(
      new QuicConnection(*this, remote_addr, remote_port, local_port, config, /*is_client=*/true));
  QuicConnection& ref = *conn;
  connections_[ConnKey{local_port, remote_addr, remote_port}] = std::move(conn);
  ref.start_connect();
  return ref;
}

void QuicStack::listen(std::uint16_t port, std::function<void(QuicConnection&)> on_accept,
                       QuicConfig config) {
  listeners_[port] = Listener{config, std::move(on_accept)};
  if (bound_ports_.insert(port).second) {
    host_->bind(sim::Protocol::kUdp, port,
                [this, port](const sim::Packet& pkt) { dispatch(port, pkt); });
  }
}

void QuicStack::dispatch(std::uint16_t local_port, const sim::Packet& pkt) {
  if (!pkt.payload) return;
  const ConnKey key{local_port, pkt.src, pkt.src_port};
  const auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->on_datagram(pkt);
    return;
  }
  const auto lit = listeners_.find(local_port);
  if (lit == listeners_.end()) return;
  auto conn = std::unique_ptr<QuicConnection>(new QuicConnection(
      *this, pkt.src, pkt.src_port, local_port, lit->second.config, /*is_client=*/false));
  QuicConnection& ref = *conn;
  connections_[key] = std::move(conn);
  if (lit->second.on_accept) lit->second.on_accept(ref);
  ref.on_datagram(pkt);
}

void QuicStack::gc() {
  // Connections have no explicit close in the model; gc drops idle ones with
  // nothing in flight and nothing queued.
  for (auto it = connections_.begin(); it != connections_.end();) {
    const QuicConnection& c = *it->second;
    if (c.established() && c.bytes_in_flight() == 0 && !it->second->has_data_to_send()) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

// ================================================================ Connection

QuicConnection::QuicConnection(QuicStack& stack, sim::Ipv4Addr remote_addr,
                               std::uint16_t remote_port, std::uint16_t local_port,
                               QuicConfig config, bool is_client)
    : stack_{&stack},
      remote_addr_{remote_addr},
      remote_port_{remote_port},
      local_port_{local_port},
      config_{config},
      is_client_{is_client},
      peer_max_data_{config.initial_max_data},
      ack_timer_{stack.sim()},
      local_max_data_{config.initial_max_data},
      flow_window_size_{config.initial_max_data},
      last_max_data_sent_{config.initial_max_data},
      loss_timer_{stack.sim()},
      pacing_timer_{stack.sim()} {
  cc::CcConfig cc_config;
  cc_config.mss = config_.max_payload;
  cc_config.initial_window_segments = config_.initial_window_segments;
  cc_config.min_cwnd_bytes = 2ull * config_.max_payload;
  cc_config.hystart = config_.hystart;
  cc_ = cc::make_controller(config_.algorithm, cc_config);
  // The simulator-wide knob turns the analytic fast paths off everywhere at
  // once (differential reference runs) without per-app config plumbing.
  config_.fast_forward = config_.fast_forward && stack.sim().fast_forward();
  flow_id_ = stack.sim().next_flow_id();
  if (auto* rec = stack.sim().obs(); rec != nullptr && rec->sampler() != nullptr) {
    cwnd_probe_id_ = rec->sampler()->add_probe(
        "quic.cwnd", [this](TimePoint) { return static_cast<double>(cc_->cwnd_bytes()); });
  }
}

QuicConnection::~QuicConnection() {
  if (cwnd_probe_id_ != 0) {
    if (auto* rec = stack_->sim().obs(); rec != nullptr && rec->sampler() != nullptr) {
      rec->sampler()->remove_probe(cwnd_probe_id_);
    }
  }
}

void QuicConnection::note_cc_event(const char* what) {
  auto* rec = stack_->sim().obs();
  if (rec == nullptr) return;
  if (rec->options().metrics) {
    rec->registry().counter(std::string{"quic.cc."} + what).add();
  }
  if (rec->trace().enabled()) {
    rec->trace().instant("quic.cc", what, stack_->sim().now(),
                         "{\"flow\":" + std::to_string(flow_id_) +
                             ",\"cwnd\":" + std::to_string(cc_->cwnd_bytes()) + "}");
  }
}

sim::Simulator& QuicConnection::sim() const { return stack_->sim(); }

void QuicConnection::start_connect() { send_handshake_packet(); }

void QuicConnection::append_chunk(Payload& p, const MsgChunk& c) {
  if (!p.extra) {
    if (p.chunks.size() < 2) {
      p.chunks.push_back(c);
      return;
    }
    p.extra = sim::PacketPool::local().make<ChunkSeg>();
  }
  ChunkSeg* seg = p.extra.as_mutable<ChunkSeg>();
  while (seg->next) seg = seg->next.as_mutable<ChunkSeg>();
  if (seg->chunks.size() == 4) {
    seg->next = sim::PacketPool::local().make<ChunkSeg>();
    seg = seg->next.as_mutable<ChunkSeg>();
  }
  seg->chunks.push_back(c);
}

void QuicConnection::send_handshake_packet() {
  sim::PayloadRef pref = sim::PacketPool::local().make<Payload>();
  Payload* payload = pref.as_mutable<Payload>();
  payload->pn = next_pn_++;
  payload->handshake = true;
  payload->ack_eliciting = true;
  if (any_received_) payload->ack = build_ack();

  SentPacket sp;
  sp.sent_at = stack_->sim().now();
  sp.sent_bytes = kHandshakeBytes;
  sp.in_flight = true;
  sp.ack_eliciting = true;
  sp.handshake = true;
  bytes_in_flight_ += sp.sent_bytes;
  sent_[payload->pn] = sp;
  stats_.packets_sent++;
  stats_.largest_pn_sent = payload->pn;
  handshake_sent_ = true;
  if (hooks.on_packet_sent) hooks.on_packet_sent(payload->pn, sp.sent_at, sp.sent_bytes);

  sim::Packet pkt;
  pkt.dst = remote_addr_;
  pkt.src_port = local_port_;
  pkt.dst_port = remote_port_;
  pkt.proto = sim::Protocol::kUdp;
  pkt.size_bytes = kHandshakeBytes;
  pkt.flow_id = flow_id_;
  pkt.payload = std::move(pref);
  stack_->transmit(std::move(pkt));
  arm_loss_timer();
}

// ------------------------------------------------------------- application

void QuicConnection::send_stream(std::uint64_t bytes) {
  stream_length_ += bytes;
  maybe_send();
}

std::uint64_t QuicConnection::send_message(std::uint64_t bytes) {
  const std::uint64_t id = next_msg_id_++;
  const TimePoint now = stack_->sim().now();
  std::uint64_t offset = 0;
  while (offset < bytes) {
    const std::uint32_t len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(config_.max_payload, bytes - offset));
    MsgChunk chunk;
    chunk.msg_id = id;
    chunk.offset = offset;
    chunk.len = len;
    chunk.last = offset + len == bytes;
    chunk.total = bytes;
    chunk.queued_at = now;
    msg_queue_.push_back(chunk);
    offset += len;
  }
  flow_bytes_sent_ += bytes;
  maybe_send();
  return id;
}

std::uint64_t QuicConnection::send_datagram(std::uint32_t bytes, std::uint64_t cookie) {
  const std::uint64_t id = next_dgram_id_++;
  MsgChunk chunk;
  chunk.msg_id = id;
  chunk.len = std::min(std::max<std::uint32_t>(bytes, 1), config_.max_payload);
  chunk.last = true;
  chunk.unreliable = true;
  chunk.total = cookie;
  chunk.queued_at = stack_->sim().now();
  // Datagrams share the message send queue (deterministic FIFO with message
  // chunks) and count toward cwnd/bytes_in_flight like any ack-eliciting
  // packet, but are NOT charged against connection flow control (RFC 9221:
  // DATAGRAM frames are not flow controlled).
  msg_queue_.push_back(chunk);
  stats_.datagrams_sent++;
  maybe_send();
  return id;
}

// ------------------------------------------------------------- send path

bool QuicConnection::has_data_to_send() const {
  if (!stream_rtx_.empty() || !msg_queue_.empty()) return true;
  return stream_next_offset_ < stream_length_ && flow_bytes_sent_ < peer_max_data_;
}

void QuicConnection::maybe_send() {
  if (!established_) return;
  int budget = config_.max_burst_packets;
  while (budget-- > 0 && has_data_to_send() &&
         bytes_in_flight_ + config_.max_payload + config_.overhead <=
             cc_->cwnd_bytes()) {
    if (config_.pacing) {
      const TimePoint now = stack_->sim().now();
      if (next_send_time_ > now) {
        if (!pacing_timer_.armed()) {
          pacing_timer_.arm(next_send_time_ - now, [this] { maybe_send(); });
        }
        return;
      }
    }
    send_one_packet(/*force_probe=*/false);
  }
}

void QuicConnection::send_one_packet(bool force_probe) {
  sim::PayloadRef pref = sim::PacketPool::local().make<Payload>();
  Payload* payload = pref.as_mutable<Payload>();
  payload->pn = next_pn_++;

  std::uint32_t budget = config_.max_payload;
  SentPacket sp;
  sp.sent_at = stack_->sim().now();

  // 1. Retransmit lost stream ranges first.
  if (!stream_rtx_.empty()) {
    auto& [start, end] = stream_rtx_.front();
    const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(budget, end - start));
    payload->stream_offset = start;
    payload->stream_len = len;
    start += len;
    if (start >= end) stream_rtx_.pop_front();
    budget -= len;
  } else if (!msg_queue_.empty()) {
    // 2. Message chunks (possibly several small ones per packet).
    while (budget > 0 && !msg_queue_.empty()) {
      MsgChunk& front = msg_queue_.front();
      if (front.len <= budget) {
        append_chunk(*payload, front);
        budget -= front.len;
        msg_queue_.pop_front();
      } else if (front.unreliable) {
        // A datagram must ride whole in one packet — never split. It waits
        // for the next packet's full budget.
        break;
      } else {
        // Split the chunk.
        MsgChunk part = front;
        part.len = budget;
        part.last = false;
        append_chunk(*payload, part);
        front.offset += budget;
        front.len -= budget;
        budget = 0;
      }
    }
  } else if (stream_next_offset_ < stream_length_ && flow_bytes_sent_ < peer_max_data_) {
    // 3. New stream data, within flow-control credit.
    const std::uint64_t credit = peer_max_data_ - flow_bytes_sent_;
    const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        std::min<std::uint64_t>(budget, stream_length_ - stream_next_offset_), credit));
    payload->stream_offset = stream_next_offset_;
    payload->stream_len = len;
    stream_next_offset_ += len;
    flow_bytes_sent_ += len;
    budget -= len;
  } else if (!force_probe) {
    next_pn_--;  // nothing to send after all; roll the pn back (never sent)
    return;
  }

  payload->ack_eliciting = true;
  if (any_received_) {
    payload->ack = build_ack();
    unacked_eliciting_ = 0;
    ack_timer_.cancel();
  }
  if (last_max_data_sent_ < local_max_data_) {
    payload->max_data = local_max_data_;
    last_max_data_sent_ = local_max_data_;
  }

  const std::uint32_t used = config_.max_payload - budget;
  sp.sent_bytes = std::max<std::uint32_t>(used, 20) + config_.overhead;
  sp.in_flight = true;
  sp.ack_eliciting = true;
  sp.stream_offset = payload->stream_offset;
  sp.stream_len = payload->stream_len;
  sp.chunks = payload->chunks;
  sp.extra = payload->extra;  // shares the pooled chain, no copy
  sp.max_data = payload->max_data;
  bytes_in_flight_ += sp.sent_bytes;
  sent_[payload->pn] = sp;
  stats_.packets_sent++;
  stats_.largest_pn_sent = payload->pn;
  if (hooks.on_packet_sent) hooks.on_packet_sent(payload->pn, sp.sent_at, sp.sent_bytes);

  if (config_.pacing && srtt_ > Duration::zero()) {
    // Release at cwnd/srtt rate with a 1.25 burst factor.
    const double rate_Bps =
        1.25 * static_cast<double>(cc_->cwnd_bytes()) / srtt_.to_seconds();
    const Duration gap = Duration::from_seconds(sp.sent_bytes / rate_Bps);
    const TimePoint now = stack_->sim().now();
    next_send_time_ = std::max(next_send_time_, now) + gap;
  }

  sim::Packet pkt;
  pkt.dst = remote_addr_;
  pkt.src_port = local_port_;
  pkt.dst_port = remote_port_;
  pkt.proto = sim::Protocol::kUdp;
  pkt.size_bytes = sp.sent_bytes;
  pkt.flow_id = flow_id_;
  pkt.payload = std::move(pref);
  stack_->transmit(std::move(pkt));
  arm_loss_timer();
}

QuicConnection::AckFrame QuicConnection::build_ack() const {
  AckFrame ack;
  ack.largest = largest_recv_pn_;
  ack.ack_delay = stack_->sim().now() - largest_recv_at_;
  // Descending, newest ranges first, capped like a real ACK frame.
  int count = 0;
  for (auto it = recv_pn_ranges_.rbegin(); it != recv_pn_ranges_.rend() && count < 32;
       ++it, ++count) {
    ack.ranges.emplace_back(it->first, it->second);
  }
  return ack;
}

void QuicConnection::send_ack_only() {
  if (!any_received_) return;
  sim::PayloadRef pref = sim::PacketPool::local().make<Payload>();
  Payload* payload = pref.as_mutable<Payload>();
  payload->pn = next_pn_++;
  payload->ack = build_ack();
  payload->ack_eliciting = false;
  unacked_eliciting_ = 0;
  ack_timer_.cancel();
  stats_.packets_sent++;
  stats_.largest_pn_sent = payload->pn;
  // Ack-only packets are not congestion-controlled and not tracked for loss.
  sim::Packet pkt;
  pkt.dst = remote_addr_;
  pkt.src_port = local_port_;
  pkt.dst_port = remote_port_;
  pkt.proto = sim::Protocol::kUdp;
  pkt.size_bytes = 30 + config_.overhead;
  pkt.flow_id = flow_id_;
  pkt.payload = std::move(pref);
  stack_->transmit(std::move(pkt));
}

void QuicConnection::queue_ack_if_needed() {
  if (unacked_eliciting_ >= config_.ack_every) {
    send_ack_only();
  } else if (unacked_eliciting_ > 0 && !ack_timer_.armed()) {
    ack_timer_.arm(config_.max_ack_delay, [this] { send_ack_only(); });
  }
}

// ------------------------------------------------------------- receive path

void QuicConnection::on_datagram(const sim::Packet& pkt) {
  const Payload* payload = pkt.payload.as<Payload>();
  if (payload == nullptr) return;
  const TimePoint now = stack_->sim().now();
  stats_.packets_received++;
  if (hooks.on_packet_received) hooks.on_packet_received(payload->pn, now);

  // Receiver-side latency provenance for data-bearing packets. QUIC never
  // retransmits a packet number, so each tag covers exactly one wire
  // traversal; recovery time for lost predecessors is recorded separately
  // at the sender (on_packet_lost_internal).
  if (pkt.flow_id != 0 && (payload->stream_len > 0 || has_chunks(*payload))) {
    if (const sim::ProvenanceTag* tag = sim::prov_tag(pkt)) {
      if (obs::Recorder* rec = stack_->sim().obs()) {
        rec->record_breakdown(now.ns(), pkt.flow_id, tag->comp_ns,
                              (now - pkt.first_sent).ns());
      }
    }
  }

  // --- handshake --------------------------------------------------------
  if (payload->handshake) {
    if (!is_client_ && !established_) {
      established_ = true;
      send_handshake_packet();  // server's reply also acks implicitly below
      if (on_established) on_established();
    } else if (!is_client_ && established_) {
      // Client retransmitted its Initial (our reply was lost): resend.
      send_handshake_packet();
    } else if (is_client_ && !established_) {
      established_ = true;
      if (on_established) on_established();
    }
  }

  // --- record pn for ACK generation --------------------------------------
  any_received_ = true;
  if (!any_received_ || payload->pn >= largest_recv_pn_) {
    largest_recv_pn_ = payload->pn;
    largest_recv_at_ = now;
  }
  {
    const std::uint64_t pn = payload->pn;
    auto it = recv_pn_ranges_.lower_bound(pn);
    bool merged = false;
    if (it != recv_pn_ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->second + 1 == pn) {
        prev->second = pn;
        merged = true;
        // Possibly bridge to the next range.
        if (it != recv_pn_ranges_.end() && it->first == pn + 1) {
          prev->second = it->second;
          recv_pn_ranges_.erase(it);
        }
      } else if (pn >= prev->first && pn <= prev->second) {
        merged = true;  // duplicate
      }
    }
    if (!merged) {
      if (it != recv_pn_ranges_.end() && it->first == pn + 1) {
        const std::uint64_t end = it->second;
        recv_pn_ranges_.erase(it);
        recv_pn_ranges_[pn] = end;
      } else {
        recv_pn_ranges_[pn] = pn;
      }
    }
    // Bound state: permanently-missing pns would otherwise grow this map.
    while (recv_pn_ranges_.size() > 64) recv_pn_ranges_.erase(recv_pn_ranges_.begin());
  }

  // --- frames -------------------------------------------------------------
  if (payload->max_data > 0) {
    peer_max_data_ = std::max(peer_max_data_, payload->max_data);
  }
  if (payload->stream_len > 0) deliver_stream(payload->stream_offset, payload->stream_len);
  if (has_chunks(*payload)) deliver_chunks(*payload);
  if (payload->ack) process_ack(*payload->ack, now);

  if (payload->ack_eliciting) {
    unacked_eliciting_++;
    queue_ack_if_needed();
  }
  maybe_send();
}

void QuicConnection::deliver_stream(std::uint64_t offset, std::uint32_t len) {
  // Merge [offset, offset+len) and advance the delivered prefix.
  const std::uint64_t start = offset;
  const std::uint64_t end = offset + len;
  auto it = stream_ooo_.lower_bound(start);
  if (it != stream_ooo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) it = prev;
  }
  std::uint64_t ms = start;
  std::uint64_t me = end;
  while (it != stream_ooo_.end() && it->first <= me) {
    ms = std::min(ms, it->first);
    me = std::max(me, it->second);
    it = stream_ooo_.erase(it);
  }
  stream_ooo_[ms] = me;

  auto front = stream_ooo_.begin();
  if (front != stream_ooo_.end() && front->first <= stream_delivered_) {
    const std::uint64_t new_delivered = std::max(stream_delivered_, front->second);
    const std::uint64_t delta = new_delivered - stream_delivered_;
    stream_delivered_ = new_delivered;
    stream_ooo_.erase(front);
    if (delta > 0) {
      stats_.stream_bytes_delivered = stream_delivered_;
      flow_bytes_received_ += delta;
      maybe_send_max_data();
      if (on_stream_data) on_stream_data(delta);
    }
  }
}

namespace {

/// Merges [start, end) into a range map; returns the number of bytes that
/// were not previously covered (dedup for retransmitted data).
std::uint64_t merge_range(std::map<std::uint64_t, std::uint64_t>& ranges, std::uint64_t start,
                          std::uint64_t end) {
  std::uint64_t covered_before = 0;
  auto it = ranges.lower_bound(start);
  if (it != ranges.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) it = prev;
  }
  std::uint64_t ms = start;
  std::uint64_t me = end;
  while (it != ranges.end() && it->first <= me) {
    covered_before += it->second - it->first;
    ms = std::min(ms, it->first);
    me = std::max(me, it->second);
    it = ranges.erase(it);
  }
  ranges[ms] = me;
  return (me - ms) - covered_before;
}

}  // namespace

void QuicConnection::deliver_chunks(const Payload& payload) {
  for_each_chunk(payload, [this](const MsgChunk& chunk) {
    if (chunk.unreliable) {
      // Datagram: no reassembly, no flow-control accounting, delivered as-is.
      stats_.datagrams_delivered++;
      if (on_dgram) on_dgram(chunk.msg_id, chunk.total, chunk.len, chunk.queued_at);
      return;
    }
    MsgReassembly& r = reassembly_[chunk.msg_id];
    if (r.done) return;
    r.total = chunk.total;
    r.queued_at = chunk.queued_at;
    // Spurious retransmissions deliver the same chunk twice; range-merge
    // dedup keeps the byte count exact.
    const std::uint64_t fresh = merge_range(r.ranges, chunk.offset, chunk.offset + chunk.len);
    r.received += fresh;
    flow_bytes_received_ += fresh;
    if (r.received >= r.total && r.total > 0) {
      r.done = true;
      stats_.messages_delivered++;
      maybe_send_max_data();
      if (on_message) on_message(chunk.msg_id, r.total, r.queued_at);
    }
  });
}

void QuicConnection::maybe_send_max_data() {
  // The credit window always *slides* as data is consumed (MAX_DATA is
  // cumulative); autotuning additionally *grows* the window size when the
  // peer keeps it more than half full (quiche-style).
  const std::uint64_t remaining =
      local_max_data_ > flow_bytes_received_ ? local_max_data_ - flow_bytes_received_ : 0;
  if (remaining < flow_window_size_ / 2) {
    if (config_.autotune_flow_control) {
      flow_window_size_ =
          std::min<std::uint64_t>(config_.max_flow_window, flow_window_size_ * 2);
    }
    local_max_data_ = std::max(local_max_data_, flow_bytes_received_ + flow_window_size_);
    // The MAX_DATA frame rides in the next packet; if we are a pure receiver
    // an ack-only-ish control packet carries it.
    if (bytes_in_flight_ == 0 && msg_queue_.empty() && stream_rtx_.empty() &&
        stream_next_offset_ >= stream_length_) {
      sim::PayloadRef pref = sim::PacketPool::local().make<Payload>();
      Payload* payload = pref.as_mutable<Payload>();
      payload->pn = next_pn_++;
      payload->max_data = local_max_data_;
      last_max_data_sent_ = local_max_data_;
      payload->ack_eliciting = false;
      if (any_received_) payload->ack = build_ack();
      stats_.packets_sent++;
      stats_.largest_pn_sent = payload->pn;
      sim::Packet pkt;
      pkt.dst = remote_addr_;
      pkt.src_port = local_port_;
      pkt.dst_port = remote_port_;
      pkt.proto = sim::Protocol::kUdp;
      pkt.size_bytes = 34 + config_.overhead;
      pkt.flow_id = flow_id_;
      pkt.payload = std::move(pref);
      stack_->transmit(std::move(pkt));
    }
  }
}

// ------------------------------------------------------------- ACK / loss

void QuicConnection::process_ack(const AckFrame& ack, TimePoint now) {
  const obs::SectionTimer wall{obs::Section::kCc};
  std::uint64_t newly_acked_bytes = 0;
  bool largest_newly_acked = false;
  Duration largest_rtt = Duration::zero();

  for (const auto& [start, end] : ack.ranges) {
    auto it = sent_.lower_bound(start);
    while (it != sent_.end() && it->first <= end) {
      const std::uint64_t pn = it->first;
      SentPacket& sp = it->second;
      if (sp.in_flight) {
        assert(bytes_in_flight_ >= sp.sent_bytes);
        bytes_in_flight_ -= sp.sent_bytes;
      }
      newly_acked_bytes += sp.sent_bytes;
      stats_.packets_acked++;
      stats_.bytes_acked += sp.sent_bytes;
      stats_.stream_bytes_acked += sp.stream_len;
      if (hooks.on_packet_acked) hooks.on_packet_acked(pn, now - sp.sent_at);
      if (pn == ack.largest) {
        largest_newly_acked = true;
        largest_rtt = now - sp.sent_at;
      }
      it = sent_.erase(it);
    }
  }

  if (ack.largest > largest_acked_) largest_acked_ = ack.largest;

  if (largest_newly_acked && largest_rtt > Duration::zero()) {
    // Subtract the peer's acknowledged delay so delayed ACKs do not inflate
    // the smoothed RTT (RFC 9002 §5.3); never go below the raw minimum seen.
    Duration adjusted = largest_rtt - ack.ack_delay;
    if (adjusted < min_rtt_ && !min_rtt_.is_infinite()) adjusted = min_rtt_;
    if (adjusted <= Duration::zero()) adjusted = largest_rtt;
    update_rtt(adjusted);
  }
  if (newly_acked_bytes > 0) {
    pto_count_ = 0;
    cc_->on_ack(newly_acked_bytes, latest_rtt_, now);
    if (on_stream_acked) on_stream_acked(stats_.stream_bytes_acked);
  }

  detect_losses(now);
  arm_loss_timer();
  maybe_send();
}

void QuicConnection::update_rtt(Duration sample) {
  latest_rtt_ = sample;
  min_rtt_ = std::min(min_rtt_, sample);
  if (srtt_.is_zero()) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const Duration delta = (srtt_ > sample) ? (srtt_ - sample) : (sample - srtt_);
    rttvar_ = rttvar_ * 0.75 + delta * 0.25;
    srtt_ = srtt_ * 0.875 + sample * 0.125;
  }
}

void QuicConnection::on_packet_lost_internal(std::uint64_t pn, SentPacket& sp) {
  if (sp.in_flight) {
    assert(bytes_in_flight_ >= sp.sent_bytes);
    bytes_in_flight_ -= sp.sent_bytes;
    sp.in_flight = false;
  }
  stats_.packets_lost++;
  if (hooks.on_packet_lost) hooks.on_packet_lost(pn);

  // Credit the dead air between this copy's send and its loss declaration to
  // recovery; the replacement packet gets a fresh tag for its own traversal.
  if (flow_id_ != 0 && stack_->sim().provenance()) {
    if (obs::Recorder* rec = stack_->sim().obs()) {
      rec->record_component(flow_id_, obs::kLossRecovery,
                            (stack_->sim().now() - sp.sent_at).ns());
    }
  }

  // Re-queue the content for transmission under NEW packet numbers.
  if (sp.stream_len > 0) {
    stream_rtx_.emplace_back(sp.stream_offset, sp.stream_offset + sp.stream_len);
  }
  if (has_chunks(sp)) {
    util::SmallVector<MsgChunk, 8> all;
    for_each_chunk(sp, [this, &all](const MsgChunk& c) {
      if (c.unreliable) {
        // Datagrams are never retransmitted: count the drop, tell the app.
        stats_.datagrams_lost++;
        if (on_dgram_lost) on_dgram_lost(c.msg_id, c.total);
        return;
      }
      all.push_back(c);
    });
    while (!all.empty()) {
      msg_queue_.push_front(all.back());
      all.pop_back();
    }
  }
  if (sp.max_data > 0 && sp.max_data >= last_max_data_sent_) {
    // Ensure the window update is re-advertised.
    last_max_data_sent_ = std::min(last_max_data_sent_, sp.max_data - 1);
  }
  if (sp.handshake && !established_ && is_client_) {
    // Initial lost: resend.
    send_handshake_packet();
  }
}

void QuicConnection::detect_losses(TimePoint now) {
  const Duration rtt = std::max(srtt_.is_zero() ? config_.initial_rtt : srtt_, latest_rtt_);
  const Duration threshold =
      std::max(rtt * config_.time_threshold, config_.granularity);
  bool loss_event = false;
  TimePoint largest_lost_sent_at;

  for (auto it = sent_.begin(); it != sent_.end();) {
    const std::uint64_t pn = it->first;
    SentPacket& sp = it->second;
    if (pn >= largest_acked_) break;
    const bool pn_lost =
        largest_acked_ >= pn + static_cast<std::uint64_t>(config_.packet_threshold);
    const bool time_lost = sp.sent_at + threshold <= now;
    if (pn_lost || time_lost) {
      largest_lost_sent_at = std::max(largest_lost_sent_at, sp.sent_at);
      on_packet_lost_internal(pn, sp);
      it = sent_.erase(it);
      loss_event = true;
    } else {
      ++it;
    }
  }

  if (loss_event) {
    // RFC 9002: one congestion reaction per round trip (the lost packet must
    // have been sent after the previous recovery started). The quiche-era
    // mode reacts to every loss detection batch, which is what makes a
    // single QUIC connection "react more strongly to losses" than the
    // parallel TCP pool (§3.3).
    const Duration eager_guard = (srtt_.is_zero() ? config_.initial_rtt : srtt_) * (1.0 / 3.0);
    const bool react = config_.once_per_round_reduction
                           ? largest_lost_sent_at > congestion_recovery_start_
                           : now >= congestion_recovery_start_ + eager_guard;
    if (react) {
      congestion_recovery_start_ = now;
      cc_->on_congestion_event(now);
      note_cc_event("congestion");
    }
    maybe_send();
  }
}

Duration QuicConnection::pto_interval() const {
  const Duration base = srtt_.is_zero() ? config_.initial_rtt : srtt_;
  Duration pto = base + std::max(rttvar_ * 4.0, config_.granularity) + config_.max_ack_delay;
  for (int i = 0; i < pto_count_; ++i) pto = pto * 2.0;
  return pto;
}

void QuicConnection::arm_loss_timer() {
  // Earliest time-threshold expiry among outstanding packets below the
  // largest acked; otherwise PTO from the most recent ack-eliciting send.
  if (sent_.empty()) {
    loss_timer_.cancel();
    return;
  }
  const Duration rtt = std::max(srtt_.is_zero() ? config_.initial_rtt : srtt_, latest_rtt_);
  const Duration threshold = std::max(rtt * config_.time_threshold, config_.granularity);

  if (config_.fast_forward) {
    // O(1) equivalent of the reference scans below. Two invariants make it
    // exact: every `sent_` entry is ack-eliciting (ack-only and MAX_DATA
    // control packets are never tracked), and `sent_at` is monotone in pn
    // (retransmissions always get new, larger pns). So the earliest
    // time-threshold candidate is the FIRST entry iff its pn is below the
    // largest acked, and the PTO base is the LAST entry's send time.
    const auto& first = *sent_.begin();
    if (first.first < largest_acked_) {
      loss_timer_.arm_at(std::max(first.second.sent_at + threshold, stack_->sim().now()),
                         [this] { on_loss_timer(); });
    } else {
      loss_timer_.arm_at(
          std::max(sent_.rbegin()->second.sent_at + pto_interval(), stack_->sim().now()),
          [this] { on_loss_timer(); });
    }
    return;
  }

  TimePoint earliest = TimePoint::infinite();
  for (const auto& [pn, sp] : sent_) {
    if (pn < largest_acked_) {
      earliest = std::min(earliest, sp.sent_at + threshold);
    }
  }
  if (!earliest.is_infinite()) {
    loss_timer_.arm_at(std::max(earliest, stack_->sim().now()), [this] { on_loss_timer(); });
    return;
  }
  // PTO path.
  TimePoint last_eliciting;
  for (const auto& [pn, sp] : sent_) {
    (void)pn;
    if (sp.ack_eliciting) last_eliciting = std::max(last_eliciting, sp.sent_at);
  }
  loss_timer_.arm_at(std::max(last_eliciting + pto_interval(), stack_->sim().now()),
                     [this] { on_loss_timer(); });
}

void QuicConnection::on_loss_timer() {
  const TimePoint now = stack_->sim().now();
  // Time-threshold losses first.
  const std::size_t before = stats_.packets_lost;
  detect_losses(now);
  if (stats_.packets_lost != before) {
    arm_loss_timer();
    return;
  }

  // PTO: probe by retransmitting the oldest un-acked content with a new pn.
  pto_count_++;
  stats_.ptos++;
  note_cc_event("pto");
  if (!sent_.empty()) {
    auto it = sent_.begin();
    SentPacket sp = it->second;
    const std::uint64_t pn = it->first;
    sent_.erase(it);
    if (sp.in_flight) {
      assert(bytes_in_flight_ >= sp.sent_bytes);
      bytes_in_flight_ -= sp.sent_bytes;
    }
    // Treat as lost for accounting (content re-queued, new pn assigned).
    stats_.packets_lost++;
    if (hooks.on_packet_lost) hooks.on_packet_lost(pn);
    if (sp.stream_len > 0) {
      stream_rtx_.emplace_front(sp.stream_offset, sp.stream_offset + sp.stream_len);
    }
    if (has_chunks(sp)) {
      util::SmallVector<MsgChunk, 8> all;
      for_each_chunk(sp, [this, &all](const MsgChunk& c) {
        if (c.unreliable) {
          stats_.datagrams_lost++;
          if (on_dgram_lost) on_dgram_lost(c.msg_id, c.total);
          return;
        }
        all.push_back(c);
      });
      while (!all.empty()) {
        msg_queue_.push_front(all.back());
        all.pop_back();
      }
    }
    if (sp.handshake && !established_ && is_client_) {
      send_handshake_packet();
    } else if (established_) {
      send_one_packet(/*force_probe=*/true);
    }
  }
  arm_loss_timer();
}

}  // namespace slp::quic
