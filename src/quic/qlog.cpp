#include "quic/qlog.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace slp::quic {

std::string_view to_string(QlogTrace::EventType type) {
  switch (type) {
    case QlogTrace::EventType::kPacketSent: return "packet_sent";
    case QlogTrace::EventType::kPacketReceived: return "packet_received";
    case QlogTrace::EventType::kPacketAcked: return "packet_acked";
    case QlogTrace::EventType::kPacketLost: return "packet_lost";
  }
  return "?";
}

void QlogTrace::attach(QuicConnection& conn, std::string title) {
  title_ = std::move(title);
  auto note = [this](Event event) {
    if (!have_reference_) {
      reference_ = event.at;
      have_reference_ = true;
    }
    events_.push_back(event);
  };
  conn.hooks.on_packet_sent = [note, &conn](std::uint64_t pn, TimePoint at,
                                            std::uint32_t bytes) {
    (void)conn;
    note(Event{at, EventType::kPacketSent, pn, bytes, Duration::zero()});
  };
  conn.hooks.on_packet_received = [note](std::uint64_t pn, TimePoint at) {
    note(Event{at, EventType::kPacketReceived, pn, 0, Duration::zero()});
  };
  conn.hooks.on_packet_acked = [note, &conn](std::uint64_t pn, Duration rtt) {
    note(Event{conn.sim().now(), EventType::kPacketAcked, pn, 0, rtt});
  };
  conn.hooks.on_packet_lost = [note, &conn](std::uint64_t pn) {
    note(Event{conn.sim().now(), EventType::kPacketLost, pn, 0, Duration::zero()});
  };
}

std::uint64_t QlogTrace::count(EventType type) const {
  std::uint64_t n = 0;
  for (const Event& event : events_) {
    if (event.type == type) ++n;
  }
  return n;
}

void QlogTrace::write_json(std::ostream& os) const {
  os << "{\"qlog_version\":\"0.4\",\"title\":" << obs::json_quote(title_) << ",\"traces\":[{"
     << "\"common_fields\":{\"time_format\":\"relative\",\"reference_time\":"
     << (have_reference_ ? reference_.to_seconds() : 0.0) << "},\"events\":[";
  bool first = true;
  for (const Event& event : events_) {
    if (!first) os << ",";
    first = false;
    const double rel_ms = (event.at - reference_).to_millis();
    os << "{\"time\":" << rel_ms << ",\"name\":\"transport:" << to_string(event.type)
       << "\",\"data\":{\"header\":{\"packet_number\":" << event.pn << "}";
    if (event.type == EventType::kPacketSent) {
      os << ",\"raw\":{\"length\":" << event.bytes << "}";
    }
    if (event.type == EventType::kPacketAcked) {
      os << ",\"latest_rtt\":" << event.rtt.to_millis();
    }
    os << "}}";
  }
  os << "]}]}";
}

std::string QlogTrace::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace slp::quic
