// quic.hpp — a QUIC transport model in the image of quiche at commit
// ba87786 (the implementation the paper used).
//
// Modelled properties the paper's methodology depends on:
//   * monotonically increasing packet numbers without gaps — retransmitted
//     data gets a NEW packet number, so every missing number at the receiver
//     is a genuine loss (§3.2's loss-measurement method);
//   * ACK frames carry ranges; the sender sees exactly which packets arrived
//     (upload loss measurement);
//   * RFC 9002 loss detection: packet threshold 3, time threshold 9/8 RTT,
//     PTO with exponential backoff;
//   * Cubic congestion control, NO PACING — quiche did not pace at that
//     commit, which the paper blames for the upload RTT inflation of the
//     messages workload (bursts of up to 25 kB hit the uplink queue at
//     line rate). `QuicConfig::pacing` exists for the ablation bench;
//   * connection-level flow control with initial max_data = 10 MB and
//     receive-window autotuning (§2);
//   * 1-RTT handshake; payloads are opaque to middleboxes (the `payload`
//     pointer models encryption: NATs/PEPs cannot parse or split it).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "sim/host.hpp"
#include "sim/packet_pool.hpp"
#include "tcp/congestion.hpp"
#include "util/small_vector.hpp"
#include "util/units.hpp"

namespace slp::quic {

struct QuicConfig {
  std::uint32_t max_payload = 1350;     ///< QUIC payload per UDP datagram
  std::uint32_t overhead = 42;          ///< IP+UDP+QUIC header+AEAD tag
  cc::CcAlgorithm algorithm = cc::CcAlgorithm::kCubic;
  std::uint32_t initial_window_segments = 10;

  /// quiche transport params from the paper: initial max_data /
  /// max_stream_data of 10 MB, then autotuned.
  std::uint64_t initial_max_data = 10ull * 1000 * 1000;
  bool autotune_flow_control = true;
  std::uint64_t max_flow_window = 512ull * 1000 * 1000;

  Duration max_ack_delay = Duration::millis(25);
  int ack_every = 2;                    ///< ack-eliciting packets per ACK
  int packet_threshold = 3;             ///< RFC 9002 §6.1.1
  double time_threshold = 9.0 / 8.0;    ///< RFC 9002 §6.1.2
  Duration initial_rtt = Duration::millis(333);
  Duration granularity = Duration::millis(1);

  /// quiche (at the paper's commit) does not pace; flip for the ablation.
  bool pacing = false;
  /// quiche (at the paper's commit) has no HyStart either: plain slow start
  /// overshoots the queue, and the resulting loss + slow cubic reconvergence
  /// is the single-connection penalty of §3.3.
  bool hystart = false;
  /// Packets released per send opportunity (ack clocking smooths bursts).
  int max_burst_packets = 10;
  /// RFC 9002 reduces the window at most once per round trip. quiche at the
  /// paper's commit reacted to loss more eagerly — the paper's explanation
  /// for single-connection H3 downloads trailing the parallel-TCP Ookla
  /// tests ("reacting more strongly to losses", §3.3). false = quiche-era.
  bool once_per_round_reduction = false;

  /// Algorithmic fast paths (O(1) loss-timer arming instead of full
  /// `sent_` scans). Behaviour is provably identical either way — the knob
  /// exists so the differential suite in tests/packet_path_test.cpp can pin
  /// fast-forward output byte-for-byte against the reference scans.
  bool fast_forward = true;
};

/// qlog-style event hooks, consumed by measure::LossAnalyzer & friends.
struct QuicEventHooks {
  std::function<void(std::uint64_t pn, TimePoint at, std::uint32_t bytes)> on_packet_sent;
  std::function<void(std::uint64_t pn, TimePoint at)> on_packet_received;
  /// Fired for every packet newly acknowledged; `rtt` = ack time - send time
  /// of *that* packet (the paper computes RTT "for every acknowledged
  /// packet" this way from the captures).
  std::function<void(std::uint64_t pn, Duration rtt)> on_packet_acked;
  std::function<void(std::uint64_t pn)> on_packet_lost;
};

class QuicStack;

class QuicConnection {
 public:
  // -- application API --------------------------------------------------

  /// Appends synthetic bytes to stream 0 (the H3 response/request body).
  void send_stream(std::uint64_t bytes);
  /// Sends one application message (datagram-like, but reliable: chunks are
  /// retransmitted on loss). Returns the message id.
  std::uint64_t send_message(std::uint64_t bytes);
  /// RFC 9221 DATAGRAM frame: congestion-controlled but NOT flow-controlled
  /// and NEVER retransmitted — a copy declared lost is simply gone (the
  /// sender hears about it via `on_dgram_lost`). `bytes` is clamped to the
  /// single-packet budget (`max_payload`); `cookie` is an opaque app tag
  /// echoed to both the receive and loss callbacks (frame id, seq, ...).
  /// Returns the datagram id.
  std::uint64_t send_datagram(std::uint32_t bytes, std::uint64_t cookie = 0);

  std::function<void()> on_established;
  /// In-order stream-0 delivery progress (newly delivered byte count).
  std::function<void(std::uint64_t)> on_stream_data;
  /// A complete message arrived. `queued_at` is when the sender queued it.
  std::function<void(std::uint64_t msg_id, std::uint64_t bytes, TimePoint queued_at)> on_message;
  /// An unreliable datagram arrived (exactly once per delivered copy; no
  /// reassembly, no ordering guarantee). `queued_at` = sender queue time.
  std::function<void(std::uint64_t dgram_id, std::uint64_t cookie, std::uint32_t bytes,
                     TimePoint queued_at)>
      on_dgram;
  /// Sender side: a datagram's carrying packet was declared lost; it will
  /// NOT be retransmitted. Spurious loss declarations can fire this even
  /// though the copy later arrives, exactly like real QUIC datagrams.
  std::function<void(std::uint64_t dgram_id, std::uint64_t cookie)> on_dgram_lost;
  std::function<void()> on_error;
  /// Sender-side stream progress: cumulative stream bytes acknowledged.
  /// Retransmitted ranges may be counted twice if the original also arrived
  /// (spurious loss), so treat this as monotone-but-approximate and use
  /// ">= total" completion checks.
  std::function<void(std::uint64_t)> on_stream_acked;

  QuicEventHooks hooks;

  // -- introspection -----------------------------------------------------

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t packets_lost = 0;        ///< declared lost by the sender
    std::uint64_t packets_acked = 0;
    std::uint64_t bytes_acked = 0;
    std::uint64_t stream_bytes_delivered = 0;
    std::uint64_t stream_bytes_acked = 0;   ///< sender side, approximate
    std::uint64_t messages_delivered = 0;
    std::uint64_t datagrams_sent = 0;       ///< unreliable sends queued
    std::uint64_t datagrams_delivered = 0;  ///< copies that arrived
    std::uint64_t datagrams_lost = 0;       ///< copies declared lost (no rtx)
    std::uint64_t ptos = 0;
    std::uint64_t largest_pn_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool established() const { return established_; }
  [[nodiscard]] Duration srtt() const { return srtt_; }
  [[nodiscard]] std::uint64_t cwnd_bytes() const { return cc_->cwnd_bytes(); }
  [[nodiscard]] std::uint64_t bytes_in_flight() const { return bytes_in_flight_; }
  [[nodiscard]] std::uint64_t flow_window() const { return local_max_data_; }
  [[nodiscard]] sim::Ipv4Addr remote_addr() const { return remote_addr_; }
  [[nodiscard]] std::uint16_t remote_port() const { return remote_port_; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] sim::Simulator& sim() const;

  ~QuicConnection();

 private:
  friend class QuicStack;

  // What one QUIC packet carried (the "encrypted" payload — opaque to the
  // network, reconstructed by the peer endpoint).
  struct MsgChunk {
    std::uint64_t msg_id = 0;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    bool last = false;
    /// RFC 9221 datagram: single-chunk, never split across packets, never
    /// re-queued on loss, bypasses flow control and reassembly. `total`
    /// carries the application cookie instead of a message length.
    bool unreliable = false;
    TimePoint queued_at;
    std::uint64_t total = 0;
  };
  /// Overflow segment for packets carrying more message chunks than fit
  /// inline in Payload: a pool-slot record chaining to the next segment.
  /// SentPacket shares the chain by reference — recording a sent packet is a
  /// refcount bump, not a chunk-vector copy.
  struct ChunkSeg {
    util::SmallVector<MsgChunk, 4> chunks;
    sim::PayloadRef next;  ///< further ChunkSeg, empty at the tail
  };
  struct AckFrame {
    std::uint64_t largest = 0;
    /// Host delay between receiving `largest` and sending this ACK; the
    /// sender subtracts it from the RTT sample (RFC 9002 §5.3).
    Duration ack_delay = Duration::zero();
    /// Inclusive [start, end] ranges, descending. Contiguous receive (the
    /// common case) is one range — inline storage keeps it off the heap.
    util::SmallVector<std::pair<std::uint64_t, std::uint64_t>, 2> ranges;
  };
  struct Payload {
    std::uint64_t pn = 0;
    bool handshake = false;
    bool ack_eliciting = false;
    // stream 0 frame
    std::uint64_t stream_offset = 0;
    std::uint32_t stream_len = 0;
    // message frames: first chunks inline, overflow in a pooled chain
    util::SmallVector<MsgChunk, 2> chunks;
    sim::PayloadRef extra;  ///< ChunkSeg chain
    // control
    std::uint64_t max_data = 0;  ///< 0 = absent
    std::optional<AckFrame> ack;
  };

  struct SentPacket {
    TimePoint sent_at;
    std::uint32_t sent_bytes = 0;  ///< wire bytes
    bool in_flight = false;        ///< counted toward bytes_in_flight
    bool ack_eliciting = false;
    bool handshake = false;
    std::uint64_t stream_offset = 0;
    std::uint32_t stream_len = 0;
    util::SmallVector<MsgChunk, 2> chunks;
    sim::PayloadRef extra;  ///< shared ChunkSeg chain (zero-copy)
    std::uint64_t max_data = 0;
  };

  /// Visits every message chunk of a Payload or SentPacket: the inline ones,
  /// then the pooled overflow chain.
  template <typename Rec, typename F>
  static void for_each_chunk(const Rec& rec, F&& f) {
    for (const MsgChunk& c : rec.chunks) f(c);
    for (const sim::PayloadRef* seg = &rec.extra; *seg;) {
      const ChunkSeg* s = seg->as<ChunkSeg>();
      for (const MsgChunk& c : s->chunks) f(c);
      seg = &s->next;
    }
  }
  template <typename Rec>
  [[nodiscard]] static bool has_chunks(const Rec& rec) {
    return !rec.chunks.empty() || static_cast<bool>(rec.extra);
  }
  /// Appends a chunk, spilling into the pooled chain once the inline slots
  /// are full. Only valid while the payload is still being built.
  static void append_chunk(Payload& p, const MsgChunk& c);

  QuicConnection(QuicStack& stack, sim::Ipv4Addr remote_addr, std::uint16_t remote_port,
                 std::uint16_t local_port, QuicConfig config, bool is_client);

  void start_connect();
  void on_datagram(const sim::Packet& pkt);
  void process_ack(const AckFrame& ack, TimePoint now);
  void detect_losses(TimePoint now);
  void on_packet_lost_internal(std::uint64_t pn, SentPacket& sp);
  void deliver_stream(std::uint64_t offset, std::uint32_t len);
  void deliver_chunks(const Payload& payload);
  void maybe_send();
  void send_one_packet(bool force_probe);
  void send_handshake_packet();
  void queue_ack_if_needed();
  void send_ack_only();
  void arm_loss_timer();
  void on_loss_timer();
  /// Records a congestion-control transition (counter + trace instant).
  void note_cc_event(const char* what);
  void update_rtt(Duration sample);
  void maybe_send_max_data();
  [[nodiscard]] Duration pto_interval() const;
  [[nodiscard]] bool has_data_to_send() const;
  [[nodiscard]] AckFrame build_ack() const;

  QuicStack* stack_;
  sim::Ipv4Addr remote_addr_;
  std::uint16_t remote_port_;
  std::uint16_t local_port_;
  QuicConfig config_;
  bool is_client_;
  bool established_ = false;
  bool handshake_sent_ = false;
  std::unique_ptr<cc::CongestionController> cc_;
  std::uint64_t flow_id_ = 0;
  std::uint64_t cwnd_probe_id_ = 0;  ///< "quic.cwnd" sampler probe

  // --- send state ---
  std::uint64_t next_pn_ = 0;
  std::map<std::uint64_t, SentPacket> sent_;
  std::uint64_t bytes_in_flight_ = 0;
  std::uint64_t largest_acked_ = 0;
  bool anything_acked_ = false;

  // stream 0 sender
  std::uint64_t stream_length_ = 0;
  std::uint64_t stream_next_offset_ = 0;
  /// Lost stream ranges awaiting re-send (new pns), [offset, end).
  std::deque<std::pair<std::uint64_t, std::uint64_t>> stream_rtx_;

  // message sender
  std::uint64_t next_msg_id_ = 0;
  std::uint64_t next_dgram_id_ = 0;
  std::deque<MsgChunk> msg_queue_;  ///< chunks not yet sent (incl. rtx)

  // flow control (sender view of peer's window)
  std::uint64_t peer_max_data_;
  std::uint64_t flow_bytes_sent_ = 0;  ///< stream+message bytes charged

  // --- receive state ---
  std::map<std::uint64_t, std::uint64_t> recv_pn_ranges_;  ///< [start, end] inclusive
  std::uint64_t largest_recv_pn_ = 0;
  TimePoint largest_recv_at_;
  bool any_received_ = false;
  int unacked_eliciting_ = 0;
  sim::Timer ack_timer_;

  // stream 0 receiver
  std::map<std::uint64_t, std::uint64_t> stream_ooo_;  ///< [start, end)
  std::uint64_t stream_delivered_ = 0;

  // message receiver
  struct MsgReassembly {
    std::map<std::uint64_t, std::uint64_t> ranges;  ///< received [start, end)
    std::uint64_t received = 0;
    std::uint64_t total = 0;
    TimePoint queued_at;
    bool done = false;
  };
  std::map<std::uint64_t, MsgReassembly> reassembly_;

  // flow control (receiver side)
  std::uint64_t local_max_data_;
  std::uint64_t flow_window_size_;     ///< autotuned credit granted ahead
  std::uint64_t flow_bytes_received_ = 0;
  std::uint64_t last_max_data_sent_;

  // --- timers / RTT ---
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  Duration latest_rtt_ = Duration::zero();
  Duration min_rtt_ = Duration::infinite();
  sim::Timer loss_timer_;
  sim::Timer pacing_timer_;
  int pto_count_ = 0;
  TimePoint next_send_time_;      ///< pacing release time
  TimePoint congestion_recovery_start_;  ///< one CC reaction per round

  Stats stats_;
};

/// Per-host QUIC endpoint: UDP demultiplexing + connection ownership.
class QuicStack {
 public:
  explicit QuicStack(sim::Host& host);
  ~QuicStack();

  QuicStack(const QuicStack&) = delete;
  QuicStack& operator=(const QuicStack&) = delete;

  QuicConnection& connect(sim::Ipv4Addr remote_addr, std::uint16_t remote_port,
                          QuicConfig config = {});
  void listen(std::uint16_t port, std::function<void(QuicConnection&)> on_accept,
              QuicConfig config = {});

  [[nodiscard]] sim::Host& host() { return *host_; }
  [[nodiscard]] sim::Simulator& sim() { return host_->sim(); }
  [[nodiscard]] std::size_t connection_count() const { return connections_.size(); }
  void gc();

 private:
  friend class QuicConnection;

  struct ConnKey {
    std::uint16_t local_port;
    sim::Ipv4Addr remote_addr;
    std::uint16_t remote_port;
    auto operator<=>(const ConnKey&) const = default;
  };
  struct Listener {
    QuicConfig config;
    std::function<void(QuicConnection&)> on_accept;
  };

  void dispatch(std::uint16_t local_port, const sim::Packet& pkt);
  void transmit(sim::Packet pkt) { host_->send(std::move(pkt)); }

  sim::Host* host_;
  std::map<std::uint16_t, Listener> listeners_;
  std::map<ConnKey, std::unique_ptr<QuicConnection>> connections_;
  std::set<std::uint16_t> bound_ports_;
};

}  // namespace slp::quic
