// qlog.hpp — qlog-style event tracing for QUIC connections.
//
// The paper's artifact ships >530 GB of QUIC packet captures with keys; the
// model equivalent is a structured event trace per connection. QlogTrace
// subscribes to a connection's hooks and serializes to a draft-qlog-like
// JSON document (one trace, packet_sent/packet_received/packet_acked/
// packet_lost events with relative timestamps), so external tooling can
// consume simulated transfers the way the paper's analysis consumed qlogs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "quic/quic.hpp"

namespace slp::quic {

class QlogTrace {
 public:
  enum class EventType : std::uint8_t {
    kPacketSent,
    kPacketReceived,
    kPacketAcked,
    kPacketLost,
  };

  struct Event {
    TimePoint at;
    EventType type;
    std::uint64_t pn = 0;
    std::uint32_t bytes = 0;        ///< packet_sent only
    Duration rtt = Duration::zero();  ///< packet_acked only
  };

  /// Subscribes to the connection's hooks (replacing any existing ones) and
  /// records every event until detach or destruction of the connection.
  void attach(QuicConnection& conn, std::string title);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Counts of each event type.
  [[nodiscard]] std::uint64_t count(EventType type) const;

  /// Serializes to a qlog-flavored JSON document.
  [[nodiscard]] std::string to_json() const;
  void write_json(std::ostream& os) const;

 private:
  std::string title_;
  TimePoint reference_;
  bool have_reference_ = false;
  std::vector<Event> events_;
};

[[nodiscard]] std::string_view to_string(QlogTrace::EventType type);

}  // namespace slp::quic
