#include "mbox/tracebox.hpp"

#include <algorithm>

namespace slp::mbox {

Tracebox::Tracebox(sim::Host& host, Config config)
    : host_{&host}, config_{config}, timeout_timer_{host.sim()} {}

Tracebox::~Tracebox() {
  if (listening_) host_->remove_error_listener(listener_id_);
  if (probe_port_ != 0) host_->unbind(sim::Protocol::kTcp, probe_port_);
}

void Tracebox::start() {
  // Phase 1: UDP hop distance.
  Traceroute::Config udp_cfg;
  udp_cfg.target = config_.target;
  udp_cfg.max_hops = config_.max_hops;
  udp_cfg.hop_timeout = config_.hop_timeout;
  udp_phase_ = std::make_unique<Traceroute>(*host_, udp_cfg);
  udp_phase_->on_complete = [this](const std::vector<Traceroute::Hop>& hops) {
    for (const auto& hop : hops) {
      if (hop.reached_destination) report_.destination_distance = hop.ttl;
    }
    start_tcp_phase();
  };
  udp_phase_->start();
}

void Tracebox::start_tcp_phase() {
  tcp_running_ = true;
  listening_ = true;
  listener_id_ = host_->add_error_listener([this](const sim::Packet& pkt) { on_icmp(pkt); });
  probe_port_ = host_->ephemeral_port();
  host_->bind(sim::Protocol::kTcp, probe_port_, [this](const sim::Packet& pkt) {
    if (!tcp_running_ || !pkt.tcp || !pkt.tcp->syn || !pkt.tcp->ack_flag) return;
    // SYN/ACK observed for the current TTL.
    report_.hops.push_back(HopObservation{current_ttl_, pkt.src, true, {}});
    report_.handshake_ttl = current_ttl_;
    timeout_timer_.cancel();
    finish();
  });
  probe_next();
}

void Tracebox::probe_next() {
  ++current_ttl_;
  probe_seq_ = 1000ull + static_cast<std::uint64_t>(current_ttl_);

  sim::Packet probe;
  probe.src = host_->addr();
  probe.dst = config_.target;
  probe.src_port = probe_port_;
  probe.dst_port = config_.port;
  probe.proto = sim::Protocol::kTcp;
  probe.size_bytes = 60;
  probe.ttl = static_cast<std::uint8_t>(current_ttl_);
  sim::TcpHeader hdr;
  hdr.seq = probe_seq_;
  hdr.syn = true;
  hdr.window = 65'535;
  probe.tcp = std::move(hdr);
  sim::refresh_checksum(probe);
  sent_checksum_ = probe.checksum;
  host_->send(std::move(probe));

  timeout_timer_.arm(config_.hop_timeout, [this] {
    if (current_ttl_ >= config_.max_hops) {
      finish();
    } else {
      probe_next();
    }
  });
}

void Tracebox::on_icmp(const sim::Packet& pkt) {
  if (!tcp_running_ || !pkt.icmp || !pkt.icmp->quoted) return;
  const sim::Packet& quoted = *pkt.icmp->quoted;
  if (quoted.proto != sim::Protocol::kTcp || quoted.src_port != probe_port_) return;

  HopObservation hop;
  hop.ttl = current_ttl_;
  hop.reporter = pkt.src;
  // Diff the quoted header against what we sent. TTL differs by design and
  // is ignored; everything else a middlebox touched shows up here.
  if (quoted.checksum != sent_checksum_) hop.modified_fields.emplace_back("tcp-checksum");
  if (quoted.src != host_->addr()) hop.modified_fields.emplace_back("ip-saddr");
  if (quoted.src_port != probe_port_) hop.modified_fields.emplace_back("tcp-sport");
  if (quoted.tcp && quoted.tcp->seq != probe_seq_) hop.modified_fields.emplace_back("tcp-seq");
  if (quoted.dst != config_.target) hop.modified_fields.emplace_back("ip-daddr");
  report_.hops.push_back(hop);

  timeout_timer_.cancel();
  if (current_ttl_ >= config_.max_hops) {
    finish();
  } else {
    probe_next();
  }
}

void Tracebox::finish() {
  tcp_running_ = false;
  timeout_timer_.cancel();
  if (listening_) {
    host_->remove_error_listener(listener_id_);
    listening_ = false;
  }
  if (probe_port_ != 0) {
    host_->unbind(sim::Protocol::kTcp, probe_port_);
    probe_port_ = 0;
  }

  for (const HopObservation& hop : report_.hops) {
    for (const std::string& field : hop.modified_fields) {
      if (field == "tcp-checksum") report_.nat_detected = true;
      if (std::find(report_.all_modified_fields.begin(), report_.all_modified_fields.end(),
                    field) == report_.all_modified_fields.end()) {
        report_.all_modified_fields.push_back(field);
      }
    }
  }
  // PEP signature: the handshake completed before the destination distance.
  report_.pep_detected = report_.handshake_ttl > 0 &&
                         report_.destination_distance > 0 &&
                         report_.handshake_ttl < report_.destination_distance;
  if (on_complete) on_complete(report_);
}

}  // namespace slp::mbox
