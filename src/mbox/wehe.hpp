// wehe.hpp — traffic-discrimination detection by differential replay
// (Li et al., SIGCOMM'19), as run in §3.5 of the paper.
//
// Wehe replays a recorded application trace twice: once as-is (an operator's
// DPI can classify it) and once with the payload randomized (classification
// impossible). A consistent throughput gap between the two exposes
// differentiation. Our model carries the classifiability in the packets'
// dscp marker; the DscpPolicer below is the shaping middlebox a
// discriminating operator would deploy (none exists on the Starlink path —
// the paper found no TD either).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/host.hpp"
#include "sim/link.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace slp::mbox {

/// Well-known content markers for the replayed services.
enum class ContentMarker : std::uint8_t {
  kNone = 0,
  kVideoStreaming = 10,  ///< e.g. Netflix/YouTube replays
  kVideoCall = 20,       ///< e.g. Zoom/Skype replays
};

/// Token-bucket policer that throttles classified traffic: the middlebox a
/// discriminating operator installs. Attach to a link as its loss model.
class DscpPolicer final : public sim::LossModel {
 public:
  struct Config {
    std::uint8_t match_dscp = 10;
    DataRate limit = DataRate::mbps(4);
    std::size_t bucket_bytes = 64 * 1024;
  };

  explicit DscpPolicer(Config config)
      : config_{config}, tokens_{static_cast<double>(config.bucket_bytes)} {}

  [[nodiscard]] bool should_drop(TimePoint now, const sim::Packet& pkt) override;

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  Config config_;
  double tokens_;
  TimePoint last_refill_;
  std::uint64_t dropped_ = 0;
};

/// Server side: streams a paced trace toward whoever asks. The request's
/// dscp chooses the marker of the returned traffic (original replay carries
/// the content marker; the randomized replay carries none).
class WeheServer {
 public:
  struct Config {
    std::uint16_t port = 9090;
    DataRate trace_rate = DataRate::mbps(8);  ///< video-like replay bitrate
    Duration trace_duration = Duration::seconds(8);
    std::uint32_t packet_bytes = 1250;
  };

  WeheServer(sim::Host& host, Config config);
  explicit WeheServer(sim::Host& host) : WeheServer(host, Config{}) {}

 private:
  void stream(sim::Ipv4Addr dst, std::uint16_t dst_port, std::uint8_t dscp);

  sim::Host* host_;
  Config config_;
  std::vector<std::unique_ptr<sim::Timer>> timers_;
};

/// Client side: runs `repetitions` paired replays and reports.
class WeheClient {
 public:
  struct Config {
    sim::Ipv4Addr server = 0;
    std::uint16_t server_port = 9090;
    ContentMarker marker = ContentMarker::kVideoStreaming;
    int repetitions = 10;  ///< the paper launched the full suite 10 times
    Duration replay_duration = Duration::seconds(8);
    Duration gap = Duration::seconds(1);
    /// Relative throughput difference flagged as differentiation.
    double detection_threshold = 0.10;
  };

  struct Report {
    std::vector<double> original_mbps;
    std::vector<double> randomized_mbps;
    double mean_original_mbps = 0.0;
    double mean_randomized_mbps = 0.0;
    bool differentiation_detected = false;
  };

  WeheClient(sim::Host& host, Config config);
  ~WeheClient();

  void start();
  std::function<void(const Report&)> on_complete;

 private:
  void run_replay(bool original);
  void replay_done();

  sim::Host* host_;
  Config config_;
  Report report_;
  std::uint16_t local_port_ = 0;
  std::uint64_t received_bytes_ = 0;
  int replays_done_ = 0;
  sim::Timer timer_;
};

}  // namespace slp::mbox
