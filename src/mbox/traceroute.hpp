// traceroute.hpp — classic UDP traceroute (§3.5 "PEPs and middleboxes").
//
// Sends probes with increasing TTL and records the ICMP time-exceeded
// reporters; the paper's run over Starlink surfaces 192.168.1.1 (CPE) and
// 100.64.0.1 (carrier-grade NAT) as the first two hops.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/host.hpp"
#include "sim/simulator.hpp"

namespace slp::mbox {

class Traceroute {
 public:
  struct Config {
    sim::Ipv4Addr target = 0;
    int max_hops = 16;
    Duration hop_timeout = Duration::seconds(2);
    std::uint16_t base_port = 33434;
  };

  struct Hop {
    int ttl = 0;
    sim::Ipv4Addr reporter = 0;  ///< 0 = no reply (silent hop)
    Duration rtt = Duration::zero();
    bool reached_destination = false;
  };

  Traceroute(sim::Host& host, Config config);
  ~Traceroute();

  void start();
  std::function<void(const std::vector<Hop>&)> on_complete;

 private:
  void probe_next();
  void finish();

  sim::Host* host_;
  Config config_;
  std::vector<Hop> hops_;
  int current_ttl_ = 0;
  TimePoint probe_sent_;
  std::uint16_t probe_port_ = 0;
  std::uint64_t listener_id_ = 0;
  bool listening_ = false;
  bool running_ = false;
  sim::Timer timeout_timer_;
};

}  // namespace slp::mbox
