// tracebox.hpp — middlebox interference detection (Detal et al., IMC'13),
// as used in §3.5 of the paper.
//
// Two phases:
//   1. UDP traceroute to locate the destination's hop distance;
//   2. TCP SYN probes with increasing TTL. Each ICMP time-exceeded quotes
//      the probe *as seen at that hop*: diffing the quote against the sent
//      header reveals rewrites (the paper: "only the TCP and UDP checksums
//      are altered by the NATs"). A SYN/ACK arriving while the TTL could
//      not yet have reached the destination unmasks a PEP terminating the
//      handshake mid-path ("the TCP handshake is correctly performed in the
//      destination network" = no PEP).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mbox/traceroute.hpp"
#include "sim/host.hpp"

namespace slp::mbox {

class Tracebox {
 public:
  struct Config {
    sim::Ipv4Addr target = 0;
    std::uint16_t port = 80;
    int max_hops = 16;
    Duration hop_timeout = Duration::seconds(2);
  };

  struct HopObservation {
    int ttl = 0;
    sim::Ipv4Addr reporter = 0;
    bool synack = false;  ///< handshake answered at this TTL
    std::vector<std::string> modified_fields;  ///< e.g. "tcp-checksum"
  };

  struct Report {
    std::vector<HopObservation> hops;
    int destination_distance = -1;  ///< hops to target (UDP phase)
    int handshake_ttl = -1;         ///< smallest TTL that produced a SYN/ACK
    bool nat_detected = false;      ///< some hop rewrote the checksum
    bool pep_detected = false;      ///< SYN/ACK from inside the path
    /// Union of all fields any hop modified.
    std::vector<std::string> all_modified_fields;
  };

  Tracebox(sim::Host& host, Config config);
  ~Tracebox();

  void start();
  std::function<void(const Report&)> on_complete;

 private:
  void start_tcp_phase();
  void probe_next();
  void on_icmp(const sim::Packet& pkt);
  void finish();

  sim::Host* host_;
  Config config_;
  Report report_;
  std::unique_ptr<Traceroute> udp_phase_;
  int current_ttl_ = 0;
  std::uint16_t probe_port_ = 0;
  std::uint64_t probe_seq_ = 0;
  std::uint16_t sent_checksum_ = 0;
  std::uint64_t listener_id_ = 0;
  bool listening_ = false;
  bool tcp_running_ = false;
  sim::Timer timeout_timer_;
};

}  // namespace slp::mbox
