#include "mbox/wehe.hpp"

#include <algorithm>
#include <cmath>

namespace slp::mbox {

// ----------------------------------------------------------- DscpPolicer

bool DscpPolicer::should_drop(TimePoint now, const sim::Packet& pkt) {
  if (pkt.dscp != config_.match_dscp) return false;
  // Refill the bucket for the elapsed interval.
  const double elapsed_s = (now - last_refill_).to_seconds();
  last_refill_ = now;
  tokens_ = std::min(static_cast<double>(config_.bucket_bytes),
                     tokens_ + elapsed_s * config_.limit.bits_per_second() / 8.0);
  if (tokens_ >= pkt.size_bytes) {
    tokens_ -= pkt.size_bytes;
    return false;
  }
  dropped_++;
  return true;
}

// ----------------------------------------------------------- WeheServer

WeheServer::WeheServer(sim::Host& host, Config config) : host_{&host}, config_{config} {
  host.bind(sim::Protocol::kUdp, config_.port, [this](const sim::Packet& request) {
    stream(request.src, request.src_port, request.dscp);
  });
}

void WeheServer::stream(sim::Ipv4Addr dst, std::uint16_t dst_port, std::uint8_t dscp) {
  const Duration spacing = config_.trace_rate.transmission_time(config_.packet_bytes);
  const auto packets = static_cast<int>(config_.trace_duration / spacing);
  auto timer = std::make_unique<sim::Timer>(host_->sim());
  sim::Timer* t = timer.get();
  timers_.push_back(std::move(timer));

  auto remaining = std::make_shared<int>(packets);
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, dst, dst_port, dscp, remaining, t, tick, spacing] {
    if (--*remaining < 0) return;
    sim::Packet pkt;
    pkt.dst = dst;
    pkt.dst_port = dst_port;
    pkt.src_port = config_.port;
    pkt.proto = sim::Protocol::kUdp;
    pkt.size_bytes = config_.packet_bytes;
    pkt.dscp = dscp;
    host_->send(std::move(pkt));
    if (*remaining > 0) t->arm(spacing, [tick] { (*tick)(); });
  };
  (*tick)();
}

// ----------------------------------------------------------- WeheClient

WeheClient::WeheClient(sim::Host& host, Config config)
    : host_{&host}, config_{config}, timer_{host.sim()} {
  local_port_ = host.ephemeral_port();
}

WeheClient::~WeheClient() { host_->unbind(sim::Protocol::kUdp, local_port_); }

void WeheClient::start() {
  host_->bind(sim::Protocol::kUdp, local_port_,
              [this](const sim::Packet& pkt) { received_bytes_ += pkt.size_bytes; });
  run_replay(/*original=*/true);
}

void WeheClient::run_replay(bool original) {
  received_bytes_ = 0;
  sim::Packet request;
  request.dst = config_.server;
  request.dst_port = config_.server_port;
  request.src_port = local_port_;
  request.proto = sim::Protocol::kUdp;
  request.size_bytes = 100;
  request.dscp = original ? static_cast<std::uint8_t>(config_.marker)
                          : static_cast<std::uint8_t>(ContentMarker::kNone);
  host_->send(std::move(request));

  // Measure for the replay duration plus slack for the last packets.
  timer_.arm(config_.replay_duration + Duration::seconds(1), [this] { replay_done(); });
}

void WeheClient::replay_done() {
  const double mbps =
      received_bytes_ * 8.0 / config_.replay_duration.to_seconds() / 1e6;
  const bool was_original = replays_done_ % 2 == 0;
  (was_original ? report_.original_mbps : report_.randomized_mbps).push_back(mbps);
  ++replays_done_;

  if (replays_done_ >= 2 * config_.repetitions) {
    auto mean = [](const std::vector<double>& v) {
      double sum = 0.0;
      for (const double x : v) sum += x;
      return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
    };
    report_.mean_original_mbps = mean(report_.original_mbps);
    report_.mean_randomized_mbps = mean(report_.randomized_mbps);
    const double larger =
        std::max(report_.mean_original_mbps, report_.mean_randomized_mbps);
    if (larger > 0.0) {
      const double diff =
          std::abs(report_.mean_original_mbps - report_.mean_randomized_mbps) / larger;
      report_.differentiation_detected = diff > config_.detection_threshold;
    }
    if (on_complete) on_complete(report_);
    return;
  }
  timer_.arm(config_.gap, [this] {
    run_replay(/*original=*/replays_done_ % 2 == 0);
  });
}

}  // namespace slp::mbox
