#include "mbox/traceroute.hpp"

namespace slp::mbox {

Traceroute::Traceroute(sim::Host& host, Config config)
    : host_{&host}, config_{config}, timeout_timer_{host.sim()} {}

Traceroute::~Traceroute() {
  if (listening_) host_->remove_error_listener(listener_id_);
}

void Traceroute::start() {
  running_ = true;
  listening_ = true;
  listener_id_ = host_->add_error_listener([this](const sim::Packet& pkt) {
    if (!running_ || !pkt.icmp || !pkt.icmp->quoted) return;
    if (pkt.icmp->quoted->src_port != probe_port_) return;  // not our probe
    Hop& hop = hops_.back();
    hop.reporter = pkt.src;
    hop.rtt = host_->sim().now() - probe_sent_;
    hop.reached_destination = pkt.icmp->type == sim::IcmpType::kDestUnreachable &&
                              pkt.src == config_.target;
    timeout_timer_.cancel();
    if (hop.reached_destination || current_ttl_ >= config_.max_hops) {
      finish();
    } else {
      probe_next();
    }
  });
  probe_next();
}

void Traceroute::probe_next() {
  ++current_ttl_;
  hops_.push_back(Hop{current_ttl_, 0, Duration::zero(), false});
  probe_port_ = host_->ephemeral_port();
  probe_sent_ = host_->sim().now();

  sim::Packet probe;
  probe.dst = config_.target;
  probe.src_port = probe_port_;
  probe.dst_port = static_cast<std::uint16_t>(config_.base_port + current_ttl_);
  probe.proto = sim::Protocol::kUdp;
  probe.size_bytes = 60;
  probe.ttl = static_cast<std::uint8_t>(current_ttl_);
  host_->send(std::move(probe));

  timeout_timer_.arm(config_.hop_timeout, [this] {
    // Silent hop: leave reporter 0 and continue.
    if (current_ttl_ >= config_.max_hops) {
      finish();
    } else {
      probe_next();
    }
  });
}

void Traceroute::finish() {
  running_ = false;
  timeout_timer_.cancel();
  if (listening_) {
    host_->remove_error_listener(listener_id_);
    listening_ = false;
  }
  if (on_complete) on_complete(hops_);
}

}  // namespace slp::mbox
