// vc.hpp — videoconference QoE over QUIC datagrams.
//
// Models an RTP-like call riding the QUIC datagram extension (RFC 9221
// semantics: congestion-controlled, never retransmitted): fixed-cadence
// frames in both directions, each split into MTU-sized datagrams, a fixed
// jitter-buffer playout deadline at the receiver, and an E-model-style MOS
// per window computed from the playout delay and the share of frames that
// missed their deadline. "A Multifaceted Look at Starlink Performance"
// (PAPERS.md) runs exactly this shape of experiment and sees MOS dips at the
// 15 s handover-slot boundaries — the per-window timestamps exported here
// let the campaign reproduce that clustering.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "quic/quic.hpp"
#include "util/units.hpp"

namespace slp::qoe {

/// ITU-T G.107 E-model, reduced to the terms this experiment moves:
///   R = 93.2 - Id(delay) - Ie_eff(loss),  Id = 0.024d + 0.11(d-177.3)H(d-177.3)
///   Ie_eff = (95 - 0) * Ppl / (Ppl + Bpl)
/// mapped to MOS by the standard cubic. `delay_ms` is mouth-to-ear one-way
/// delay, `loss_pct` in [0, 100], `bpl` the codec's loss robustness.
[[nodiscard]] double emodel_mos(double delay_ms, double loss_pct, double bpl = 16.0);

class VcSession {
 public:
  struct Config {
    double frame_rate = 30.0;                   ///< frames per second, each way
    DataRate up = DataRate::mbps(2.5);          ///< client -> server video
    DataRate down = DataRate::mbps(2.5);        ///< server -> client video
    Duration duration = Duration::minutes(1);
    Duration playout_delay = Duration::millis(120);  ///< jitter-buffer depth
    double codec_delay_ms = 25.0;               ///< capture+encode+decode
    Duration window = Duration::seconds(1);     ///< MOS evaluation window
    double bpl = 16.0;                          ///< E-model loss robustness
    std::uint32_t dgram_bytes = 1200;           ///< per-datagram payload cap
  };

  /// One MOS evaluation window of one direction.
  struct Window {
    TimePoint mid;          ///< capture-time middle of the window
    double mos = 0.0;
    double loss_pct = 0.0;  ///< frames late or missing at their deadline
  };

  struct DirMetrics {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_playable = 0;
    std::uint64_t frames_missed = 0;   ///< not complete at the deadline
    std::uint64_t datagrams_lost = 0;  ///< sender-side loss declarations
    std::vector<Window> windows;
    /// Per-playable-frame network transit (capture -> fully arrived), ms.
    std::vector<double> transit_ms;
  };

  struct Metrics {
    DirMetrics up;    ///< client -> server
    DirMetrics down;  ///< server -> client
  };

  /// `client` must be a fresh client-side connection; the campaign's
  /// listener hands the accepted server end over via attach_server() before
  /// the handshake completes (see AbrVideoSession).
  VcSession(quic::QuicConnection& client, Config config);

  void attach_server(quic::QuicConnection& server);
  void start();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  std::function<void(const Metrics&)> on_complete;

 private:
  /// One direction of the call: a sender clocking frames out of `conn` and
  /// the matching receiver/jitter-buffer state living on the peer's hooks.
  struct Dir {
    quic::QuicConnection* conn = nullptr;  ///< sending end
    DirMetrics* metrics = nullptr;
    std::uint64_t frame_bytes = 0;
    std::uint32_t parts_per_frame = 1;
    std::uint64_t next_frame = 0;       ///< sender frame counter
    std::uint64_t next_final = 0;       ///< oldest frame not yet finalized
    std::int64_t window_index = -1;     ///< capture window being accumulated
    std::uint64_t window_due = 0;
    std::uint64_t window_bad = 0;
    /// frame id -> datagram parts arrived (erased once finalized).
    std::map<std::uint64_t, std::uint32_t> arrived;
    std::map<std::uint64_t, TimePoint> complete_at;
  };

  void wire_receiver(Dir& dir, quic::QuicConnection& receiving_end);
  void send_frame(Dir& dir);
  void finalize_due(Dir& dir);
  void flush_window(Dir& dir);
  void finish();
  [[nodiscard]] TimePoint capture_time(std::uint64_t frame) const;

  quic::QuicConnection* client_;
  quic::QuicConnection* server_ = nullptr;
  Config config_;
  Metrics metrics_;
  Dir up_;
  Dir down_;
  TimePoint start_;
  std::uint64_t frames_total_ = 0;  ///< per direction
  bool finished_ = false;
  sim::Timer tick_timer_;   ///< drives both directions' frame cadence
  sim::Timer drain_timer_;  ///< finalizes the tail after the last frame
};

}  // namespace slp::qoe
