#include "qoe/game.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "sim/packet_pool.hpp"
#include "sim/provenance.hpp"
#include "sim/simulator.hpp"

namespace slp::qoe {

namespace {
/// Opaque tick payload (the "encrypted" game protocol): the sequence number
/// the snapshot echoes back.
struct TickPayload {
  std::uint64_t seq = 0;
};
}  // namespace

bool LagDetector::add(double rtt_ms) {
  bool spike = config_.abs_ms > 0.0 && rtt_ms > config_.abs_ms;
  if (!spike && static_cast<int>(window_.size()) >= config_.min_samples) {
    const double med = median();
    spike = rtt_ms > med * config_.factor && rtt_ms > med + config_.floor_ms;
  }
  window_.push_back(rtt_ms);
  if (static_cast<int>(window_.size()) > config_.window) window_.pop_front();
  return spike;
}

double LagDetector::median() const {
  if (window_.empty()) return 0.0;
  std::vector<double> tmp(window_.begin(), window_.end());
  const std::size_t mid = tmp.size() / 2;
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(mid), tmp.end());
  return tmp[mid];
}

GameSession::GameSession(sim::Host& client, sim::Host& server, Config config)
    : client_{&client},
      server_{&server},
      config_{config},
      detector_{config.detector},
      tick_timer_{client.sim()},
      drain_timer_{client.sim()} {
  ticks_total_ = static_cast<std::uint64_t>(config_.duration.to_seconds() * config_.tick_rate);
  flow_id_ = client.sim().next_flow_id();
}

GameSession::~GameSession() {
  if (client_port_ != 0) client_->unbind(sim::Protocol::kUdp, client_port_);
  if (server_bound_) server_->unbind(sim::Protocol::kUdp, config_.server_port);
}

void GameSession::start() {
  client_port_ = client_->ephemeral_port();
  metrics_.ticks.reserve(ticks_total_);
  // Server: echo every input tick as a state snapshot, continuing the tick's
  // provenance journey so the client's tag covers the full round trip (the
  // same idiom as the ICMP echo responder).
  server_->bind(sim::Protocol::kUdp, config_.server_port, [this](const sim::Packet& pkt) {
    sim::Packet snap;
    snap.dst = pkt.src;
    snap.src_port = config_.server_port;
    snap.dst_port = pkt.src_port;
    snap.proto = sim::Protocol::kUdp;
    snap.size_bytes = config_.server_bytes;
    snap.flow_id = pkt.flow_id;
    snap.payload = pkt.payload;
    snap.prov = pkt.prov;
    server_->send(std::move(snap));
  });
  server_bound_ = true;
  client_->bind(sim::Protocol::kUdp, client_port_,
                [this](const sim::Packet& pkt) { on_snapshot(pkt); });
  tick();
}

void GameSession::tick() {
  if (next_seq_ >= ticks_total_) return;
  const std::uint64_t seq = next_seq_++;
  Tick t;
  t.sent_at = client_->sim().now();
  metrics_.ticks.push_back(t);

  sim::Packet pkt;
  pkt.dst = server_->addr();
  pkt.src_port = client_port_;
  pkt.dst_port = config_.server_port;
  pkt.proto = sim::Protocol::kUdp;
  pkt.size_bytes = config_.client_bytes;
  pkt.flow_id = flow_id_;
  pkt.payload = sim::PacketPool::local().make<TickPayload>(seq);
  client_->send(std::move(pkt));

  // Resolve ticks old enough that their snapshot is presumed gone.
  while (next_timeout_check_ + static_cast<std::uint64_t>(config_.timeout_ticks) <= seq) {
    mark_lost(next_timeout_check_++);
  }

  if (next_seq_ < ticks_total_) {
    tick_timer_.arm(Duration::from_seconds(1.0 / config_.tick_rate), [this] { tick(); });
  } else {
    // Give the last snapshots their timeout window, then close the books.
    drain_timer_.arm(
        Duration::from_seconds(config_.timeout_ticks / config_.tick_rate) + Duration::millis(50),
        [this] { finish(); });
  }
}

void GameSession::on_snapshot(const sim::Packet& pkt) {
  const TickPayload* tp = pkt.payload.as<TickPayload>();
  if (tp == nullptr || tp->seq >= metrics_.ticks.size()) return;
  Tick& t = metrics_.ticks[static_cast<std::size_t>(tp->seq)];
  if (t.lost) {
    // The snapshot straggled in past its timeout: the tick stays lost, but
    // its provenance tells *why* — a disconnected-path stall marks the
    // outage as handover-caused rather than random medium loss.
    if (t.handover_stall_ns == 0) {
      if (const sim::ProvenanceTag* tag = sim::prov_tag(pkt)) {
        t.handover_stall_ns = tag->comp_ns[obs::kHandoverStall];
      }
    }
    return;
  }
  if (t.rtt_ms > 0.0) return;  // duplicate
  t.rtt_ms = (client_->sim().now() - t.sent_at).to_millis();
  if (const sim::ProvenanceTag* tag = sim::prov_tag(pkt)) {
    t.handover_stall_ns = tag->comp_ns[obs::kHandoverStall];
    if (obs::Recorder* rec = client_->sim().obs()) {
      rec->record_breakdown(client_->sim().now().ns(), flow_id_, tag->comp_ns,
                            (client_->sim().now() - t.sent_at).ns() -
                                tag->comp_ns[obs::kLossRecovery]);
    }
  }
  if (detector_.add(t.rtt_ms)) {
    t.spike = true;
    note_spike(t);
  }
}

void GameSession::mark_lost(std::size_t seq) {
  if (seq >= metrics_.ticks.size()) return;
  Tick& t = metrics_.ticks[seq];
  if (t.lost || t.rtt_ms > 0.0) return;
  t.lost = true;
  t.spike = true;  // a missing snapshot is the worst lag there is
  metrics_.lost++;
  note_spike(t);
  obs::Recorder* rec = client_->sim().obs();
  if (rec != nullptr && rec->options().metrics) {
    rec->registry().counter("qoe.game.ticks_lost").add();
  }
}

void GameSession::note_spike(Tick&) {
  metrics_.spikes++;
  obs::Recorder* rec = client_->sim().obs();
  if (rec != nullptr && rec->options().metrics) {
    rec->registry().counter("qoe.game.spikes").add();
  }
}

void GameSession::finish() {
  if (finished_) return;
  while (next_timeout_check_ < ticks_total_) mark_lost(next_timeout_check_++);
  finished_ = true;
  tick_timer_.cancel();
  drain_timer_.cancel();
  if (on_complete) on_complete(metrics_);
}

}  // namespace slp::qoe
