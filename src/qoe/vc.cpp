#include "qoe/vc.hpp"

#include <algorithm>
#include <cmath>

#include "obs/recorder.hpp"
#include "sim/simulator.hpp"

namespace slp::qoe {

double emodel_mos(double delay_ms, double loss_pct, double bpl) {
  const double d = delay_ms;
  double id = 0.024 * d;
  if (d > 177.3) id += 0.11 * (d - 177.3);
  const double ppl = std::clamp(loss_pct, 0.0, 100.0);
  const double ie_eff = 95.0 * ppl / (ppl + bpl);
  const double r = 93.2 - id - ie_eff;
  if (r <= 0.0) return 1.0;
  if (r >= 100.0) return 4.5;
  const double mos = 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r);
  return std::clamp(mos, 1.0, 5.0);
}

VcSession::VcSession(quic::QuicConnection& client, Config config)
    : client_{&client}, config_{config}, tick_timer_{client.sim()}, drain_timer_{client.sim()} {
  frames_total_ = static_cast<std::uint64_t>(config_.duration.to_seconds() * config_.frame_rate);
  up_.metrics = &metrics_.up;
  down_.metrics = &metrics_.down;

  const auto shape = [this](Dir& dir, DataRate rate) {
    dir.frame_bytes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(rate.bits_per_second() / 8.0 / config_.frame_rate));
    dir.parts_per_frame = static_cast<std::uint32_t>(
        (dir.frame_bytes + config_.dgram_bytes - 1) / config_.dgram_bytes);
  };
  shape(up_, config_.up);
  shape(down_, config_.down);
}

void VcSession::attach_server(quic::QuicConnection& server) {
  server_ = &server;
  up_.conn = client_;
  down_.conn = server_;
  wire_receiver(up_, server);     // client -> server frames arrive at the server
  wire_receiver(down_, *client_); // server -> client frames arrive at the client
}

void VcSession::wire_receiver(Dir& dir, quic::QuicConnection& receiving_end) {
  receiving_end.on_dgram = [this, &dir](std::uint64_t, std::uint64_t cookie, std::uint32_t,
                                        TimePoint queued_at) {
    const std::uint64_t frame = cookie;
    if (frame < dir.next_final) return;  // straggler past its deadline
    const std::uint32_t got = ++dir.arrived[frame];
    if (got == dir.parts_per_frame) {
      dir.complete_at[frame] = dir.conn->sim().now();
      (void)queued_at;
    }
  };
  dir.conn->on_dgram_lost = [&dir](std::uint64_t, std::uint64_t) {
    dir.metrics->datagrams_lost++;
  };
}

void VcSession::start() {
  if (client_->established()) {
    start_ = client_->sim().now();
    send_frame(up_);
    send_frame(down_);
  } else {
    client_->on_established = [this] {
      start_ = client_->sim().now();
      send_frame(up_);
      send_frame(down_);
    };
  }
}

TimePoint VcSession::capture_time(std::uint64_t frame) const {
  return start_ + Duration::from_seconds(static_cast<double>(frame) / config_.frame_rate);
}

void VcSession::send_frame(Dir& dir) {
  if (finished_ || dir.next_frame >= frames_total_) return;
  const std::uint64_t frame = dir.next_frame++;
  std::uint64_t remaining = dir.frame_bytes;
  for (std::uint32_t part = 0; part < dir.parts_per_frame; ++part) {
    const std::uint32_t bytes =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(config_.dgram_bytes, remaining));
    dir.conn->send_datagram(bytes, /*cookie=*/frame);
    remaining -= bytes;
  }
  dir.metrics->frames_sent++;
  finalize_due(dir);

  // One shared tick drives both directions (they run at the same cadence):
  // the up sender arms the next tick, the down sender rides along.
  if (&dir == &up_) {
    if (dir.next_frame < frames_total_) {
      tick_timer_.arm(std::max(Duration::zero(),
                               capture_time(dir.next_frame) - dir.conn->sim().now()),
                      [this] {
        send_frame(up_);
        send_frame(down_);
      });
    } else {
      // Let the tail frames meet their deadlines, then close the books.
      drain_timer_.arm(config_.playout_delay + config_.window + Duration::millis(50),
                       [this] { finish(); });
    }
  }
}

void VcSession::finalize_due(Dir& dir) {
  const TimePoint now = dir.conn->sim().now();
  while (dir.next_final < dir.next_frame &&
         capture_time(dir.next_final) + config_.playout_delay <= now) {
    const std::uint64_t frame = dir.next_final++;
    const TimePoint capture = capture_time(frame);

    const auto done = dir.complete_at.find(frame);
    const bool playable =
        done != dir.complete_at.end() && done->second <= capture + config_.playout_delay;
    if (playable) {
      dir.metrics->frames_playable++;
      dir.metrics->transit_ms.push_back((done->second - capture).to_millis());
    } else {
      dir.metrics->frames_missed++;
    }
    dir.arrived.erase(frame);
    if (done != dir.complete_at.end()) dir.complete_at.erase(done);

    const auto w = static_cast<std::int64_t>(capture.since_epoch() / config_.window);
    if (w != dir.window_index) {
      flush_window(dir);
      dir.window_index = w;
    }
    dir.window_due++;
    if (!playable) dir.window_bad++;
  }
}

void VcSession::flush_window(Dir& dir) {
  if (dir.window_index < 0 || dir.window_due == 0) return;
  Window win;
  win.mid = TimePoint::epoch() +
            config_.window * (static_cast<double>(dir.window_index) + 0.5);
  win.loss_pct =
      100.0 * static_cast<double>(dir.window_bad) / static_cast<double>(dir.window_due);
  win.mos = emodel_mos(config_.playout_delay.to_millis() + config_.codec_delay_ms,
                       win.loss_pct, config_.bpl);
  dir.metrics->windows.push_back(win);
  if (win.loss_pct > 0.0) {
    obs::Recorder* rec = client_->sim().obs();
    if (rec != nullptr && rec->options().metrics) {
      rec->registry().counter("qoe.vc.degraded_windows").add();
    }
  }
  dir.window_due = 0;
  dir.window_bad = 0;
}

void VcSession::finish() {
  if (finished_) return;
  // Finalize everything still pending (all deadlines have passed by now).
  for (Dir* dir : {&up_, &down_}) {
    finalize_due(*dir);
    flush_window(*dir);
  }
  finished_ = true;
  tick_timer_.cancel();
  drain_timer_.cancel();
  if (on_complete) on_complete(metrics_);
}

}  // namespace slp::qoe
