// abr.hpp — buffer-based adaptive-bitrate video over H3/QUIC.
//
// "A Multifaceted Look at Starlink Performance" (PAPERS.md) measures ABR
// streaming QoE over Starlink and finds rebuffer events clustering at the
// 15-second handover-slot boundaries. This model reproduces the client side
// of that experiment: a BBA-style buffer-based rate-ladder controller
// (reservoir/cushion thresholds map the playout buffer level to a rung),
// segment-by-segment downloads over one QUIC connection, and the standard
// QoE metric set — startup delay, rebuffer ratio, quality switches, mean
// selected bitrate.
//
// The session owns both connection ends (campaign-side wiring, like
// measure::MessageCampaign): a small upstream request message triggers the
// server end to stream the segment's bytes back, so the whole request /
// response exchange rides the real transport with real loss recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "quic/quic.hpp"
#include "util/units.hpp"

namespace slp::qoe {

/// Pure rate-ladder decision logic, separated from the session so the
/// controller can be unit-tested and micro-benched without a simulator.
/// Thresholds are in seconds of buffered video.
struct AbrLadder {
  std::vector<double> rungs_mbps = {0.4, 0.75, 1.2, 2.4, 4.8, 8.0, 16.0};
  double reservoir_s = 8.0;  ///< at/below: lowest rung
  double cushion_s = 24.0;   ///< at/above: highest rung

  /// BBA-style map of buffer level to rung index: lowest rung inside the
  /// reservoir, highest at/above the cushion, linear in between.
  [[nodiscard]] int pick(double buffer_s) const {
    if (rungs_mbps.size() <= 1 || buffer_s <= reservoir_s) return 0;
    const int top = static_cast<int>(rungs_mbps.size()) - 1;
    if (buffer_s >= cushion_s) return top;
    const double f = (buffer_s - reservoir_s) / (cushion_s - reservoir_s);
    return 1 + static_cast<int>(f * static_cast<double>(top - 1));
  }
};

class AbrVideoSession {
 public:
  struct Config {
    AbrLadder ladder;
    Duration segment = Duration::seconds(4);
    double startup_buffer_s = 4.0;   ///< start playing at this buffer level
    double resume_buffer_s = 4.0;    ///< leave a rebuffer stall at this level
    double max_buffer_s = 30.0;      ///< pause downloads above this
    Duration watch = Duration::minutes(2);  ///< content length to consume
    std::uint64_t request_bytes = 400;      ///< upstream segment request
  };

  struct Metrics {
    Duration startup_delay = Duration::zero();
    Duration play_time = Duration::zero();
    Duration rebuffer_time = Duration::zero();
    int rebuffer_events = 0;
    int quality_switches = 0;
    int segments_downloaded = 0;
    double mean_rung_mbps = 0.0;  ///< segment-weighted selected bitrate
    /// Sim timestamps at which a rebuffer stall began (for slot-phase
    /// clustering against the 15 s handover grid).
    std::vector<TimePoint> rebuffer_at;
    /// Per-segment download throughput samples (Mbit/s).
    std::vector<double> segment_mbps;
    [[nodiscard]] double rebuffer_ratio() const {
      const double total = (play_time + rebuffer_time).to_seconds();
      return total > 0.0 ? rebuffer_time.to_seconds() / total : 0.0;
    }
  };

  /// `client` must be a fresh client-side connection (not yet established).
  /// The campaign's listener hands over the accepted peer end via
  /// attach_server() — which always happens before the client handshake
  /// completes, so the first segment request finds the server wired up.
  AbrVideoSession(quic::QuicConnection& client, Config config);

  /// Installs the content-server behaviour (answer a request message by
  /// streaming the pending segment's bytes) on the accepted connection.
  void attach_server(quic::QuicConnection& server);

  void start();
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  std::function<void(const Metrics&)> on_complete;

 private:
  void request_next_segment();
  void on_segment_complete();
  void advance_clock();      ///< drains the buffer by played wall time
  void arm_empty_timer();    ///< schedules the rebuffer-start event
  void finish();
  [[nodiscard]] std::uint64_t segment_bytes(int rung) const;
  void note(const char* what);

  quic::QuicConnection* client_;
  quic::QuicConnection* server_;
  Config config_;
  Metrics metrics_;

  double buffer_s_ = 0.0;
  bool playing_ = false;
  bool rebuffering_ = false;
  bool downloading_ = false;
  bool started_ = false;
  bool finished_ = false;
  int current_rung_ = 0;
  int segments_requested_ = 0;
  int segments_total_ = 0;
  std::uint64_t segment_remaining_ = 0;
  TimePoint session_start_;
  TimePoint segment_started_;
  TimePoint last_clock_;     ///< last buffer-drain accounting point
  TimePoint rebuffer_start_;
  sim::Timer empty_timer_;   ///< fires when the playout buffer runs dry
  sim::Timer refill_timer_;  ///< resumes downloads after a max-buffer pause
};

}  // namespace slp::qoe
