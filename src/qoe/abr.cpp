#include "qoe/abr.hpp"

#include <algorithm>
#include <cassert>

#include "obs/recorder.hpp"
#include "sim/simulator.hpp"

namespace slp::qoe {

AbrVideoSession::AbrVideoSession(quic::QuicConnection& client, Config config)
    : client_{&client},
      config_{config},
      empty_timer_{client.sim()},
      refill_timer_{client.sim()} {
  segments_total_ = static_cast<int>((config_.watch + config_.segment - Duration::nanos(1)) /
                                     config_.segment);
  segments_total_ = std::max(segments_total_, 1);
}

void AbrVideoSession::attach_server(quic::QuicConnection& server) {
  server_ = &server;
  // A request message arriving at the server streams the pending segment
  // back. One request is outstanding at a time, so the byte count lives in
  // the session rather than on the wire.
  server.on_message = [this](std::uint64_t, std::uint64_t, TimePoint) {
    if (server_ != nullptr && segment_remaining_ > 0) {
      server_->send_stream(segment_remaining_);
    }
  };
}

void AbrVideoSession::start() {
  session_start_ = client_->sim().now();
  last_clock_ = session_start_;
  client_->on_stream_data = [this](std::uint64_t delta) {
    if (segment_remaining_ == 0) return;
    const std::uint64_t used = std::min(segment_remaining_, delta);
    segment_remaining_ -= used;
    if (segment_remaining_ == 0) on_segment_complete();
  };
  if (client_->established()) {
    request_next_segment();
  } else {
    client_->on_established = [this] { request_next_segment(); };
  }
}

std::uint64_t AbrVideoSession::segment_bytes(int rung) const {
  const double mbps = config_.ladder.rungs_mbps[static_cast<std::size_t>(rung)];
  return static_cast<std::uint64_t>(mbps * 1e6 / 8.0 * config_.segment.to_seconds());
}

void AbrVideoSession::note(const char* what) {
  obs::Recorder* rec = client_->sim().obs();
  if (rec != nullptr && rec->options().metrics) {
    rec->registry().counter(std::string{"qoe.abr."} + what).add();
  }
}

void AbrVideoSession::request_next_segment() {
  if (finished_ || segments_requested_ >= segments_total_) return;
  advance_clock();
  const int rung = config_.ladder.pick(buffer_s_);
  if (segments_requested_ > 0 && rung != current_rung_) {
    metrics_.quality_switches++;
    note("switch");
  }
  current_rung_ = rung;
  segments_requested_++;
  downloading_ = true;
  segment_remaining_ = segment_bytes(rung);
  segment_started_ = client_->sim().now();
  client_->send_message(config_.request_bytes);
}

void AbrVideoSession::on_segment_complete() {
  advance_clock();
  downloading_ = false;
  const TimePoint now = client_->sim().now();
  const double dl_s = (now - segment_started_).to_seconds();
  const double bytes = static_cast<double>(segment_bytes(current_rung_));
  if (dl_s > 0.0) metrics_.segment_mbps.push_back(bytes * 8.0 / 1e6 / dl_s);
  metrics_.segments_downloaded++;
  metrics_.mean_rung_mbps +=
      config_.ladder.rungs_mbps[static_cast<std::size_t>(current_rung_)];
  note("segment");
  buffer_s_ += config_.segment.to_seconds();

  // Nothing more will arrive after the last segment: play out whatever is
  // buffered instead of waiting for a threshold that can no longer be met.
  const bool last = segments_requested_ >= segments_total_;
  if (!started_ && (buffer_s_ >= config_.startup_buffer_s || last)) {
    started_ = true;
    playing_ = true;
    metrics_.startup_delay = now - session_start_;
    last_clock_ = now;
  } else if (rebuffering_ && (buffer_s_ >= config_.resume_buffer_s || last)) {
    rebuffering_ = false;
    playing_ = true;
    metrics_.rebuffer_time += now - rebuffer_start_;
    last_clock_ = now;
  }
  if (playing_) arm_empty_timer();

  if (last) {
    // Everything requested; playback drains the buffer and the empty timer
    // closes the session (started_ is guaranteed true above).
    return;
  }
  if (playing_ && buffer_s_ > config_.max_buffer_s) {
    // Buffer full: hold the next request until it drains back to the cap.
    refill_timer_.arm(Duration::from_seconds(buffer_s_ - config_.max_buffer_s),
                      [this] { request_next_segment(); });
    return;
  }
  request_next_segment();
}

void AbrVideoSession::advance_clock() {
  const TimePoint now = client_->sim().now();
  if (playing_) {
    const double elapsed = (now - last_clock_).to_seconds();
    const double played = std::min(elapsed, buffer_s_);
    buffer_s_ -= played;
    metrics_.play_time += Duration::from_seconds(played);
  }
  last_clock_ = now;
}

void AbrVideoSession::arm_empty_timer() {
  empty_timer_.cancel();
  empty_timer_.arm(Duration::from_seconds(buffer_s_), [this] {
    advance_clock();
    buffer_s_ = 0.0;
    playing_ = false;
    if (segments_requested_ >= segments_total_ && !downloading_) {
      finish();
      return;
    }
    rebuffering_ = true;
    rebuffer_start_ = client_->sim().now();
    metrics_.rebuffer_events++;
    metrics_.rebuffer_at.push_back(rebuffer_start_);
    note("rebuffer");
  });
}

void AbrVideoSession::finish() {
  if (finished_) return;
  advance_clock();
  finished_ = true;
  empty_timer_.cancel();
  refill_timer_.cancel();
  if (rebuffering_) {
    metrics_.rebuffer_time += client_->sim().now() - rebuffer_start_;
    rebuffering_ = false;
  }
  if (metrics_.segments_downloaded > 0) {
    metrics_.mean_rung_mbps /= metrics_.segments_downloaded;
  }
  if (on_complete) on_complete(metrics_);
}

}  // namespace slp::qoe
