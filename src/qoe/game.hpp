// game.hpp — online-game traffic and lag-spike detection.
//
// "Network Characteristics of LEO Satellite Constellations" (PAPERS.md)
// studies interactive traffic over LEO links: small bidirectional UDP ticks
// whose tail latency — not throughput — decides playability. This model
// sends client input ticks at a fixed rate, the server echoes a (larger)
// state snapshot per tick, and the client flags lag spikes: an RTT far above
// the rolling median, or a tick whose snapshot never arrives. Each spike
// record carries the send time (for 15 s handover-slot phase clustering) and
// the `handover_stall` nanoseconds from the snapshot's provenance tag, so
// campaigns can show spikes lining up with handovers, not random loss.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "obs/breakdown.hpp"
#include "sim/host.hpp"
#include "util/units.hpp"

namespace slp::qoe {

/// Streaming lag-spike detector over a rolling RTT window: pure logic,
/// shared by the session and the micro bench. The default thresholds are
/// tuned to competitive-game sensitivity (a >30% step that is also >12 ms
/// absolute): the scale of the access model's per-slot beam penalty, so
/// handover-boundary steps register without flagging ordinary frame jitter.
class LagDetector {
 public:
  struct Config {
    int window = 33;            ///< rolling-median window (ticks)
    int min_samples = 8;        ///< no verdicts before this many RTTs
    double factor = 1.3;        ///< spike if rtt > factor * median ...
    double floor_ms = 12.0;     ///< ... and rtt > median + floor
    /// Absolute "unplayable ping" bound: any RTT above this is a spike
    /// regardless of the median (0 disables). The median-relative rule
    /// catches *steps*; this catches slots that are simply bad — which is
    /// what couples spike rate to the slot's handover_stall penalty.
    double abs_ms = 0.0;
  };

  LagDetector() : LagDetector(Config{}) {}
  explicit LagDetector(Config config) : config_{config} {}

  /// Feeds one RTT sample; returns true when it qualifies as a spike.
  /// (A spike sample still enters the window: sustained congestion raises
  /// the median and stops counting as "spikes" — the detector looks for
  /// steps, matching how players perceive lag.)
  [[nodiscard]] bool add(double rtt_ms);

  [[nodiscard]] double median() const;

 private:
  Config config_;
  std::deque<double> window_;
};

class GameSession {
 public:
  struct Config {
    double tick_rate = 30.0;
    std::uint32_t client_bytes = 60;    ///< input tick wire size
    std::uint32_t server_bytes = 300;   ///< state snapshot wire size
    Duration duration = Duration::minutes(1);
    int timeout_ticks = 15;             ///< missing for this many ticks = lost
    LagDetector::Config detector;
    std::uint16_t server_port = 7777;
  };

  struct Tick {
    TimePoint sent_at;
    double rtt_ms = 0.0;
    bool lost = false;
    bool spike = false;
    std::int64_t handover_stall_ns = 0;  ///< from the snapshot's provenance
  };

  struct Metrics {
    std::vector<Tick> ticks;
    std::uint64_t spikes = 0;
    std::uint64_t lost = 0;
  };

  GameSession(sim::Host& client, sim::Host& server, Config config);
  ~GameSession();

  GameSession(const GameSession&) = delete;
  GameSession& operator=(const GameSession&) = delete;

  void start();
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  std::function<void(const Metrics&)> on_complete;

 private:
  void tick();
  void on_snapshot(const sim::Packet& pkt);
  void mark_lost(std::size_t seq);
  void note_spike(Tick& t);
  void finish();

  sim::Host* client_;
  sim::Host* server_;
  Config config_;
  Metrics metrics_;
  LagDetector detector_;
  std::uint64_t flow_id_ = 0;
  std::uint16_t client_port_ = 0;
  std::uint64_t ticks_total_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_timeout_check_ = 0;  ///< oldest seq not yet resolved/lost
  bool finished_ = false;
  bool server_bound_ = false;
  sim::Timer tick_timer_;
  sim::Timer drain_timer_;
};

}  // namespace slp::qoe
