#include "fleet/demand.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace slp::fleet {

namespace {

// Sub-stream labels keep the class draw, the activity draw and the rate
// jitter independent of one another.
constexpr std::uint64_t kClassStream = 0x11ull;
constexpr std::uint64_t kActiveStream = 0x22ull;
constexpr std::uint64_t kRateStream = 0x33ull;

}  // namespace

std::string_view to_string(DemandClass c) {
  switch (c) {
    case DemandClass::kBulk: return "bulk";
    case DemandClass::kSpeedtest: return "speedtest";
    case DemandClass::kWeb: return "web";
    case DemandClass::kVideo: return "video";
    case DemandClass::kVc: return "vc";
    case DemandClass::kGame: return "game";
    case DemandClass::kIdle: return "idle";
  }
  return "?";
}

const DemandModel::ClassProfile& DemandModel::profile(DemandClass c) const {
  switch (c) {
    case DemandClass::kBulk: return config_.bulk;
    case DemandClass::kSpeedtest: return config_.speedtest;
    case DemandClass::kWeb: return config_.web;
    case DemandClass::kVideo: return config_.video;
    case DemandClass::kVc: return config_.vc;
    case DemandClass::kGame: return config_.game;
    case DemandClass::kIdle: return config_.idle;
  }
  return config_.idle;
}

DemandClass DemandModel::class_of(std::uint64_t terminal_seed) const {
  const double total = config_.bulk.fraction + config_.speedtest.fraction +
                       config_.web.fraction + config_.video.fraction + config_.vc.fraction +
                       config_.game.fraction + config_.idle.fraction;
  double pick = mix_uniform(terminal_seed, kClassStream) * std::max(1e-12, total);
  // The QoE classes draw after web with fraction 0 by default: subtracting
  // zero never flips the comparison, so the stock mix assigns every terminal
  // exactly the class it had before these classes existed.
  if ((pick -= config_.bulk.fraction) <= 0.0) return DemandClass::kBulk;
  if ((pick -= config_.speedtest.fraction) <= 0.0) return DemandClass::kSpeedtest;
  if ((pick -= config_.web.fraction) <= 0.0) return DemandClass::kWeb;
  if ((pick -= config_.video.fraction) <= 0.0) return DemandClass::kVideo;
  if ((pick -= config_.vc.fraction) <= 0.0) return DemandClass::kVc;
  if ((pick -= config_.game.fraction) <= 0.0) return DemandClass::kGame;
  return DemandClass::kIdle;
}

DemandModel::Demand DemandModel::at(std::uint64_t terminal_seed, TimePoint t) const {
  const ClassProfile& p = profile(class_of(terminal_seed));
  const auto session =
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, t.ns()) / p.session.ns());

  const double duty = p.duty * diurnal_factor(t);
  if (mix_uniform(terminal_seed ^ kActiveStream, session) >= duty) return {};

  // Per-session rate jitter in [0.5, 1.5): sessions differ, but the rate is
  // constant within a session so allocations move on session boundaries.
  const double jitter = 0.5 + mix_uniform(terminal_seed ^ kRateStream, session);
  return {p.down * (jitter * config_.scale_down), p.up * (jitter * config_.scale_up)};
}

double DemandModel::diurnal_factor(TimePoint t) const {
  if (config_.diurnal_amplitude <= 0.0) return 1.0;
  const double phase =
      2.0 * std::numbers::pi * t.to_seconds() / config_.diurnal_period.to_seconds();
  return std::clamp(1.0 + config_.diurnal_amplitude * std::sin(phase), 0.0, 2.0);
}

DemandModel::Demand DemandModel::expected_at(TimePoint t) const {
  const double f = diurnal_factor(t);
  const Demand e = expected();
  return {e.down * f, e.up * f};
}

DemandModel::Demand DemandModel::expected() const {
  const ClassProfile* profiles[] = {&config_.bulk,  &config_.speedtest, &config_.web,
                                    &config_.video, &config_.vc,        &config_.game,
                                    &config_.idle};
  double total = 0.0;
  double down = 0.0;
  double up = 0.0;
  for (const ClassProfile* p : profiles) {
    total += p->fraction;
    down += p->fraction * p->duty * p->down.bits_per_second();
    up += p->fraction * p->duty * p->up.bits_per_second();
  }
  if (total <= 0.0) return {};
  return {DataRate::bps(down / total * config_.scale_down),
          DataRate::bps(up / total * config_.scale_up)};
}

DemandModel::Config named_mix(std::string_view name) {
  DemandModel::Config c;  // the stock bulk/speedtest/web/idle mix
  if (name == "default") return c;
  if (name == "streaming") {
    // Evening peak: a third of the fleet watching ABR video, web and idle
    // trimmed to make room. Bulk/speedtest untouched so the heavy-hitter
    // tail that shapes Figure 5 survives.
    c.video.fraction = 0.30;
    c.web.fraction = 0.30;
    c.idle.fraction = 0.25;
    return c;
  }
  if (name == "realtime") {
    // Call/game heavy: latency-sensitive sessions dominate, speedtests and
    // bulk pull back. This is the mix fig8 uses to stress jitter buffers.
    c.vc.fraction = 0.20;
    c.game.fraction = 0.25;
    c.web.fraction = 0.25;
    c.bulk.fraction = 0.05;
    c.idle.fraction = 0.25;
    return c;
  }
  if (name == "mixed") {
    // All six application classes active in plausible shares.
    c.bulk.fraction = 0.08;
    c.speedtest.fraction = 0.02;
    c.web.fraction = 0.30;
    c.video.fraction = 0.20;
    c.vc.fraction = 0.10;
    c.game.fraction = 0.10;
    c.idle.fraction = 0.20;
    return c;
  }
  throw std::invalid_argument("unknown fleet mix: " + std::string(name));
}

std::vector<std::string_view> mix_names() {
  return {"default", "streaming", "realtime", "mixed"};
}

}  // namespace slp::fleet
