#include "fleet/cell_arbiter.hpp"

#include <algorithm>
#include <cmath>

namespace slp::fleet {

CellArbiter::CellArbiter(Config config, Rng down_rng, Rng up_rng)
    : config_{config},
      ambient_down_{config.downlink_load, down_rng},
      ambient_up_{config.uplink_load, up_rng} {}

CellArbiter::Member* CellArbiter::find(TerminalId id) {
  const auto it = std::lower_bound(
      members_.begin(), members_.end(), id,
      [](const Member& m, TerminalId key) { return m.id < key; });
  return (it != members_.end() && it->id == id) ? &*it : nullptr;
}

const CellArbiter::Member* CellArbiter::find(TerminalId id) const {
  return const_cast<CellArbiter*>(this)->find(id);
}

void CellArbiter::mark_epoch() {
  dirty_ = true;
  ++stats_.epoch;
}

void CellArbiter::attach(TerminalId id, double weight, bool elastic) {
  if (Member* existing = find(id)) {
    existing->weight = std::max(1e-9, weight);
    existing->elastic = elastic;
    mark_epoch();
    return;
  }
  Member m;
  m.id = id;
  m.weight = std::max(1e-9, weight);
  m.elastic = elastic;
  const auto it = std::lower_bound(
      members_.begin(), members_.end(), id,
      [](const Member& member, TerminalId key) { return member.id < key; });
  members_.insert(it, m);
  if (!elastic) ++background_members_;
  ++stats_.attaches;
  mark_epoch();
}

void CellArbiter::detach(TerminalId id) {
  const auto it = std::lower_bound(
      members_.begin(), members_.end(), id,
      [](const Member& m, TerminalId key) { return m.id < key; });
  if (it == members_.end() || it->id != id) return;
  if (!it->elastic) --background_members_;
  members_.erase(it);
  ++stats_.detaches;
  mark_epoch();
}

bool CellArbiter::set_demand(TerminalId id, DataRate down, DataRate up) {
  Member* m = find(id);
  if (m == nullptr || m->elastic) return false;
  const double down_bps = std::max(0.0, down.bits_per_second());
  const double up_bps = std::max(0.0, up.bits_per_second());
  if (m->demand_bps[kDown] == down_bps && m->demand_bps[kUp] == up_bps) return false;
  const bool was_active = m->demand_bps[kDown] > 0.0 || m->demand_bps[kUp] > 0.0;
  m->demand_bps[kDown] = down_bps;
  m->demand_bps[kUp] = up_bps;
  const bool is_active = down_bps > 0.0 || up_bps > 0.0;
  if (is_active && !was_active) ++stats_.attaches;
  if (!is_active && was_active) ++stats_.detaches;
  mark_epoch();
  return true;
}

void CellArbiter::note_handover() {
  ++stats_.handovers;
  mark_epoch();
}

void CellArbiter::recompute_direction(int direction, TimePoint t) {
  const double nominal = nominal_bps(direction);
  const phy::LoadProcess::Config& load =
      direction == kUp ? config_.uplink_load : config_.downlink_load;
  // The schedulable budget: the ceiling mirrors LoadProcess's cap — the
  // reserve above it is framing/control overhead no user is ever granted.
  double budget = nominal * load.ceiling;

  // Weighted max-min water-filling over active background members plus the
  // elastic pool: sort by demand-per-weight, satisfy the cheapest demands,
  // split the rest by weight. Elastic demand is infinite, so elastic weight
  // stays in the denominator to the end (the background never squeezes the
  // foreground below its proportional share).
  fill_buf_.clear();
  double elastic_weight = 0.0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Member& m = members_[i];
    m.alloc_bps[direction] = 0.0;
    if (m.elastic) {
      elastic_weight += m.weight;
      total_weight += m.weight;
      continue;
    }
    if (m.demand_bps[direction] <= 0.0) continue;
    fill_buf_.push_back({i, m.weight, m.demand_bps[direction] / m.weight});
    total_weight += m.weight;
  }
  std::sort(fill_buf_.begin(), fill_buf_.end(), [this](const Entry& a, const Entry& b) {
    // Deterministic total order: ties on the sort key break by terminal id.
    if (a.normalized != b.normalized) return a.normalized < b.normalized;
    return members_[a.member].id < members_[b.member].id;
  });

  double remaining = budget;
  double weight_left = total_weight;
  std::size_t cursor = 0;
  for (; cursor < fill_buf_.size(); ++cursor) {
    const Entry& e = fill_buf_[cursor];
    Member& m = members_[e.member];
    const double fair = weight_left > 0.0 ? remaining / weight_left : 0.0;
    if (e.normalized <= fair) {
      m.alloc_bps[direction] = m.demand_bps[direction];
      remaining -= m.demand_bps[direction];
      weight_left -= e.weight;
    } else {
      break;  // this member and every later one is share-limited
    }
  }
  for (std::size_t i = cursor; i < fill_buf_.size(); ++i) {
    const Entry& e = fill_buf_[i];
    members_[e.member].alloc_bps[direction] =
        weight_left > 0.0 ? e.weight * remaining / weight_left : 0.0;
  }
  double background_total = 0.0;
  for (const Entry& e : fill_buf_) background_total += members_[e.member].alloc_bps[direction];

  double util = std::clamp(background_total / nominal, load.floor, load.ceiling);
  // Load-surge override: a scripted surge is *extra* load on top of the
  // simulated terminals, so it pins a floor rather than replacing them.
  phy::LoadProcess& amb = ambient(direction);
  if (amb.overridden()) {
    util = std::clamp(std::max(util, amb.utilization(t)), load.floor, load.ceiling);
  }
  cached_util_[direction] = util;

  // Elastic members see the whole non-background remainder (the legacy
  // "capacity x (1 - load)" contract), split by weight if there are several.
  const double elastic_total = nominal * (1.0 - util);
  for (Member& m : members_) {
    if (m.elastic) {
      m.alloc_bps[direction] =
          elastic_weight > 0.0 ? elastic_total * m.weight / elastic_weight : 0.0;
    }
  }
}

void CellArbiter::reallocate(TimePoint t) {
  if (!dirty_) return;
  recompute_direction(kUp, t);
  recompute_direction(kDown, t);
  dirty_ = false;
  ++stats_.reallocations;
}

double CellArbiter::available_fraction(int direction, TimePoint t) {
  if (background_members_ == 0) return ambient(direction).available_fraction(t);
  reallocate(t);
  return 1.0 - cached_util_[direction];
}

double CellArbiter::utilization(int direction, TimePoint t) {
  if (background_members_ == 0) return ambient(direction).utilization(t);
  reallocate(t);
  return cached_util_[direction];
}

DataRate CellArbiter::allocation(TerminalId id, int direction) const {
  const Member* m = find(id);
  return m == nullptr ? DataRate::zero() : DataRate::bps(m->alloc_bps[direction]);
}

DataRate CellArbiter::background_allocated(int direction) const {
  double total = 0.0;
  for (const Member& m : members_) {
    if (!m.elastic) total += m.alloc_bps[direction];
  }
  return DataRate::bps(total);
}

void CellArbiter::set_load_override(int direction, double utilization) {
  ambient(direction).set_utilization_override(utilization);
  mark_epoch();
}

void CellArbiter::clear_load_override(int direction) {
  ambient(direction).clear_override();
  mark_epoch();
}

}  // namespace slp::fleet
