#include "fleet/placement.hpp"

#include <algorithm>
#include <cmath>

#include "leo/places.hpp"

namespace slp::fleet {

std::vector<PopulationCenter> default_population_centers() {
  namespace places = leo::places;
  // Metro populations in millions, rounded; Louvain-la-Neuve is tiny but
  // carries extra weight because it is the vantage whose cell the fleet is
  // meant to contend in (the paper's "shared cell" is *this* cell).
  return {
      {"brussels", places::kBrussels, 1.2},
      {"antwerp", places::kAntwerp, 0.53},
      {"ghent", places::kGhent, 0.26},
      {"liege", places::kLiege, 0.20},
      {"louvain-la-neuve", places::kLouvainLaNeuve, 0.25},
  };
}

Placement Placement::generate(const Config& config, Rng rng) {
  Placement placement{config, CellGrid{config.cell_km}};
  const std::vector<PopulationCenter> centers =
      config.centers.empty() ? default_population_centers() : config.centers;
  double total_weight = 0.0;
  for (const auto& c : centers) total_weight += std::max(0.0, c.weight);

  const double km_per_deg_lat =
      2.0 * std::numbers::pi * leo::kEarthRadiusM / 1000.0 / 360.0;

  placement.terminals_.reserve(static_cast<std::size_t>(std::max(0, config.terminals)));
  for (int i = 0; i < config.terminals; ++i) {
    leo::GeoPoint where;
    const bool urban = total_weight > 0.0 && rng.chance(config.urban_fraction);
    if (urban) {
      // Weighted centre pick, then isotropic Gaussian scatter in km.
      double pick = rng.uniform(0.0, total_weight);
      const PopulationCenter* center = &centers.back();
      for (const auto& c : centers) {
        pick -= std::max(0.0, c.weight);
        if (pick <= 0.0) {
          center = &c;
          break;
        }
      }
      const double north_km = rng.normal(0.0, config.urban_sigma_km);
      const double east_km = rng.normal(0.0, config.urban_sigma_km);
      where.lat_deg = center->location.lat_deg + north_km / km_per_deg_lat;
      const double km_per_deg_lon =
          km_per_deg_lat * std::cos(leo::deg_to_rad(center->location.lat_deg));
      where.lon_deg = center->location.lon_deg +
                      (km_per_deg_lon > 1.0 ? east_km / km_per_deg_lon : 0.0);
    } else {
      where.lat_deg = rng.uniform(config.lat_min, config.lat_max);
      where.lon_deg = rng.uniform(config.lon_min, config.lon_max);
    }
    where.lat_deg = std::clamp(where.lat_deg, -89.9, 89.9);

    Terminal t;
    t.id = static_cast<TerminalId>(i);
    t.location = where;
    t.cell = placement.grid_.cell_of(where);
    placement.cells_[t.cell].push_back(t.id);
    placement.terminals_.push_back(t);
  }
  return placement;
}

}  // namespace slp::fleet
