#include "fleet/placement.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <numeric>
#include <utility>

#include "fleet/demand.hpp"
#include "leo/places.hpp"

namespace slp::fleet {

namespace {

/// Kilometres per degree of latitude on the spherical Earth used throughout
/// leo::geodesy (2 * pi * R / 360).
const double kKmPerDegLat = 2.0 * std::numbers::pi * leo::kEarthRadiusM / 1000.0 / 360.0;

// Sub-stream labels: the per-cell count jitter and the per-cell coordinate
// streams must not alias each other (or the demand streams, which hash the
// fleet's own seed base).
constexpr std::uint64_t kJitterStream = 0x9C1Aull;
constexpr std::uint64_t kPositionStream = 0x705Eull;

[[nodiscard]] double wrap_deg180(double deg) {
  double d = std::fmod(deg + 180.0, 360.0);
  if (d < 0.0) d += 360.0;
  return d - 180.0;
}

/// Adds one centre's Gaussian plume, normalized to `share`, into the
/// per-cell mass map. Candidate cells are enumerated directly on the
/// ring/bin lattice within 4 sigma of the centre.
void add_urban_mass(const CellGrid& grid, const PopulationCenter& center, double share,
                    double sigma_km, std::map<CellId, double>& mass) {
  if (share <= 0.0 || sigma_km <= 0.0) return;
  const double reach_km = 4.0 * sigma_km;
  const int r0 = grid.ring_of(center.location.lat_deg - reach_km / kKmPerDegLat);
  const int r1 = grid.ring_of(center.location.lat_deg + reach_km / kKmPerDegLat);
  double lon0 = std::fmod(center.location.lon_deg, 360.0);
  if (lon0 < 0.0) lon0 += 360.0;

  std::vector<std::pair<CellId, double>> plume;
  for (int ring = r0; ring <= r1; ++ring) {
    const int bins = grid.bins_in_ring(ring);
    const double lat = -90.0 + (static_cast<double>(ring) + 0.5) * 180.0 / grid.rings();
    const double km_per_deg_lon =
        kKmPerDegLat * std::max(0.01, std::cos(leo::deg_to_rad(lat)));
    const double bin_km = km_per_deg_lon * 360.0 / bins;
    const int span = std::min(bins / 2, static_cast<int>(std::ceil(reach_km / bin_km)) + 1);
    const int center_bin = static_cast<int>(lon0 / 360.0 * bins) % bins;
    for (int db = -span; db <= span; ++db) {
      const int bin = ((center_bin + db) % bins + bins) % bins;
      const CellId id = CellGrid::id_of(ring, bin);
      const leo::GeoPoint cc = grid.center_of(id);
      const double north_km = (cc.lat_deg - center.location.lat_deg) * kKmPerDegLat;
      const double east_km =
          wrap_deg180(cc.lon_deg - center.location.lon_deg) * km_per_deg_lon;
      const double d2 = north_km * north_km + east_km * east_km;
      if (d2 > reach_km * reach_km) continue;
      plume.emplace_back(id, std::exp(-d2 / (2.0 * sigma_km * sigma_km)));
    }
  }
  double total = 0.0;
  for (const auto& [id, g] : plume) total += g;
  if (total <= 0.0) {
    mass[grid.cell_of(center.location)] += share;
    return;
  }
  for (const auto& [id, g] : plume) mass[id] += share * g / total;
}

/// Spreads `share` uniformly over the cells whose centre lies in the rural
/// bounding box (cells are near-equal-area, so per-cell uniform is per-area
/// uniform to first order).
void add_rural_mass(const CellGrid& grid, const Placement::Config& cfg, double share,
                    std::map<CellId, double>& mass) {
  if (share <= 0.0 || cfg.lat_max <= cfg.lat_min || cfg.lon_max <= cfg.lon_min) return;
  const int r0 = grid.ring_of(cfg.lat_min);
  const int r1 = grid.ring_of(cfg.lat_max);
  std::vector<CellId> box;
  for (int ring = r0; ring <= r1; ++ring) {
    const int bins = grid.bins_in_ring(ring);
    for (int bin = 0; bin < bins; ++bin) {
      const CellId id = CellGrid::id_of(ring, bin);
      const leo::GeoPoint cc = grid.center_of(id);
      if (cc.lon_deg < cfg.lon_min || cc.lon_deg > cfg.lon_max) continue;
      box.push_back(id);
    }
  }
  if (box.empty()) return;
  const double per_cell = share / static_cast<double>(box.size());
  for (const CellId id : box) mass[id] += per_cell;
}

}  // namespace

std::vector<PopulationCenter> default_population_centers() {
  namespace places = leo::places;
  // Metro populations in millions, rounded; Louvain-la-Neuve is tiny but
  // carries extra weight because it is the vantage whose cell the fleet is
  // meant to contend in (the paper's "shared cell" is *this* cell).
  return {
      {"brussels", places::kBrussels, 1.2},
      {"antwerp", places::kAntwerp, 0.53},
      {"ghent", places::kGhent, 0.26},
      {"liege", places::kLiege, 0.20},
      {"louvain-la-neuve", places::kLouvainLaNeuve, 0.25},
  };
}

std::vector<PopulationCenter> european_population_centers() {
  // Metro-area populations in millions (coarse, public figures); coverage
  // spans the 36-60N service band the 53-degree shell serves best.
  return {
      {"london", {51.507, -0.128, 0.0}, 9.6},       {"paris", {48.857, 2.352, 0.0}, 11.0},
      {"madrid", {40.417, -3.703, 0.0}, 6.7},       {"barcelona", {41.387, 2.170, 0.0}, 5.6},
      {"milan", {45.464, 9.190, 0.0}, 4.3},         {"rome", {41.903, 12.496, 0.0}, 4.3},
      {"naples", {40.852, 14.268, 0.0}, 3.0},       {"turin", {45.070, 7.687, 0.0}, 1.7},
      {"berlin", {52.520, 13.405, 0.0}, 4.5},       {"ruhr", {51.514, 7.466, 0.0}, 5.1},
      {"hamburg", {53.551, 9.994, 0.0}, 3.3},       {"munich", {48.135, 11.582, 0.0}, 2.9},
      {"frankfurt", {50.110, 8.682, 0.0}, 2.7},     {"vienna", {48.208, 16.374, 0.0}, 2.9},
      {"warsaw", {52.230, 21.012, 0.0}, 3.1},       {"krakow", {50.065, 19.945, 0.0}, 1.4},
      {"budapest", {47.498, 19.040, 0.0}, 2.9},     {"prague", {50.076, 14.437, 0.0}, 2.7},
      {"bucharest", {44.427, 26.103, 0.0}, 2.3},    {"sofia", {42.698, 23.322, 0.0}, 1.3},
      {"athens", {37.984, 23.728, 0.0}, 3.1},       {"belgrade", {44.787, 20.449, 0.0}, 1.7},
      {"zagreb", {45.815, 15.982, 0.0}, 1.1},       {"amsterdam", {52.370, 4.895, 0.0}, 2.5},
      {"rotterdam", {51.924, 4.478, 0.0}, 1.9},     {"brussels", {50.850, 4.352, 0.0}, 2.1},
      {"lisbon", {38.722, -9.139, 0.0}, 2.9},       {"porto", {41.158, -8.629, 0.0}, 1.7},
      {"dublin", {53.349, -6.260, 0.0}, 1.4},       {"zurich", {47.377, 8.540, 0.0}, 1.4},
      {"lyon", {45.764, 4.836, 0.0}, 1.7},          {"marseille", {43.296, 5.370, 0.0}, 1.8},
      {"stockholm", {59.329, 18.069, 0.0}, 2.4},    {"copenhagen", {55.676, 12.568, 0.0}, 2.1},
      {"oslo", {59.914, 10.752, 0.0}, 1.7},         {"gothenburg", {57.709, 11.975, 0.0}, 1.0},
      {"manchester", {53.483, -2.244, 0.0}, 2.8},   {"birmingham", {52.486, -1.890, 0.0}, 2.6},
  };
}

Placement::Config Placement::continental_europe() {
  Config c;
  c.urban_fraction = 0.72;
  c.urban_sigma_km = 30.0;  // metro plumes, not single-town scatter
  c.lat_min = 36.0;
  c.lat_max = 60.0;
  c.lon_min = -10.0;
  c.lon_max = 32.0;
  c.centers = european_population_centers();
  return c;
}

Placement Placement::generate(const Config& config, Rng rng) {
  Placement placement{config, CellGrid{config.cell_km}};
  placement.stream_seed_ = rng.next();
  const int want = std::max(0, config.terminals);
  if (want == 0) return placement;

  const std::vector<PopulationCenter> centers =
      config.centers.empty() ? default_population_centers() : config.centers;
  double total_weight = 0.0;
  for (const auto& c : centers) total_weight += std::max(0.0, c.weight);
  const double urban_share =
      total_weight > 0.0 ? std::clamp(config.urban_fraction, 0.0, 1.0) : 0.0;

  // Density mass per candidate cell (std::map: cell-id ordered from the
  // start, so every later step is deterministic by construction).
  std::map<CellId, double> mass;
  for (const auto& c : centers) {
    const double w = std::max(0.0, c.weight);
    if (w <= 0.0) continue;
    add_urban_mass(placement.grid_, c, urban_share * w / total_weight,
                   config.urban_sigma_km, mass);
  }
  add_rural_mass(placement.grid_, config, 1.0 - urban_share, mass);
  if (mass.empty()) {
    // Degenerate box/centres: pile everything into the box-centre cell.
    const leo::GeoPoint mid{(config.lat_min + config.lat_max) / 2.0,
                            (config.lon_min + config.lon_max) / 2.0, 0.0};
    mass[placement.grid_.cell_of(mid)] = 1.0;
  }

  // Per-cell realization noise: the expected density above is smooth, the
  // jitter makes each seed a distinct draw from it (as the old one-draw-per-
  // terminal sampler was) without spending per-terminal randomness.
  const std::uint64_t jitter_seed = mix64(placement.stream_seed_, kJitterStream);
  double total_mass = 0.0;
  for (auto& [id, m] : mass) {
    m *= 0.5 + mix_uniform(jitter_seed, id);
    total_mass += m;
  }

  // Largest-remainder apportionment: floor every quota, then hand the
  // leftover terminals to the largest fractional parts (ties to the lower
  // cell id), so the counts sum to exactly `want`.
  struct Slot {
    CellId id = 0;
    std::uint32_t count = 0;
    double frac = 0.0;
  };
  std::vector<Slot> slots;
  slots.reserve(mass.size());
  std::uint64_t assigned = 0;
  for (const auto& [id, m] : mass) {
    const double quota = static_cast<double>(want) * m / total_mass;
    const double fl = std::floor(quota);
    slots.push_back({id, static_cast<std::uint32_t>(fl), quota - fl});
    assigned += static_cast<std::uint64_t>(fl);
  }
  std::vector<std::uint32_t> order(slots.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&slots](std::uint32_t a, std::uint32_t b) {
    if (slots[a].frac != slots[b].frac) return slots[a].frac > slots[b].frac;
    return slots[a].id < slots[b].id;
  });
  std::uint64_t leftover = static_cast<std::uint64_t>(want) - assigned;
  for (std::size_t i = 0; leftover > 0; i = (i + 1) % order.size(), --leftover) {
    ++slots[order[i]].count;
  }

  TerminalId next = 0;
  for (const Slot& s : slots) {
    if (s.count == 0) continue;
    placement.cells_.push_back({s.id, next, s.count});
    next += s.count;
  }
  placement.total_ = next;
  return placement;
}

const Placement::CellRange* Placement::find(CellId cell) const {
  const auto it = std::lower_bound(
      cells_.begin(), cells_.end(), cell,
      [](const CellRange& r, CellId key) { return r.cell < key; });
  return (it != cells_.end() && it->cell == cell) ? &*it : nullptr;
}

std::vector<Placement::Terminal> Placement::materialize(const CellRange& range) const {
  std::vector<Terminal> out;
  out.reserve(range.count);
  Rng rng{mix64(stream_seed_ ^ kPositionStream, range.cell)};
  const CellGrid::Bounds b = grid_.bounds_of(range.cell);
  for (std::uint32_t k = 0; k < range.count; ++k) {
    Terminal t;
    t.id = range.first + k;
    t.cell = range.cell;
    t.location.lat_deg = rng.uniform(b.lat_min, b.lat_max);
    double lon = rng.uniform(b.lon_min, b.lon_max);
    if (lon >= 180.0) lon -= 360.0;
    t.location.lon_deg = lon;
    out.push_back(t);
  }
  return out;
}

std::vector<Placement::Terminal> Placement::materialize(CellId cell) const {
  const CellRange* r = find(cell);
  return r == nullptr ? std::vector<Terminal>{} : materialize(*r);
}

}  // namespace slp::fleet
