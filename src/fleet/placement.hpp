// placement.hpp — deterministic, seed-derived terminal placement.
//
// Where do N user terminals live? Real subscriber bases cluster around
// population centres with a thin rural tail, and the follow-up measurement
// studies ("A Multifaceted Look at Starlink Performance", "Democratizing LEO
// Satellite Network Measurement") sample exactly that mixture. We reproduce
// it with a two-component draw per terminal:
//
//   * with probability `urban_fraction`: a population-weighted city pick
//     (leo::places anchors around the paper's vantage) plus a Gaussian
//     scatter of `urban_sigma_km` around it;
//   * otherwise: uniform over the configured rural bounding box.
//
// Every terminal is then keyed to its CellGrid cell. Placement draws from
// one forked Rng stream in terminal-index order, so a given (seed, config)
// produces the identical fleet on every run, thread count, and query order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fleet/cell.hpp"
#include "leo/geodesy.hpp"
#include "util/rng.hpp"

namespace slp::fleet {

using TerminalId = std::uint32_t;

/// One weighted population centre for the urban component.
struct PopulationCenter {
  std::string name;
  leo::GeoPoint location;
  double weight = 1.0;  ///< relative draw probability (~population)
};

/// The default centres: the paper's Belgian/Dutch anchor cities plus the
/// Louvain-la-Neuve vantage itself, weighted by metro population.
[[nodiscard]] std::vector<PopulationCenter> default_population_centers();

class Placement {
 public:
  struct Config {
    int terminals = 0;               ///< background terminals to place
    double cell_km = 24.0;           ///< CellGrid resolution
    double urban_fraction = 0.70;    ///< share drawn around population centres
    double urban_sigma_km = 18.0;    ///< Gaussian scatter around a centre
    /// Rural fill bounding box; defaults cover ~180 km around the vantage.
    double lat_min = 49.8;
    double lat_max = 51.6;
    double lon_min = 3.0;
    double lon_max = 6.2;
    std::vector<PopulationCenter> centers;  ///< empty = default_population_centers()
  };

  struct Terminal {
    TerminalId id = 0;
    leo::GeoPoint location;
    CellId cell = 0;
  };

  /// Places `config.terminals` terminals; `rng` should be a label-forked
  /// stream (e.g. sim.fork_rng("fleet/placement")) so placement never
  /// perturbs other components.
  [[nodiscard]] static Placement generate(const Config& config, Rng rng);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const CellGrid& grid() const { return grid_; }
  [[nodiscard]] const std::vector<Terminal>& terminals() const { return terminals_; }
  /// Terminal ids per cell, cell-id ordered; ids ascend within a cell.
  [[nodiscard]] const std::map<CellId, std::vector<TerminalId>>& cells() const {
    return cells_;
  }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }

 private:
  Placement(Config config, CellGrid grid) : config_{std::move(config)}, grid_{grid} {}

  Config config_;
  CellGrid grid_;
  std::vector<Terminal> terminals_;
  std::map<CellId, std::vector<TerminalId>> cells_;
};

}  // namespace slp::fleet
