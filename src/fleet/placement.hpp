// placement.hpp — deterministic, seed-derived terminal placement.
//
// Where do N user terminals live? Real subscriber bases cluster around
// population centres with a thin rural tail, and the follow-up measurement
// studies ("A Multifaceted Look at Starlink Performance", "Democratizing LEO
// Satellite Network Measurement") sample exactly that mixture. We reproduce
// it with a two-component density:
//
//   * `urban_fraction` of the fleet follows population-weighted Gaussian
//     plumes of `urban_sigma_km` around the configured centres;
//   * the rest fills the rural bounding box uniformly.
//
// The representation is deliberately *lazy*: generate() apportions the N
// terminals into per-cell counts (largest-remainder over the per-cell
// density mass, jittered per seed), assigns each cell a contiguous id range
// in cell-id order, and stops there — O(#populated cells) memory, never
// O(N). Concrete terminal coordinates only exist when a cell is
// materialize()d, drawn from that cell's own seed-derived stream, so a
// million-terminal continent where most cells are aggregated analytically
// (fleet.hpp) costs memory proportional to the cells actually simulated.
// Every query is bit-identical regardless of which cells are materialized,
// in what order, or on which thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/cell.hpp"
#include "leo/geodesy.hpp"
#include "util/rng.hpp"

namespace slp::fleet {

using TerminalId = std::uint32_t;

/// One weighted population centre for the urban component.
struct PopulationCenter {
  std::string name;
  leo::GeoPoint location;
  double weight = 1.0;  ///< relative draw probability (~population)
};

/// The default centres: the paper's Belgian/Dutch anchor cities plus the
/// Louvain-la-Neuve vantage itself, weighted by metro population.
[[nodiscard]] std::vector<PopulationCenter> default_population_centers();

/// Continental-scale centres: ~40 European metro areas weighted by
/// population (millions), for million-terminal campaigns.
[[nodiscard]] std::vector<PopulationCenter> european_population_centers();

class Placement {
 public:
  struct Config {
    int terminals = 0;               ///< background terminals to place
    double cell_km = 24.0;           ///< CellGrid resolution
    double urban_fraction = 0.70;    ///< share drawn around population centres
    double urban_sigma_km = 18.0;    ///< Gaussian scatter around a centre
    /// Rural fill bounding box; defaults cover ~180 km around the vantage.
    double lat_min = 49.8;
    double lat_max = 51.6;
    double lon_min = 3.0;
    double lon_max = 6.2;
    std::vector<PopulationCenter> centers;  ///< empty = default_population_centers()
  };

  /// Continental preset: the European bounding box (36-60N, -10..32E) with
  /// european_population_centers() and a metro-scale sigma. `terminals` is
  /// left at 0 for the caller to fill.
  [[nodiscard]] static Config continental_europe();

  /// One populated cell: `count` terminals with the contiguous id range
  /// [first, first + count). Ranges are assigned in cell-id order, so both
  /// ids and cells ascend together.
  struct CellRange {
    CellId cell = 0;
    TerminalId first = 0;
    std::uint32_t count = 0;
  };

  struct Terminal {
    TerminalId id = 0;
    leo::GeoPoint location;
    CellId cell = 0;
  };

  /// Apportions `config.terminals` terminals into per-cell counts; `rng`
  /// should be a label-forked stream (e.g. sim.fork_rng("fleet/placement"))
  /// so placement never perturbs other components. O(#candidate cells);
  /// draws exactly one value from `rng` (the per-cell stream base).
  [[nodiscard]] static Placement generate(const Config& config, Rng rng);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const CellGrid& grid() const { return grid_; }
  /// Populated cells, cell-id ordered.
  [[nodiscard]] const std::vector<CellRange>& cells() const { return cells_; }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] std::uint32_t total_terminals() const { return total_; }
  /// Null for cells with no terminals.
  [[nodiscard]] const CellRange* find(CellId cell) const;

  /// Materializes one cell's terminals on demand: coordinates are drawn
  /// uniformly within the cell from a stream keyed by (placement seed,
  /// cell id) — O(count), independent of every other cell, and identical
  /// however often or late it is called.
  [[nodiscard]] std::vector<Terminal> materialize(const CellRange& range) const;
  [[nodiscard]] std::vector<Terminal> materialize(CellId cell) const;

  /// The per-cell stream base (one draw from the generate() rng).
  [[nodiscard]] std::uint64_t stream_seed() const { return stream_seed_; }

 private:
  Placement(Config config, CellGrid grid) : config_{std::move(config)}, grid_{grid} {}

  Config config_;
  CellGrid grid_;
  std::uint64_t stream_seed_ = 0;
  std::vector<CellRange> cells_;  ///< cell-id ordered, counts > 0
  std::uint32_t total_ = 0;
};

}  // namespace slp::fleet
