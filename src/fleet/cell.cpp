#include "fleet/cell.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace slp::fleet {

namespace {

/// Kilometres per degree of latitude on the spherical Earth used throughout
/// leo::geodesy (2 * pi * R / 360).
const double kKmPerDegLat = 2.0 * std::numbers::pi * leo::kEarthRadiusM / 1000.0 / 360.0;

}  // namespace

CellGrid::CellGrid(double cell_km) : cell_km_{std::max(1.0, cell_km)} {
  rings_ = std::max(1, static_cast<int>(std::ceil(180.0 * kKmPerDegLat / cell_km_)));
}

int CellGrid::bins_in_ring(int ring) const {
  // Ring circumference shrinks with cos(latitude at the ring centre); keep
  // the bin width close to cell_km on the ground.
  const double lat_deg = -90.0 + (static_cast<double>(ring) + 0.5) * 180.0 / rings_;
  const double circumference_km = 360.0 * kKmPerDegLat * std::cos(leo::deg_to_rad(lat_deg));
  return std::max(1, static_cast<int>(std::round(circumference_km / cell_km_)));
}

CellId CellGrid::cell_of(const leo::GeoPoint& p) const {
  const double lat = std::clamp(p.lat_deg, -90.0, 90.0);
  // Normalize longitude into [0, 360).
  double lon = std::fmod(p.lon_deg, 360.0);
  if (lon < 0.0) lon += 360.0;
  int ring = static_cast<int>((lat + 90.0) / 180.0 * rings_);
  ring = std::clamp(ring, 0, rings_ - 1);
  const int bins = bins_in_ring(ring);
  int bin = static_cast<int>(lon / 360.0 * bins);
  bin = std::clamp(bin, 0, bins - 1);
  return (static_cast<CellId>(ring) << 32) | static_cast<CellId>(bin);
}

leo::GeoPoint CellGrid::center_of(CellId cell) const {
  const int ring = static_cast<int>(cell >> 32);
  const int bin = static_cast<int>(cell & 0xFFFFFFFFull);
  const double lat = -90.0 + (static_cast<double>(ring) + 0.5) * 180.0 / rings_;
  const int bins = bins_in_ring(std::clamp(ring, 0, rings_ - 1));
  double lon = (static_cast<double>(bin) + 0.5) * 360.0 / bins;
  if (lon >= 180.0) lon -= 360.0;  // back to the conventional [-180, 180)
  return leo::GeoPoint{lat, lon, 0.0};
}

int CellGrid::ring_of(double lat_deg) const {
  const double lat = std::clamp(lat_deg, -90.0, 90.0);
  return std::clamp(static_cast<int>((lat + 90.0) / 180.0 * rings_), 0, rings_ - 1);
}

CellGrid::Bounds CellGrid::bounds_of(CellId cell) const {
  const int ring = std::clamp(static_cast<int>(cell >> 32), 0, rings_ - 1);
  const int bins = bins_in_ring(ring);
  const int bin = std::clamp(static_cast<int>(cell & 0xFFFFFFFFull), 0, bins - 1);
  Bounds b;
  b.lat_min = -90.0 + static_cast<double>(ring) * 180.0 / rings_;
  b.lat_max = -90.0 + static_cast<double>(ring + 1) * 180.0 / rings_;
  b.lon_min = static_cast<double>(bin) * 360.0 / bins;
  b.lon_max = static_cast<double>(bin + 1) * 360.0 / bins;
  return b;
}

std::string CellGrid::to_string(CellId cell) {
  std::string out = "r";
  out += std::to_string(cell >> 32);
  out += 'b';
  out += std::to_string(cell & 0xFFFFFFFFull);
  return out;
}

HierarchicalGrid::HierarchicalGrid(double cell_km, int supercell_factor)
    : base_{cell_km},
      coarse_{std::max(1.0, cell_km) * std::max(1, supercell_factor)},
      factor_{std::max(1, supercell_factor)} {}

}  // namespace slp::fleet
