// campaign.hpp — the fleet as a runnable, mergeable experiment.
//
// FleetCampaign builds the minimal universe for contention studies — one
// StarlinkAccess, an optional scenario timeline, and the fleet — without the
// full measurement testbed (no TCP stacks, no anchors), so a 10k-terminal
// cell stays cheap enough to replicate across seeds. The Result carries the
// per-cell and per-terminal distributions as stats::KeyedSamples, whose
// key-ordered merge keeps runner::run_merged byte-identical for any --jobs.
#pragma once

#include <cstdint>
#include <memory>

#include "fleet/fleet.hpp"
#include "obs/recorder.hpp"
#include "scenario/scenario.hpp"
#include "stats/groupby.hpp"
#include "stats/quantiles.hpp"

namespace slp::fleet {

struct FleetCampaign {
  struct Config {
    std::uint64_t seed = 7;
    Fleet::Config fleet;  ///< fleet.size <= 0 still runs (pure ambient access)
    leo::StarlinkAccess::Config starlink;
    Duration duration = Duration::hours(1);
    obs::Options obs;
    std::shared_ptr<const scenario::Scenario> scenario;
    bool fast_forward = true;  ///< see Simulator::set_fast_forward
  };

  struct Result {
    stats::KeyedSamples cell_util_down;     ///< per cell, one sample per epoch
    stats::KeyedSamples cell_util_up;
    stats::KeyedSamples terminal_down_mbps; ///< per active terminal allocation
    stats::Samples foreground_down_mbps;    ///< what the measured stack sees
    stats::Samples foreground_up_mbps;
    std::uint64_t terminals = 0;  ///< background terminals (max across cells)
    std::uint64_t cells = 0;      ///< hot contention domains (max across cells)
    std::uint64_t supercells = 0;            ///< analytic aggregates (max)
    std::uint64_t aggregated_terminals = 0;  ///< terminals folded analytically (max)
    std::uint64_t epochs = 0;
    std::uint64_t attaches = 0;
    std::uint64_t detaches = 0;
    std::uint64_t handovers = 0;
    std::uint64_t reallocations = 0;
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

/// Cell-order fold for runner::run_merged (ADL).
void merge(FleetCampaign::Result& into, const FleetCampaign::Result& from);

}  // namespace slp::fleet
