// cell.hpp — H3-style geographic cells for shared-capacity accounting.
//
// Starlink serves users in fixed ground cells a couple of dozen kilometres
// across; every subscriber in a cell shares that cell's spectrum. We key the
// fleet's contention domains off an equal-area-ish latitude/longitude grid:
// rings of constant latitude height, each ring split into longitude bins
// whose count shrinks with cos(latitude) so cells keep roughly constant
// ground area toward the poles (the same trick H3/S2 resolutions play,
// without importing either library). Cell ids are plain integers, stable
// under merge ordering, and derived purely from leo::geodesy coordinates —
// no RNG, no state.
#pragma once

#include <cstdint>
#include <string>

#include "leo/geodesy.hpp"

namespace slp::fleet {

/// Opaque cell key: (latitude ring << 32) | longitude bin. Orderable so
/// per-cell merges fold in deterministic cell-id order.
using CellId = std::uint64_t;

/// Fixed-resolution cell grid. Two grids with the same cell_km map every
/// point to the same id; resolution is a pure construction parameter.
class CellGrid {
 public:
  /// `cell_km`: target cell edge in kilometres (Starlink ground cells are
  /// on the order of 24 km across).
  explicit CellGrid(double cell_km = 24.0);

  [[nodiscard]] double cell_km() const { return cell_km_; }

  /// Cell containing a ground point.
  [[nodiscard]] CellId cell_of(const leo::GeoPoint& p) const;

  /// Centre of a cell (the representative point used for the cell's
  /// satellite-visibility geometry).
  [[nodiscard]] leo::GeoPoint center_of(CellId cell) const;

  /// "r<ring>b<bin>" — stable human-readable key for logs and metrics.
  [[nodiscard]] static std::string to_string(CellId cell);

  // Ring/bin structure, exposed so placement can enumerate candidate cells
  // without round-tripping every lattice point through cell_of().
  [[nodiscard]] int rings() const { return rings_; }
  [[nodiscard]] int bins_in_ring(int ring) const;
  [[nodiscard]] static CellId id_of(int ring, int bin) {
    return (static_cast<CellId>(ring) << 32) | static_cast<CellId>(bin);
  }
  /// Latitude ring containing `lat_deg` (clamped to the valid range).
  [[nodiscard]] int ring_of(double lat_deg) const;

  /// Geographic extent of a cell. Longitudes use the grid's internal
  /// [0, 360) convention — normalize before treating them as conventional
  /// [-180, 180) coordinates.
  struct Bounds {
    double lat_min = 0.0;
    double lat_max = 0.0;
    double lon_min = 0.0;  ///< [0, 360)
    double lon_max = 0.0;  ///< (0, 360]
  };
  [[nodiscard]] Bounds bounds_of(CellId cell) const;

 private:
  double cell_km_ = 24.0;
  int rings_ = 0;  ///< latitude rings covering [-90, 90]
};

/// Two-level continental/planet hierarchy: the base grid keyed by ordinary
/// CellIds plus a coarse grid whose cells ("supercells") tile
/// `supercell_factor` base cells per edge. Aggregated contention accounting
/// lives at the supercell level (fleet.hpp); the mapping is pure geometry —
/// no RNG, no state — so promotion/demotion decisions are deterministic.
class HierarchicalGrid {
 public:
  explicit HierarchicalGrid(double cell_km = 24.0, int supercell_factor = 8);

  [[nodiscard]] const CellGrid& base() const { return base_; }
  [[nodiscard]] const CellGrid& coarse() const { return coarse_; }
  [[nodiscard]] int supercell_factor() const { return factor_; }

  /// Supercell containing a base cell (keyed off the base cell's centre).
  [[nodiscard]] CellId super_of(CellId base_cell) const {
    return coarse_.cell_of(base_.center_of(base_cell));
  }
  [[nodiscard]] leo::GeoPoint super_center(CellId super) const {
    return coarse_.center_of(super);
  }

  /// Tag bit distinguishing supercell keys from base-cell keys when both
  /// land in one stats::KeyedSamples (ring indices never reach bit 31, so
  /// bit 63 is always free).
  static constexpr CellId kAggregateKeyBit = 1ull << 63;

 private:
  CellGrid base_;
  CellGrid coarse_;
  int factor_ = 8;
};

}  // namespace slp::fleet
