// cell.hpp — H3-style geographic cells for shared-capacity accounting.
//
// Starlink serves users in fixed ground cells a couple of dozen kilometres
// across; every subscriber in a cell shares that cell's spectrum. We key the
// fleet's contention domains off an equal-area-ish latitude/longitude grid:
// rings of constant latitude height, each ring split into longitude bins
// whose count shrinks with cos(latitude) so cells keep roughly constant
// ground area toward the poles (the same trick H3/S2 resolutions play,
// without importing either library). Cell ids are plain integers, stable
// under merge ordering, and derived purely from leo::geodesy coordinates —
// no RNG, no state.
#pragma once

#include <cstdint>
#include <string>

#include "leo/geodesy.hpp"

namespace slp::fleet {

/// Opaque cell key: (latitude ring << 32) | longitude bin. Orderable so
/// per-cell merges fold in deterministic cell-id order.
using CellId = std::uint64_t;

/// Fixed-resolution cell grid. Two grids with the same cell_km map every
/// point to the same id; resolution is a pure construction parameter.
class CellGrid {
 public:
  /// `cell_km`: target cell edge in kilometres (Starlink ground cells are
  /// on the order of 24 km across).
  explicit CellGrid(double cell_km = 24.0);

  [[nodiscard]] double cell_km() const { return cell_km_; }

  /// Cell containing a ground point.
  [[nodiscard]] CellId cell_of(const leo::GeoPoint& p) const;

  /// Centre of a cell (the representative point used for the cell's
  /// satellite-visibility geometry).
  [[nodiscard]] leo::GeoPoint center_of(CellId cell) const;

  /// "r<ring>b<bin>" — stable human-readable key for logs and metrics.
  [[nodiscard]] static std::string to_string(CellId cell);

 private:
  [[nodiscard]] int rings() const { return rings_; }
  [[nodiscard]] int bins_in_ring(int ring) const;

  double cell_km_ = 24.0;
  int rings_ = 0;  ///< latitude rings covering [-90, 90]
};

}  // namespace slp::fleet
