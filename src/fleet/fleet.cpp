#include "fleet/fleet.hpp"

#include <algorithm>
#include <utility>

#include "obs/profile.hpp"
#include "obs/recorder.hpp"

namespace slp::fleet {

namespace {

Placement make_placement(const Fleet::Config& cfg, const sim::Simulator& sim) {
  Placement::Config p = cfg.placement;
  p.terminals = std::max(0, cfg.size - 1);
  return Placement::generate(p, sim.fork_rng(cfg.rng_label + "/placement"));
}

std::vector<double> util_edges() {
  std::vector<double> edges;
  edges.reserve(20);
  for (int i = 1; i <= 20; ++i) edges.push_back(static_cast<double>(i) * 0.05);
  return edges;
}

std::vector<double> mbps_edges() {
  std::vector<double> edges;
  edges.reserve(13);
  for (double x = 0.125; x <= 512.0; x *= 2.0) edges.push_back(x);
  return edges;
}

}  // namespace

Fleet::Fleet(sim::Simulator& sim, leo::StarlinkAccess& access, Config config)
    : sim_{&sim},
      access_{&access},
      config_{std::move(config)},
      placement_{make_placement(config_, sim)},
      demand_{config_.demand},
      demand_seed_{sim.fork_rng(config_.rng_label + "/demand").next()},
      epoch_timer_{sim},
      cell_util_down_{util_edges()},
      cell_util_up_{util_edges()},
      terminal_down_mbps_{mbps_edges()} {
  const leo::StarlinkAccess::Config& ac = access.config();
  const CellGrid& grid = placement_.grid();
  foreground_cell_id_ = grid.cell_of(ac.terminal);

  CellArbiter::Config arb;
  arb.cell_downlink = ac.cell_downlink;
  arb.cell_uplink = ac.cell_uplink;
  arb.downlink_load = ac.downlink_load;
  arb.uplink_load = ac.uplink_load;

  const auto make_cell = [&](CellId id, const std::vector<TerminalId>* terms) {
    Cell c;
    c.id = id;
    const bool foreground = id == foreground_cell_id_;
    // The foreground cell's ambient fallback forks the access's own labels,
    // honouring the fleet-of-one bit-identity contract (cell_arbiter.hpp).
    const std::string base = foreground
                                 ? ac.rng_label
                                 : config_.rng_label + "/cell-" + CellGrid::to_string(id);
    c.arbiter = std::make_unique<CellArbiter>(arb, sim.fork_rng(base + "/load-down"),
                                              sim.fork_rng(base + "/load-up"));
    if (terms != nullptr) c.terminals = *terms;
    for (const TerminalId t : c.terminals) {
      c.arbiter->attach(t, config_.terminal_weight, /*elastic=*/false);
    }
    if (foreground) {
      c.arbiter->attach(kForegroundId, config_.foreground_weight, /*elastic=*/true);
    }
    // Handover tracking: the foreground cell reads the access's scheduler in
    // tick(); populated neighbour cells watch the sky from their own centre.
    if (config_.handovers && !foreground && !c.terminals.empty()) ensure_scheduler(c);
    cells_.push_back(std::move(c));
  };

  bool fg_placed = false;
  for (const auto& [id, terms] : placement_.cells()) {
    if (!fg_placed && id > foreground_cell_id_) {
      make_cell(foreground_cell_id_, nullptr);
      fg_placed = true;
    }
    make_cell(id, &terms);
    if (id == foreground_cell_id_) fg_placed = true;
  }
  if (!fg_placed) make_cell(foreground_cell_id_, nullptr);
  foreground_cell_ = find_cell(foreground_cell_id_);

  access.set_cell_share_model(this);

  if (auto* rec = sim.obs()) {
    obs::Registry& reg = rec->registry();
    obs_epochs_ = reg.counter("fleet.epochs");
    obs_attaches_ = reg.counter("fleet.attaches");
    obs_detaches_ = reg.counter("fleet.detaches");
    obs_handovers_ = reg.counter("fleet.handovers");
    obs_reallocations_ = reg.counter("fleet.reallocations");
    obs_util_down_ = reg.gauge("fleet.foreground_util_down");
    obs_util_up_ = reg.gauge("fleet.foreground_util_up");
    obs_epoch_handovers_ = reg.gauge("fleet.epoch_handovers");
    obs_epoch_reallocations_ = reg.gauge("fleet.epoch_reallocations");
    reg.gauge("fleet.terminals").set(static_cast<double>(placement_.terminals().size()));
    reg.gauge("fleet.cells").set(static_cast<double>(cells_.size()));
  }

  // A fleet of one has no demands to evaluate and must stay event-silent so
  // the fallback path is byte-identical to running without a fleet.
  if (config_.size > 1) {
    tick();
    // The construction-time tick usually runs before the campaign has
    // scheduled any workload, so the daemon check in tick() may have seen an
    // empty queue; always give the first epoch a chance to observe the real
    // workload before the daemon contract can retire the timer.
    if (!epoch_timer_.armed()) {
      epoch_timer_.arm(config_.epoch, [this] { tick(); });
    }
  }
}

Fleet::~Fleet() {
  if (access_->cell_share_model() == this) access_->set_cell_share_model(nullptr);
}

Fleet::Cell* Fleet::find_cell(CellId id) {
  const auto it = std::lower_bound(cells_.begin(), cells_.end(), id,
                                   [](const Cell& c, CellId key) { return c.id < key; });
  return (it != cells_.end() && it->id == id) ? &*it : nullptr;
}

void Fleet::ensure_scheduler(Cell& c) {
  if (c.scheduler != nullptr) return;
  const leo::StarlinkAccess::Config& ac = access_->config();
  if (constellation_ == nullptr) {
    constellation_ = std::make_unique<leo::Constellation>(ac.shell);
  }
  leo::HandoverScheduler::Config ho;
  ho.terminal = placement_.grid().center_of(c.id);
  ho.slot = ac.handover_slot;
  ho.terminal_min_elevation_deg = ac.terminal_min_elevation_deg;
  ho.gateways = leo::default_european_gateways();
  ho.active_planes_fn = ac.active_planes_fn;
  // Label-keyed fork: the stream is the same whether the scheduler is built
  // at construction or lazily when a migration leaves the cell behind.
  c.scheduler = std::make_unique<leo::HandoverScheduler>(
      *constellation_, std::move(ho),
      sim_->fork_rng(config_.rng_label + "/ho-" + CellGrid::to_string(c.id)));
  c.had_sat = false;  // fresh vantage: restart the change tracker
}

bool Fleet::set_foreground_position(const leo::GeoPoint& p, TimePoint now) {
  const CellId target = placement_.grid().cell_of(p);
  if (target == foreground_cell_id_) return false;

  Cell* old_cell = find_cell(foreground_cell_id_);
  old_cell->arbiter->detach(kForegroundId);
  // While it hosted the foreground, the departed cell tracked the access's
  // own scheduler; if background members remain it now needs its own sky
  // watcher at the cell centre.
  if (config_.handovers && !old_cell->terminals.empty()) ensure_scheduler(*old_cell);

  Cell* next = find_cell(target);
  if (next == nullptr) {
    const leo::StarlinkAccess::Config& ac = access_->config();
    CellArbiter::Config arb;
    arb.cell_downlink = ac.cell_downlink;
    arb.cell_uplink = ac.cell_uplink;
    arb.downlink_load = ac.downlink_load;
    arb.uplink_load = ac.uplink_load;
    Cell c;
    c.id = target;
    const std::string base = config_.rng_label + "/cell-" + CellGrid::to_string(target);
    c.arbiter = std::make_unique<CellArbiter>(arb, sim_->fork_rng(base + "/load-down"),
                                              sim_->fork_rng(base + "/load-up"));
    for (int dir = 0; dir < 2; ++dir) {
      if (load_override_[dir] >= 0.0) c.arbiter->set_load_override(dir, load_override_[dir]);
    }
    const auto it = std::lower_bound(cells_.begin(), cells_.end(), target,
                                     [](const Cell& cc, CellId key) { return cc.id < key; });
    cells_.insert(it, std::move(c));  // invalidates old_cell; not used below
    next = find_cell(target);
    if (auto* rec = sim_->obs()) {
      rec->registry().gauge("fleet.cells").set(static_cast<double>(cells_.size()));
    }
  }
  next->arbiter->attach(kForegroundId, config_.foreground_weight, /*elastic=*/true);
  foreground_cell_id_ = target;
  foreground_cell_ = next;
  (void)now;
  publish_stats();
  return true;
}

CellArbiter* Fleet::arbiter(CellId cell) {
  Cell* c = find_cell(cell);
  return c == nullptr ? nullptr : c->arbiter.get();
}

CellArbiter::Stats Fleet::totals() const {
  CellArbiter::Stats t;
  for (const Cell& c : cells_) {
    const CellArbiter::Stats& s = c.arbiter->stats();
    t.attaches += s.attaches;
    t.detaches += s.detaches;
    t.handovers += s.handovers;
    t.reallocations += s.reallocations;
    t.epoch += s.epoch;
  }
  return t;
}

void Fleet::publish_stats() {
  const CellArbiter::Stats t = totals();
  obs_attaches_.add(t.attaches - published_.attaches);
  obs_detaches_.add(t.detaches - published_.detaches);
  obs_handovers_.add(t.handovers - published_.handovers);
  obs_reallocations_.add(t.reallocations - published_.reallocations);
  published_ = t;
}

void Fleet::tick() {
  const obs::SectionTimer wall{obs::Section::kArbiter};
  const TimePoint now = sim_->now();
  for (Cell& c : cells_) {
    // Cells without a scheduler of their own: only the current foreground
    // cell may fall back to the access's scheduler (a cell the foreground
    // migrated out of and left empty has nobody watching its sky).
    if (config_.handovers && (c.scheduler != nullptr || c.id == foreground_cell_id_)) {
      const leo::HandoverScheduler::Path& path = c.scheduler != nullptr
                                                     ? c.scheduler->path_at(now)
                                                     : access_->scheduler().path_at(now);
      if (path.connected) {
        if (c.had_sat && !(path.sat == c.last_sat)) c.arbiter->note_handover();
        c.last_sat = path.sat;
        c.had_sat = true;
      }
    }
    for (const TerminalId id : c.terminals) {
      const DemandModel::Demand d = demand_.at(terminal_seed(id), now);
      c.arbiter->set_demand(id, d.down, d.up);
    }
    c.arbiter->reallocate(now);
    cell_util_down_.add(c.id, c.arbiter->utilization(CellArbiter::kDown, now));
    cell_util_up_.add(c.id, c.arbiter->utilization(CellArbiter::kUp, now));
    for (const TerminalId id : c.terminals) {
      if (demand_.at(terminal_seed(id), now).active()) {
        terminal_down_mbps_.add(
            id, c.arbiter->allocation(id, CellArbiter::kDown).bits_per_second() / 1e6);
      }
    }
  }
  foreground_down_mbps_.add(access_->downlink_capacity(now).bits_per_second() / 1e6);
  foreground_up_mbps_.add(access_->uplink_capacity(now).bits_per_second() / 1e6);
  ++epochs_;
  obs_epochs_.add();
  obs_util_down_.set(foreground_cell_->arbiter->utilization(CellArbiter::kDown, now));
  obs_util_up_.set(foreground_cell_->arbiter->utilization(CellArbiter::kUp, now));
  // Epoch observability: per-epoch arbiter deltas as gauges, and a trace
  // span covering the interval this re-evaluation closed out.
  {
    const CellArbiter::Stats t = totals();
    const std::uint64_t d_handovers = t.handovers - published_.handovers;
    const std::uint64_t d_reallocations = t.reallocations - published_.reallocations;
    obs_epoch_handovers_.set(static_cast<double>(d_handovers));
    obs_epoch_reallocations_.set(static_cast<double>(d_reallocations));
    if (auto* rec = sim_->obs(); rec != nullptr && rec->trace().enabled() && ticked_) {
      rec->trace().span("fleet", "epoch", last_tick_at_, now,
                        "{\"epoch\":" + std::to_string(epochs_) +
                            ",\"handovers\":" + std::to_string(d_handovers) +
                            ",\"reallocations\":" + std::to_string(d_reallocations) + "}");
    }
    last_tick_at_ = now;
    ticked_ = true;
  }
  publish_stats();
  // Daemon contract: the fleet must never be the only thing keeping
  // `Simulator::run()` (queue-drain termination) alive. At this point our own
  // timer event has already been popped, so an empty queue means no workload,
  // scenario, or campaign event will ever fire again — stop re-arming and let
  // the run terminate. FleetCampaign keeps a sentinel event pending through
  // its whole duration so a fleet-only simulation still ticks to the end.
  if (sim_->pending_events() > 0) {
    epoch_timer_.arm(config_.epoch, [this] { tick(); });
  }
}

double Fleet::available_fraction(int direction, TimePoint t) {
  return foreground_cell_->arbiter->available_fraction(direction, t);
}

void Fleet::set_load_override(int direction, double utilization) {
  // A scripted surge is regional: every cell's ambient floor rises, so both
  // the foreground capacity and the neighbours' contention react.
  load_override_[direction] = utilization;
  for (Cell& c : cells_) c.arbiter->set_load_override(direction, utilization);
}

void Fleet::clear_load_override(int direction) {
  load_override_[direction] = -1.0;
  for (Cell& c : cells_) c.arbiter->clear_load_override(direction);
}

}  // namespace slp::fleet
