#include "fleet/fleet.hpp"

#include <algorithm>
#include <utility>

#include "obs/profile.hpp"
#include "obs/recorder.hpp"

namespace slp::fleet {

namespace {

Placement make_placement(const Fleet::Config& cfg, const sim::Simulator& sim) {
  Placement::Config p = cfg.placement;
  p.terminals = std::max(0, cfg.size - 1);
  return Placement::generate(p, sim.fork_rng(cfg.rng_label + "/placement"));
}

std::vector<double> util_edges() {
  std::vector<double> edges;
  edges.reserve(20);
  for (int i = 1; i <= 20; ++i) edges.push_back(static_cast<double>(i) * 0.05);
  return edges;
}

std::vector<double> mbps_edges() {
  std::vector<double> edges;
  edges.reserve(13);
  for (double x = 0.125; x <= 512.0; x *= 2.0) edges.push_back(x);
  return edges;
}

}  // namespace

Fleet::Fleet(sim::Simulator& sim, leo::StarlinkAccess& access, Config config)
    : sim_{&sim},
      access_{&access},
      config_{std::move(config)},
      placement_{make_placement(config_, sim)},
      hier_{config_.placement.cell_km, config_.supercell_factor},
      demand_{config_.demand},
      demand_seed_{sim.fork_rng(config_.rng_label + "/demand").next()},
      epoch_timer_{sim},
      cell_util_down_{util_edges()},
      cell_util_up_{util_edges()},
      terminal_down_mbps_{mbps_edges()} {
  const leo::StarlinkAccess::Config& ac = access.config();
  foreground_cell_id_ = placement_.grid().cell_of(ac.terminal);

  arb_config_.cell_downlink = ac.cell_downlink;
  arb_config_.cell_uplink = ac.cell_uplink;
  arb_config_.downlink_load = ac.downlink_load;
  arb_config_.uplink_load = ac.uplink_load;

  // Hot set: without aggregation every populated cell runs its arbiter (the
  // flat-grid behaviour); with it, only the foreground cell starts hot and
  // everything else folds into its supercell's analytic term.
  for (const Placement::CellRange& r : placement_.cells()) {
    if (!config_.aggregate_idle || r.cell == foreground_cell_id_) {
      make_cell(r.cell, &r);
    } else {
      fold_into_aggregate(r.cell, r.count);
    }
  }
  if (find_cell(foreground_cell_id_) == nullptr) make_cell(foreground_cell_id_, nullptr);
  foreground_cell_ = find_cell(foreground_cell_id_);

  access.set_cell_share_model(this);

  if (auto* rec = sim.obs()) {
    obs::Registry& reg = rec->registry();
    obs_epochs_ = reg.counter("fleet.epochs");
    obs_attaches_ = reg.counter("fleet.attaches");
    obs_detaches_ = reg.counter("fleet.detaches");
    obs_handovers_ = reg.counter("fleet.handovers");
    obs_reallocations_ = reg.counter("fleet.reallocations");
    obs_promotions_ = reg.counter("fleet.promotions");
    obs_demotions_ = reg.counter("fleet.demotions");
    obs_util_down_ = reg.gauge("fleet.foreground_util_down");
    obs_util_up_ = reg.gauge("fleet.foreground_util_up");
    obs_epoch_handovers_ = reg.gauge("fleet.epoch_handovers");
    obs_epoch_reallocations_ = reg.gauge("fleet.epoch_reallocations");
    obs_hot_cells_ = reg.gauge("fleet.hot_cells");
    obs_supercells_ = reg.gauge("fleet.supercells");
    obs_aggregated_terminals_ = reg.gauge("fleet.aggregated_terminals");
    reg.gauge("fleet.terminals").set(static_cast<double>(placement_.total_terminals()));
    reg.gauge("fleet.cells").set(static_cast<double>(cells_.size()));
  }
  update_shape_gauges();

  // A fleet of one has no demands to evaluate and must stay event-silent so
  // the fallback path is byte-identical to running without a fleet.
  if (config_.size > 1) {
    tick();
    // The construction-time tick usually runs before the campaign has
    // scheduled any workload, so the daemon check in tick() may have seen an
    // empty queue; always give the first epoch a chance to observe the real
    // workload before the daemon contract can retire the timer.
    if (!epoch_timer_.armed()) {
      epoch_timer_.arm(config_.epoch, [this] { tick(); });
    }
  }
}

Fleet::~Fleet() {
  if (access_->cell_share_model() == this) access_->set_cell_share_model(nullptr);
}

Fleet::Cell* Fleet::find_cell(CellId id) {
  const auto it = std::lower_bound(cells_.begin(), cells_.end(), id,
                                   [](const Cell& c, CellId key) { return c.id < key; });
  return (it != cells_.end() && it->id == id) ? &*it : nullptr;
}

void Fleet::make_cell(CellId id, const Placement::CellRange* range) {
  Cell c;
  c.id = id;
  const bool foreground = id == foreground_cell_id_;
  // The foreground cell's ambient fallback forks the access's own labels,
  // honouring the fleet-of-one bit-identity contract (cell_arbiter.hpp).
  // Label-keyed forks also make a promoted cell's streams identical whether
  // the cell went hot at construction or mid-run.
  const std::string base =
      foreground ? access_->config().rng_label
                 : config_.rng_label + "/cell-" + CellGrid::to_string(id);
  c.arbiter = std::make_unique<CellArbiter>(arb_config_, sim_->fork_rng(base + "/load-down"),
                                            sim_->fork_rng(base + "/load-up"));
  if (range != nullptr) {
    c.first_terminal = range->first;
    c.terminal_count = range->count;
  }
  for (std::uint32_t k = 0; k < c.terminal_count; ++k) {
    c.arbiter->attach(c.first_terminal + k, config_.terminal_weight, /*elastic=*/false);
  }
  if (foreground) {
    c.arbiter->attach(kForegroundId, config_.foreground_weight, /*elastic=*/true);
  }
  for (int dir = 0; dir < 2; ++dir) {
    if (load_override_[dir] >= 0.0) c.arbiter->set_load_override(dir, load_override_[dir]);
  }
  // Handover tracking: the foreground cell reads the access's scheduler in
  // tick(); populated neighbour cells watch the sky from their own centre.
  if (config_.handovers && !foreground && c.terminal_count > 0) ensure_scheduler(c);
  const auto it = std::lower_bound(cells_.begin(), cells_.end(), id,
                                   [](const Cell& cc, CellId key) { return cc.id < key; });
  cells_.insert(it, std::move(c));
}

void Fleet::ensure_scheduler(Cell& c) {
  if (c.scheduler != nullptr) return;
  const leo::StarlinkAccess::Config& ac = access_->config();
  if (constellation_ == nullptr) {
    constellation_ = std::make_unique<leo::Constellation>(ac.shell);
  }
  leo::HandoverScheduler::Config ho;
  ho.terminal = placement_.grid().center_of(c.id);
  ho.slot = ac.handover_slot;
  ho.terminal_min_elevation_deg = ac.terminal_min_elevation_deg;
  ho.gateways = leo::default_european_gateways();
  ho.active_planes_fn = ac.active_planes_fn;
  // Label-keyed fork: the stream is the same whether the scheduler is built
  // at construction or lazily when a migration leaves the cell behind.
  c.scheduler = std::make_unique<leo::HandoverScheduler>(
      *constellation_, std::move(ho),
      sim_->fork_rng(config_.rng_label + "/ho-" + CellGrid::to_string(c.id)));
  c.had_sat = false;  // fresh vantage: restart the change tracker
}

void Fleet::fold_into_aggregate(CellId base, std::uint32_t count) {
  const CellId super = hier_.super_of(base);
  const auto it =
      std::lower_bound(aggregates_.begin(), aggregates_.end(), super,
                       [](const Aggregate& a, CellId key) { return a.super < key; });
  if (it != aggregates_.end() && it->super == super) {
    it->terminals += count;
    it->cells += 1;
  } else {
    aggregates_.insert(it, Aggregate{super, count, 1});
  }
}

void Fleet::take_from_aggregate(CellId base, std::uint32_t count) {
  const CellId super = hier_.super_of(base);
  const auto it =
      std::lower_bound(aggregates_.begin(), aggregates_.end(), super,
                       [](const Aggregate& a, CellId key) { return a.super < key; });
  if (it == aggregates_.end() || it->super != super) return;
  it->terminals -= std::min(count, it->terminals);
  if (it->cells > 0) it->cells -= 1;
  if (it->cells == 0 && it->terminals == 0) aggregates_.erase(it);
}

Fleet::Cell* Fleet::promote_cell(CellId id) {
  Cell* existing = find_cell(id);
  if (existing != nullptr) return existing;
  const Placement::CellRange* range = placement_.find(id);
  if (range != nullptr && config_.aggregate_idle) take_from_aggregate(id, range->count);
  make_cell(id, range);
  obs_promotions_.add();
  return find_cell(id);
}

void Fleet::demote_cell(CellId id) {
  if (!config_.aggregate_idle || id == foreground_cell_id_) return;
  const auto it = std::lower_bound(cells_.begin(), cells_.end(), id,
                                   [](const Cell& c, CellId key) { return c.id < key; });
  if (it == cells_.end() || it->id != id || it->pinned) return;
  // The cell's counters move to the retired accumulator so totals() stays
  // monotonic across promote/demote cycles.
  const CellArbiter::Stats& s = it->arbiter->stats();
  retired_.attaches += s.attaches;
  retired_.detaches += s.detaches;
  retired_.handovers += s.handovers;
  retired_.reallocations += s.reallocations;
  retired_.epoch += s.epoch;
  if (it->terminal_count > 0) fold_into_aggregate(id, it->terminal_count);
  cells_.erase(it);
  obs_demotions_.add();
}

bool Fleet::set_foreground_position(const leo::GeoPoint& p, TimePoint now) {
  const CellId target = placement_.grid().cell_of(p);
  if (target == foreground_cell_id_) return false;
  const CellId departed = foreground_cell_id_;
  {
    Cell* old_cell = find_cell(departed);
    old_cell->arbiter->detach(kForegroundId);
    // While it hosted the foreground, the departed cell tracked the access's
    // own scheduler; if it stays hot with background members it now needs
    // its own sky watcher at the cell centre.
    const bool stays_hot = !config_.aggregate_idle || old_cell->pinned;
    if (config_.handovers && stays_hot && old_cell->terminal_count > 0) {
      ensure_scheduler(*old_cell);
    }
  }
  Cell* next = promote_cell(target);  // may reallocate cells_
  next->arbiter->attach(kForegroundId, config_.foreground_weight, /*elastic=*/true);
  foreground_cell_id_ = target;
  // Under aggregation the departed cell's members return to the analytic
  // term (unless a vantage pins the cell hot); the flat mode keeps every
  // visited cell live, as before.
  demote_cell(departed);
  foreground_cell_ = find_cell(target);
  (void)now;
  publish_stats();
  update_shape_gauges();
  return true;
}

TerminalId Fleet::add_vantage(const leo::GeoPoint& where, double weight) {
  const CellId cell = placement_.grid().cell_of(where);
  Cell* c = promote_cell(cell);
  c->pinned = true;
  const TerminalId id = next_vantage_id_--;
  c->arbiter->attach(id, weight, /*elastic=*/true);
  vantages_.push_back({id, cell, weight});
  foreground_cell_ = find_cell(foreground_cell_id_);  // promote may realloc cells_
  update_shape_gauges();
  return id;
}

CellId Fleet::vantage_cell(TerminalId vantage) const {
  for (const Vantage& v : vantages_) {
    if (v.id == vantage) return v.cell;
  }
  return 0;
}

double Fleet::vantage_available_fraction(TerminalId vantage, int direction, TimePoint t) {
  const Vantage* v = nullptr;
  for (const Vantage& x : vantages_) {
    if (x.id == vantage) v = &x;
  }
  if (v == nullptr) return 0.0;
  Cell* c = find_cell(v->cell);
  if (c == nullptr) return 0.0;
  const double pool = c->arbiter->available_fraction(direction, t);
  // The elastic pool is split by weight among co-resident elastic members.
  double elastic_weight = v->weight;
  if (v->cell == foreground_cell_id_) elastic_weight += config_.foreground_weight;
  for (const Vantage& x : vantages_) {
    if (x.cell == v->cell && x.id != v->id) elastic_weight += x.weight;
  }
  return elastic_weight > 0.0 ? pool * v->weight / elastic_weight : pool;
}

CellArbiter* Fleet::arbiter(CellId cell) {
  Cell* c = find_cell(cell);
  return c == nullptr ? nullptr : c->arbiter.get();
}

std::uint64_t Fleet::aggregated_terminal_count() const {
  std::uint64_t total = 0;
  for (const Aggregate& a : aggregates_) total += a.terminals;
  return total;
}

double Fleet::analytic_util(int direction, const Aggregate& a, TimePoint t) const {
  const phy::LoadProcess::Config& load = direction == CellArbiter::kUp
                                             ? arb_config_.uplink_load
                                             : arb_config_.downlink_load;
  double util = load.floor;
  if (a.cells > 0) {
    // Mean per-cell offered load over the supercell: terminals spread evenly
    // across its populated cells, each demanding the class-mix expectation
    // at t. The same floor/ceiling clamps bound it that bound a real
    // arbiter's contention term.
    const DemandModel::Demand e = demand_.expected_at(t);
    const double per_cell_bps =
        static_cast<double>(a.terminals) / static_cast<double>(a.cells) *
        (direction == CellArbiter::kUp ? e.up : e.down).bits_per_second();
    const double nominal = (direction == CellArbiter::kUp ? arb_config_.cell_uplink
                                                          : arb_config_.cell_downlink)
                               .bits_per_second();
    util = std::clamp(per_cell_bps / std::max(1.0, nominal), load.floor, load.ceiling);
  }
  // Scenario surges compose exactly like the arbiter's override: a floor
  // under the modelled contention, capped at the ceiling.
  if (load_override_[direction] >= 0.0) {
    util = std::min(std::max(util, load_override_[direction]), load.ceiling);
  }
  return util;
}

CellArbiter::Stats Fleet::totals() const {
  CellArbiter::Stats t = retired_;
  for (const Cell& c : cells_) {
    const CellArbiter::Stats& s = c.arbiter->stats();
    t.attaches += s.attaches;
    t.detaches += s.detaches;
    t.handovers += s.handovers;
    t.reallocations += s.reallocations;
    t.epoch += s.epoch;
  }
  return t;
}

void Fleet::publish_stats() {
  const CellArbiter::Stats t = totals();
  obs_attaches_.add(t.attaches - published_.attaches);
  obs_detaches_.add(t.detaches - published_.detaches);
  obs_handovers_.add(t.handovers - published_.handovers);
  obs_reallocations_.add(t.reallocations - published_.reallocations);
  published_ = t;
}

void Fleet::update_shape_gauges() {
  obs_hot_cells_.set(static_cast<double>(cells_.size()));
  obs_supercells_.set(static_cast<double>(aggregates_.size()));
  obs_aggregated_terminals_.set(static_cast<double>(aggregated_terminal_count()));
  if (auto* rec = sim_->obs()) {
    rec->registry().gauge("fleet.cells").set(static_cast<double>(cells_.size()));
  }
}

void Fleet::step_cell(Cell& c, TimePoint now, CellTick& out) {
  out.active_down.clear();
  // Cells without a scheduler of their own: only the current foreground
  // cell may fall back to the access's scheduler (a cell the foreground
  // migrated out of and left empty has nobody watching its sky).
  if (config_.handovers && (c.scheduler != nullptr || c.id == foreground_cell_id_)) {
    const leo::HandoverScheduler::Path& path = c.scheduler != nullptr
                                                   ? c.scheduler->path_at(now)
                                                   : access_->scheduler().path_at(now);
    if (path.connected) {
      if (c.had_sat && !(path.sat == c.last_sat)) c.arbiter->note_handover();
      c.last_sat = path.sat;
      c.had_sat = true;
    }
  }
  for (std::uint32_t k = 0; k < c.terminal_count; ++k) {
    const TerminalId id = c.first_terminal + k;
    const DemandModel::Demand d = demand_.at(terminal_seed(id), now);
    c.arbiter->set_demand(id, d.down, d.up);
  }
  c.arbiter->reallocate(now);
  out.util_down = c.arbiter->utilization(CellArbiter::kDown, now);
  out.util_up = c.arbiter->utilization(CellArbiter::kUp, now);
  for (std::uint32_t k = 0; k < c.terminal_count; ++k) {
    const TerminalId id = c.first_terminal + k;
    if (demand_.at(terminal_seed(id), now).active()) {
      out.active_down.emplace_back(
          id, c.arbiter->allocation(id, CellArbiter::kDown).bits_per_second() / 1e6);
    }
  }
}

void Fleet::fold_cell(const Cell& c, const CellTick& t) {
  cell_util_down_.add(c.id, t.util_down);
  cell_util_up_.add(c.id, t.util_up);
  for (const auto& [id, mbps] : t.active_down) terminal_down_mbps_.add(id, mbps);
}

void Fleet::tick() {
  const obs::SectionTimer wall{obs::Section::kArbiter};
  const TimePoint now = sim_->now();
  const std::size_t n = cells_.size();
  if (config_.shards == 1 || n <= 1) {
    // Serial reference loop: step + fold per cell, in cell-id order.
    CellTick scratch;
    for (Cell& c : cells_) {
      step_cell(c, now, scratch);
      fold_cell(c, scratch);
    }
  } else {
    // Sharded epochs: contiguous cell-id ranges stepped on pool workers
    // (disjoint per-cell state; each worker writes only its cells' scratch
    // slots), then folded here in the same cell-id order as the serial
    // loop — byte-identical output for any shard count.
    if (pool_ == nullptr) pool_ = std::make_unique<runner::Pool>(config_.shards);
    tick_scratch_.resize(n);
    Cell* cells = cells_.data();
    CellTick* ticks = tick_scratch_.data();
    pool_->run_ranges(n, pool_->workers() * 4,
                      [this, now, cells, ticks](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          step_cell(cells[i], now, ticks[i]);
                        }
                      });
    for (std::size_t i = 0; i < n; ++i) fold_cell(cells_[i], tick_scratch_[i]);
  }
  // Aggregated supercells: one O(1) analytic term each, keyed with the
  // aggregate bit so they never collide with base-cell keys.
  for (const Aggregate& a : aggregates_) {
    const CellId key = a.super | HierarchicalGrid::kAggregateKeyBit;
    cell_util_down_.add(key, analytic_util(CellArbiter::kDown, a, now));
    cell_util_up_.add(key, analytic_util(CellArbiter::kUp, a, now));
  }
  foreground_down_mbps_.add(access_->downlink_capacity(now).bits_per_second() / 1e6);
  foreground_up_mbps_.add(access_->uplink_capacity(now).bits_per_second() / 1e6);
  ++epochs_;
  obs_epochs_.add();
  obs_util_down_.set(foreground_cell_->arbiter->utilization(CellArbiter::kDown, now));
  obs_util_up_.set(foreground_cell_->arbiter->utilization(CellArbiter::kUp, now));
  // Epoch observability: per-epoch arbiter deltas as gauges, and a trace
  // span covering the interval this re-evaluation closed out.
  {
    const CellArbiter::Stats t = totals();
    const std::uint64_t d_handovers = t.handovers - published_.handovers;
    const std::uint64_t d_reallocations = t.reallocations - published_.reallocations;
    obs_epoch_handovers_.set(static_cast<double>(d_handovers));
    obs_epoch_reallocations_.set(static_cast<double>(d_reallocations));
    if (auto* rec = sim_->obs(); rec != nullptr && rec->trace().enabled() && ticked_) {
      rec->trace().span("fleet", "epoch", last_tick_at_, now,
                        "{\"epoch\":" + std::to_string(epochs_) +
                            ",\"handovers\":" + std::to_string(d_handovers) +
                            ",\"reallocations\":" + std::to_string(d_reallocations) + "}");
    }
    last_tick_at_ = now;
    ticked_ = true;
  }
  publish_stats();
  // Daemon contract: the fleet must never be the only thing keeping
  // `Simulator::run()` (queue-drain termination) alive. At this point our own
  // timer event has already been popped, so an empty queue means no workload,
  // scenario, or campaign event will ever fire again — stop re-arming and let
  // the run terminate. FleetCampaign keeps a sentinel event pending through
  // its whole duration so a fleet-only simulation still ticks to the end.
  if (sim_->pending_events() > 0) {
    epoch_timer_.arm(config_.epoch, [this] { tick(); });
  }
}

double Fleet::available_fraction(int direction, TimePoint t) {
  return foreground_cell_->arbiter->available_fraction(direction, t);
}

void Fleet::set_load_override(int direction, double utilization) {
  // A scripted surge is regional: every cell's ambient floor rises, so both
  // the foreground capacity and the neighbours' contention react. Aggregated
  // supercells read load_override_ inside analytic_util directly.
  load_override_[direction] = utilization;
  for (Cell& c : cells_) c.arbiter->set_load_override(direction, utilization);
}

void Fleet::clear_load_override(int direction) {
  load_override_[direction] = -1.0;
  for (Cell& c : cells_) c.arbiter->clear_load_override(direction);
}

}  // namespace slp::fleet
