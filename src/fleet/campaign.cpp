#include "fleet/campaign.hpp"

#include <algorithm>
#include <memory>

#include "scenario/injector.hpp"
#include "sim/network.hpp"

namespace slp::fleet {

FleetCampaign::Result FleetCampaign::run(const Config& config) {
  sim::Simulator sim{config.seed};
  sim.set_fast_forward(config.fast_forward);
  if (config.obs.any()) sim.enable_obs(config.obs);
  sim::Network net{sim};
  leo::StarlinkAccess access{net, config.starlink};

  std::unique_ptr<scenario::Injector> injector;
  if (config.scenario != nullptr && !config.scenario->empty()) {
    injector = std::make_unique<scenario::Injector>(
        sim, config.scenario, scenario::Injector::Hooks{&access});
  }

  // Sentinel: the fleet's epoch timer retires itself when nothing else is on
  // the queue (so packet campaigns using Simulator::run() can drain). This
  // campaign has no packet workload, so keep one no-op event pending until
  // the end of the run — it guarantees the fleet ticks for the full duration.
  // Scheduled before the Fleet so its construction-time epoch sees it too.
  sim.schedule_in(config.duration, [] {});

  std::unique_ptr<Fleet> fleet;
  if (config.fleet.enabled()) fleet = std::make_unique<Fleet>(sim, access, config.fleet);

  sim.run_for(config.duration);

  Result r;
  if (fleet != nullptr) {
    r.cell_util_down = fleet->cell_util(CellArbiter::kDown);
    r.cell_util_up = fleet->cell_util(CellArbiter::kUp);
    r.terminal_down_mbps = fleet->terminal_down_mbps();
    r.foreground_down_mbps = fleet->foreground_down_mbps();
    r.foreground_up_mbps = fleet->foreground_up_mbps();
    r.terminals = fleet->terminal_count();
    r.cells = fleet->cell_count();
    r.supercells = fleet->aggregates().size();
    r.aggregated_terminals = fleet->aggregated_terminal_count();
    r.epochs = fleet->epochs();
    const CellArbiter::Stats t = fleet->totals();
    r.attaches = t.attaches;
    r.detaches = t.detaches;
    r.handovers = t.handovers;
    r.reallocations = t.reallocations;
  }
  if (auto* rec = sim.obs()) {
    if (rec->options().metrics) {
      rec->registry().counter("sim.events_processed").add(sim.events_processed());
    }
    r.obs = rec->take_snapshot();
  } else {
    r.obs.cells = 1;
  }
  return r;
}

void merge(FleetCampaign::Result& into, const FleetCampaign::Result& from) {
  into.cell_util_down.merge(from.cell_util_down);
  into.cell_util_up.merge(from.cell_util_up);
  into.terminal_down_mbps.merge(from.terminal_down_mbps);
  into.foreground_down_mbps.add_all(from.foreground_down_mbps.values());
  into.foreground_up_mbps.add_all(from.foreground_up_mbps.values());
  // Fleet shape is config-driven and identical across cells; keep the max so
  // a merge with a disabled-fleet cell stays sensible.
  into.terminals = std::max(into.terminals, from.terminals);
  into.cells = std::max(into.cells, from.cells);
  into.supercells = std::max(into.supercells, from.supercells);
  into.aggregated_terminals = std::max(into.aggregated_terminals, from.aggregated_terminals);
  into.epochs += from.epochs;
  into.attaches += from.attaches;
  into.detaches += from.detaches;
  into.handovers += from.handovers;
  into.reallocations += from.reallocations;
  obs::merge(into.obs, from.obs);
}

}  // namespace slp::fleet
