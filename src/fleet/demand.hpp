// demand.hpp — per-terminal traffic demand as a pure function of time.
//
// 10k terminals sampled every couple of seconds for simulated hours cannot
// afford per-terminal cached sample vectors (the LoadProcess trick) — that
// is O(terminals x steps) memory. Instead each terminal's demand is a
// *stateless* counter-based function: activity and per-session rate are
// derived by hashing (terminal seed, session index), so any (terminal, t)
// query is O(1), random-access, and bit-identical regardless of query order,
// thread count, or how often the fleet ticks.
//
// The model: every terminal belongs to one demand class (bulk / speedtest /
// web / idle, drawn once from the placement stream). Time is split into
// class-specific session windows; a session is active with the class's duty
// probability (optionally modulated by a diurnal sine — the paper saw a flat
// day/night profile, so the default amplitude is 0), and an active session
// demands the class rate jittered by a per-session factor.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace slp::fleet {

enum class DemandClass : std::uint8_t {
  kBulk = 0,
  kSpeedtest,
  kWeb,
  // Real-time application classes (src/qoe/): zero-fraction by default so
  // the stock mix stays byte-identical; named mixes (named_mix) enable them.
  kVideo,  ///< ABR streaming: high sustained downlink
  kVc,     ///< videoconferencing: symmetric, latency-sensitive
  kGame,   ///< game traffic: tiny rates, long duty
  kIdle,
};

[[nodiscard]] std::string_view to_string(DemandClass c);

/// splitmix64-style stateless mix of two words -> uniform u64 (the same
/// finalizer runner::cell_seed uses for cell decorrelation).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a ^ (0x9E3779B97F4A7C15ull * (b + 0x632BE59BD9B4E019ull));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from the same mix.
[[nodiscard]] constexpr double mix_uniform(std::uint64_t a, std::uint64_t b) {
  return static_cast<double>(mix64(a, b) >> 11) * 0x1.0p-53;
}

class DemandModel {
 public:
  struct ClassProfile {
    double fraction = 0.25;     ///< share of the fleet in this class
    DataRate down;              ///< active-session downlink demand
    DataRate up;                ///< active-session uplink demand
    Duration session;           ///< session window length
    double duty = 0.5;          ///< probability a window is active
  };

  struct Config {
    ClassProfile bulk{0.10, DataRate::mbps(40), DataRate::mbps(6),
                      Duration::minutes(4), 0.35};
    ClassProfile speedtest{0.05, DataRate::mbps(300), DataRate::mbps(40),
                           Duration::seconds(30), 0.04};
    ClassProfile web{0.45, DataRate::mbps(8), DataRate::mbps(1.5),
                     Duration::seconds(40), 0.50};
    /// QoE session classes, disabled (fraction 0) in the default mix so the
    /// stock exports stay byte-identical — named_mix() turns them on.
    ClassProfile video{0.0, DataRate::mbps(6), DataRate::mbps(0.2),
                       Duration::minutes(6), 0.45};
    ClassProfile vc{0.0, DataRate::mbps(2.5), DataRate::mbps(2.5),
                    Duration::minutes(30), 0.20};
    ClassProfile game{0.0, DataRate::mbps(0.5), DataRate::mbps(0.3),
                      Duration::minutes(20), 0.30};
    ClassProfile idle{0.40, DataRate::mbps(0.8), DataRate::mbps(0.4),
                      Duration::minutes(2), 0.30};
    /// Global demand multipliers — the calibration knobs that put the mean
    /// per-cell utilization on the paper's Figure 5 operating point for the
    /// default placement density.
    double scale_down = 1.0;
    double scale_up = 1.0;
    /// Diurnal duty modulation: duty *= 1 + amplitude * sin(2*pi*t/period).
    /// 0 reproduces the paper's flat day/night observation.
    double diurnal_amplitude = 0.0;
    Duration diurnal_period = Duration::hours(24);
  };

  explicit DemandModel(Config config) : config_{config} {}

  [[nodiscard]] const Config& config() const { return config_; }

  /// Class of a terminal: a deterministic hash draw against the configured
  /// class fractions (no placement state needed).
  [[nodiscard]] DemandClass class_of(std::uint64_t terminal_seed) const;

  struct Demand {
    DataRate down;
    DataRate up;
    [[nodiscard]] bool active() const { return !down.is_zero() || !up.is_zero(); }
  };

  /// Demand of a terminal at time t. Pure: no state is read or written.
  [[nodiscard]] Demand at(std::uint64_t terminal_seed, TimePoint t) const;

  /// Expected long-run downlink/uplink demand of one average terminal (the
  /// class-mix mean) — used to report the implied per-cell utilization.
  [[nodiscard]] Demand expected() const;

  /// Expected demand of one average terminal *at time t*: expected() scaled
  /// by the diurnal duty factor. This is the O(1) analytic term the
  /// hierarchical fleet folds idle cells into (exact while duty * factor
  /// stays <= 1, which holds for every default class profile).
  [[nodiscard]] Demand expected_at(TimePoint t) const;

  /// The duty multiplier at time t (1.0 when diurnal modulation is off).
  [[nodiscard]] double diurnal_factor(TimePoint t) const;

 private:
  [[nodiscard]] const ClassProfile& profile(DemandClass c) const;

  Config config_;
};

/// Named fleet traffic mixes for the `--fleet-mix` flag. Presets:
///   "default"   — the stock bulk/speedtest/web/idle mix (fig-bench baseline)
///   "streaming" — evening-peak video: a third of the fleet watching ABR
///   "realtime"  — call/game heavy: vc + game sessions dominate
///   "mixed"     — all six application classes active in plausible shares
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] DemandModel::Config named_mix(std::string_view name);

/// The preset names, for flag validation and help text.
[[nodiscard]] std::vector<std::string_view> mix_names();

}  // namespace slp::fleet
