// cell_arbiter.hpp — weighted proportional-fair sharing of one cell.
//
// The paper's capacity model is "the user sees cell capacity x (1 - load)"
// with load drawn from a synthetic AR(1) process (phy::LoadProcess). The
// arbiter makes that load *real*: terminals attach to their cell, declare
// per-direction demand, and a weighted max-min (water-filling) allocation
// splits the cell's nominal capacity among them. The allocation is
// re-evaluated on every epoch trigger — demand change, attach, detach,
// serving-satellite handover — and cached between triggers so per-packet
// capacity queries stay O(1).
//
// Fallback contract (the single-terminal seam): a cell with *no background
// members attached* delegates both directions to its ambient LoadProcess,
// which is constructed from the same config and the same label-forked RNG
// stream as leo::StarlinkAccess's own — so a fleet of size 1 yields
// bit-identical downlink_capacity()/uplink_capacity() to the legacy path
// (tests/fleet_test.cpp pins this, and the fig5 regression pins the
// campaign output downstream).
//
// Scenario composition: a load-surge override pins a utilization *floor*
// under the real contention (util = max(override, contention)), so scripted
// surges compose with simulated demand instead of silently replacing it.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/placement.hpp"
#include "phy/load_process.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace slp::fleet {

class CellArbiter {
 public:
  /// Direction indices follow leo::StarlinkAccess::set_load_override.
  static constexpr int kUp = 0;
  static constexpr int kDown = 1;

  struct Config {
    DataRate cell_downlink = DataRate::mbps(450);
    DataRate cell_uplink = DataRate::mbps(80);
    /// Ambient (non-fleet) load parameters: the fallback process when the
    /// cell has no attached background members, and the source of the
    /// floor/ceiling clamps bounding real contention (floor = unmodelled
    /// background activity, ceiling = scheduler overhead reserve).
    phy::LoadProcess::Config downlink_load;
    phy::LoadProcess::Config uplink_load;
  };

  /// `down_rng`/`up_rng` seed the ambient fallback processes; for the
  /// foreground cell they must be forked with the StarlinkAccess labels
  /// ("<rng_label>/load-down", "<rng_label>/load-up") to honour the
  /// bit-identity contract above.
  CellArbiter(Config config, Rng down_rng, Rng up_rng);

  // --- membership ----------------------------------------------------
  /// Attaches a terminal with a scheduling weight. Elastic members (the
  /// foreground terminal stack) have unbounded demand and soak up whatever
  /// the background leaves. Re-attaching an existing id updates it.
  void attach(TerminalId id, double weight, bool elastic);
  void detach(TerminalId id);
  [[nodiscard]] bool has_background() const { return background_members_ > 0; }
  [[nodiscard]] std::size_t members() const { return members_.size(); }

  /// Declares a background member's demand; returns true if it changed.
  /// Transitions between zero and positive demand count as active-set
  /// attach/detach in the stats.
  bool set_demand(TerminalId id, DataRate down, DataRate up);

  /// Serving-satellite change for this cell: beams are re-granted, so the
  /// allocation epoch advances.
  void note_handover();

  // --- allocation ----------------------------------------------------
  /// Recomputes both directions' allocations if any epoch trigger fired
  /// since the last call (cheap no-op otherwise).
  void reallocate(TimePoint t);

  /// Fraction of nominal capacity available to the elastic foreground in
  /// `direction` — the drop-in replacement for LoadProcess::
  /// available_fraction. Delegates to the ambient process when the cell has
  /// no background members.
  [[nodiscard]] double available_fraction(int direction, TimePoint t);

  /// Background share of the nominal capacity, after floor/ceiling clamps
  /// and any override (1 - available_fraction in contention mode).
  [[nodiscard]] double utilization(int direction, TimePoint t);

  /// Last-computed allocation of a member (elastic members report the
  /// capacity the foreground sees). Zero for unknown ids.
  [[nodiscard]] DataRate allocation(TerminalId id, int direction) const;

  /// Sum of background allocations in `direction` (work-conservation
  /// checks: equals min(total demand, schedulable capacity)).
  [[nodiscard]] DataRate background_allocated(int direction) const;

  // --- scenario hooks -------------------------------------------------
  /// Pins a utilization floor (load surge). In fallback mode this is
  /// exactly LoadProcess::set_utilization_override; under real contention
  /// the effective utilization is max(override, contention), capped at the
  /// ceiling.
  void set_load_override(int direction, double utilization);
  void clear_load_override(int direction);

  struct Stats {
    std::uint64_t attaches = 0;        ///< structural + zero->positive demand
    std::uint64_t detaches = 0;        ///< structural + positive->zero demand
    std::uint64_t handovers = 0;
    std::uint64_t reallocations = 0;   ///< epochs actually recomputed
    std::uint64_t epoch = 0;           ///< allocation generation counter
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Member {
    TerminalId id = 0;
    double weight = 1.0;
    bool elastic = false;
    double demand_bps[2] = {0.0, 0.0};  ///< [kUp, kDown]
    double alloc_bps[2] = {0.0, 0.0};
  };

  [[nodiscard]] Member* find(TerminalId id);
  [[nodiscard]] const Member* find(TerminalId id) const;
  [[nodiscard]] phy::LoadProcess& ambient(int direction) {
    return direction == kUp ? ambient_up_ : ambient_down_;
  }
  [[nodiscard]] double nominal_bps(int direction) const {
    return (direction == kUp ? config_.cell_uplink : config_.cell_downlink)
        .bits_per_second();
  }
  void mark_epoch();
  void recompute_direction(int direction, TimePoint t);

  Config config_;
  phy::LoadProcess ambient_down_;
  phy::LoadProcess ambient_up_;
  std::vector<Member> members_;        ///< id-ordered (cells hold few members)
  std::size_t background_members_ = 0;
  bool dirty_ = true;
  double cached_util_[2] = {0.0, 0.0};
  Stats stats_;

  // Water-filling scratch, reused across epochs so reallocation does not
  // allocate in steady state.
  struct Entry {
    std::size_t member = 0;
    double weight = 1.0;
    double normalized = 0.0;  ///< demand / weight (sort key)
  };
  std::vector<Entry> fill_buf_;
};

}  // namespace slp::fleet
