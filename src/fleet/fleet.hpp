// fleet.hpp — N terminals sharing the constellation's ground cells.
//
// The paper measures ONE terminal and models everyone else as a synthetic
// load process. The fleet makes the neighbourhood real: N lightweight
// terminal stacks are placed around the vantage (fleet::Placement), each
// with a demand profile (fleet::DemandModel), grouped into ground cells
// whose capacity a weighted proportional-fair arbiter (fleet::CellArbiter)
// splits among them. The foreground terminal — the full packet-level stack
// behind leo::StarlinkAccess — joins its own cell as an *elastic* member,
// and the fleet installs itself as the access's CellShareModel, so the
// measured capacity is whatever the arbiter leaves after its simulated
// neighbours are served.
//
// Background terminals are deliberately *not* packet-level: their demand is
// a pure function of (terminal seed, time) and their effect on the
// foreground is entirely through the arbiter's allocation. That is what
// makes 10k terminals tractable — the per-epoch cost is O(terminals) hash
// evaluations plus O(active) water-filling, with no extra events per
// terminal.
//
// Continental scale adds two more levers on top (both off by default):
//
//   * `aggregate_idle`: only cells hosting a measured vantage (the
//     foreground, add_vantage() terminals, or cells a mobile foreground has
//     promoted) run their arbiter ("hot" cells). Every other populated cell
//     folds into its HierarchicalGrid supercell as a pair of counters
//     (terminals, cells), whose utilization is computed analytically in
//     O(1) per epoch from DemandModel::expected_at — a million terminals
//     cost memory and time proportional to the hot set. Promotion and
//     demotion happen deterministically when the foreground crosses a cell
//     boundary, moving the cell's count between the aggregate and a live
//     arbiter (lazy Placement ranges make the membership free).
//
//   * `shards`: hot-cell epochs are partitioned by cell-id order across a
//     private runner::Pool. Per-cell state (arbiter, scheduler, ambient
//     RNG streams) is disjoint by construction, workers write per-cell
//     slots, and the fold into the keyed distributions happens on the sim
//     thread in cell-id order afterwards — so any shard count produces
//     byte-identical output to the serial loop (shards == 1 *is* the
//     serial loop).
//
// Determinism: placement draws from one forked label stream; demand is
// counter-based (no state, no draw order); per-cell ambient processes and
// handover schedulers fork label streams keyed by the cell id. A fleet of
// size 1 attaches no background members anywhere, so every capacity query
// falls back to the ambient LoadProcess pair forked with StarlinkAccess's
// own labels — bit-identical to running without a fleet at all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/cell_arbiter.hpp"
#include "fleet/demand.hpp"
#include "fleet/placement.hpp"
#include "leo/access.hpp"
#include "obs/registry.hpp"
#include "runner/pool.hpp"
#include "sim/simulator.hpp"
#include "stats/groupby.hpp"
#include "stats/quantiles.hpp"

namespace slp::fleet {

class Fleet final : public leo::CellShareModel {
 public:
  /// Reserved id for the foreground (packet-level) terminal. Vantage ids
  /// descend from kForegroundId - 1, background ids ascend from 0.
  static constexpr TerminalId kForegroundId = 0xFFFFFFFFu;

  struct Config {
    /// Total terminals *including* the foreground stack; 0 disables the
    /// fleet entirely, 1 attaches only the foreground (pure fallback mode).
    int size = 0;
    Placement::Config placement;  ///< .terminals is derived (= size - 1)
    DemandModel::Config demand;
    /// Demand/allocation re-evaluation cadence; matches LoadProcess's 2 s
    /// step so contention moves at the same timescale as the synthetic load.
    Duration epoch = Duration::seconds(2);
    double terminal_weight = 1.0;    ///< background scheduling weight
    double foreground_weight = 1.0;  ///< elastic foreground weight
    /// Track per-cell serving-satellite changes (each one advances the
    /// cell's allocation epoch).
    bool handovers = true;
    /// Analytic idle-cell aggregation (see file comment). Off = every
    /// populated cell is hot, the pre-hierarchical behaviour.
    bool aggregate_idle = false;
    /// Base cells per supercell edge for the hierarchical grid.
    int supercell_factor = 8;
    /// Arbiter epoch shards: 1 = serial reference loop, 0 = hardware
    /// concurrency, N = that many pool workers. Output is byte-identical
    /// for every value.
    int shards = 1;
    std::string rng_label = "fleet";

    [[nodiscard]] bool enabled() const { return size > 0; }
  };

  /// Builds the fleet and installs it on `access` (uninstalled again in the
  /// destructor). `access` and `sim` must outlive the fleet.
  Fleet(sim::Simulator& sim, leo::StarlinkAccess& access, Config config);
  ~Fleet() override;

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // --- CellShareModel (the access-facing seam) ------------------------
  double available_fraction(int direction, TimePoint t) override;
  void set_load_override(int direction, double utilization) override;
  void clear_load_override(int direction) override;

  // --- introspection --------------------------------------------------
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] const DemandModel& demand_model() const { return demand_; }
  [[nodiscard]] const HierarchicalGrid& hier_grid() const { return hier_; }
  [[nodiscard]] CellId foreground_cell() const { return foreground_cell_id_; }
  /// Hot (arbiter-backed) cells.
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] std::size_t terminal_count() const { return placement_.total_terminals(); }
  /// Stable per-terminal demand seed (hash stream base + id).
  [[nodiscard]] std::uint64_t terminal_seed(TerminalId id) const {
    return mix64(demand_seed_, id);
  }
  /// Null for cells that are not hot.
  [[nodiscard]] CellArbiter* arbiter(CellId cell);

  /// One analytically aggregated supercell: `terminals` background
  /// terminals across `cells` populated base cells, contributing a single
  /// O(1) utilization term per epoch.
  struct Aggregate {
    CellId super = 0;
    std::uint32_t terminals = 0;
    std::uint32_t cells = 0;
  };
  /// Supercell-id ordered; empty unless config().aggregate_idle.
  [[nodiscard]] const std::vector<Aggregate>& aggregates() const { return aggregates_; }
  [[nodiscard]] std::uint64_t aggregated_terminal_count() const;
  /// The analytic utilization term for one aggregate at time t (clamped to
  /// the ambient floor/ceiling; composes with load-surge overrides exactly
  /// like a hot arbiter: util = max(analytic, override)).
  [[nodiscard]] double analytic_util(int direction, const Aggregate& a, TimePoint t) const;

  // --- measured vantages (measure::MultiVantageCampaign) ---------------
  /// Attaches a measured vantage terminal — an elastic member, like the
  /// foreground — in the cell containing `where`, promoting that cell out
  /// of its aggregate if needed and pinning it hot for the fleet's
  /// lifetime. Returns the vantage's reserved terminal id.
  TerminalId add_vantage(const leo::GeoPoint& where, double weight = 1.0);
  [[nodiscard]] std::size_t vantage_count() const { return vantages_.size(); }
  [[nodiscard]] CellId vantage_cell(TerminalId vantage) const;
  /// Capacity fraction the vantage's cell leaves to *this* vantage (the
  /// elastic pool share, split by weight among co-resident elastic
  /// members). The multi-vantage campaign's per-anchor capacity seam.
  [[nodiscard]] double vantage_available_fraction(TerminalId vantage, int direction,
                                                  TimePoint t);

  // --- mobility (src/mobility/) ---------------------------------------
  /// Re-homes the foreground terminal to the cell containing `p`: detaches
  /// it from its old arbiter, attaches it (elastic) to the new cell's —
  /// promoting/creating that cell on first visit — and, under
  /// aggregate_idle, folds the departed cell back into its supercell
  /// unless a vantage pins it. Returns true when a cell boundary was
  /// actually crossed. Draws no randomness beyond label-forked streams, so
  /// a moving foreground never perturbs the background fleet's draws.
  bool set_foreground_position(const leo::GeoPoint& p, TimePoint now);

  /// Aggregated arbiter counters across all hot cells, including cells
  /// retired by demotion (monotonic across promote/demote cycles).
  [[nodiscard]] CellArbiter::Stats totals() const;
  /// Fleet-wide epoch ticks executed so far.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }

  // --- per-epoch accumulated distributions ----------------------------
  /// Keys are base-cell ids for hot cells and
  /// (super | HierarchicalGrid::kAggregateKeyBit) for aggregates.
  [[nodiscard]] const stats::KeyedSamples& cell_util(int direction) const {
    return direction == CellArbiter::kUp ? cell_util_up_ : cell_util_down_;
  }
  [[nodiscard]] const stats::KeyedSamples& terminal_down_mbps() const {
    return terminal_down_mbps_;
  }
  [[nodiscard]] const stats::Samples& foreground_down_mbps() const {
    return foreground_down_mbps_;
  }
  [[nodiscard]] const stats::Samples& foreground_up_mbps() const {
    return foreground_up_mbps_;
  }

 private:
  struct Cell {
    CellId id = 0;
    std::unique_ptr<CellArbiter> arbiter;
    /// Background members: the contiguous id range [first_terminal,
    /// first_terminal + terminal_count) from the lazy placement; 0 for
    /// pure-foreground/vantage cells.
    TerminalId first_terminal = 0;
    std::uint32_t terminal_count = 0;
    bool pinned = false;  ///< hosts a vantage; never demoted
    /// Serving-satellite tracker. The foreground cell reads the access's own
    /// scheduler (null here); other cells get one at their cell centre,
    /// sharing the fleet's constellation.
    std::unique_ptr<leo::HandoverScheduler> scheduler;
    leo::SatIndex last_sat{};
    bool had_sat = false;
  };

  /// Per-cell epoch output, staged so sharded and serial ticks fold the
  /// same values in the same (cell-id) order.
  struct CellTick {
    double util_down = 0.0;
    double util_up = 0.0;
    std::vector<std::pair<TerminalId, double>> active_down;  ///< (id, mbps)
  };

  void tick();
  /// Runs one cell's epoch (handover check, demand refresh, water-filling)
  /// and stages its samples into `out`. Touches only this cell's state (and
  /// the access's scheduler for the foreground cell), so disjoint cells may
  /// step concurrently.
  void step_cell(Cell& c, TimePoint now, CellTick& out);
  /// Folds one staged epoch into the keyed distributions (sim thread only).
  void fold_cell(const Cell& c, const CellTick& t);
  void publish_stats();
  void update_shape_gauges();
  [[nodiscard]] Cell* find_cell(CellId id);
  /// Makes `id` hot: returns the existing cell or builds one, pulling its
  /// placement range out of the supercell aggregate when aggregation is on.
  Cell* promote_cell(CellId id);
  /// Folds an unpinned, non-foreground hot cell back into its aggregate
  /// (no-op unless aggregate_idle). Its arbiter counters move into the
  /// retired accumulator so totals() stays monotonic.
  void demote_cell(CellId id);
  void make_cell(CellId id, const Placement::CellRange* range);
  void fold_into_aggregate(CellId base, std::uint32_t count);
  void take_from_aggregate(CellId base, std::uint32_t count);
  /// Builds the cell-centre sky watcher for a cell that needs one.
  void ensure_scheduler(Cell& c);

  sim::Simulator* sim_;
  leo::StarlinkAccess* access_;
  Config config_;
  Placement placement_;
  HierarchicalGrid hier_;
  DemandModel demand_;
  std::uint64_t demand_seed_ = 0;
  CellArbiter::Config arb_config_;
  /// Shared orbital state for the per-cell handover schedulers (the access
  /// owns its own instance; same shell config → same geometry).
  std::unique_ptr<leo::Constellation> constellation_;
  std::vector<Cell> cells_;  ///< hot cells, cell-id ordered
  std::vector<Aggregate> aggregates_;
  struct Vantage {
    TerminalId id = 0;
    CellId cell = 0;
    double weight = 1.0;
  };
  std::vector<Vantage> vantages_;
  TerminalId next_vantage_id_ = kForegroundId - 1;
  CellId foreground_cell_id_ = 0;
  Cell* foreground_cell_ = nullptr;
  sim::Timer epoch_timer_;
  /// Lazily created on the first sharded tick; null while shards == 1.
  std::unique_ptr<runner::Pool> pool_;
  std::vector<CellTick> tick_scratch_;

  stats::KeyedSamples cell_util_down_;
  stats::KeyedSamples cell_util_up_;
  stats::KeyedSamples terminal_down_mbps_;
  stats::Samples foreground_down_mbps_;
  stats::Samples foreground_up_mbps_;

  /// Active scenario load-surge floors (index = direction; < 0 = none), so
  /// cells created by a mid-run migration inherit an in-force override.
  double load_override_[2] = {-1.0, -1.0};

  CellArbiter::Stats published_{};
  CellArbiter::Stats retired_{};  ///< counters of demoted cells
  std::uint64_t epochs_ = 0;
  obs::Counter obs_epochs_;
  obs::Counter obs_attaches_;
  obs::Counter obs_detaches_;
  obs::Counter obs_handovers_;
  obs::Counter obs_reallocations_;
  obs::Counter obs_promotions_;
  obs::Counter obs_demotions_;
  obs::Gauge obs_util_down_;
  obs::Gauge obs_util_up_;
  obs::Gauge obs_epoch_handovers_;
  obs::Gauge obs_epoch_reallocations_;
  obs::Gauge obs_hot_cells_;
  obs::Gauge obs_supercells_;
  obs::Gauge obs_aggregated_terminals_;
  /// Start of the current epoch interval (previous tick), for trace spans.
  TimePoint last_tick_at_;
  bool ticked_ = false;
};

}  // namespace slp::fleet
