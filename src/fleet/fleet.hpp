// fleet.hpp — N terminals sharing the constellation's ground cells.
//
// The paper measures ONE terminal and models everyone else as a synthetic
// load process. The fleet makes the neighbourhood real: N lightweight
// terminal stacks are placed around the vantage (fleet::Placement), each
// with a demand profile (fleet::DemandModel), grouped into ground cells
// whose capacity a weighted proportional-fair arbiter (fleet::CellArbiter)
// splits among them. The foreground terminal — the full packet-level stack
// behind leo::StarlinkAccess — joins its own cell as an *elastic* member,
// and the fleet installs itself as the access's CellShareModel, so the
// measured capacity is whatever the arbiter leaves after its simulated
// neighbours are served.
//
// Background terminals are deliberately *not* packet-level: their demand is
// a pure function of (terminal seed, time) and their effect on the
// foreground is entirely through the arbiter's allocation. That is what
// makes 10k terminals tractable — the per-epoch cost is O(terminals) hash
// evaluations plus O(active) water-filling, with no extra events per
// terminal.
//
// Determinism: placement draws from one forked label stream; demand is
// counter-based (no state, no draw order); per-cell ambient processes and
// handover schedulers fork label streams keyed by the cell id. A fleet of
// size 1 (just the foreground) attaches no background members anywhere, so
// every capacity query falls back to the ambient LoadProcess pair forked
// with StarlinkAccess's own labels — bit-identical to running without a
// fleet at all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/cell_arbiter.hpp"
#include "fleet/demand.hpp"
#include "fleet/placement.hpp"
#include "leo/access.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "stats/groupby.hpp"
#include "stats/quantiles.hpp"

namespace slp::fleet {

class Fleet final : public leo::CellShareModel {
 public:
  /// Reserved id for the foreground (packet-level) terminal.
  static constexpr TerminalId kForegroundId = 0xFFFFFFFFu;

  struct Config {
    /// Total terminals *including* the foreground stack; 0 disables the
    /// fleet entirely, 1 attaches only the foreground (pure fallback mode).
    int size = 0;
    Placement::Config placement;  ///< .terminals is derived (= size - 1)
    DemandModel::Config demand;
    /// Demand/allocation re-evaluation cadence; matches LoadProcess's 2 s
    /// step so contention moves at the same timescale as the synthetic load.
    Duration epoch = Duration::seconds(2);
    double terminal_weight = 1.0;    ///< background scheduling weight
    double foreground_weight = 1.0;  ///< elastic foreground weight
    /// Track per-cell serving-satellite changes (each one advances the
    /// cell's allocation epoch).
    bool handovers = true;
    std::string rng_label = "fleet";

    [[nodiscard]] bool enabled() const { return size > 0; }
  };

  /// Builds the fleet and installs it on `access` (uninstalled again in the
  /// destructor). `access` and `sim` must outlive the fleet.
  Fleet(sim::Simulator& sim, leo::StarlinkAccess& access, Config config);
  ~Fleet() override;

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // --- CellShareModel (the access-facing seam) ------------------------
  double available_fraction(int direction, TimePoint t) override;
  void set_load_override(int direction, double utilization) override;
  void clear_load_override(int direction) override;

  // --- introspection --------------------------------------------------
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] const DemandModel& demand_model() const { return demand_; }
  [[nodiscard]] CellId foreground_cell() const { return foreground_cell_id_; }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] std::size_t terminal_count() const { return placement_.terminals().size(); }
  /// Stable per-terminal demand seed (hash stream base + id).
  [[nodiscard]] std::uint64_t terminal_seed(TerminalId id) const {
    return mix64(demand_seed_, id);
  }
  /// Null for unknown cells.
  [[nodiscard]] CellArbiter* arbiter(CellId cell);

  // --- mobility (src/mobility/) ---------------------------------------
  /// Re-homes the foreground terminal to the cell containing `p`: detaches
  /// it from its old arbiter, attaches it (elastic) to the new cell's —
  /// creating that cell on first visit — and leaves the departed cell
  /// serving its background members. Returns true when a cell boundary was
  /// actually crossed. Draws no randomness beyond label-forked streams, so
  /// a moving foreground never perturbs the background fleet's draws.
  bool set_foreground_position(const leo::GeoPoint& p, TimePoint now);

  /// Aggregated arbiter counters across all cells.
  [[nodiscard]] CellArbiter::Stats totals() const;
  /// Fleet-wide epoch ticks executed so far.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }

  // --- per-epoch accumulated distributions ----------------------------
  [[nodiscard]] const stats::KeyedSamples& cell_util(int direction) const {
    return direction == CellArbiter::kUp ? cell_util_up_ : cell_util_down_;
  }
  [[nodiscard]] const stats::KeyedSamples& terminal_down_mbps() const {
    return terminal_down_mbps_;
  }
  [[nodiscard]] const stats::Samples& foreground_down_mbps() const {
    return foreground_down_mbps_;
  }
  [[nodiscard]] const stats::Samples& foreground_up_mbps() const {
    return foreground_up_mbps_;
  }

 private:
  struct Cell {
    CellId id = 0;
    std::unique_ptr<CellArbiter> arbiter;
    std::vector<TerminalId> terminals;  ///< ascending; empty for the pure-foreground cell
    /// Serving-satellite tracker. The foreground cell reads the access's own
    /// scheduler (null here); other cells get one at their cell centre,
    /// sharing the fleet's constellation.
    std::unique_ptr<leo::HandoverScheduler> scheduler;
    leo::SatIndex last_sat{};
    bool had_sat = false;
  };

  void tick();
  void publish_stats();
  [[nodiscard]] Cell* find_cell(CellId id);
  /// Builds the cell-centre sky watcher for a cell that needs one.
  void ensure_scheduler(Cell& c);

  sim::Simulator* sim_;
  leo::StarlinkAccess* access_;
  Config config_;
  Placement placement_;
  DemandModel demand_;
  std::uint64_t demand_seed_ = 0;
  /// Shared orbital state for the per-cell handover schedulers (the access
  /// owns its own instance; same shell config → same geometry).
  std::unique_ptr<leo::Constellation> constellation_;
  std::vector<Cell> cells_;  ///< cell-id ordered
  CellId foreground_cell_id_ = 0;
  Cell* foreground_cell_ = nullptr;
  sim::Timer epoch_timer_;

  stats::KeyedSamples cell_util_down_;
  stats::KeyedSamples cell_util_up_;
  stats::KeyedSamples terminal_down_mbps_;
  stats::Samples foreground_down_mbps_;
  stats::Samples foreground_up_mbps_;

  /// Active scenario load-surge floors (index = direction; < 0 = none), so
  /// cells created by a mid-run migration inherit an in-force override.
  double load_override_[2] = {-1.0, -1.0};

  CellArbiter::Stats published_{};
  std::uint64_t epochs_ = 0;
  obs::Counter obs_epochs_;
  obs::Counter obs_attaches_;
  obs::Counter obs_detaches_;
  obs::Counter obs_handovers_;
  obs::Counter obs_reallocations_;
  obs::Gauge obs_util_down_;
  obs::Gauge obs_util_up_;
  obs::Gauge obs_epoch_handovers_;
  obs::Gauge obs_epoch_reallocations_;
  /// Start of the current epoch interval (previous tick), for trace spans.
  TimePoint last_tick_at_;
  bool ticked_ = false;
};

}  // namespace slp::fleet
