#include "util/units.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace slp {

bool parse_duration(std::string_view text, Duration& out) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) text.remove_suffix(1);
  if (text.empty()) return false;
  const std::string buf{text};  // strtod needs NUL termination
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) return false;  // no number at all
  const std::string_view unit{end};
  double to_seconds = 1.0;
  if (unit.empty() || unit == "s") to_seconds = 1.0;
  else if (unit == "ns") to_seconds = 1e-9;
  else if (unit == "us") to_seconds = 1e-6;
  else if (unit == "ms") to_seconds = 1e-3;
  else if (unit == "m" || unit == "min") to_seconds = 60.0;
  else if (unit == "h") to_seconds = 3600.0;
  else if (unit == "d") to_seconds = 86400.0;
  else return false;
  out = Duration::from_seconds(value * to_seconds);
  return true;
}

std::string to_string(Duration d) {
  std::ostringstream os;
  os << d;
  return os.str();
}

std::string to_string(TimePoint t) {
  std::ostringstream os;
  os << t;
  return os.str();
}

std::string to_string(DataRate r) {
  std::ostringstream os;
  os << r;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, Duration d) {
  if (d.is_infinite()) return os << "+inf";
  const double s = d.to_seconds();
  const double as = std::abs(s);
  std::ostringstream tmp;
  tmp << std::setprecision(4);
  if (as >= 1.0) {
    tmp << s << "s";
  } else if (as >= 1e-3) {
    tmp << s * 1e3 << "ms";
  } else if (as >= 1e-6) {
    tmp << s * 1e6 << "us";
  } else {
    tmp << d.ns() << "ns";
  }
  return os << tmp.str();
}

std::ostream& operator<<(std::ostream& os, TimePoint t) {
  if (t.is_infinite()) return os << "+inf";
  std::ostringstream tmp;
  tmp << "t=" << std::fixed << std::setprecision(6) << t.to_seconds() << "s";
  return os << tmp.str();
}

std::ostream& operator<<(std::ostream& os, DataRate r) {
  const double bps = r.bits_per_second();
  std::ostringstream tmp;
  tmp << std::setprecision(4);
  if (bps >= 1e9) {
    tmp << bps * 1e-9 << "Gbit/s";
  } else if (bps >= 1e6) {
    tmp << bps * 1e-6 << "Mbit/s";
  } else if (bps >= 1e3) {
    tmp << bps * 1e-3 << "kbit/s";
  } else {
    tmp << bps << "bit/s";
  }
  return os << tmp.str();
}

}  // namespace slp
