#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace slp {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // A theoretically possible all-zero state would lock the generator at 0.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::string_view label) const {
  return Rng{seed_ ^ rotl(fnv1a64(label), 17)};
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Lemire's rejection-free-in-expectation bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0.0;
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal(double mu, double sigma) {
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_m, double alpha) {
  assert(x_m > 0.0 && alpha > 0.0);
  return x_m / std::pow(1.0 - uniform(), 1.0 / alpha);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace slp
