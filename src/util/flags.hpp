// flags.hpp — tiny --key=value command-line parser for benches & examples.
//
// Not a general argument library: benches accept a handful of overrides
// (seed, scale, output verbosity) and anything unknown is reported, so typos
// do not silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace slp {

class Flags {
 public:
  /// Parses argv of the form `--key=value` or bare `--flag` (value "true").
  /// Non-flag positional arguments are collected separately.
  static Flags parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view key) const;

  [[nodiscard]] std::string get(std::string_view key, std::string_view def) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t def) const;
  [[nodiscard]] double get_double(std::string_view key, double def) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool def) const;

  /// Human duration value (`--ramp=90s`, `--window=15m`, `--span=2h`); a bare
  /// number means seconds (parse_duration, units.hpp). A present-but-invalid
  /// value warns on stderr and falls back to `def` rather than silently
  /// misreading a typo as zero.
  [[nodiscard]] Duration get_duration(std::string_view key, Duration def) const;

  /// Comma-separated list value (`--grid=leo,geo,wired`); `def` when absent.
  /// Empty elements are dropped, so `--grid=` means "empty list".
  [[nodiscard]] std::vector<std::string> get_list(std::string_view key,
                                                  std::vector<std::string> def) const;
  /// Comma-separated numeric list (`--loads=0.2,0.5,0.9`).
  [[nodiscard]] std::vector<double> get_double_list(std::string_view key,
                                                    std::vector<double> def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were supplied but never queried; call after all get()s to warn
  /// about typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> used_;
  std::vector<std::string> positional_;
};

}  // namespace slp
