// rng.hpp — deterministic random number generation.
//
// Every stochastic component in the simulator draws from its own Rng stream,
// forked from a single campaign seed by component label. This keeps runs
// reproducible bit-for-bit and keeps components decoupled: adding draws to
// one component never perturbs another component's stream.
//
// Generator: xoshiro256** (Blackman & Vigna), seeded via splitmix64.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace slp {

/// xoshiro256** pseudo-random generator with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xA11CE5EEDull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Creates an independent stream derived from this seed and a label.
  /// Forking with the same label always yields the same stream; the parent
  /// generator state is not advanced.
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// Raw 64 uniform bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface, so <random> distributions also work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial.
  bool chance(double p);
  /// Exponential with the given mean (mean = 1/lambda). Returns >= 0.
  double exponential(double mean);
  /// Standard normal via Box-Muller (stateless variant: uses two draws).
  double normal(double mu = 0.0, double sigma = 1.0);
  /// Log-normal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);
  /// Pareto with scale x_m > 0 and shape alpha > 0. Returns >= x_m.
  double pareto(double x_m, double alpha);

  /// Picks an index in [0, n) uniformly. Requires n > 0.
  std::size_t index(std::size_t n);

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;
};

/// 64-bit FNV-1a hash; used for stable stream labels.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s);

}  // namespace slp
