#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace slp {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (!arg.starts_with("--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      flags.values_.emplace(std::string{body}, "true");
    } else {
      flags.values_.emplace(std::string{body.substr(0, eq)}, std::string{body.substr(eq + 1)});
    }
  }
  return flags;
}

bool Flags::has(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  used_[it->first] = true;
  return true;
}

std::string Flags::get(std::string_view key, std::string_view def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::string{def};
  used_[it->first] = true;
  return it->second;
}

std::int64_t Flags::get_int(std::string_view key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[it->first] = true;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(std::string_view key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[it->first] = true;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(std::string_view key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[it->first] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

Duration Flags::get_duration(std::string_view key, Duration def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[it->first] = true;
  Duration parsed;
  if (!parse_duration(it->second, parsed)) {
    std::fprintf(stderr, "warning: --%s=%s is not a duration (want e.g. 90s, 15m, 2h)\n",
                 it->first.c_str(), it->second.c_str());
    return def;
  }
  return parsed;
}

std::vector<std::string> Flags::get_list(std::string_view key,
                                         std::vector<std::string> def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[it->first] = true;
  std::vector<std::string> out;
  std::string_view rest{it->second};
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    if (!item.empty()) out.emplace_back(item);
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return out;
}

std::vector<double> Flags::get_double_list(std::string_view key,
                                           std::vector<double> def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::vector<double> out;
  for (const std::string& item : get_list(key, {})) {
    out.push_back(std::strtod(item.c_str(), nullptr));
  }
  return out;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> result;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!used_.contains(key)) result.push_back(key);
  }
  return result;
}

}  // namespace slp
