// inline_function.hpp — a move-only `void()` callable with a small buffer.
//
// Every scheduled simulator event used to carry a
// `std::shared_ptr<std::function<void()>>`: one allocation for the control
// block and (for non-trivial captures) one inside std::function. At millions
// of events per simulated hour that allocator traffic dominates the event
// loop. InlineFunction stores captures up to kInlineBytes directly in the
// object — enough for every timer/link callback in the tree — and falls back
// to a single heap allocation only beyond that.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace slp::util {

class InlineFunction {
 public:
  /// Sized for the common "this + a few words" capture; a lambda capturing a
  /// whole Packet spills to the heap, which is the rare case.
  static constexpr std::size_t kInlineBytes = 48;

  InlineFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  // NOLINTNEXTLINE(google-explicit-constructor): implicit, like std::function.
  InlineFunction(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      if constexpr (sizeof(Fn) < kInlineBytes) {
        // The fixed-size memcpy in steal() reads the whole buffer; zero the
        // tail once here so every byte it copies is initialized.
        std::memset(buf_ + sizeof(Fn), 0, kInlineBytes - sizeof(Fn));
      }
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineImpl<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapImpl<Fn>::ops;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Invokes the stored callable. Requires a non-empty function.
  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the stored callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the callable (if any) lives in the inline buffer.
  [[nodiscard]] bool is_inline() const { return ops_ == nullptr || ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the representation at `dst` from `src`, then destroys
    /// `src`'s. Must not throw (gated by fits_inline for the inline case).
    /// Null for trivially-relocatable callables: moving is a buffer memcpy —
    /// the common case (`this` + a few scalars), kept free of indirect calls
    /// because the event queue relocates every callback at least once.
    void (*relocate)(void* src, void* dst);
    /// Null when destruction is a no-op (trivially destructible callables).
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  struct InlineImpl {
    static constexpr bool kTrivial =
        std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* src, void* dst) {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, kTrivial ? nullptr : &relocate,
                             kTrivial ? nullptr : &destroy, true};
  };

  template <typename Fn>
  struct HeapImpl {
    static void invoke(void* p) { (**static_cast<Fn**>(p))(); }
    static void relocate(void* src, void* dst) {
      ::new (dst) Fn*(*static_cast<Fn**>(src));
    }
    static void destroy(void* p) { delete *static_cast<Fn**>(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, false};
  };

  void steal(InlineFunction& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.buf_, buf_);
      } else {
        // Fixed-size copy: cheaper than a branch on the callable's true size.
        std::memcpy(buf_, other.buf_, kInlineBytes);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace slp::util
