// units.hpp — strong types for time, data rate and data size.
//
// The whole simulator runs on an integer nanosecond clock. Using a strong
// Duration/TimePoint pair (instead of raw int64_t or double seconds) makes it
// impossible to accidentally add two absolute times or mix seconds with
// nanoseconds, which is the classic class of bugs in discrete-event code.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace slp {

/// A signed time interval with nanosecond resolution.
///
/// Range: +/- ~292 years, far beyond the 5-month campaigns simulated here.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t ns) { return Duration{ns}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t us) { return Duration{us * 1'000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t m) { return seconds(m * 60); }
  [[nodiscard]] static constexpr Duration hours(std::int64_t h) { return seconds(h * 3600); }
  [[nodiscard]] static constexpr Duration days(std::int64_t d) { return hours(d * 24); }

  /// Converts a floating-point second count, rounding to the nearest ns.
  [[nodiscard]] static Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(std::llround(s * 1e9))};
  }
  [[nodiscard]] static Duration from_millis(double ms) { return from_seconds(ms * 1e-3); }
  [[nodiscard]] static Duration from_micros(double us) { return from_seconds(us * 1e-6); }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration infinite() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }
  [[nodiscard]] constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<std::int64_t>::max();
  }

  constexpr Duration& operator+=(Duration d) { ns_ += d.ns_; return *this; }
  constexpr Duration& operator-=(Duration d) { ns_ -= d.ns_; return *this; }
  constexpr Duration& operator*=(double f) {
    ns_ = static_cast<std::int64_t>(static_cast<double>(ns_) * f);
    return *this;
  }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator-(Duration a) { return Duration{-a.ns_}; }
  friend constexpr Duration operator*(Duration a, double f) { Duration r = a; r *= f; return r; }
  friend constexpr Duration operator*(double f, Duration a) { return a * f; }
  friend constexpr Duration operator/(Duration a, std::int64_t n) { return Duration{a.ns_ / n}; }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend std::ostream& operator<<(std::ostream& os, Duration d);

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulation clock (ns since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint epoch() { return TimePoint{}; }
  [[nodiscard]] static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint{ns}; }
  [[nodiscard]] static constexpr TimePoint infinite() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr Duration since_epoch() const { return Duration::nanos(ns_); }
  [[nodiscard]] constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<std::int64_t>::max();
  }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.ns_ + d.ns()}; }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint{t.ns_ - d.ns()}; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return Duration::nanos(a.ns_ - b.ns_); }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  friend std::ostream& operator<<(std::ostream& os, TimePoint t);

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// A data rate in bits per second.
///
/// Stored as double: rates are the result of divisions and shaping math, and
/// ns-exact arithmetic buys nothing here.
class DataRate {
 public:
  constexpr DataRate() = default;

  [[nodiscard]] static constexpr DataRate bps(double v) { return DataRate{v}; }
  [[nodiscard]] static constexpr DataRate kbps(double v) { return DataRate{v * 1e3}; }
  [[nodiscard]] static constexpr DataRate mbps(double v) { return DataRate{v * 1e6}; }
  [[nodiscard]] static constexpr DataRate gbps(double v) { return DataRate{v * 1e9}; }
  [[nodiscard]] static constexpr DataRate zero() { return DataRate{0.0}; }

  [[nodiscard]] constexpr double bits_per_second() const { return bps_; }
  [[nodiscard]] constexpr double to_mbps() const { return bps_ * 1e-6; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0.0; }

  /// Time to serialize `bytes` onto a link of this rate.
  [[nodiscard]] Duration transmission_time(std::uint64_t bytes) const {
    return Duration::from_seconds(static_cast<double>(bytes) * 8.0 / bps_);
  }

  /// Bytes delivered in `d` at this rate.
  [[nodiscard]] double bytes_in(Duration d) const { return bps_ * d.to_seconds() / 8.0; }

  friend constexpr DataRate operator*(DataRate r, double f) { return DataRate{r.bps_ * f}; }
  friend constexpr DataRate operator*(double f, DataRate r) { return r * f; }
  friend constexpr DataRate operator/(DataRate r, double f) { return DataRate{r.bps_ / f}; }
  friend constexpr DataRate operator+(DataRate a, DataRate b) { return DataRate{a.bps_ + b.bps_}; }
  friend constexpr DataRate operator-(DataRate a, DataRate b) { return DataRate{a.bps_ - b.bps_}; }
  friend constexpr auto operator<=>(DataRate, DataRate) = default;

  friend std::ostream& operator<<(std::ostream& os, DataRate r);

 private:
  explicit constexpr DataRate(double bps) : bps_{bps} {}
  double bps_ = 0.0;
};

/// Rate observed when `bytes` were moved in `elapsed`.
[[nodiscard]] inline DataRate rate_of(std::uint64_t bytes, Duration elapsed) {
  if (elapsed <= Duration::zero()) return DataRate::zero();
  return DataRate::bps(static_cast<double>(bytes) * 8.0 / elapsed.to_seconds());
}

[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(TimePoint t);
[[nodiscard]] std::string to_string(DataRate r);

/// Parses a human duration: a number with an optional unit suffix out of
/// {ns, us, ms, s, m/min, h, d}. A bare number means seconds; fractions are
/// fine ("1.5s", "0.25h"); surrounding whitespace is ignored. Returns false
/// (leaving `out` untouched) on empty input, unknown suffix or trailing junk.
/// Shared by Flags::get_duration and the scenario file parser.
[[nodiscard]] bool parse_duration(std::string_view text, Duration& out);

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return Duration::nanos(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::micros(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::millis(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::seconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_min(unsigned long long v) { return Duration::minutes(static_cast<std::int64_t>(v)); }
constexpr DataRate operator""_mbps(unsigned long long v) { return DataRate::mbps(static_cast<double>(v)); }
constexpr DataRate operator""_mbps(long double v) { return DataRate::mbps(static_cast<double>(v)); }
constexpr DataRate operator""_kbps(unsigned long long v) { return DataRate::kbps(static_cast<double>(v)); }
constexpr DataRate operator""_gbps(unsigned long long v) { return DataRate::gbps(static_cast<double>(v)); }
}  // namespace literals

}  // namespace slp
