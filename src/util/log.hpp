// log.hpp — minimal leveled logger for the simulator and benches.
//
// Logging in the hot path of a discrete-event simulator must cost nothing
// when disabled: the SLP_LOG macro checks the level before evaluating the
// stream expression.
//
// Thread-safety: sweep cells run campaigns on runner::Pool workers, so
// write() formats the whole record into one string and emits it under a
// mutex — lines from concurrent cells never interleave. The level is
// atomic; set it once from main() before spawning workers.
//
// Sim-time prefix: a simulation may register a clock source for the calling
// thread (each worker owns at most one live Simulator at a time), and every
// record logged from that thread is prefixed with the current sim time.
#pragma once

#include <atomic>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string_view>

namespace slp {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= this->level(); }

  void write(LogLevel level, std::string_view component, std::string_view message);

  /// Registers a sim-clock for records logged from the *calling thread*.
  /// `owner` is an opaque identity (the Simulator) so a destructor only
  /// clears its own registration; `now_ns` returns the current sim time.
  static void set_time_source(const void* owner, std::int64_t (*now_ns)(const void*));
  static void clear_time_source(const void* owner);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
};

[[nodiscard]] std::string_view to_string(LogLevel level);

/// "trace"/"debug"/"info"/"warn"/"error"/"off" (case-sensitive) -> level;
/// anything else returns `def`.
[[nodiscard]] LogLevel parse_log_level(std::string_view name, LogLevel def);

}  // namespace slp

// Usage: SLP_LOG(kDebug, "quic", "sent pn=" << pn << " bytes=" << n);
#define SLP_LOG(level, component, expr)                                          \
  do {                                                                           \
    if (::slp::Logger::instance().enabled(::slp::LogLevel::level)) {             \
      std::ostringstream slp_log_os_;                                            \
      slp_log_os_ << expr;                                                       \
      ::slp::Logger::instance().write(::slp::LogLevel::level, (component),       \
                                      slp_log_os_.str());                        \
    }                                                                            \
  } while (false)
