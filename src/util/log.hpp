// log.hpp — minimal leveled logger for the simulator and benches.
//
// Logging in the hot path of a discrete-event simulator must cost nothing
// when disabled: the SLP_LOG macro checks the level before evaluating the
// stream expression.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace slp {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
};

[[nodiscard]] std::string_view to_string(LogLevel level);

}  // namespace slp

// Usage: SLP_LOG(kDebug, "quic", "sent pn=" << pn << " bytes=" << n);
#define SLP_LOG(level, component, expr)                                          \
  do {                                                                           \
    if (::slp::Logger::instance().enabled(::slp::LogLevel::level)) {             \
      std::ostringstream slp_log_os_;                                            \
      slp_log_os_ << expr;                                                       \
      ::slp::Logger::instance().write(::slp::LogLevel::level, (component),       \
                                      slp_log_os_.str());                        \
    }                                                                            \
  } while (false)
