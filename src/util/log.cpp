#include "util/log.hpp"

namespace slp {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  os << '[' << to_string(level) << "] " << component << ": " << message << '\n';
}

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace slp
