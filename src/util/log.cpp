#include "util/log.hpp"

#include <cstdio>
#include <mutex>
#include <string>

namespace slp {

namespace {

std::mutex& write_mutex() {
  static std::mutex mu;
  return mu;
}

struct TimeSource {
  const void* owner = nullptr;
  std::int64_t (*now_ns)(const void*) = nullptr;
};

thread_local TimeSource g_time_source;

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_time_source(const void* owner, std::int64_t (*now_ns)(const void*)) {
  g_time_source = TimeSource{owner, now_ns};
}

void Logger::clear_time_source(const void* owner) {
  if (g_time_source.owner == owner) g_time_source = TimeSource{};
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  // Format the full record first, then emit it in one guarded write so
  // records from concurrent sweep cells never interleave mid-line.
  std::string line;
  line.reserve(32 + component.size() + message.size());
  line += '[';
  line += to_string(level);
  line += "] ";
  if (g_time_source.now_ns != nullptr) {
    const std::int64_t ns = g_time_source.now_ns(g_time_source.owner);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[t=%lld.%09llds] ",
                  static_cast<long long>(ns / 1000000000),
                  static_cast<long long>(ns % 1000000000));
    line += buf;
  }
  line += component;
  line += ": ";
  line += message;
  line += '\n';
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  const std::lock_guard<std::mutex> lock{write_mutex()};
  os << line;
}

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name, LogLevel def) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return def;
}

}  // namespace slp
