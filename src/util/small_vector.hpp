// small_vector.hpp — a vector with inline storage for the first N elements.
//
// Built for headers that are copied on every packet: TcpHeader's SACK list is
// almost always ≤ 4 blocks, so keeping them inline makes a pure-ACK copy a
// memcpy instead of a heap allocation. Deliberately minimal — only the
// operations the packet path uses.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace slp::util {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be non-zero");
  static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                "over-aligned element types are not supported");

 public:
  SmallVector() = default;

  SmallVector(const SmallVector& other) { append_copy(other); }

  SmallVector(SmallVector&& other) noexcept { take(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      append_copy(other);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear();
      release_heap();
      take(std::move(other));
    }
    return *this;
  }

  ~SmallVector() {
    clear();
    release_heap();
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// True while elements live in the inline buffer (diagnostics/tests).
  [[nodiscard]] bool is_inline() const { return data_ == inline_ptr(); }

  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }

  void clear() {
    std::destroy(begin(), end());
    size_ = 0;
  }

  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  void pop_back() {
    assert(size_ > 0);
    data_[--size_].~T();
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* p = ::new (static_cast<void*>(data_ + size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  [[nodiscard]] T* inline_ptr() { return reinterpret_cast<T*>(inline_buf_); }
  [[nodiscard]] const T* inline_ptr() const { return reinterpret_cast<const T*>(inline_buf_); }

  void append_copy(const SmallVector& other) {
    reserve(other.size_);
    std::uninitialized_copy(other.begin(), other.end(), data_);
    size_ = other.size_;
  }

  void take(SmallVector&& other) noexcept {
    if (!other.is_inline()) {
      // Steal the heap block outright.
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_ptr();
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      std::uninitialized_move(other.begin(), other.end(), inline_ptr());
      size_ = other.size_;
      other.clear();
    }
  }

  void grow(std::size_t min_cap) {
    const std::size_t cap = std::max(min_cap, capacity_ * 2);
    T* mem = static_cast<T*>(::operator new(cap * sizeof(T)));
    std::uninitialized_move(begin(), end(), mem);
    std::destroy(begin(), end());
    release_heap();
    data_ = mem;
    capacity_ = cap;
  }

  void release_heap() {
    if (!is_inline()) {
      ::operator delete(static_cast<void*>(data_));
      data_ = inline_ptr();
      capacity_ = N;
    }
  }

  alignas(T) std::byte inline_buf_[N * sizeof(T)];
  T* data_ = inline_ptr();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace slp::util
