// injector.hpp — replays a Scenario onto a live simulation.
//
// The Injector is constructed once per simulation cell, after the topology is
// built; it schedules every scenario event on the simulator's event queue at
// construction. All effects go through *typed hooks* on the topology
// (leo::StarlinkAccess setters), never through the RNG: the timeline is a
// pure function of the Scenario, so --seeds cells see identical scenario
// schedules and --jobs merges stay byte-deterministic.
//
// Composition details handled here:
//   * the hard-outage gate is depth-counted, so a maintenance blip inside a
//     PoP-outage window cannot reopen the gate early;
//   * rain fronts ramp in deterministic steps (kRainSteps per ramp edge) —
//     capacity and Gilbert-Elliott burstiness follow the trapezoid profile;
//   * events firing at the same instant apply in scenario order (the event
//     queue is FIFO-stable for equal timestamps).
//
// Observability (when the cell records): counters scenario.events_applied /
// scenario.rain.steps / scenario.maintenance.blips, plus one "scenario"
// trace span per event window with its parameters as args.
#pragma once

#include <cstdint>
#include <memory>

#include "leo/access.hpp"
#include "obs/recorder.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace slp::scenario {

/// Receiver for `move` timeline directives. Implemented by
/// mobility::MobileTerminal; declared here as an abstract interface so the
/// scenario library stays below src/mobility/ in the dependency order (fleet
/// already links scenario, and mobility links fleet).
class MobilityHook {
 public:
  virtual ~MobilityHook() = default;
  /// Starts driving the named route at `speed_scale` x its nominal speeds.
  /// Unknown route names are the implementation's problem (warn and ignore):
  /// the scenario layer cannot see the mobility route registry.
  virtual void begin_move(const std::string& route, double speed_scale, TimePoint start,
                          TimePoint end) = 0;
  /// Parks the vehicle wherever it is at `at`.
  virtual void end_move(TimePoint at) = 0;
};

class Injector {
 public:
  /// Topology hooks the injector drives. The Starlink access reacts to the
  /// environment/fault kinds, the mobility hook to `move` directives; null
  /// hooks make the corresponding events validated no-ops.
  struct Hooks {
    leo::StarlinkAccess* starlink = nullptr;
    MobilityHook* mobility = nullptr;
  };

  /// Validates `scenario` (throws ScenarioError) and schedules every event.
  /// The injector must outlive the simulation run.
  Injector(sim::Simulator& sim, std::shared_ptr<const Scenario> scenario, Hooks hooks);

  [[nodiscard]] const Scenario& scenario() const { return *scenario_; }

  struct Stats {
    std::uint64_t events_applied = 0;   ///< windows whose start hook fired
    std::uint64_t rain_steps = 0;       ///< attenuation updates applied
    std::uint64_t maintenance_blips = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void schedule_event(const Event& ev);
  void schedule_rain(const Event& ev);
  void schedule_maintenance(const Event& ev);
  /// Depth-counted gate: the link reopens only when every closer has ended.
  void close_gate();
  void open_gate();
  void note_started(const Event& ev);

  sim::Simulator* sim_;
  std::shared_ptr<const Scenario> scenario_;
  Hooks hooks_;
  int gate_depth_ = 0;
  Stats stats_;
  obs::Counter obs_applied_;
  obs::Counter obs_rain_steps_;
  obs::Counter obs_blips_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace slp::scenario
