#include "scenario/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace slp::scenario {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRain: return "rain";
    case EventKind::kSatelliteFail: return "sat_fail";
    case EventKind::kPlaneFail: return "plane_fail";
    case EventKind::kGatewayOutage: return "gateway_outage";
    case EventKind::kPopOutage: return "pop_outage";
    case EventKind::kLoadSurge: return "load_surge";
    case EventKind::kMaintenance: return "maintenance";
    case EventKind::kMove: return "move";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw ScenarioError{"scenario line " + std::to_string(line) + ": " + what};
}

bool parse_kind(std::string_view word, EventKind& out) {
  for (const EventKind kind :
       {EventKind::kRain, EventKind::kSatelliteFail, EventKind::kPlaneFail,
        EventKind::kGatewayOutage, EventKind::kPopOutage, EventKind::kLoadSurge,
        EventKind::kMaintenance, EventKind::kMove}) {
    if (word == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

Duration need_duration(int line, std::string_view key, std::string_view value) {
  Duration d;
  if (!parse_duration(value, d)) {
    fail(line, std::string{key} + "=" + std::string{value} + " is not a duration");
  }
  return d;
}

double need_double(int line, std::string_view key, std::string_view value) {
  const std::string buf{value};
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') {
    fail(line, std::string{key} + "=" + std::string{value} + " is not a number");
  }
  return v;
}

int need_int(int line, std::string_view key, std::string_view value) {
  const double v = need_double(line, key, value);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v) {
    fail(line, std::string{key} + "=" + std::string{value} + " is not an integer");
  }
  return i;
}

/// Does `kind` accept key? start/end/duration are universal.
bool key_allowed(EventKind kind, std::string_view key) {
  if (key == "start" || key == "end" || key == "duration") return true;
  switch (kind) {
    case EventKind::kRain: return key == "attenuation_db" || key == "ramp";
    case EventKind::kSatelliteFail: return key == "plane" || key == "slot";
    case EventKind::kPlaneFail: return key == "plane";
    case EventKind::kGatewayOutage: return key == "gateway";
    case EventKind::kPopOutage: return false;
    case EventKind::kLoadSurge: return key == "utilization" || key == "direction";
    case EventKind::kMaintenance: return key == "period" || key == "blip";
    case EventKind::kMove: return key == "route" || key == "speed";
  }
  return false;
}

/// The per-target conflict key: same-kind events only clash when these agree.
/// load_surge direction=both clashes with either single direction, encoded by
/// expanding "both" into both single-direction keys at check time.
bool same_target(const Event& a, const Event& b) {
  switch (a.kind) {
    case EventKind::kSatelliteFail: return a.plane == b.plane && a.slot == b.slot;
    case EventKind::kPlaneFail: return a.plane == b.plane;
    case EventKind::kGatewayOutage: return a.gateway == b.gateway;
    case EventKind::kLoadSurge:
      return a.direction == 2 || b.direction == 2 || a.direction == b.direction;
    case EventKind::kRain:
    case EventKind::kPopOutage:
    case EventKind::kMaintenance:
    case EventKind::kMove:
      return true;  // one global knob (or vehicle) each
  }
  return true;
}

}  // namespace

Scenario Scenario::parse(std::string_view text) {
  Scenario scenario;
  bool saw_name = false;
  int line_no = 0;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    std::string_view line = rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{} : rest.substr(nl + 1);
    ++line_no;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    // Tokenize on blanks.
    std::vector<std::string_view> tokens;
    std::size_t pos = 0;
    while (pos < line.size()) {
      while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
        ++pos;
      }
      std::size_t start = pos;
      while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t' && line[pos] != '\r') {
        ++pos;
      }
      if (pos > start) tokens.push_back(line.substr(start, pos - start));
    }
    if (tokens.empty()) continue;

    if (tokens[0] == "scenario") {
      if (saw_name) fail(line_no, "duplicate scenario name line");
      if (tokens.size() != 2) fail(line_no, "want: scenario <name>");
      scenario.name = std::string{tokens[1]};
      saw_name = true;
      continue;
    }

    Event ev;
    if (!parse_kind(tokens[0], ev.kind)) {
      fail(line_no, "unknown event kind '" + std::string{tokens[0]} + "'");
    }
    bool saw_start = false;
    bool saw_end = false;
    Duration duration = Duration::zero();
    bool saw_duration = false;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string_view::npos) {
        fail(line_no, "expected key=value, got '" + std::string{tokens[i]} + "'");
      }
      const std::string_view key = tokens[i].substr(0, eq);
      const std::string_view value = tokens[i].substr(eq + 1);
      if (!key_allowed(ev.kind, key)) {
        fail(line_no, "unknown key '" + std::string{key} + "' for " +
                          std::string{to_string(ev.kind)});
      }
      if (key == "start") {
        ev.start = TimePoint::epoch() + need_duration(line_no, key, value);
        saw_start = true;
      } else if (key == "end") {
        ev.end = TimePoint::epoch() + need_duration(line_no, key, value);
        saw_end = true;
      } else if (key == "duration") {
        duration = need_duration(line_no, key, value);
        saw_duration = true;
      } else if (key == "attenuation_db") {
        ev.attenuation_db = need_double(line_no, key, value);
      } else if (key == "ramp") {
        ev.ramp = need_duration(line_no, key, value);
      } else if (key == "plane") {
        ev.plane = need_int(line_no, key, value);
      } else if (key == "slot") {
        ev.slot = need_int(line_no, key, value);
      } else if (key == "gateway") {
        ev.gateway = need_int(line_no, key, value);
      } else if (key == "utilization") {
        ev.utilization = need_double(line_no, key, value);
      } else if (key == "direction") {
        if (value == "up") ev.direction = 0;
        else if (value == "down") ev.direction = 1;
        else if (value == "both") ev.direction = 2;
        else fail(line_no, "direction wants up|down|both");
      } else if (key == "period") {
        ev.period = need_duration(line_no, key, value);
      } else if (key == "blip") {
        ev.blip = need_duration(line_no, key, value);
      } else if (key == "route") {
        ev.route = std::string{value};
      } else if (key == "speed") {
        ev.speed = need_double(line_no, key, value);
      }
    }
    if (!saw_start) fail(line_no, "missing start=");
    if (saw_end && saw_duration) fail(line_no, "give end= or duration=, not both");
    if (saw_duration) ev.end = ev.start + duration;
    else if (!saw_end) fail(line_no, "missing end= (or duration=)");
    scenario.events.push_back(ev);
  }
  scenario.validate();
  return scenario;
}

Scenario Scenario::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw ScenarioError{"cannot open scenario file " + path};
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  Scenario scenario = parse(text);
  if (scenario.name == "unnamed") {
    // Default the name to the file's basename, sans extension.
    std::string base = path;
    if (const std::size_t slash = base.find_last_of('/'); slash != std::string::npos) {
      base = base.substr(slash + 1);
    }
    if (const std::size_t dot = base.find_last_of('.'); dot != std::string::npos) {
      base = base.substr(0, dot);
    }
    if (!base.empty()) scenario.name = base;
  }
  return scenario;
}

Scenario& Scenario::rain(TimePoint start, TimePoint end, double attenuation_db, Duration ramp) {
  Event ev;
  ev.kind = EventKind::kRain;
  ev.start = start;
  ev.end = end;
  ev.attenuation_db = attenuation_db;
  ev.ramp = ramp;
  events.push_back(ev);
  return *this;
}

Scenario& Scenario::satellite_fail(TimePoint start, TimePoint end, int plane, int slot) {
  Event ev;
  ev.kind = EventKind::kSatelliteFail;
  ev.start = start;
  ev.end = end;
  ev.plane = plane;
  ev.slot = slot;
  events.push_back(ev);
  return *this;
}

Scenario& Scenario::plane_fail(TimePoint start, TimePoint end, int plane) {
  Event ev;
  ev.kind = EventKind::kPlaneFail;
  ev.start = start;
  ev.end = end;
  ev.plane = plane;
  events.push_back(ev);
  return *this;
}

Scenario& Scenario::gateway_outage(TimePoint start, TimePoint end, int gateway) {
  Event ev;
  ev.kind = EventKind::kGatewayOutage;
  ev.start = start;
  ev.end = end;
  ev.gateway = gateway;
  events.push_back(ev);
  return *this;
}

Scenario& Scenario::pop_outage(TimePoint start, TimePoint end) {
  Event ev;
  ev.kind = EventKind::kPopOutage;
  ev.start = start;
  ev.end = end;
  events.push_back(ev);
  return *this;
}

Scenario& Scenario::load_surge(TimePoint start, TimePoint end, double utilization,
                               int direction) {
  Event ev;
  ev.kind = EventKind::kLoadSurge;
  ev.start = start;
  ev.end = end;
  ev.utilization = utilization;
  ev.direction = direction;
  events.push_back(ev);
  return *this;
}

Scenario& Scenario::maintenance(TimePoint start, TimePoint end, Duration period,
                                Duration blip) {
  Event ev;
  ev.kind = EventKind::kMaintenance;
  ev.start = start;
  ev.end = end;
  ev.period = period;
  ev.blip = blip;
  events.push_back(ev);
  return *this;
}

Scenario& Scenario::move(TimePoint start, TimePoint end, std::string route, double speed) {
  Event ev;
  ev.kind = EventKind::kMove;
  ev.start = start;
  ev.end = end;
  ev.route = std::move(route);
  ev.speed = speed;
  events.push_back(ev);
  return *this;
}

bool Scenario::contains(EventKind kind) const {
  for (const Event& ev : events) {
    if (ev.kind == kind) return true;
  }
  return false;
}

Scenario& Scenario::shift(Duration offset) {
  for (Event& ev : events) {
    ev.start = ev.start + offset;
    ev.end = ev.end + offset;
    if (ev.start < TimePoint::epoch()) {
      throw ScenarioError{"shift moves event '" + std::string{to_string(ev.kind)} +
                          "' before t=0"};
    }
  }
  return *this;
}

void Scenario::validate() const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& ev = events[i];
    const std::string where =
        "event " + std::to_string(i + 1) + " (" + std::string{to_string(ev.kind)} + ")";
    if (ev.start < TimePoint::epoch()) throw ScenarioError{where + ": start before t=0"};
    if (ev.end <= ev.start) throw ScenarioError{where + ": end must be after start"};
    switch (ev.kind) {
      case EventKind::kRain:
        if (ev.attenuation_db <= 0.0) throw ScenarioError{where + ": attenuation_db must be > 0"};
        if (ev.ramp.is_negative()) throw ScenarioError{where + ": ramp must be >= 0"};
        break;
      case EventKind::kSatelliteFail:
        if (ev.plane < 0 || ev.slot < 0) throw ScenarioError{where + ": needs plane= and slot="};
        break;
      case EventKind::kPlaneFail:
        if (ev.plane < 0) throw ScenarioError{where + ": needs plane="};
        break;
      case EventKind::kGatewayOutage:
        if (ev.gateway < 0) throw ScenarioError{where + ": needs gateway="};
        break;
      case EventKind::kPopOutage:
        break;
      case EventKind::kLoadSurge:
        if (ev.utilization < 0.0 || ev.utilization > 1.0) {
          throw ScenarioError{where + ": utilization must be in [0, 1]"};
        }
        if (ev.direction < 0 || ev.direction > 2) {
          throw ScenarioError{where + ": direction must be up|down|both"};
        }
        break;
      case EventKind::kMaintenance:
        if (ev.period <= Duration::zero()) throw ScenarioError{where + ": period must be > 0"};
        if (ev.blip <= Duration::zero() || ev.blip >= ev.period) {
          throw ScenarioError{where + ": blip must be in (0, period)"};
        }
        break;
      case EventKind::kMove:
        if (ev.route.empty()) throw ScenarioError{where + ": needs route="};
        if (ev.speed < 0.0) throw ScenarioError{where + ": speed must be >= 0"};
        break;
    }
  }
  // Same-kind same-target events must not overlap: each such pair drives one
  // knob whose end-of-window restore would otherwise undo the other's start.
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const Event& a = events[i];
      const Event& b = events[j];
      if (a.kind != b.kind || !same_target(a, b)) continue;
      const bool overlap = a.start < b.end && b.start < a.end;
      if (overlap) {
        throw ScenarioError{"events " + std::to_string(i + 1) + " and " +
                            std::to_string(j + 1) + " (" + std::string{to_string(a.kind)} +
                            ") overlap on the same target"};
      }
    }
  }
}

}  // namespace slp::scenario
