// scenario.hpp — deterministic environment & fault-injection timelines.
//
// The paper's captures contain episodes no stationary process reproduces: a
// rain front collapsing throughput over tens of minutes (WetLinks), a
// satellite or PoP dropping out of service ("A Multifaceted Look at Starlink
// Performance"), an operator maintenance window full of reconfigurations. A
// Scenario turns each such episode into a *scripted, reproducible* timeline:
// a list of timed events, parsed from a small declarative text format or
// built programmatically, that the Injector (injector.hpp) replays onto a
// live simulation through typed hooks.
//
// Determinism contract: a Scenario contains only absolute times and fixed
// parameters — no randomness, no dependence on the campaign seed. The same
// scenario therefore composes bit-identically with every --seeds cell and
// any --jobs width; the runner's cell-id-ordered merges are untouched.
//
// File format (one event per line, `#` comments, durations like 90s/15m/2h;
// `duration=` may replace `end=`):
//
//   scenario rain-front              # optional name line
//   rain           start=60s end=20m ramp=2m attenuation_db=8
//   sat_fail       start=5m  end=12m plane=3 slot=7
//   plane_fail     start=5m  end=12m plane=12
//   gateway_outage start=2m  end=4m  gateway=1
//   pop_outage     start=30s duration=15s
//   load_surge     start=1m  end=5m  utilization=0.92 direction=down
//   maintenance    start=10m end=12m period=15s blip=1.5s
//   move           start=0s  end=45m route=highway speed=1.0
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace slp::scenario {

enum class EventKind {
  kRain,           ///< rain-fade attenuation ramp (capacity + GE bursts)
  kSatelliteFail,  ///< one satellite leaves service
  kPlaneFail,      ///< a whole orbital plane leaves service
  kGatewayOutage,  ///< a ground station fails; the terminal re-homes
  kPopOutage,      ///< hard outage window: every packet destroyed
  kLoadSurge,      ///< shared-cell utilization pinned high
  kMaintenance,    ///< periodic reconfiguration storm (15 s grid)
  kMove,           ///< terminal drives a named route (src/mobility/)
};

[[nodiscard]] std::string_view to_string(EventKind kind);

/// One timed event. Only the fields relevant to `kind` are meaningful; the
/// parser rejects keys that do not belong to the event's kind.
struct Event {
  EventKind kind = EventKind::kPopOutage;
  TimePoint start;
  TimePoint end;

  double attenuation_db = 6.0;            ///< rain: peak fade
  Duration ramp = Duration::zero();       ///< rain: 0 -> peak ramp length
  int plane = -1;                         ///< sat_fail / plane_fail
  int slot = -1;                          ///< sat_fail
  int gateway = -1;                       ///< gateway_outage
  double utilization = 0.9;               ///< load_surge target
  int direction = 2;                      ///< load_surge: 0 up, 1 down, 2 both
  Duration period = Duration::seconds(15);        ///< maintenance grid
  Duration blip = Duration::millis(1500);         ///< maintenance gate closure
  std::string route = "highway";          ///< move: named mobility route
  double speed = 1.0;                     ///< move: speed scale (1 = nominal)
};

class ScenarioError final : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Scenario {
  std::string name = "unnamed";
  /// File/insertion order — which is also the hook application order for
  /// events scheduled at the same instant (the event queue is FIFO-stable).
  std::vector<Event> events;

  /// Parses the declarative text format above. Throws ScenarioError with a
  /// line number on malformed input; the result is already validated.
  [[nodiscard]] static Scenario parse(std::string_view text);
  /// parse() over the contents of `path`.
  [[nodiscard]] static Scenario load(const std::string& path);

  // Programmatic builders (chainable). Call validate() when done.
  Scenario& rain(TimePoint start, TimePoint end, double attenuation_db,
                 Duration ramp = Duration::zero());
  Scenario& satellite_fail(TimePoint start, TimePoint end, int plane, int slot);
  Scenario& plane_fail(TimePoint start, TimePoint end, int plane);
  Scenario& gateway_outage(TimePoint start, TimePoint end, int gateway);
  Scenario& pop_outage(TimePoint start, TimePoint end);
  Scenario& load_surge(TimePoint start, TimePoint end, double utilization,
                       int direction = 2);
  Scenario& maintenance(TimePoint start, TimePoint end,
                        Duration period = Duration::seconds(15),
                        Duration blip = Duration::millis(1500));
  Scenario& move(TimePoint start, TimePoint end, std::string route,
                 double speed = 1.0);

  /// Shifts every event by `offset` — positions a file-local timeline inside
  /// a longer campaign (`--scenario-offset`). Throws if any start goes
  /// negative.
  Scenario& shift(Duration offset);

  /// Enforces the composition rules. Every event needs 0 <= start < end and
  /// sane parameters. Two events of the *same kind on the same target* must
  /// not overlap (two rain fronts, two pop outages, two surges driving the
  /// same direction, the same satellite/plane/gateway failing twice, two
  /// maintenance windows): the restore-at-end hooks would fight over one
  /// knob. Events of different kinds (or different targets) overlap freely —
  /// they compose through independent hooks. Throws ScenarioError.
  void validate() const;

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] bool contains(EventKind kind) const;
};

}  // namespace slp::scenario
