#include "scenario/injector.hpp"

#include <algorithm>
#include <string>

#include "obs/json.hpp"

namespace slp::scenario {

namespace {

/// Steps per rain ramp edge: fine enough that the transport sees a gradual
/// capacity slope, coarse enough that a front costs ~32 events total.
constexpr int kRainSteps = 16;

std::string event_args_json(const Event& ev) {
  using obs::json_number;
  std::string args = "{";
  switch (ev.kind) {
    case EventKind::kRain:
      args += "\"attenuation_db\":" + json_number(ev.attenuation_db) +
              ",\"ramp_s\":" + json_number(ev.ramp.to_seconds());
      break;
    case EventKind::kSatelliteFail:
      args += "\"plane\":" + std::to_string(ev.plane) + ",\"slot\":" + std::to_string(ev.slot);
      break;
    case EventKind::kPlaneFail:
      args += "\"plane\":" + std::to_string(ev.plane);
      break;
    case EventKind::kGatewayOutage:
      args += "\"gateway\":" + std::to_string(ev.gateway);
      break;
    case EventKind::kPopOutage:
      break;
    case EventKind::kLoadSurge:
      args += "\"utilization\":" + json_number(ev.utilization) + ",\"direction\":\"" +
              (ev.direction == 0 ? "up" : ev.direction == 1 ? "down" : "both") + "\"";
      break;
    case EventKind::kMaintenance:
      args += "\"period_s\":" + json_number(ev.period.to_seconds()) +
              ",\"blip_s\":" + json_number(ev.blip.to_seconds());
      break;
    case EventKind::kMove:
      args += "\"route\":\"" + ev.route + "\",\"speed\":" + json_number(ev.speed);
      break;
  }
  args += "}";
  return args;
}

}  // namespace

Injector::Injector(sim::Simulator& sim, std::shared_ptr<const Scenario> scenario, Hooks hooks)
    : sim_{&sim}, scenario_{std::move(scenario)}, hooks_{hooks} {
  scenario_->validate();
  if (auto* rec = sim_->obs()) {
    if (rec->options().metrics) {
      obs_applied_ = rec->registry().counter("scenario.events_applied");
      obs_rain_steps_ = rec->registry().counter("scenario.rain.steps");
      obs_blips_ = rec->registry().counter("scenario.maintenance.blips");
    }
    trace_ = rec->trace().enabled() ? &rec->trace() : nullptr;
  }
  for (const Event& ev : scenario_->events) {
    const bool have_hook =
        ev.kind == EventKind::kMove ? hooks_.mobility != nullptr : hooks_.starlink != nullptr;
    if (have_hook) schedule_event(ev);
  }
}

void Injector::note_started(const Event& ev) {
  stats_.events_applied++;
  obs_applied_.add();
  if (trace_ != nullptr) {
    trace_->span("scenario", std::string{to_string(ev.kind)}, ev.start, ev.end,
                 event_args_json(ev));
  }
}

void Injector::close_gate() {
  if (++gate_depth_ == 1) hooks_.starlink->set_hard_outage(true);
}

void Injector::open_gate() {
  if (--gate_depth_ == 0) hooks_.starlink->set_hard_outage(false);
}

void Injector::schedule_event(const Event& ev) {
  if (ev.kind == EventKind::kRain) {
    schedule_rain(ev);
    return;
  }
  if (ev.kind == EventKind::kMaintenance) {
    schedule_maintenance(ev);
    return;
  }
  if (ev.kind == EventKind::kMove) {
    sim_->schedule_at(ev.start, [this, ev] {
      note_started(ev);
      hooks_.mobility->begin_move(ev.route, ev.speed, ev.start, ev.end);
    });
    sim_->schedule_at(ev.end, [this, ev] { hooks_.mobility->end_move(ev.end); });
    return;
  }
  leo::StarlinkAccess* sl = hooks_.starlink;
  sim_->schedule_at(ev.start, [this, ev, sl] {
    note_started(ev);
    switch (ev.kind) {
      case EventKind::kSatelliteFail:
        sl->set_satellite_health({ev.plane, ev.slot}, false);
        break;
      case EventKind::kPlaneFail:
        sl->set_plane_health(ev.plane, false);
        break;
      case EventKind::kGatewayOutage:
        sl->set_gateway_health(ev.gateway, false);
        break;
      case EventKind::kPopOutage:
        close_gate();
        break;
      case EventKind::kLoadSurge:
        if (ev.direction != 1) sl->set_load_override(0, ev.utilization);
        if (ev.direction != 0) sl->set_load_override(1, ev.utilization);
        break;
      default:
        break;
    }
  });
  sim_->schedule_at(ev.end, [this, ev, sl] {
    switch (ev.kind) {
      case EventKind::kSatelliteFail:
        sl->set_satellite_health({ev.plane, ev.slot}, true);
        break;
      case EventKind::kPlaneFail:
        sl->set_plane_health(ev.plane, true);
        break;
      case EventKind::kGatewayOutage:
        sl->set_gateway_health(ev.gateway, true);
        break;
      case EventKind::kPopOutage:
        open_gate();
        break;
      case EventKind::kLoadSurge:
        if (ev.direction != 1) sl->clear_load_override(0);
        if (ev.direction != 0) sl->clear_load_override(1);
        break;
      default:
        break;
    }
  });
}

void Injector::schedule_rain(const Event& ev) {
  leo::StarlinkAccess* sl = hooks_.starlink;
  const Duration window = ev.end - ev.start;
  // Trapezoid profile: ramp up, hold the peak, ramp down; a ramp longer than
  // half the window degenerates to a triangle.
  Duration ramp = ev.ramp;
  if (ramp * 2.0 > window) ramp = window * 0.5;

  sim_->schedule_at(ev.start, [this, ev] { note_started(ev); });
  const auto apply = [this, sl](double db) {
    sl->set_rain_attenuation_db(db);
    stats_.rain_steps++;
    obs_rain_steps_.add();
  };
  if (ramp <= Duration::zero()) {
    sim_->schedule_at(ev.start, [apply, db = ev.attenuation_db] { apply(db); });
  } else {
    for (int i = 1; i <= kRainSteps; ++i) {
      const double f = static_cast<double>(i) / kRainSteps;
      sim_->schedule_at(ev.start + ramp * f, [apply, db = ev.attenuation_db * f] { apply(db); });
      if (i < kRainSteps) {
        sim_->schedule_at(ev.end - ramp + ramp * f,
                          [apply, db = ev.attenuation_db * (1.0 - f)] { apply(db); });
      }
    }
  }
  // Exact clear-sky restore, whatever the profile rounded to.
  sim_->schedule_at(ev.end, [apply] { apply(0.0); });
}

void Injector::schedule_maintenance(const Event& ev) {
  sim_->schedule_at(ev.start, [this, ev] { note_started(ev); });
  // One deterministic reconfiguration blip per period boundary: the gate
  // closes for `blip`, and the handover slot cache is invalidated so the
  // terminal re-acquires — a storm of forced handovers on the 15 s grid.
  for (TimePoint at = ev.start; at < ev.end; at = at + ev.period) {
    const TimePoint blip_end = std::min(at + ev.blip, ev.end);
    sim_->schedule_at(at, [this] {
      close_gate();
      hooks_.starlink->force_reconfiguration();
      stats_.maintenance_blips++;
      obs_blips_.add();
      if (trace_ != nullptr) trace_->instant("scenario", "maintenance.blip", sim_->now());
    });
    sim_->schedule_at(blip_end, [this] { open_gate(); });
  }
}

}  // namespace slp::scenario
