#include "runner/merge.hpp"

namespace slp::runner {

void merge(stats::Samples& into, const stats::Samples& from) {
  into.reserve(into.size() + from.size());
  into.add_all(from.values());
}

stats::Samples merge_samples(std::span<const stats::Samples> shards) {
  stats::Samples out;
  std::size_t total = 0;
  for (const stats::Samples& shard : shards) total += shard.size();
  out.reserve(total);
  for (const stats::Samples& shard : shards) out.add_all(shard.values());
  return out;
}

stats::Ecdf merged_ecdf(std::span<const stats::Samples> shards) {
  return stats::Ecdf{merge_samples(shards)};
}

void merge(stats::TimeBinner& into, const stats::TimeBinner& from) {
  into.merge(from);
}

}  // namespace slp::runner
