// pool.hpp — work-stealing thread pool for embarrassingly parallel campaigns.
//
// The simulation kernel is single-threaded by design (sim/simulator.hpp), so
// parallelism lives one level up: each (scenario, seed) cell owns a private
// Simulator and the pool runs many cells concurrently. Workers keep their own
// deques — a worker pushes and pops at the front of its own deque (LIFO, warm
// caches) and steals from the *back* of a victim's deque (FIFO, the oldest and
// therefore usually largest remaining task) when its own runs dry.
//
// Determinism contract: the pool never influences results. Tasks must not
// share mutable state except through their own slot of a pre-sized output
// vector; result *merging* is the caller's job and must happen in task-id
// order (see runner/sweep.hpp), never in completion order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slp::runner {

class Pool {
 public:
  /// Spawns `workers` threads (clamped to >= 1). `workers == 0` picks the
  /// hardware concurrency.
  explicit Pool(int workers = 0);

  /// Drains outstanding tasks, then joins. Pending exceptions are swallowed
  /// here (destructors must not throw) — call drain() first to observe them.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Enqueues one task. Thread-safe; may be called from worker threads
  /// (nested submission lands on the submitting worker's own deque).
  void submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished, then rethrows the first
  /// exception any task raised (remaining tasks still run to completion).
  /// The pool is reusable after drain().
  void drain();

  /// Splits [0, n) into `chunks` contiguous ranges (sizes within one of each
  /// other) and runs `fn(begin, end)` for each on the pool, blocking until
  /// all complete (submit + drain, so it shares drain()'s exception
  /// behaviour). The determinism contract above still applies: `fn` must
  /// write only per-index slots, and folding stays the caller's job, in
  /// index order. Used by the fleet's sharded arbiter epochs.
  void run_ranges(std::size_t n, int chunks,
                  const std::function<void(std::size_t, std::size_t)>& fn);

  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }
  /// Tasks that have finished (successfully or not) since construction.
  [[nodiscard]] std::uint64_t tasks_completed() const;
  /// Tasks executed by a thief rather than their home worker.
  [[nodiscard]] std::uint64_t tasks_stolen() const;
  /// Wall-clock profiling across all finished tasks: summed busy seconds and
  /// the longest single task (the straggler that bounds sweep latency).
  [[nodiscard]] double task_seconds_total() const;
  [[nodiscard]] double task_seconds_max() const;

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;  // guarded by Pool::mutex_
  };

  void run_worker(std::size_t me);
  /// Pops the next task for worker `me` (own front first, then steals from
  /// the back of the most loaded victim). Returns false if nothing runnable.
  bool take(std::size_t me, std::function<void()>& out, bool& stolen);

  std::vector<Worker> queues_;
  std::vector<std::thread> threads_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait here for tasks
  std::condition_variable drain_cv_;  // drain() waits here for quiescence
  std::size_t next_queue_ = 0;        // round-robin target for external submits
  std::uint64_t pending_ = 0;         // submitted, not yet finished
  std::uint64_t completed_ = 0;
  std::uint64_t stolen_ = 0;
  double task_seconds_total_ = 0.0;
  double task_seconds_max_ = 0.0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace slp::runner
