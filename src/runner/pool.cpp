#include "runner/pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace slp::runner {

namespace {

// Which pool (if any) the current thread belongs to, and its worker index.
// Lets nested submit() calls target the submitting worker's own deque.
thread_local Pool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;

}  // namespace

Pool::Pool(int workers) {
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  queues_.resize(static_cast<std::size_t>(workers));
  threads_.reserve(static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    threads_.emplace_back([this, i] { run_worker(i); });
  }
}

Pool::~Pool() {
  {
    std::unique_lock lock{mutex_};
    drain_cv_.wait(lock, [this] { return pending_ == 0; });
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Pool::submit(std::function<void()> fn) {
  {
    std::lock_guard lock{mutex_};
    const std::size_t target =
        tl_pool == this ? tl_worker : (next_queue_++ % queues_.size());
    queues_[target].deque.push_front(std::move(fn));
    ++pending_;
  }
  work_cv_.notify_one();
}

void Pool::drain() {
  std::unique_lock lock{mutex_};
  drain_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void Pool::run_ranges(std::size_t n, int chunks,
                      const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t parts = std::min<std::size_t>(std::max(1, chunks), n);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t end = begin + base + (p < extra ? 1 : 0);
    submit([fn, begin, end] { fn(begin, end); });
    begin = end;
  }
  drain();
}

std::uint64_t Pool::tasks_completed() const {
  std::lock_guard lock{mutex_};
  return completed_;
}

std::uint64_t Pool::tasks_stolen() const {
  std::lock_guard lock{mutex_};
  return stolen_;
}

double Pool::task_seconds_total() const {
  std::lock_guard lock{mutex_};
  return task_seconds_total_;
}

double Pool::task_seconds_max() const {
  std::lock_guard lock{mutex_};
  return task_seconds_max_;
}

bool Pool::take(std::size_t me, std::function<void()>& out, bool& stolen) {
  // Own deque first: front, LIFO — the task most recently pushed here.
  if (!queues_[me].deque.empty()) {
    out = std::move(queues_[me].deque.front());
    queues_[me].deque.pop_front();
    stolen = false;
    return true;
  }
  // Steal from the back of the most loaded victim.
  std::size_t victim = queues_.size();
  std::size_t best = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (i != me && queues_[i].deque.size() > best) {
      best = queues_[i].deque.size();
      victim = i;
    }
  }
  if (victim == queues_.size()) return false;
  out = std::move(queues_[victim].deque.back());
  queues_[victim].deque.pop_back();
  stolen = true;
  return true;
}

void Pool::run_worker(std::size_t me) {
  tl_pool = this;
  tl_worker = me;
  std::unique_lock lock{mutex_};
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (take(me, task, stolen)) {
      if (stolen) ++stolen_;
      lock.unlock();
      const auto t0 = std::chrono::steady_clock::now();
      try {
        task();
      } catch (...) {
        lock.lock();
        if (!first_error_) first_error_ = std::current_exception();
        lock.unlock();
      }
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      task = nullptr;  // destroy captures outside the lock
      lock.lock();
      ++completed_;
      task_seconds_total_ += secs;
      task_seconds_max_ = std::max(task_seconds_max_, secs);
      if (--pending_ == 0) drain_cv_.notify_all();
      continue;
    }
    if (shutdown_) break;
    work_cv_.wait(lock);
  }
  tl_pool = nullptr;
}

}  // namespace slp::runner
