// merge.hpp — order-insensitive folds of per-cell statistics.
//
// Sweep cells finish in scheduling order but must be *folded* in cell-id
// order so parallel and serial runs stay bit-identical. The primitives here
// are each associative, and commutative up to sample order — quantiles,
// ECDFs and histograms computed from a merge are identical for any partition
// of the same underlying multiset (tests/sweep_property_test.cpp asserts
// both properties).
#pragma once

#include <span>

#include "stats/ecdf.hpp"
#include "stats/quantiles.hpp"
#include "stats/timeseries.hpp"

namespace slp::runner {

/// Appends `from`'s samples to `into`, preserving `from`'s insertion order.
void merge(stats::Samples& into, const stats::Samples& from);

/// Concatenates shards in span order into one sample set.
[[nodiscard]] stats::Samples merge_samples(std::span<const stats::Samples> shards);

/// ECDF over the union of all shards (Figures 4/6 at sweep scale).
[[nodiscard]] stats::Ecdf merged_ecdf(std::span<const stats::Samples> shards);

/// Pools `from`'s per-bin samples into `into`. Bin widths must match.
void merge(stats::TimeBinner& into, const stats::TimeBinner& from);

}  // namespace slp::runner
