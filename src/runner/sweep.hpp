// sweep.hpp — multi-seed campaign sweeps on top of runner::Pool.
//
// A sweep runs N independent cells — one (config, seed) pair each — and
// folds the per-cell results into one. The determinism contract:
//
//   * every cell derives its seed from (base seed, cell index) alone
//     (cell_seed below), never from scheduling;
//   * each cell writes only its own slot of a pre-sized result vector;
//   * the merge folds slots in cell-id order, never in completion order.
//
// Consequence: --jobs=1 and --jobs=32 produce bit-identical merged results,
// and cell 0 of a 1-cell sweep reproduces the unswept campaign exactly.
//
// Campaign is any type with a `Config` (holding a `std::uint64_t seed`), a
// default-constructible `Result`, and `static Result run(const Config&)` —
// i.e. every campaign in measure/campaign.hpp. run_merged() additionally
// needs `merge(Result&, const Result&)` findable by ADL.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "runner/pool.hpp"

namespace slp::runner {

struct SweepConfig {
  int seeds = 1;  ///< number of cells (independent seed replications)
  int jobs = 1;   ///< pool width; 0 = hardware concurrency
};

/// Seed for cell `cell` of a sweep based at `base`. Cell 0 *is* the base
/// seed, so a 1-cell sweep reproduces the plain campaign; later cells are
/// decorrelated through splitmix64 finalization.
[[nodiscard]] constexpr std::uint64_t cell_seed(std::uint64_t base, std::uint64_t cell) {
  if (cell == 0) return base;
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * cell;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Runs `sweep.seeds` copies of the campaign on `pool`, one per cell, each
/// with `config.seed` replaced by its cell seed. Returns results indexed by
/// cell id (NOT completion order).
template <typename Campaign>
[[nodiscard]] std::vector<typename Campaign::Result> run_cells(
    Pool& pool, int seeds, const typename Campaign::Config& config) {
  const std::size_t n = seeds < 1 ? 1 : static_cast<std::size_t>(seeds);
  std::vector<typename Campaign::Result> results(n);
  const std::uint64_t base = config.seed;
  for (std::size_t cell = 0; cell < n; ++cell) {
    pool.submit([&results, &config, base, cell] {
      typename Campaign::Config cfg = config;
      cfg.seed = cell_seed(base, cell);
      results[cell] = Campaign::run(cfg);
    });
  }
  pool.drain();
  return results;
}

/// Convenience: run_cells on a transient pool, folded left in cell order via
/// ADL `merge(Result&, const Result&)`.
template <typename Campaign>
[[nodiscard]] typename Campaign::Result run_merged(
    const SweepConfig& sweep, const typename Campaign::Config& config) {
  Pool pool{sweep.jobs};
  auto cells = run_cells<Campaign>(pool, sweep.seeds, config);
  typename Campaign::Result merged = std::move(cells.front());
  for (std::size_t i = 1; i < cells.size(); ++i) merge(merged, cells[i]);
  return merged;
}

}  // namespace slp::runner
