#include "mobility/obstruction.hpp"

#include <cmath>

namespace slp::mobility {

namespace {

double wrap360(double deg) {
  deg = std::fmod(deg, 360.0);
  return deg < 0.0 ? deg + 360.0 : deg;
}

/// Is `az` inside [from, to) on the circle? A degenerate from == to sector
/// covers the full circle.
bool in_sector(double az, double from, double to) {
  az = wrap360(az);
  from = wrap360(from);
  to = wrap360(to);
  if (from == to) return true;
  if (from < to) return az >= from && az < to;
  return az >= from || az < to;  // wraps through north
}

}  // namespace

ObstructionMask::ObstructionMask(std::vector<Sector> sectors) : sectors_{std::move(sectors)} {
  for (const Sector& s : sectors_) {
    if (wrap360(s.az_from_deg) == wrap360(s.az_to_deg) && s.min_elevation_deg >= 90.0) {
      full_gate_ = true;
    }
  }
}

ObstructionMask ObstructionMask::tunnel() {
  return ObstructionMask{{Sector{0.0, 360.0, 90.0}}};
}

ObstructionMask ObstructionMask::sector(double az_from_deg, double az_to_deg,
                                        double min_elevation_deg) {
  return ObstructionMask{{Sector{az_from_deg, az_to_deg, min_elevation_deg}}};
}

double ObstructionMask::min_elevation_deg(double az_deg, double heading_deg) const {
  const double rel = wrap360(az_deg - heading_deg);
  double floor_deg = 0.0;
  for (const Sector& s : sectors_) {
    if (in_sector(rel, s.az_from_deg, s.az_to_deg) && s.min_elevation_deg > floor_deg) {
      floor_deg = s.min_elevation_deg;
    }
  }
  return floor_deg;
}

bool ObstructionMask::blocks(double az_deg, double elevation_deg, double heading_deg) const {
  if (sectors_.empty()) return false;
  return elevation_deg < min_elevation_deg(az_deg, heading_deg);
}

}  // namespace slp::mobility
