// mobile_terminal.hpp — drives the foreground terminal along a route.
//
// The MobileTerminal is the runtime that turns the passive data in Route
// into in-motion behaviour, re-evaluated on a motion epoch timer:
//
//   * position: the trajectory's state is pushed into leo::StarlinkAccess
//     (and its HandoverScheduler), so slot geometry, visibility counts and
//     the leo.visible_sats probe all track the moving vantage;
//   * obstruction: the active ObstructionMask (selected by odometer) is
//     installed as the scheduler's candidate filter — heading-relative
//     sectors compose with the dish elevation gate — and a full-gate mask
//     (tunnel) additionally closes the access's mobility loss gates;
//   * handover pressure: if the *serving* satellite has dropped below the
//     elevation gate or behind the mask at the current position, the slot
//     cache is invalidated and the terminal re-acquires mid-slot (counted
//     as mobility.reroutes). A disconnected re-acquire books its stall into
//     the kHandoverStall provenance component through the access's existing
//     unconnected-path accounting;
//   * cell migration: fleet::Fleet::set_foreground_position() re-homes the
//     foreground across CellGrid boundaries (mobility.cell_migrations).
//
// Determinism: the terminal draws no randomness at all, and a trivial plan
// (stationary route, no masks, or zero speed) stays fully passive — no
// timer, no counters, no filter — so the exports of a zero-speed run are
// byte-identical to a static-terminal run (tests/mobility_test.cpp pins
// this). All state is per-simulation, so --jobs sharding and
// --fast-forward are unaffected.
#pragma once

#include <string>

#include "fleet/fleet.hpp"
#include "leo/access.hpp"
#include "mobility/routes.hpp"
#include "obs/recorder.hpp"
#include "scenario/injector.hpp"
#include "sim/simulator.hpp"

namespace slp::mobility {

class MobileTerminal final : public scenario::MobilityHook {
 public:
  struct Config {
    Route route;  ///< may be trivial; `move` directives can load one later
    /// Multiplies every leg's nominal speed; <= 0 parks the terminal at the
    /// route start (useful for the zero-speed determinism pin).
    double speed_scale = 1.0;
    TimePoint depart = TimePoint::epoch();
    /// Motion re-evaluation cadence. 1 s resolves the paper-scale obstruction
    /// windows while staying far below the 15 s slot grid.
    Duration epoch = Duration::seconds(1);
    bool obstructions = true;

    /// Does this config ever change observable behaviour on its own?
    [[nodiscard]] bool moving() const {
      return speed_scale > 0.0 && !route.trajectory.stationary();
    }
    [[nodiscard]] bool active() const {
      return moving() || (obstructions && route.segment_at(0.0) != nullptr);
    }
  };

  /// Construction is passive unless config.active(): scenario-driven runs
  /// build an idle MobileTerminal that only wakes when a `move` fires.
  MobileTerminal(sim::Simulator& sim, leo::StarlinkAccess& access, Config config);
  ~MobileTerminal() override;

  MobileTerminal(const MobileTerminal&) = delete;
  MobileTerminal& operator=(const MobileTerminal&) = delete;

  /// Attaches the fleet for cell migration (optional; call after both exist).
  void set_fleet(fleet::Fleet* fleet) { fleet_ = fleet; }

  // --- scenario::MobilityHook ----------------------------------------
  void begin_move(const std::string& route, double speed_scale, TimePoint start,
                  TimePoint end) override;
  void end_move(TimePoint at) override;

  /// Kinematics at an arbitrary time (clamped to the active plan's window).
  /// Stateless — campaigns use it to bin probes by instantaneous speed.
  [[nodiscard]] Trajectory::State state_at(TimePoint t) const;

  [[nodiscard]] const Route& route() const { return route_; }
  [[nodiscard]] bool plan_active() const { return plan_active_; }

  struct Stats {
    std::uint64_t epochs = 0;            ///< motion re-evaluations executed
    std::uint64_t reroutes = 0;          ///< mid-slot re-acquisitions forced
    std::uint64_t cell_migrations = 0;   ///< CellGrid boundaries crossed
    std::uint64_t obstructed_epochs = 0; ///< epochs under a non-open mask
    std::uint64_t tunnels = 0;           ///< full-gate (tunnel) entries
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void activate();
  void begin(Route route, double speed_scale, TimePoint depart, TimePoint end);
  void tick();
  /// Selects the obstruction regime for the current odometer reading and
  /// drives the tunnel gate; returns true when the regime changed.
  bool apply_mask(const Trajectory::State& st);

  sim::Simulator* sim_;
  leo::StarlinkAccess* access_;
  fleet::Fleet* fleet_ = nullptr;
  Config config_;

  // Active plan.
  Route route_;
  double speed_scale_ = 1.0;
  TimePoint depart_;
  TimePoint plan_end_;
  bool plan_active_ = false;
  bool wants_more_ = false;  ///< tick() decided another epoch is needed

  // Current sky state (read by the candidate filter installed on the
  // scheduler, refreshed each tick before any path recompute).
  ObstructionMask mask_;
  bool mask_active_ = false;
  double heading_deg_ = 0.0;
  int last_seg_index_ = -1;
  bool gate_closed_ = false;
  bool activated_ = false;

  sim::Timer timer_;
  Stats stats_;
  obs::Counter obs_epochs_;
  obs::Counter obs_reroutes_;
  obs::Counter obs_migrations_;
  obs::Counter obs_obstructed_;
  obs::Counter obs_tunnels_;
  obs::Gauge obs_speed_;
  obs::Gauge obs_heading_;
  obs::Gauge obs_distance_;
  obs::Gauge obs_obstructed_gauge_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace slp::mobility
