// trajectory.hpp — deterministic waypoint ground motion on great circles.
//
// A trajectory is a piecewise route: travel legs that follow the great
// circle between consecutive waypoints at a per-leg cruise speed, and pause
// segments that dwell at a waypoint before departing. Evaluation is
// stateless and closed-form: state_at(elapsed) binary-searches a precomputed
// segment table and slerps within the segment, so position queries are
// random-access (any t, any order, no integration state) — the same contract
// the fleet's stateless demand model relies on, and what makes a moving
// terminal compose with --jobs sharding and --fast-forward unchanged.
#pragma once

#include <vector>

#include "leo/geodesy.hpp"
#include "util/units.hpp"

namespace slp::mobility {

struct Waypoint {
  leo::GeoPoint point;
  /// Cruise speed on the leg *leaving* this waypoint, m/s. A non-positive
  /// speed on a non-degenerate leg ends the trajectory at this waypoint
  /// (the vehicle parks; remaining waypoints are unreachable).
  double speed_mps = 0.0;
  /// Dwell at this waypoint before departing (rest stop, traffic light).
  Duration pause = Duration::zero();
};

class Trajectory {
 public:
  Trajectory() = default;

  [[nodiscard]] static Trajectory from_waypoints(std::vector<Waypoint> waypoints);

  struct State {
    leo::GeoPoint position;
    double heading_deg = 0.0;  ///< direction of travel (last known while paused)
    double speed_mps = 0.0;
    double distance_m = 0.0;  ///< along-route odometer
    bool moving = false;
    bool finished = false;  ///< past the final waypoint (position clamps there)
  };

  /// Kinematic state after `elapsed` time on the route. Clamps to the first
  /// waypoint for negative times and to the final reached waypoint after the
  /// route completes.
  [[nodiscard]] State state_at(Duration elapsed) const;
  [[nodiscard]] leo::GeoPoint position_at(Duration elapsed) const {
    return state_at(elapsed).position;
  }

  [[nodiscard]] double total_distance_m() const { return total_distance_m_; }
  [[nodiscard]] Duration total_duration() const { return total_duration_; }
  /// True when the route never leaves its first waypoint (no travel legs).
  [[nodiscard]] bool stationary() const { return total_distance_m_ == 0.0; }
  [[nodiscard]] bool empty() const { return !has_start_; }

 private:
  struct Segment {
    Duration t0;        ///< elapsed time at segment start
    Duration dt;        ///< segment duration (> 0)
    double s0 = 0.0;    ///< odometer at segment start
    double length_m = 0.0;  ///< 0 for pauses
    leo::Vec3 a, b;     ///< unit ECEF endpoints (b == a for pauses)
    double angle_rad = 0.0;  ///< central angle a -> b
    leo::GeoPoint geo_a, geo_b;
    double speed_mps = 0.0;  ///< 0 for pauses
    double heading_deg = 0.0;  ///< initial bearing (recomputed along travel arcs)
    bool pause = false;
  };

  bool has_start_ = false;
  leo::GeoPoint start_;
  std::vector<Segment> segments_;
  double total_distance_m_ = 0.0;
  Duration total_duration_ = Duration::zero();
  State end_state_;
};

}  // namespace slp::mobility
