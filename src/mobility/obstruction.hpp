// obstruction.hpp — heading-relative sky blockage for a moving terminal.
//
// A mask is a set of azimuth sectors, each raising the minimum usable
// elevation inside it. Sectors are *heading-relative* (0° = direction of
// travel, clockwise), so "tree line along the right shoulder" stays on the
// right as the road curves. The mask composes with the geometric
// terminal_min_elevation_deg gate in leo::access by maximum: visibility
// pre-filters at the dish's mask angle, and the obstruction only ever
// removes more sky. A tunnel is the degenerate full-sky mask (everything
// blocked to the zenith); mobile_terminal.hpp maps it to a loss gate on the
// satellite link.
#pragma once

#include <vector>

namespace slp::mobility {

class ObstructionMask {
 public:
  struct Sector {
    /// Heading-relative azimuth range, degrees clockwise, wrapping at 360
    /// (from 300 to 60 spans the 120° ahead of the vehicle).
    double az_from_deg = 0.0;
    double az_to_deg = 360.0;
    /// Sky below this elevation is blocked inside the sector.
    double min_elevation_deg = 90.0;
  };

  ObstructionMask() = default;  // open sky
  explicit ObstructionMask(std::vector<Sector> sectors);

  [[nodiscard]] static ObstructionMask open_sky() { return ObstructionMask{}; }
  /// Full gate: every azimuth blocked to the zenith.
  [[nodiscard]] static ObstructionMask tunnel();
  /// Single-sector convenience (tree lines, urban canyons).
  [[nodiscard]] static ObstructionMask sector(double az_from_deg, double az_to_deg,
                                              double min_elevation_deg);

  /// Minimum usable elevation toward absolute azimuth `az_deg` for a vehicle
  /// on `heading_deg` (max over matching sectors; 0 in open sky).
  [[nodiscard]] double min_elevation_deg(double az_deg, double heading_deg) const;

  /// True when a satellite at (az, el) is blocked.
  [[nodiscard]] bool blocks(double az_deg, double elevation_deg, double heading_deg) const;

  /// True when the whole sky is gated (a single wrap-around sector at >= 90°
  /// elevation — how tunnel() represents itself).
  [[nodiscard]] bool full_gate() const { return full_gate_; }
  [[nodiscard]] bool empty() const { return sectors_.empty(); }
  [[nodiscard]] const std::vector<Sector>& sectors() const { return sectors_; }

 private:
  std::vector<Sector> sectors_;
  bool full_gate_ = false;
};

}  // namespace slp::mobility
