#include "mobility/mobile_terminal.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace slp::mobility {

namespace {

/// Sentinel plan end for config-driven plans: "until the route completes".
constexpr TimePoint never() {
  return TimePoint::from_ns(std::numeric_limits<std::int64_t>::max());
}

}  // namespace

MobileTerminal::MobileTerminal(sim::Simulator& sim, leo::StarlinkAccess& access, Config config)
    : sim_{&sim},
      access_{&access},
      config_{std::move(config)},
      depart_{TimePoint::epoch()},
      plan_end_{TimePoint::epoch()},
      timer_{sim} {
  if (config_.active()) {
    begin(config_.route, config_.speed_scale, config_.depart, never());
  }
}

MobileTerminal::~MobileTerminal() {
  if (activated_) {
    access_->scheduler().set_candidate_filter(nullptr);
    if (gate_closed_) access_->set_mobility_outage(false);
  }
}

void MobileTerminal::activate() {
  if (activated_) return;
  activated_ = true;
  // The filter reads the mutable sky state refreshed by tick(); it is a
  // pass-through until a mask becomes active.
  access_->scheduler().set_candidate_filter(
      [this](const leo::Constellation::VisibleSat& cand, double az_deg) {
        return !mask_active_ || !mask_.blocks(az_deg, cand.elevation_deg, heading_deg_);
      });
  if (auto* rec = sim_->obs()) {
    obs::Registry& reg = rec->registry();
    obs_epochs_ = reg.counter("mobility.epochs");
    obs_reroutes_ = reg.counter("mobility.reroutes");
    obs_migrations_ = reg.counter("mobility.cell_migrations");
    obs_obstructed_ = reg.counter("mobility.obstructed_epochs");
    obs_tunnels_ = reg.counter("mobility.tunnels");
    obs_speed_ = reg.gauge("mobility.speed_kmh");
    obs_heading_ = reg.gauge("mobility.heading_deg");
    obs_distance_ = reg.gauge("mobility.distance_km");
    obs_obstructed_gauge_ = reg.gauge("mobility.obstructed");
    trace_ = rec->trace().enabled() ? &rec->trace() : nullptr;
  }
}

void MobileTerminal::begin_move(const std::string& route, double speed_scale, TimePoint start,
                                TimePoint end) {
  std::optional<Route> r = routes::lookup(route);
  if (!r.has_value()) {
    // The scenario layer cannot validate route names (it has no view of the
    // mobility registry); an unknown name is a scripted no-op, loudly.
    std::fprintf(stderr, "mobility: unknown route '%s' in move directive, ignoring\n",
                 route.c_str());
    return;
  }
  begin(std::move(*r), speed_scale, start, end);
}

void MobileTerminal::end_move(TimePoint at) {
  if (!plan_active_) return;
  plan_end_ = std::min(plan_end_, at);
  tick();  // settle the final position; wants_more_ goes false past plan_end_
}

void MobileTerminal::begin(Route route, double speed_scale, TimePoint depart, TimePoint end) {
  route_ = std::move(route);
  speed_scale_ = std::max(0.0, speed_scale);
  depart_ = depart;
  plan_end_ = end;
  plan_active_ = true;
  last_seg_index_ = std::numeric_limits<int>::min();  // force a mask refresh
  activate();
  if (sim_->now() >= depart_) {
    tick();
    // Like the fleet's construction-time epoch: a begin() that runs before
    // the campaign scheduled its workload sees an empty queue, so give the
    // next epoch one unconditional chance to observe the real run.
    if (wants_more_ && !timer_.armed()) {
      timer_.arm(config_.epoch, [this] { tick(); });
    }
  } else {
    timer_.arm_at(depart_, [this] { tick(); });
  }
}

bool MobileTerminal::apply_mask(const Trajectory::State& st) {
  const int idx = config_.obstructions ? route_.segment_index_at(st.distance_m) : -1;
  const bool changed = idx != last_seg_index_;
  last_seg_index_ = idx;
  if (changed) {
    if (idx < 0) {
      mask_ = ObstructionMask{};
      mask_active_ = false;
    } else {
      mask_ = route_.obstructions[static_cast<std::size_t>(idx)].mask;
      mask_active_ = true;
    }
  }
  const bool gate = mask_active_ && mask_.full_gate();
  if (gate != gate_closed_) {
    access_->set_mobility_outage(gate);
    gate_closed_ = gate;
    if (gate) {
      ++stats_.tunnels;
      obs_tunnels_.add();
    }
    if (trace_ != nullptr) {
      trace_->instant("mobility", gate ? "tunnel.enter" : "tunnel.exit", sim_->now());
    }
  }
  return changed;
}

Trajectory::State MobileTerminal::state_at(TimePoint t) const {
  TimePoint tt = std::min(t, plan_end_);
  const Duration elapsed = tt > depart_ ? (tt - depart_) : Duration::zero();
  // speed_scale multiplies every leg speed, which is the same as running the
  // nominal trajectory clock speed_scale times faster.
  Trajectory::State st = route_.trajectory.state_at(elapsed * speed_scale_);
  st.speed_mps *= speed_scale_;
  if (!plan_active_ || t < depart_ || t >= plan_end_ || speed_scale_ <= 0.0) {
    st.speed_mps = 0.0;
    st.moving = false;
  }
  return st;
}

void MobileTerminal::tick() {
  const TimePoint now = sim_->now();
  const Trajectory::State st = state_at(now);

  // 1. Re-home the vantage point; geometry changes take effect immediately
  //    for visibility checks and at the next slot compute for the path.
  access_->set_terminal_position(st.position);
  heading_deg_ = st.heading_deg;

  // 2. Obstruction regime by odometer (also drives the tunnel gate).
  const bool regime_changed = apply_mask(st);

  // 3. Serving-satellite validity from the *current* position. A connected
  //    path whose satellite fell below the gate (or behind the mask) forces
  //    a mid-slot re-acquisition; a disconnected terminal retries when the
  //    obstruction regime changes (e.g. tunnel exit) instead of waiting out
  //    the 15 s slot.
  leo::HandoverScheduler& sched = access_->scheduler();
  const leo::HandoverScheduler::Path& path = sched.path_at(now);
  bool reroute = false;
  if (path.connected) {
    const leo::Vec3 sat_pos = access_->constellation().position_ecef(path.sat, now);
    const double el = leo::elevation_deg(st.position, sat_pos);
    const double az = leo::azimuth_deg(st.position, sat_pos);
    reroute = el < sched.config().terminal_min_elevation_deg ||
              (mask_active_ && mask_.blocks(az, el, heading_deg_));
  } else {
    reroute = regime_changed;
  }
  if (reroute) {
    sched.invalidate();
    ++stats_.reroutes;
    obs_reroutes_.add();
    if (trace_ != nullptr) trace_->instant("mobility", "reroute", now);
  }

  // 4. Cell migration when the trajectory crossed a CellGrid boundary.
  if (fleet_ != nullptr && fleet_->set_foreground_position(st.position, now)) {
    ++stats_.cell_migrations;
    obs_migrations_.add();
    if (trace_ != nullptr) trace_->instant("mobility", "cell_migration", now);
  }

  // 5. Bookkeeping.
  ++stats_.epochs;
  obs_epochs_.add();
  if (mask_active_) {
    ++stats_.obstructed_epochs;
    obs_obstructed_.add();
  }
  obs_speed_.set(st.speed_mps * 3.6);
  obs_heading_.set(st.heading_deg);
  obs_distance_.set(st.distance_m / 1000.0);
  obs_obstructed_gauge_.set(mask_active_ ? 1.0 : 0.0);

  // 6. Another epoch? Only while the plan still produces motion. The daemon
  //    contract mirrors the fleet's: never be the only event keeping the
  //    queue alive.
  wants_more_ = plan_active_ && now < plan_end_ && !st.finished && speed_scale_ > 0.0 &&
                !route_.trajectory.stationary();
  if (wants_more_ && sim_->pending_events() > 0) {
    timer_.arm(config_.epoch, [this] { tick(); });
  }
}

}  // namespace slp::mobility
