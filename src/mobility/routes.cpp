#include "mobility/routes.hpp"

#include "leo/places.hpp"

namespace slp::mobility {

const ObstructionSegment* Route::segment_at(double distance_m) const {
  const int idx = segment_index_at(distance_m);
  return idx < 0 ? nullptr : &obstructions[static_cast<std::size_t>(idx)];
}

int Route::segment_index_at(double distance_m) const {
  for (std::size_t i = 0; i < obstructions.size(); ++i) {
    if (distance_m >= obstructions[i].from_m && distance_m < obstructions[i].to_m) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace routes {

namespace {

constexpr double kHighwayMps = 33.3;  // ~120 km/h
constexpr double kRuralMps = 16.7;    // ~60 km/h

// Intermediate road points (not in the anchor gazetteer).
constexpr leo::GeoPoint kLeuven{50.879, 4.701, 0.0};
constexpr leo::GeoPoint kSintTruiden{50.816, 5.186, 0.0};
constexpr leo::GeoPoint kCourtSaintEtienne{50.634, 4.568, 0.0};
constexpr leo::GeoPoint kGembloux{50.561, 4.698, 0.0};

}  // namespace

Route highway() {
  Route r;
  r.name = "highway";
  r.trajectory = Trajectory::from_waypoints({
      {leo::places::kBrussels, kHighwayMps, Duration::zero()},
      {kLeuven, kHighwayMps, Duration::zero()},
      {kSintTruiden, kHighwayMps, Duration::zero()},
      {leo::places::kLiege, 0.0, Duration::zero()},
  });
  // Urban canyon leaving Brussels: buildings flank both sides of the road.
  const ObstructionMask canyon{{ObstructionMask::Sector{20.0, 160.0, 50.0},
                                ObstructionMask::Sector{200.0, 340.0, 50.0}}};
  // Motorway tree lines hug one shoulder at a time.
  const ObstructionMask trees_right = ObstructionMask::sector(60.0, 120.0, 42.0);
  const ObstructionMask trees_left = ObstructionMask::sector(240.0, 300.0, 42.0);
  const ObstructionMask trees_both{{ObstructionMask::Sector{60.0, 120.0, 36.0},
                                    ObstructionMask::Sector{240.0, 300.0, 36.0}}};
  r.obstructions = {
      {0.0, 4'000.0, canyon, "urban-canyon"},
      {8'000.0, 30'000.0, trees_right, "tree-line"},
      {30'000.0, 30'600.0, ObstructionMask::tunnel(), "tunnel"},
      {30'600.0, 55'000.0, trees_left, "tree-line"},
      {55'000.0, 55'400.0, ObstructionMask::tunnel(), "tunnel"},
      {55'400.0, 80'000.0, trees_both, "tree-line"},
  };
  return r;
}

Route rural() {
  Route r;
  r.name = "rural";
  // A country loop with a rest stop: slow, open sky, back roads.
  r.trajectory = Trajectory::from_waypoints({
      {leo::places::kLouvainLaNeuve, kRuralMps, Duration::zero()},
      {kCourtSaintEtienne, kRuralMps, Duration::seconds(90)},
      {kGembloux, kRuralMps, Duration::zero()},
      {leo::places::kLouvainLaNeuve, 0.0, Duration::zero()},
  });
  return r;
}

std::optional<Route> lookup(std::string_view name) {
  if (name == "highway") return highway();
  if (name == "rural") return rural();
  return std::nullopt;
}

std::vector<std::string_view> names() { return {"highway", "rural"}; }

}  // namespace routes

}  // namespace slp::mobility
