#include "mobility/trajectory.hpp"

#include <algorithm>
#include <cmath>

namespace slp::mobility {

namespace {

leo::Vec3 unit(const leo::Vec3& v) {
  const double n = v.norm();
  return n == 0.0 ? leo::Vec3{1.0, 0.0, 0.0} : v * (1.0 / n);
}

/// Spherical linear interpolation between unit vectors at parameter f.
leo::Vec3 slerp(const leo::Vec3& a, const leo::Vec3& b, double angle_rad, double f) {
  const double s = std::sin(angle_rad);
  if (s < 1e-12) return a;  // endpoints (numerically) coincide
  const double wa = std::sin((1.0 - f) * angle_rad) / s;
  const double wb = std::sin(f * angle_rad) / s;
  return unit(a * wa + b * wb);
}

}  // namespace

Trajectory Trajectory::from_waypoints(std::vector<Waypoint> waypoints) {
  Trajectory traj;
  if (waypoints.empty()) return traj;
  traj.has_start_ = true;
  traj.start_ = waypoints.front().point;

  Duration t = Duration::zero();
  double odometer = 0.0;
  bool parked = false;
  for (std::size_t i = 0; i < waypoints.size() && !parked; ++i) {
    const Waypoint& wp = waypoints[i];
    const bool last = i + 1 == waypoints.size();
    const leo::GeoPoint next = last ? wp.point : waypoints[i + 1].point;
    // Heading while paused = heading of the leg about to be driven.
    const double heading = last ? 0.0 : leo::initial_bearing_deg(wp.point, next);

    if (wp.pause > Duration::zero()) {
      Segment seg;
      seg.t0 = t;
      seg.dt = wp.pause;
      seg.s0 = odometer;
      seg.a = seg.b = unit(leo::to_ecef(leo::GeoPoint{wp.point.lat_deg, wp.point.lon_deg, 0.0}));
      seg.geo_a = seg.geo_b = wp.point;
      seg.heading_deg = heading;
      seg.pause = true;
      t = t + wp.pause;
      traj.segments_.push_back(seg);
    }
    if (last) break;

    const double length = leo::great_circle_distance_m(wp.point, next);
    if (length <= 0.0) continue;  // duplicate waypoint: nothing to drive
    if (wp.speed_mps <= 0.0) {
      parked = true;  // no speed to leave on: route ends here
      break;
    }
    Segment seg;
    seg.t0 = t;
    seg.dt = Duration::from_seconds(length / wp.speed_mps);
    seg.s0 = odometer;
    seg.length_m = length;
    seg.a = unit(leo::to_ecef(leo::GeoPoint{wp.point.lat_deg, wp.point.lon_deg, 0.0}));
    seg.b = unit(leo::to_ecef(leo::GeoPoint{next.lat_deg, next.lon_deg, 0.0}));
    seg.angle_rad = length / leo::kEarthRadiusM;
    seg.geo_a = wp.point;
    seg.geo_b = next;
    seg.speed_mps = wp.speed_mps;
    seg.heading_deg = heading;
    t = t + seg.dt;
    odometer += length;
    traj.segments_.push_back(seg);
  }

  traj.total_duration_ = t;
  traj.total_distance_m_ = odometer;
  const leo::GeoPoint final_point =
      traj.segments_.empty() ? traj.start_ : traj.segments_.back().geo_b;
  traj.end_state_ = State{final_point,
                          traj.segments_.empty() ? 0.0 : traj.segments_.back().heading_deg,
                          0.0, odometer, false, true};
  return traj;
}

Trajectory::State Trajectory::state_at(Duration elapsed) const {
  if (!has_start_) return State{leo::GeoPoint{}, 0.0, 0.0, 0.0, false, true};
  if (segments_.empty()) return end_state_;
  if (elapsed.ns() < 0) elapsed = Duration::zero();
  if (elapsed >= total_duration_) return end_state_;

  // Last segment whose start is <= elapsed.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), elapsed,
                             [](Duration t, const Segment& s) { return t < s.t0; });
  const Segment& seg = *std::prev(it);

  State st;
  if (seg.pause) {
    st.position = seg.geo_a;
    st.heading_deg = seg.heading_deg;
    st.distance_m = seg.s0;
    return st;
  }
  const double f = static_cast<double>((elapsed - seg.t0).ns()) / static_cast<double>(seg.dt.ns());
  const leo::Vec3 u = slerp(seg.a, seg.b, seg.angle_rad, f);
  const double alt = seg.geo_a.alt_m + (seg.geo_b.alt_m - seg.geo_a.alt_m) * f;
  leo::GeoPoint pos = leo::from_ecef(u * leo::kEarthRadiusM);
  pos.alt_m = alt;
  st.position = pos;
  // Heading along the arc: bearing toward the segment end. At the very end
  // of the arc the bearing degenerates; fall back to the initial bearing.
  st.heading_deg = f >= 1.0 ? seg.heading_deg : leo::initial_bearing_deg(pos, seg.geo_b);
  st.speed_mps = seg.speed_mps;
  st.distance_m = seg.s0 + seg.length_m * f;
  st.moving = true;
  return st;
}

}  // namespace slp::mobility
