// routes.hpp — named road-trip routes: a trajectory plus obstruction regimes
// keyed by along-route distance.
//
// Routes are pure data (no RNG, no clocks), so the same name always yields
// the same motion — the `move` scenario directive and the --route bench flag
// are as seed-independent as rain fronts. The built-in pair deliberately
// contrasts the two regimes the in-motion measurement papers distinguish:
// a fast, obstructed highway run and a slow, open-sky rural loop.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mobility/obstruction.hpp"
#include "mobility/trajectory.hpp"

namespace slp::mobility {

/// An obstruction regime over a half-open odometer window [from_m, to_m).
struct ObstructionSegment {
  double from_m = 0.0;
  double to_m = 0.0;
  ObstructionMask mask;
  std::string label;  ///< "tunnel", "tree-line", ... (trace annotations)
};

struct Route {
  std::string name;
  Trajectory trajectory;
  /// Non-overlapping, first match wins. Distances outside every window mean
  /// open sky.
  std::vector<ObstructionSegment> obstructions;

  [[nodiscard]] const ObstructionSegment* segment_at(double distance_m) const;
  [[nodiscard]] int segment_index_at(double distance_m) const;
  /// A trivial route never changes anything observable: no motion, no masks.
  [[nodiscard]] bool trivial() const {
    return trajectory.stationary() && obstructions.empty();
  }
};

namespace routes {

/// E40-style Brussels -> Liege run: ~120 km/h, tree lines along the
/// shoulders, two full-gate tunnels, an urban canyon leaving the city.
[[nodiscard]] Route highway();

/// Rural loop around Louvain-la-Neuve: ~60 km/h, open sky, one rest stop.
[[nodiscard]] Route rural();

/// Looks a built-in route up by name; nullopt for unknown names.
[[nodiscard]] std::optional<Route> lookup(std::string_view name);
[[nodiscard]] std::vector<std::string_view> names();

}  // namespace routes

}  // namespace slp::mobility
