#include "tcp/congestion.hpp"

#include "tcp/bbr.hpp"

#include <algorithm>
#include <cmath>

namespace slp::cc {

namespace {
constexpr double kCubicC = 0.4;
constexpr double kCubicBeta = 0.7;
constexpr std::uint64_t kInfiniteSsthresh = ~0ull;
}  // namespace

// --------------------------------------------------------------- Cubic

Cubic::Cubic(CcConfig config) : config_{config} {
  cwnd_ = static_cast<std::uint64_t>(config_.initial_window_segments) * config_.mss;
  ssthresh_ = kInfiniteSsthresh;
}

double Cubic::cubic_window_segments(double t_seconds) const {
  const double dt = t_seconds - k_seconds_;
  return kCubicC * dt * dt * dt + w_max_segments_;
}

void Cubic::on_ack(std::uint64_t acked_bytes, Duration rtt, TimePoint now) {
  if (rtt > Duration::zero()) min_rtt_ = std::min(min_rtt_, rtt);

  if (in_slow_start()) {
    cwnd_ += acked_bytes;  // exponential growth
    // HyStart delay-increase detection, per round: sample the first ACKs of
    // each round (they reflect the standing queue left by the previous
    // round, not this round's transient burst) and exit slow start when
    // that floor rises by a clamped eta above the minimum RTT.
    acked_total_ += acked_bytes;
    if (config_.hystart && rtt > Duration::zero() && round_samples_ < 8) {
      ++round_samples_;
      round_min_rtt_ = std::min(round_min_rtt_, rtt);
      if (round_samples_ == 8 && !min_rtt_.is_infinite() &&
          !round_min_rtt_.is_infinite()) {
        // Floor of 28ms: above the compound access-jitter of the modelled
        // paths when taking the min over a round's first samples (the
        // slot-scheduling component is shared within a round), yet low
        // enough to catch the standing queue one doubling before a
        // window-sized drop-tail burst.
        const Duration eta = std::max(min_rtt_ * 0.125, Duration::millis(28));
        if (round_min_rtt_ > min_rtt_ + eta) ssthresh_ = cwnd_;
      }
    }
    if (acked_total_ >= round_end_bytes_) {
      round_end_bytes_ = acked_total_ + cwnd_;
      round_samples_ = 0;
      round_min_rtt_ = Duration::infinite();
    }
    return;
  }

  if (!epoch_valid_) {
    // First congestion-avoidance ACK after a reduction starts a new epoch.
    epoch_valid_ = true;
    epoch_start_ = now;
    const double cwnd_seg = static_cast<double>(cwnd_) / config_.mss;
    if (w_max_segments_ < cwnd_seg) {
      w_max_segments_ = cwnd_seg;
      k_seconds_ = 0.0;
    } else {
      k_seconds_ = std::cbrt((w_max_segments_ - cwnd_seg) / kCubicC);
    }
    w_est_segments_ = cwnd_seg;
  }

  const double t = (now - epoch_start_).to_seconds();
  const double rtt_s = min_rtt_.is_infinite() ? 0.1 : min_rtt_.to_seconds();
  const double target = cubic_window_segments(t + rtt_s);
  const double cwnd_seg = static_cast<double>(cwnd_) / config_.mss;

  // TCP-friendly region: track what Reno would have (RFC 8312 §4.2).
  w_est_segments_ += 3.0 * (1.0 - kCubicBeta) / (1.0 + kCubicBeta) *
                     (static_cast<double>(acked_bytes) / config_.mss) / cwnd_seg;

  double next_seg;
  if (target > cwnd_seg) {
    // Concave/convex region: approach target over one RTT.
    next_seg = cwnd_seg + (target - cwnd_seg) / cwnd_seg *
                              (static_cast<double>(acked_bytes) / config_.mss);
  } else {
    // At/above target: grow very slowly.
    next_seg = cwnd_seg + 0.01 * (static_cast<double>(acked_bytes) / config_.mss);
  }
  next_seg = std::max(next_seg, w_est_segments_);
  cwnd_ = std::max<std::uint64_t>(config_.min_cwnd_bytes,
                                  static_cast<std::uint64_t>(next_seg * config_.mss));
}

void Cubic::on_congestion_event(TimePoint now) {
  (void)now;
  const double cwnd_seg = static_cast<double>(cwnd_) / config_.mss;
  // Fast convergence (RFC 8312 §4.6).
  if (cwnd_seg < w_max_segments_) {
    w_max_segments_ = cwnd_seg * (1.0 + kCubicBeta) / 2.0;
  } else {
    w_max_segments_ = cwnd_seg;
  }
  cwnd_ = std::max<std::uint64_t>(config_.min_cwnd_bytes,
                                  static_cast<std::uint64_t>(cwnd_seg * kCubicBeta * config_.mss));
  ssthresh_ = cwnd_;
  epoch_valid_ = false;
}

void Cubic::on_rto(TimePoint now) {
  on_congestion_event(now);
  cwnd_ = config_.min_cwnd_bytes;
  epoch_valid_ = false;
}

// --------------------------------------------------------------- NewReno

NewReno::NewReno(CcConfig config) : config_{config} {
  cwnd_ = static_cast<std::uint64_t>(config_.initial_window_segments) * config_.mss;
  ssthresh_ = kInfiniteSsthresh;
}

void NewReno::on_ack(std::uint64_t acked_bytes, Duration rtt, TimePoint now) {
  (void)rtt;
  (void)now;
  if (in_slow_start()) {
    cwnd_ += acked_bytes;
    return;
  }
  // Congestion avoidance: +1 MSS per cwnd of acked bytes.
  ack_accumulator_ += acked_bytes;
  if (ack_accumulator_ >= cwnd_) {
    ack_accumulator_ -= cwnd_;
    cwnd_ += config_.mss;
  }
}

void NewReno::on_congestion_event(TimePoint now) {
  (void)now;
  cwnd_ = std::max<std::uint64_t>(config_.min_cwnd_bytes, cwnd_ / 2);
  ssthresh_ = cwnd_;
  ack_accumulator_ = 0;
}

void NewReno::on_rto(TimePoint now) {
  on_congestion_event(now);
  cwnd_ = config_.min_cwnd_bytes;
}

std::unique_ptr<CongestionController> make_controller(CcAlgorithm algo, CcConfig config) {
  switch (algo) {
    case CcAlgorithm::kCubic: return std::make_unique<Cubic>(config);
    case CcAlgorithm::kNewReno: return std::make_unique<NewReno>(config);
    case CcAlgorithm::kBbr: return std::make_unique<Bbr>(config);
  }
  return nullptr;
}

}  // namespace slp::cc
