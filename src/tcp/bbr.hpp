// bbr.hpp — BBRv1-style model-based congestion control.
//
// The paper measured Cubic (both for Linux TCP and quiche) and §4 invites
// work on transports that better fit LEO links. BBR is the obvious
// candidate: it is rate-based, nearly loss-agnostic, and keeps queues
// shallow — properties the `ablation_cc` bench contrasts against Cubic on
// the Starlink access, where medium loss bursts periodically sucker-punch
// loss-based control.
//
// This is a faithful-in-shape reduction of BBRv1:
//   * windowed-max bandwidth filter over ~10 RTTs of ack-rate samples;
//   * windowed-min RTT filter with a 10 s expiry and PROBE_RTT dips;
//   * STARTUP at 2/ln2 gain until the bandwidth plateaus 3 rounds,
//     then DRAIN to a BDP, then the 8-phase PROBE_BW gain cycle;
//   * loss events are ignored (except RTO, which resets conservatively).
#pragma once

#include <deque>

#include "tcp/congestion.hpp"

namespace slp::cc {

class Bbr final : public CongestionController {
 public:
  explicit Bbr(CcConfig config = {});

  void on_ack(std::uint64_t acked_bytes, Duration rtt, TimePoint now) override;
  void on_congestion_event(TimePoint now) override;
  void on_rto(TimePoint now) override;

  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] std::uint64_t ssthresh_bytes() const override { return ~0ull; }
  [[nodiscard]] bool in_slow_start() const override { return state_ == State::kStartup; }
  [[nodiscard]] std::string name() const override { return "bbr"; }

  enum class State { kStartup, kDrain, kProbeBw, kProbeRtt };
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] DataRate bandwidth_estimate() const { return max_bw_; }
  [[nodiscard]] Duration min_rtt_estimate() const { return min_rtt_; }

 private:
  void update_filters(std::uint64_t acked_bytes, Duration rtt, TimePoint now);
  void advance_state(TimePoint now);
  void set_cwnd();
  [[nodiscard]] double bdp_bytes() const;

  CcConfig config_;
  State state_ = State::kStartup;
  std::uint64_t cwnd_;

  // Bandwidth max-filter: (time, sample) pairs within the window.
  std::deque<std::pair<TimePoint, DataRate>> bw_samples_;
  DataRate max_bw_ = DataRate::zero();
  TimePoint last_sample_at_;
  std::uint64_t pending_bytes_ = 0;  ///< acked bytes awaiting a rate sample
  bool have_ack_time_ = false;

  // RTT min-filter.
  Duration min_rtt_ = Duration::infinite();
  TimePoint min_rtt_stamp_;

  // STARTUP plateau detection.
  DataRate full_bw_ = DataRate::zero();
  int full_bw_rounds_ = 0;

  // PROBE_BW gain cycling.
  int cycle_index_ = 0;
  TimePoint cycle_start_;

  // PROBE_RTT bookkeeping.
  TimePoint probe_rtt_start_;
  State state_before_probe_ = State::kProbeBw;
};

}  // namespace slp::cc
