// tcp.hpp — a segment-level TCP model: handshake, Cubic/NewReno congestion
// control, SACK-based loss recovery, RTO with backoff, delayed ACKs and
// receive-window autotuning.
//
// Fidelity targets (what the paper's results actually depend on):
//   * slow start + congestion avoidance dynamics against drop-tail queues
//     (Figure 5 throughput, Figure 3 RTT-under-load for the TCP side);
//   * connection setup cost (SYN/SYNACK/ACK) — dominant for SatCom web QoE;
//   * receive-window autotuning from the kernel's 128 KiB default to the
//     6 MiB maximum (§2 of the paper documents exactly these values);
//   * PEP splittability: the handshake is real packets, so the geo:: PEP can
//     intercept and terminate it — and Tracebox can catch it doing so.
//
// Data is synthetic: the stream carries byte *counts*, not bytes. All
// sequence arithmetic is still exact.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "sim/host.hpp"
#include "tcp/congestion.hpp"
#include "util/units.hpp"

namespace slp::tcp {

struct TcpConfig {
  std::uint32_t mss = 1448;
  cc::CcAlgorithm algorithm = cc::CcAlgorithm::kCubic;
  std::uint32_t initial_window_segments = 10;

  /// Kernel-default receive buffer and autotuning cap (paper §2: 131072
  /// default, 6291456 max "through automatic buffer tuning").
  std::uint64_t initial_rcv_buffer = 131'072;
  std::uint64_t max_rcv_buffer = 6'291'456;

  Duration delayed_ack_timeout = Duration::millis(40);
  Duration initial_rto = Duration::seconds(1);
  Duration min_rto = Duration::millis(200);
  Duration max_rto = Duration::seconds(60);
  int dupack_threshold = 3;
  int max_syn_retries = 6;
  /// Consecutive data RTOs before the connection gives up (on_error).
  int max_rto_retries = 10;
  /// Packet-conservation burst cap: at most this many segments leave per
  /// send opportunity (ACK arrival / app write). Prevents window-sized
  /// line-rate bursts from flooding shallow queues during recovery.
  int max_burst_segments = 10;
  std::uint32_t header_bytes = 40;  ///< IP+TCP overhead per segment
  /// Algorithmic fast paths: skip the per-ACK retransmit and RACK scans of
  /// `in_flight_` when cheap bookkeeping proves they cannot find anything
  /// (a lost-segment counter and a conservative floor on candidate send
  /// times). Behaviour is identical either way; the knob lets the
  /// differential suite in tests/packet_path_test.cpp prove it byte-by-byte
  /// against the reference full scans.
  bool fast_forward = true;
};

enum class TcpState {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait,    ///< our FIN sent, waiting for it to be acked + peer FIN
  kCloseWait,  ///< peer FIN received, we may still send
  kDone,       ///< fully closed
};

[[nodiscard]] std::string_view to_string(TcpState s);

class TcpStack;

/// One TCP connection endpoint. Created via TcpStack::connect / listen.
class TcpConnection {
 public:
  struct Stats {
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_received = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t rtos = 0;
    std::uint64_t fast_recoveries = 0;
    std::uint64_t dup_acks = 0;
    std::uint64_t bytes_acked = 0;      ///< sender side
    std::uint64_t bytes_delivered = 0;  ///< receiver side, in-order
  };

  // -- application API --------------------------------------------------

  /// Appends `bytes` of (synthetic) data to the send stream.
  void send(std::uint64_t bytes);
  /// Switches the receiver to explicit consumption: delivered bytes occupy
  /// the receive buffer until consume() releases them, which closes the
  /// advertised window against a slow reader (how the PEP exerts relay
  /// backpressure on fast servers).
  void set_manual_read(bool manual) { manual_read_ = manual; }
  /// Releases `bytes` of buffered data (manual-read mode).
  void consume(std::uint64_t bytes);
  /// Half-closes after all queued data: sends FIN.
  void close();
  /// Aborts immediately (RST).
  void abort();

  std::function<void()> on_established;
  /// In-order delivery progress: called with the newly delivered byte count.
  std::function<void(std::uint64_t)> on_data;
  /// Connection fully closed (FIN exchange complete) or aborted.
  std::function<void()> on_closed;
  /// Handshake gave up (SYN retries exhausted) or RST received.
  std::function<void()> on_error;
  /// Every valid RTT sample (Karn-filtered), for latency-under-load figures.
  std::function<void(Duration)> on_rtt_sample;
  /// Sender-side: cumulative-ack progress in bytes (newly acked app data).
  std::function<void(std::uint64_t)> on_bytes_acked;

  // -- introspection -----------------------------------------------------

  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t bytes_in_flight() const { return bytes_in_flight_; }
  [[nodiscard]] std::uint64_t cwnd_bytes() const { return cc_->cwnd_bytes(); }
  [[nodiscard]] std::uint64_t rcv_buffer_bytes() const { return rcv_buffer_; }
  [[nodiscard]] Duration srtt() const { return srtt_; }
  [[nodiscard]] sim::Ipv4Addr remote_addr() const { return remote_addr_; }
  [[nodiscard]] std::uint16_t remote_port() const { return remote_port_; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] std::uint64_t bytes_unsent() const { return stream_length_ - snd_nxt_data_; }
  [[nodiscard]] std::uint64_t flow_id() const { return flow_id_; }

  ~TcpConnection();

 private:
  friend class TcpStack;

  TcpConnection(TcpStack& stack, sim::Ipv4Addr remote_addr, std::uint16_t remote_port,
                std::uint16_t local_port, TcpConfig config,
                sim::Ipv4Addr local_addr = 0);

  // Sequence-space layout: SYN occupies seq 0, data starts at 1, FIN
  // occupies seq 1 + stream_length.
  struct InFlightSegment {
    std::uint64_t len = 0;       ///< payload bytes
    TimePoint sent_at;
    bool retransmitted = false;
    bool sacked = false;
    bool lost = false;           ///< scheduled for retransmission
    /// True if cwnd (not the peer's receive window) was the binding limit
    /// when this segment left. Only such samples may drive congestion
    /// control growth/HyStart: receive-window-opening bursts inflate RTT
    /// for reasons that say nothing about path congestion.
    bool cwnd_limited = false;
  };

  void start_connect();
  void on_packet(const sim::Packet& pkt);
  void handle_handshake(const sim::Packet& pkt);
  void handle_ack(const sim::Packet& pkt);
  void handle_data(const sim::Packet& pkt);
  void maybe_send();
  void send_segment(std::uint64_t seq, std::uint64_t len, bool retransmission);
  void send_ack_now();
  void schedule_ack();
  void send_control(bool syn, bool ack, bool fin, std::uint64_t seq, bool rst = false);
  void arm_rto();
  void on_rto_expired();
  void update_rtt(Duration sample);
  void detect_losses();
  void autotune_rcv_buffer();
  [[nodiscard]] std::uint64_t advertise_window();
  void enter_dead_state();
  /// Records a congestion-control state transition (counter + trace instant).
  void note_cc_event(const char* what);
  [[nodiscard]] std::uint64_t send_window() const;
  [[nodiscard]] std::uint64_t fin_seq() const { return 1 + stream_length_; }

  TcpStack* stack_;
  sim::Ipv4Addr remote_addr_;
  std::uint16_t remote_port_;
  std::uint16_t local_port_;
  sim::Ipv4Addr local_addr_ = 0;  ///< 0 = let the host stamp its address
  TcpConfig config_;
  TcpState state_ = TcpState::kClosed;
  std::unique_ptr<cc::CongestionController> cc_;
  std::uint64_t flow_id_ = 0;

  // --- sender ---
  std::uint64_t stream_length_ = 0;   ///< total bytes the app has queued
  std::uint64_t snd_una_ = 0;         ///< oldest unacked sequence
  std::uint64_t snd_nxt_data_ = 0;    ///< next *new* data byte to send (0-based)
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  std::map<std::uint64_t, InFlightSegment> in_flight_;  ///< keyed by seq
  std::uint64_t bytes_in_flight_ = 0;
  /// Count of segments with (lost && !sacked) — exactly the set maybe_send's
  /// retransmit pass looks for. Zero lets fast-forward skip that scan.
  std::uint64_t lost_unsacked_ = 0;
  /// Conservative lower bound on the send time of any RACK loss candidate
  /// (segment with !sacked && !lost); infinite when provably none. Lets
  /// fast-forward skip the RACK scan while `floor + reorder_window` has not
  /// been reached, and is re-tightened exactly on every scan that does run.
  TimePoint rack_scan_floor_ = TimePoint::infinite();
  std::uint64_t peer_rwnd_ = 65'535;
  std::uint64_t highest_sacked_ = 0;
  /// RACK (RFC 8985, simplified): newest send time among acked/sacked
  /// segments. A segment is lost when something sent later was acked and a
  /// reordering window has passed — this never re-marks an in-flight
  /// retransmission (its send time is fresh).
  TimePoint latest_acked_sent_time_;
  bool in_recovery_ = false;
  bool rto_recovery_ = false;  ///< RTO recovery slow-starts (cc keeps growing)
  std::uint64_t recovery_point_ = 0;
  /// PRR-style conservation credit: during recovery, transmission is clocked
  /// by delivered (acked+sacked) bytes instead of a free-running window, so
  /// recovery never floods the very queue that just overflowed.
  std::uint64_t prr_credit_ = 0;
  int dupacks_ = 0;
  std::uint64_t last_ack_seen_ = 0;
  std::uint64_t prev_peer_window_ = 0;  ///< RFC 5681: window updates are not dupacks
  int syn_retries_ = 0;

  // --- RTT/RTO ---
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  Duration rto_;
  int rto_backoff_ = 0;
  sim::Timer rto_timer_;

  // --- receiver ---
  std::uint64_t rcv_nxt_ = 0;  ///< next expected (0 until SYN consumed)
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< out-of-order [start, end)
  std::uint64_t rcv_buffer_;
  bool manual_read_ = false;
  std::uint64_t unread_bytes_ = 0;
  std::uint64_t last_advertised_ = 0;
  /// Window actually advertised: chases rcv_buffer_ by at most +4 MSS per
  /// ACK, so buffer-autotune steps never release window-sized megabursts
  /// from the peer (they would cause transient queue spikes and false
  /// HyStart exits).
  std::uint64_t advertised_window_ = 0;
  std::uint64_t peer_fin_seq_ = ~0ull;
  bool fin_delivered_ = false;
  int unacked_segments_ = 0;
  sim::Timer delack_timer_;
  TimePoint last_tune_at_;
  std::uint64_t delivered_since_tune_ = 0;

  Stats stats_;
  bool dead_ = false;  ///< detached from stack, callbacks disabled
};

/// Per-endpoint TCP stack: owns connections and demultiplexes segments.
///
/// Two modes:
///  * Host mode — bound to a sim::Host; packets arrive via the host's UDP/TCP
///    demux, outgoing segments go through Host::send. The normal case.
///  * Raw mode — constructed with an explicit transmit function; the owner
///    feeds packets in via deliver() and outgoing segments (with arbitrary,
///    possibly spoofed source addresses) go to the transmit hook. This is
///    how the geo:: PEP terminates TCP transparently on-path.
class TcpStack {
 public:
  explicit TcpStack(sim::Host& host);
  /// Raw mode. `transmit` receives fully-formed segments (src already set).
  TcpStack(sim::Simulator& sim, std::function<void(sim::Packet)> transmit);
  ~TcpStack();

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Active open. The returned reference stays valid until the connection
  /// reaches kDone and `gc()` is called (or the stack dies).
  TcpConnection& connect(sim::Ipv4Addr remote_addr, std::uint16_t remote_port,
                         TcpConfig config = {});

  /// Active open with an explicit (possibly spoofed) local address/port —
  /// raw mode only; used by the PEP to impersonate the client on the
  /// server-side leg.
  TcpConnection& connect_spoofed(sim::Ipv4Addr local_addr, std::uint16_t local_port,
                                 sim::Ipv4Addr remote_addr, std::uint16_t remote_port,
                                 TcpConfig config = {});

  /// Passive open: every new peer produces a fresh connection, handed to
  /// `on_accept` before the SYN/ACK goes out.
  void listen(std::uint16_t port, std::function<void(TcpConnection&)> on_accept,
              TcpConfig config = {});

  /// Raw mode: accept a connection for an arbitrary (addr, port) the stack
  /// does not really own — the PEP impersonating a remote server. The SYN
  /// packet must be passed to deliver() afterwards.
  TcpConnection& accept_spoofed(sim::Ipv4Addr local_addr, std::uint16_t local_port,
                                sim::Ipv4Addr remote_addr, std::uint16_t remote_port,
                                TcpConfig config = {});

  /// Raw mode packet input; also usable in host mode for testing.
  /// Returns true if a connection consumed the packet.
  bool deliver(const sim::Packet& pkt);

  [[nodiscard]] sim::Simulator& sim() { return *sim_; }

  /// Destroys connections in kDone state.
  void gc();

  [[nodiscard]] std::size_t connection_count() const { return connections_.size(); }

 private:
  friend class TcpConnection;

  struct ConnKey {
    std::uint16_t local_port;
    sim::Ipv4Addr remote_addr;
    std::uint16_t remote_port;
    auto operator<=>(const ConnKey&) const = default;
  };
  struct Listener {
    TcpConfig config;
    std::function<void(TcpConnection&)> on_accept;
  };

  void dispatch(std::uint16_t local_port, const sim::Packet& pkt);
  void transmit(sim::Packet pkt);
  std::uint16_t alloc_port();

  sim::Simulator* sim_;
  sim::Host* host_ = nullptr;                       ///< null in raw mode
  std::function<void(sim::Packet)> transmit_fn_;    ///< set in raw mode
  std::uint16_t next_raw_port_ = 49152;
  std::map<std::uint16_t, Listener> listeners_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> connections_;
  std::set<std::uint16_t> bound_ports_;
};

}  // namespace slp::tcp
