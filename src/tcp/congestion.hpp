// congestion.hpp — congestion controllers shared by the TCP and QUIC stacks.
//
// Both measurement setups in the paper run Cubic (Linux TCP default; quiche
// configured with Cubic). NewReno is included as the classic baseline and
// for the ablation benches.
//
// Namespace note: lives in slp::cc because QUIC links against the same
// controllers — the algorithms are transport-agnostic byte counters.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/units.hpp"

namespace slp::cc {

/// Byte-based congestion controller interface (RFC 9002 style).
class CongestionController {
 public:
  virtual ~CongestionController() = default;

  /// Bytes newly acknowledged, with the RTT sample of the triggering ACK.
  virtual void on_ack(std::uint64_t acked_bytes, Duration rtt, TimePoint now) = 0;
  /// One congestion event (at most once per round trip), RFC 5681 semantics.
  virtual void on_congestion_event(TimePoint now) = 0;
  /// Retransmission timeout: collapse to loss-window.
  virtual void on_rto(TimePoint now) = 0;

  [[nodiscard]] virtual std::uint64_t cwnd_bytes() const = 0;
  [[nodiscard]] virtual std::uint64_t ssthresh_bytes() const = 0;
  [[nodiscard]] virtual bool in_slow_start() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

struct CcConfig {
  std::uint32_t mss = 1448;              ///< sender maximum segment size
  std::uint32_t initial_window_segments = 10;  ///< RFC 6928
  std::uint64_t min_cwnd_bytes = 2 * 1448;
  /// HyStart delay-based slow-start exit. Linux TCP has it; quiche at the
  /// paper's commit did not — which is a key reason its single-connection
  /// H3 downloads sat below the multi-connection Ookla TCP tests (§3.3).
  bool hystart = true;
};

/// CUBIC (RFC 8312): cubic window growth anchored at the last W_max.
class Cubic final : public CongestionController {
 public:
  explicit Cubic(CcConfig config = {});

  void on_ack(std::uint64_t acked_bytes, Duration rtt, TimePoint now) override;
  void on_congestion_event(TimePoint now) override;
  void on_rto(TimePoint now) override;

  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] std::uint64_t ssthresh_bytes() const override { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  [[nodiscard]] std::string name() const override { return "cubic"; }

 private:
  [[nodiscard]] double cubic_window_segments(double t_seconds) const;

  CcConfig config_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  double w_max_segments_ = 0.0;   ///< window before the last reduction
  double k_seconds_ = 0.0;        ///< time to regrow to w_max
  TimePoint epoch_start_;         ///< start of the current cubic epoch
  bool epoch_valid_ = false;
  Duration min_rtt_ = Duration::infinite();  ///< no sample yet
  // HyStart round bookkeeping: a "round" is one cwnd of acknowledged bytes.
  // The delay check uses the min of the first samples of a round — the
  // *standing* queue left by the previous round — so in-round transients
  // do not cause premature slow-start exit.
  std::uint64_t acked_total_ = 0;
  std::uint64_t round_end_bytes_ = 0;
  int round_samples_ = 0;
  Duration round_min_rtt_ = Duration::infinite();
  // TCP-friendly (Reno) estimate, RFC 8312 §4.2.
  double w_est_segments_ = 0.0;
};

/// NewReno (RFC 5681/6582): AIMD with slow start.
class NewReno final : public CongestionController {
 public:
  explicit NewReno(CcConfig config = {});

  void on_ack(std::uint64_t acked_bytes, Duration rtt, TimePoint now) override;
  void on_congestion_event(TimePoint now) override;
  void on_rto(TimePoint now) override;

  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] std::uint64_t ssthresh_bytes() const override { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  [[nodiscard]] std::string name() const override { return "newreno"; }

 private:
  CcConfig config_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  std::uint64_t ack_accumulator_ = 0;  ///< bytes acked since last cwnd bump (CA)
};

enum class CcAlgorithm { kCubic, kNewReno, kBbr };

[[nodiscard]] std::unique_ptr<CongestionController> make_controller(CcAlgorithm algo,
                                                                    CcConfig config = {});

}  // namespace slp::cc
