#include "tcp/tcp.hpp"

#include <algorithm>
#include <cassert>

#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "sim/provenance.hpp"
#include "util/log.hpp"

namespace slp::tcp {

std::string_view to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait: return "FIN_WAIT";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kDone: return "DONE";
  }
  return "?";
}

// ===================================================================== Stack

TcpStack::TcpStack(sim::Host& host) : sim_{&host.sim()}, host_{&host} {}

TcpStack::TcpStack(sim::Simulator& sim, std::function<void(sim::Packet)> transmit)
    : sim_{&sim}, transmit_fn_{std::move(transmit)} {}

TcpStack::~TcpStack() {
  if (host_ != nullptr) {
    for (const std::uint16_t port : bound_ports_) host_->unbind(sim::Protocol::kTcp, port);
  }
}

void TcpStack::transmit(sim::Packet pkt) {
  if (host_ != nullptr) {
    host_->send(std::move(pkt));
    return;
  }
  if (pkt.uid == 0) pkt.uid = sim_->next_packet_uid();
  sim::refresh_checksum(pkt);
  pkt.first_sent = sim_->now();
  transmit_fn_(std::move(pkt));
}

std::uint16_t TcpStack::alloc_port() {
  if (host_ != nullptr) return host_->ephemeral_port();
  if (next_raw_port_ == 0) next_raw_port_ = 49152;
  return next_raw_port_++;
}

TcpConnection& TcpStack::connect(sim::Ipv4Addr remote_addr, std::uint16_t remote_port,
                                 TcpConfig config) {
  const std::uint16_t local_port = alloc_port();
  if (host_ != nullptr && bound_ports_.insert(local_port).second) {
    host_->bind(sim::Protocol::kTcp, local_port,
                [this, local_port](const sim::Packet& pkt) { dispatch(local_port, pkt); });
  }
  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(*this, remote_addr, remote_port, local_port, config));
  TcpConnection& ref = *conn;
  connections_[ConnKey{local_port, remote_addr, remote_port}] = std::move(conn);
  ref.start_connect();
  return ref;
}

TcpConnection& TcpStack::connect_spoofed(sim::Ipv4Addr local_addr, std::uint16_t local_port,
                                         sim::Ipv4Addr remote_addr, std::uint16_t remote_port,
                                         TcpConfig config) {
  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(*this, remote_addr, remote_port, local_port, config, local_addr));
  TcpConnection& ref = *conn;
  connections_[ConnKey{local_port, remote_addr, remote_port}] = std::move(conn);
  ref.start_connect();
  return ref;
}

TcpConnection& TcpStack::accept_spoofed(sim::Ipv4Addr local_addr, std::uint16_t local_port,
                                        sim::Ipv4Addr remote_addr, std::uint16_t remote_port,
                                        TcpConfig config) {
  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(*this, remote_addr, remote_port, local_port, config, local_addr));
  TcpConnection& ref = *conn;
  connections_[ConnKey{local_port, remote_addr, remote_port}] = std::move(conn);
  return ref;
}

bool TcpStack::deliver(const sim::Packet& pkt) {
  if (!pkt.tcp) return false;
  const ConnKey key{pkt.dst_port, pkt.src, pkt.src_port};
  const auto it = connections_.find(key);
  if (it == connections_.end()) return false;
  it->second->on_packet(pkt);
  return true;
}

void TcpStack::listen(std::uint16_t port, std::function<void(TcpConnection&)> on_accept,
                      TcpConfig config) {
  listeners_[port] = Listener{config, std::move(on_accept)};
  if (host_ != nullptr && bound_ports_.insert(port).second) {
    host_->bind(sim::Protocol::kTcp, port,
                [this, port](const sim::Packet& pkt) { dispatch(port, pkt); });
  }
}

void TcpStack::dispatch(std::uint16_t local_port, const sim::Packet& pkt) {
  if (!pkt.tcp) return;
  const ConnKey key{local_port, pkt.src, pkt.src_port};
  const auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->on_packet(pkt);
    return;
  }
  // New connection? Only a SYN to a listening port creates state.
  const auto lit = listeners_.find(local_port);
  if (lit == listeners_.end() || !pkt.tcp->syn || pkt.tcp->ack_flag) return;
  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(*this, pkt.src, pkt.src_port, local_port, lit->second.config));
  TcpConnection& ref = *conn;
  connections_[key] = std::move(conn);
  if (lit->second.on_accept) lit->second.on_accept(ref);
  ref.on_packet(pkt);
}

void TcpStack::gc() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->state() == TcpState::kDone) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

// ================================================================ Connection

TcpConnection::TcpConnection(TcpStack& stack, sim::Ipv4Addr remote_addr,
                             std::uint16_t remote_port, std::uint16_t local_port,
                             TcpConfig config, sim::Ipv4Addr local_addr)
    : stack_{&stack},
      remote_addr_{remote_addr},
      remote_port_{remote_port},
      local_port_{local_port},
      local_addr_{local_addr},
      config_{config},
      rto_{config.initial_rto},
      rto_timer_{stack.sim()},
      rcv_buffer_{config.initial_rcv_buffer},
      delack_timer_{stack.sim()} {
  cc::CcConfig cc_config;
  cc_config.mss = config_.mss;
  cc_config.initial_window_segments = config_.initial_window_segments;
  cc_config.min_cwnd_bytes = 2ull * config_.mss;
  cc_ = cc::make_controller(config_.algorithm, cc_config);
  // Simulator-wide knob: differential reference runs disable the analytic
  // fast paths everywhere at once (see Simulator::set_fast_forward).
  config_.fast_forward = config_.fast_forward && stack.sim().fast_forward();
  flow_id_ = stack.sim().next_flow_id();
}

TcpConnection::~TcpConnection() = default;

void TcpConnection::start_connect() {
  state_ = TcpState::kSynSent;
  send_control(/*syn=*/true, /*ack=*/false, /*fin=*/false, /*seq=*/0);
  arm_rto();
}

std::uint64_t TcpConnection::send_window() const {
  return std::min<std::uint64_t>(cc_->cwnd_bytes(), peer_rwnd_);
}

void TcpConnection::send(std::uint64_t bytes) {
  stream_length_ += bytes;
  maybe_send();
}

void TcpConnection::close() {
  if (fin_queued_) return;
  fin_queued_ = true;
  maybe_send();
}

void TcpConnection::abort() {
  if (state_ == TcpState::kDone) return;
  send_control(/*syn=*/false, /*ack=*/false, /*fin=*/false, /*seq=*/snd_una_, /*rst=*/true);
  enter_dead_state();
  if (on_closed) on_closed();
}

void TcpConnection::enter_dead_state() {
  state_ = TcpState::kDone;
  rto_timer_.cancel();
  delack_timer_.cancel();
  in_flight_.clear();
  bytes_in_flight_ = 0;
  lost_unsacked_ = 0;
  rack_scan_floor_ = TimePoint::infinite();
}

// ------------------------------------------------------------- transmit path

std::uint64_t TcpConnection::advertise_window() {
  if (advertised_window_ == 0) advertised_window_ = config_.initial_rcv_buffer;
  advertised_window_ =
      std::min<std::uint64_t>(rcv_buffer_, advertised_window_ + 8ull * config_.mss);
  // Manual-read mode: unconsumed data occupies the buffer.
  const std::uint64_t occupied = manual_read_ ? unread_bytes_ : 0;
  last_advertised_ = occupied >= advertised_window_ ? 0 : advertised_window_ - occupied;
  return last_advertised_;
}

void TcpConnection::consume(std::uint64_t bytes) {
  unread_bytes_ -= std::min(unread_bytes_, bytes);
  if (!manual_read_ || state_ == TcpState::kDone) return;
  // Window update: wake the sender once meaningful space opened up.
  const std::uint64_t occupied = unread_bytes_;
  const std::uint64_t now_avail =
      occupied >= advertised_window_ ? 0 : advertised_window_ - occupied;
  if (now_avail >= last_advertised_ + 2ull * config_.mss) {
    send_ack_now();
  }
}

void TcpConnection::send_control(bool syn, bool ack, bool fin, std::uint64_t seq, bool rst) {
  sim::Packet pkt;
  pkt.src = local_addr_;  // 0 in host mode: the host stamps its own address
  pkt.dst = remote_addr_;
  pkt.src_port = local_port_;
  pkt.dst_port = remote_port_;
  pkt.proto = sim::Protocol::kTcp;
  pkt.flow_id = flow_id_;
  sim::TcpHeader hdr;
  hdr.seq = seq;
  hdr.syn = syn;
  hdr.fin = fin;
  hdr.rst = rst;
  hdr.ack_flag = ack;
  hdr.ack = ack ? rcv_nxt_ : 0;
  hdr.window = static_cast<std::uint32_t>(std::min<std::uint64_t>(advertise_window(), ~0u));
  if (syn) hdr.mss_option = static_cast<std::uint16_t>(config_.mss);
  if (ack) {
    // Most-recent (highest) ranges first, like real SACK generation: the
    // sender must learn promptly that the tail of a flight arrived, or its
    // pipe estimate stays inflated and recovery deadlocks into RTO. The
    // block budget is more generous than the 3-4 of a real 40-byte option
    // space; see DESIGN.md on this deliberate idealization.
    int blocks = 0;
    for (auto it = ooo_.rbegin(); it != ooo_.rend(); ++it) {
      if (++blocks > 16) break;
      hdr.sack.emplace_back(it->first, it->second);
    }
  }
  pkt.size_bytes = config_.header_bytes + (hdr.sack.empty() ? 0 : 12);
  pkt.tcp = std::move(hdr);
  stats_.segments_sent++;
  stack_->transmit(std::move(pkt));
}

void TcpConnection::send_segment(std::uint64_t seq, std::uint64_t len, bool retransmission) {
  sim::Packet pkt;
  pkt.src = local_addr_;
  pkt.dst = remote_addr_;
  pkt.src_port = local_port_;
  pkt.dst_port = remote_port_;
  pkt.proto = sim::Protocol::kTcp;
  pkt.flow_id = flow_id_;
  sim::TcpHeader hdr;
  hdr.seq = seq;
  hdr.ack_flag = state_ != TcpState::kSynSent;
  hdr.ack = hdr.ack_flag ? rcv_nxt_ : 0;
  hdr.window = static_cast<std::uint32_t>(std::min<std::uint64_t>(advertise_window(), ~0u));
  hdr.payload_bytes = static_cast<std::uint32_t>(len);
  pkt.size_bytes = static_cast<std::uint32_t>(len) + config_.header_bytes;
  pkt.tcp = std::move(hdr);

  auto& seg = in_flight_[seq];
  if (seg.lost && !seg.sacked) lost_unsacked_--;  // this send clears the mark
  const TimePoint prev_sent_at = seg.sent_at;
  if (stack_->sim().provenance()) {
    // Self-attach: PEP relay legs transmit through a raw Interface, never
    // Host::send, so the stamp must happen here. A retransmission credits
    // the time since the previous (lost) copy left to loss recovery, keeping
    // the propagation/queueing components clean of recovery stalls.
    sim::attach_provenance(pkt, stack_->sim().now());
    if (retransmission && prev_sent_at <= stack_->sim().now()) {
      sim::prov_tag(pkt)->add(obs::kLossRecovery, stack_->sim().now() - prev_sent_at);
    }
  }
  seg.len = len;
  seg.sent_at = stack_->sim().now();
  seg.retransmitted = seg.retransmitted || retransmission;
  seg.lost = false;
  seg.cwnd_limited = cc_->cwnd_bytes() <= peer_rwnd_;
  bytes_in_flight_ += len;
  // The segment is now a RACK candidate (!sacked && !lost) sent at `now`.
  rack_scan_floor_ = std::min(rack_scan_floor_, seg.sent_at);

  stats_.segments_sent++;
  if (retransmission) stats_.retransmissions++;
  stack_->transmit(std::move(pkt));
  if (!rto_timer_.armed()) arm_rto();
}

void TcpConnection::maybe_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait) {
    return;
  }

  int budget = config_.max_burst_segments;
  auto may_send_bytes = [this](std::uint64_t len) {
    if (bytes_in_flight_ + len > send_window()) return false;
    // PRR: recovery transmissions are clocked by delivered bytes.
    return !in_recovery_ || prr_credit_ >= len;
  };
  auto charge = [this](std::uint64_t len) {
    if (in_recovery_) prr_credit_ -= std::min(prr_credit_, len);
  };

  // 1. Retransmit segments marked lost (pipe accounting already excludes
  //    them from bytes_in_flight_). `lost_unsacked_` counts exactly the
  //    segments this scan is after, so fast-forward skips the whole walk on
  //    the common all-clear ACK.
  if (!config_.fast_forward || lost_unsacked_ > 0) {
    for (auto& [seq, seg] : in_flight_) {
      if (budget <= 0) break;
      if (seg.lost && !seg.sacked) {
        if (!may_send_bytes(seg.len)) break;
        send_segment(seq, seg.len, /*retransmission=*/true);
        charge(seg.len);
        --budget;
      }
    }
  }

  // 2. New data.
  while (budget > 0 && snd_nxt_data_ < stream_length_) {
    const std::uint64_t len =
        std::min<std::uint64_t>(config_.mss, stream_length_ - snd_nxt_data_);
    if (!may_send_bytes(len)) break;
    send_segment(1 + snd_nxt_data_, len, /*retransmission=*/false);
    snd_nxt_data_ += len;
    charge(len);
    --budget;
  }

  // 3. FIN once the stream is fully sent.
  if (fin_queued_ && !fin_sent_ && snd_nxt_data_ == stream_length_) {
    fin_sent_ = true;
    send_control(/*syn=*/false, /*ack=*/state_ != TcpState::kSynSent, /*fin=*/true, fin_seq());
    if (state_ == TcpState::kEstablished) state_ = TcpState::kFinWait;
    if (!rto_timer_.armed()) arm_rto();
  }
}

// ------------------------------------------------------------- receive path

void TcpConnection::on_packet(const sim::Packet& pkt) {
  if (dead_ || state_ == TcpState::kDone) {
    // Classic half-dead behavior: answer stray in-window traffic with RST so
    // the peer tears down too (lost RSTs must not leave it retransmitting
    // into the void until its RTO gives up).
    if (pkt.tcp && !pkt.tcp->rst && pkt.tcp->payload_bytes > 0) {
      send_control(/*syn=*/false, /*ack=*/false, /*fin=*/false, /*seq=*/snd_una_, /*rst=*/true);
    }
    return;
  }
  assert(pkt.tcp.has_value());
  stats_.segments_received++;
  const sim::TcpHeader& hdr = *pkt.tcp;

  if (hdr.rst) {
    enter_dead_state();
    if (on_error) on_error();
    return;
  }

  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived ||
      (state_ == TcpState::kClosed && hdr.syn)) {
    handle_handshake(pkt);
    return;
  }

  if (hdr.ack_flag) {
    peer_rwnd_ = hdr.window;
    handle_ack(pkt);
  }
  if (state_ == TcpState::kDone) return;

  if (hdr.payload_bytes > 0 || hdr.fin) {
    handle_data(pkt);
  }
}

void TcpConnection::handle_handshake(const sim::Packet& pkt) {
  const sim::TcpHeader& hdr = *pkt.tcp;
  switch (state_) {
    case TcpState::kClosed:
      // Passive open: consume SYN.
      if (hdr.syn && !hdr.ack_flag) {
        rcv_nxt_ = 1;
        state_ = TcpState::kSynReceived;
        send_control(/*syn=*/true, /*ack=*/true, /*fin=*/false, /*seq=*/0);
        arm_rto();
      }
      return;
    case TcpState::kSynSent:
      if (hdr.syn && hdr.ack_flag && hdr.ack >= 1) {
        snd_una_ = 1;
        rcv_nxt_ = 1;
        peer_rwnd_ = hdr.window;
        state_ = TcpState::kEstablished;
        rto_timer_.cancel();
        rto_backoff_ = 0;
        send_control(/*syn=*/false, /*ack=*/true, /*fin=*/false, /*seq=*/1);
        if (on_established) on_established();
        maybe_send();
      }
      return;
    case TcpState::kSynReceived:
      if (hdr.syn && !hdr.ack_flag) {
        // Duplicate SYN: resend SYN/ACK.
        send_control(/*syn=*/true, /*ack=*/true, /*fin=*/false, /*seq=*/0);
        return;
      }
      if (hdr.ack_flag && hdr.ack >= 1) {
        snd_una_ = std::max<std::uint64_t>(snd_una_, 1);
        peer_rwnd_ = hdr.window;
        state_ = TcpState::kEstablished;
        rto_timer_.cancel();
        rto_backoff_ = 0;
        if (on_established) on_established();
        // The ACK may carry data; fall through to normal processing.
        if (hdr.payload_bytes > 0 || hdr.fin) handle_data(pkt);
        maybe_send();
      }
      return;
    default:
      return;
  }
}

void TcpConnection::update_rtt(Duration sample) {
  if (sample <= Duration::zero()) return;
  if (srtt_.is_zero()) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const Duration delta =
        (srtt_ > sample) ? (srtt_ - sample) : (sample - srtt_);
    rttvar_ = rttvar_ * 0.75 + delta * 0.25;
    srtt_ = srtt_ * 0.875 + sample * 0.125;
  }
  rto_ = std::clamp(srtt_ + std::max(rttvar_ * 4.0, Duration::millis(1)), config_.min_rto,
                    config_.max_rto);
  if (on_rtt_sample) on_rtt_sample(sample);
}

void TcpConnection::handle_ack(const sim::Packet& pkt) {
  const obs::SectionTimer wall{obs::Section::kCc};
  const sim::TcpHeader& hdr = *pkt.tcp;
  const std::uint64_t ack = hdr.ack;
  const TimePoint now = stack_->sim().now();
  // RTT sampling, RACK-style: a sample is valid only if it comes from the
  // newest-sent data ever acknowledged (and never retransmitted). Stale
  // acks that merely fill old holes must not poison srtt.
  const TimePoint prev_latest_acked_sent = latest_acked_sent_time_;
  TimePoint best_sample_sent_at;
  bool best_sample_cwnd_limited = false;

  // --- SACK processing -------------------------------------------------
  bool sack_advanced = false;
  std::uint64_t newly_sacked_bytes = 0;
  for (const auto& [start, end] : hdr.sack) {
    for (auto it = in_flight_.lower_bound(start); it != in_flight_.end() && it->first < end;
         ++it) {
      auto& seg = it->second;
      if (!seg.sacked && it->first + seg.len <= end) {
        seg.sacked = true;
        latest_acked_sent_time_ = std::max(latest_acked_sent_time_, seg.sent_at);
        if (!seg.retransmitted && seg.sent_at >= best_sample_sent_at) {
          best_sample_sent_at = seg.sent_at;
          best_sample_cwnd_limited = seg.cwnd_limited;
        }
        newly_sacked_bytes += seg.len;
        if (!seg.lost) {
          assert(bytes_in_flight_ >= seg.len);
          bytes_in_flight_ -= seg.len;
        } else {
          assert(lost_unsacked_ > 0);
          lost_unsacked_--;  // no longer lost-and-unsacked
        }
        sack_advanced = true;
      }
    }
    highest_sacked_ = std::max(highest_sacked_, end);
  }

  // --- cumulative ACK ---------------------------------------------------
  std::uint64_t acked_data_for_prr_ = 0;
  if (ack > snd_una_) {
    std::uint64_t acked_data = 0;
    while (!in_flight_.empty()) {
      auto it = in_flight_.begin();
      if (it->first + it->second.len > ack || (it->second.len == 0 && it->first >= ack)) break;
      const InFlightSegment& seg = it->second;
      acked_data += seg.len;
      latest_acked_sent_time_ = std::max(latest_acked_sent_time_, seg.sent_at);
      if (!seg.retransmitted && seg.sent_at >= best_sample_sent_at) {
        best_sample_sent_at = seg.sent_at;
        best_sample_cwnd_limited = seg.cwnd_limited;
      }
      if (!seg.sacked && !seg.lost) {
        assert(bytes_in_flight_ >= seg.len);
        bytes_in_flight_ -= seg.len;
      } else if (seg.lost && !seg.sacked) {
        assert(lost_unsacked_ > 0);
        lost_unsacked_--;
      }
      in_flight_.erase(it);
    }
    snd_una_ = ack;
    acked_data_for_prr_ = acked_data;
    stats_.bytes_acked += acked_data;
    if (acked_data > 0 && on_bytes_acked) on_bytes_acked(acked_data);
    dupacks_ = 0;
    rto_backoff_ = 0;
    Duration rtt_sample = Duration::zero();
    if (best_sample_sent_at > prev_latest_acked_sent) {
      rtt_sample = now - best_sample_sent_at;
      update_rtt(rtt_sample);
    }
    // During fast recovery the window is frozen (PRR clocks transmission);
    // RTO recovery slow-starts out of the hole like a real stack. Growth is
    // also gated on being cwnd-limited (cwnd validation): when the peer's
    // receive window is the binding constraint, the sender's bursts say
    // nothing about path capacity and must neither grow cwnd nor trip the
    // HyStart delay detector.
    const bool cwnd_limited = cc_->cwnd_bytes() <= peer_rwnd_;
    if (acked_data > 0 && cwnd_limited && (!in_recovery_ || rto_recovery_)) {
      // RTT only feeds the controller (HyStart) when the sampled segment was
      // itself sent under a cwnd limit.
      cc_->on_ack(acked_data, best_sample_cwnd_limited ? rtt_sample : Duration::zero(), now);
    }
    if (in_recovery_ && snd_una_ >= recovery_point_) {
      in_recovery_ = false;
      rto_recovery_ = false;
      note_cc_event("recovery_exit");
    }
    if (fin_sent_ && ack > fin_seq()) {
      fin_acked_ = true;
    }
  } else if (ack == snd_una_ && !in_flight_.empty() && !hdr.syn) {
    // RFC 5681 duplicate-ACK definition: no data, no window change. Pure
    // window updates (receiver buffer freed) must not trigger fast
    // retransmit.
    const bool window_update = hdr.window != prev_peer_window_;
    if ((hdr.payload_bytes == 0 && !window_update) || sack_advanced) {
      dupacks_++;
      stats_.dup_acks++;
    }
  }
  prev_peer_window_ = hdr.window;

  // --- PRR: delivered bytes grant send credit during recovery, with a
  // slow-start-reduction bound of 2x when in-flight fell below ssthresh.
  if (in_recovery_) {
    const std::uint64_t delivered = acked_data_for_prr_ + newly_sacked_bytes;
    const std::uint64_t factor = bytes_in_flight_ < cc_->ssthresh_bytes() ? 2 : 1;
    prr_credit_ += factor * delivered;
  }

  // --- loss detection ----------------------------------------------------
  detect_losses();

  // RTO management: any forward progress (cumulative or SACK) restarts the
  // timer; recovery at long RTT would otherwise trip spurious RTOs while
  // SACKs are streaming in but the first hole is still in flight.
  if (in_flight_.empty() && (!fin_sent_ || fin_acked_)) {
    rto_timer_.cancel();
  } else if (ack > last_ack_seen_ || sack_advanced) {
    arm_rto();
  }
  last_ack_seen_ = std::max(last_ack_seen_, ack);

  // Close-out: both FINs done?
  if (fin_acked_ && fin_delivered_) {
    enter_dead_state();
    if (on_closed) on_closed();
    return;
  }
  maybe_send();
}

void TcpConnection::detect_losses() {
  bool newly_lost = false;

  // RACK: a segment is lost once a segment *sent after it* has been
  // (s)acked and the reordering window has elapsed. Time-based detection
  // naturally covers retransmissions — a fresh retransmission has a fresh
  // send time and is never re-marked while still plausibly in flight.
  if (latest_acked_sent_time_ > TimePoint::epoch()) {
    const Duration reorder_window =
        std::max(srtt_ * 0.25, Duration::millis(1));
    // `rack_scan_floor_` is a lower bound on the send time of every
    // candidate (!sacked && !lost) segment: if even the floor has not aged
    // past the reordering window, no candidate can have either, and the scan
    // provably finds nothing. Each scan that does run re-tightens the floor
    // to the exact minimum, so the walk amortizes to roughly once per
    // reordering window instead of once per ACK.
    const bool scan = !config_.fast_forward ||
                      (!rack_scan_floor_.is_infinite() &&
                       rack_scan_floor_ + reorder_window < latest_acked_sent_time_);
    if (scan) {
      TimePoint new_floor = TimePoint::infinite();
      for (auto& [seq, seg] : in_flight_) {
        if (seg.sacked || seg.lost) continue;
        if (seg.sent_at + reorder_window < latest_acked_sent_time_) {
          seg.lost = true;
          lost_unsacked_++;
          assert(bytes_in_flight_ >= seg.len);
          bytes_in_flight_ -= seg.len;
          newly_lost = true;
        } else {
          new_floor = std::min(new_floor, seg.sent_at);
        }
      }
      rack_scan_floor_ = new_floor;
    }
  }

  // Classic triple-dupack on the head segment (fires once per dupack run;
  // RACK covers re-detection of lost retransmissions).
  if (dupacks_ == config_.dupack_threshold && !in_flight_.empty()) {
    auto& [seq, seg] = *in_flight_.begin();
    (void)seq;
    if (!seg.sacked && !seg.lost && !seg.retransmitted) {
      seg.lost = true;
      lost_unsacked_++;
      assert(bytes_in_flight_ >= seg.len);
      bytes_in_flight_ -= seg.len;
      newly_lost = true;
    }
  }

  if (newly_lost && !in_recovery_) {
    in_recovery_ = true;
    recovery_point_ = 1 + snd_nxt_data_;
    prr_credit_ = config_.mss;  // allow the first retransmission out
    cc_->on_congestion_event(stack_->sim().now());
    stats_.fast_recoveries++;
    note_cc_event("fast_recovery");
  }
}

void TcpConnection::note_cc_event(const char* what) {
  auto* rec = stack_->sim().obs();
  if (rec == nullptr) return;
  if (rec->options().metrics) {
    rec->registry().counter(std::string{"tcp.cc."} + what).add();
  }
  if (rec->trace().enabled()) {
    rec->trace().instant("tcp.cc", what, stack_->sim().now(),
                         "{\"flow\":" + std::to_string(flow_id_) +
                             ",\"cwnd\":" + std::to_string(cc_->cwnd_bytes()) + "}");
  }
}

void TcpConnection::handle_data(const sim::Packet& pkt) {
  const sim::TcpHeader& hdr = *pkt.tcp;
  const std::uint64_t payload = hdr.payload_bytes;
  const std::uint64_t seq = hdr.seq;
  bool out_of_order = false;

  // One-way latency provenance, recorded at the receiver for every data
  // segment that carried a tag: the wire latency of this copy plus the
  // recovery time the tag accumulated across lost predecessors.
  if (payload > 0 && pkt.flow_id != 0) {
    if (const sim::ProvenanceTag* tag = sim::prov_tag(pkt)) {
      if (obs::Recorder* rec = stack_->sim().obs()) {
        const TimePoint now = stack_->sim().now();
        rec->record_breakdown(now.ns(), pkt.flow_id, tag->comp_ns,
                              (now - pkt.first_sent).ns());
      }
    }
  }

  if (hdr.fin) peer_fin_seq_ = seq + payload;

  if (payload > 0) {
    if (seq == rcv_nxt_) {
      rcv_nxt_ += payload;
      // Merge any adjacent out-of-order ranges.
      auto it = ooo_.begin();
      while (it != ooo_.end() && it->first <= rcv_nxt_) {
        rcv_nxt_ = std::max(rcv_nxt_, it->second);
        it = ooo_.erase(it);
      }
      const std::uint64_t delivered_total = rcv_nxt_ - 1;  // exclude SYN
      const std::uint64_t delta = delivered_total - stats_.bytes_delivered;
      stats_.bytes_delivered = delivered_total;
      unread_bytes_ += delta;
      delivered_since_tune_ += delta;
      autotune_rcv_buffer();
      if (on_data && delta > 0) on_data(delta);
    } else if (seq > rcv_nxt_) {
      out_of_order = true;
      // Insert/merge [seq, seq+payload) into the out-of-order set.
      const std::uint64_t start = seq;
      const std::uint64_t end = seq + payload;
      auto it = ooo_.lower_bound(start);
      if (it != ooo_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= start) it = prev;
      }
      std::uint64_t merged_start = start;
      std::uint64_t merged_end = end;
      while (it != ooo_.end() && it->first <= merged_end) {
        merged_start = std::min(merged_start, it->first);
        merged_end = std::max(merged_end, it->second);
        it = ooo_.erase(it);
      }
      ooo_[merged_start] = merged_end;
    } else {
      out_of_order = true;  // duplicate: trigger an immediate ACK
    }
  }

  // FIN consumption (only when all data before it has arrived).
  if (peer_fin_seq_ != ~0ull && rcv_nxt_ == peer_fin_seq_ && !fin_delivered_) {
    rcv_nxt_ += 1;
    fin_delivered_ = true;
    if (state_ == TcpState::kEstablished) state_ = TcpState::kCloseWait;
    send_ack_now();
    if (fin_sent_ && fin_acked_) {
      enter_dead_state();
      if (on_closed) on_closed();
    }
    return;
  }

  // --- ACK policy: immediate on disorder or every 2nd segment, else 40ms.
  if (out_of_order || !ooo_.empty()) {
    send_ack_now();
  } else if (++unacked_segments_ >= 2) {
    send_ack_now();
  } else {
    schedule_ack();
  }
}

void TcpConnection::autotune_rcv_buffer() {
  // Dynamic right-sizing, simplified: once the app has consumed half a
  // buffer's worth since the last grow, double the buffer (Linux grows it to
  // chase the delivery rate; the cap matches the kernel default sysctl).
  if (delivered_since_tune_ * 2 >= rcv_buffer_ && rcv_buffer_ < config_.max_rcv_buffer) {
    rcv_buffer_ = std::min<std::uint64_t>(rcv_buffer_ * 2, config_.max_rcv_buffer);
    delivered_since_tune_ = 0;
  }
}

void TcpConnection::send_ack_now() {
  unacked_segments_ = 0;
  delack_timer_.cancel();
  send_control(/*syn=*/false, /*ack=*/true, /*fin=*/false, /*seq=*/1 + snd_nxt_data_);
}

void TcpConnection::schedule_ack() {
  if (delack_timer_.armed()) return;
  delack_timer_.arm(config_.delayed_ack_timeout, [this] { send_ack_now(); });
}

// ------------------------------------------------------------- timers

void TcpConnection::arm_rto() {
  Duration timeout = rto_;
  for (int i = 0; i < rto_backoff_; ++i) timeout = timeout * 2.0;
  timeout = std::min(timeout, config_.max_rto);
  rto_timer_.arm(timeout, [this] { on_rto_expired(); });
}

void TcpConnection::on_rto_expired() {
  const TimePoint now = stack_->sim().now();
  switch (state_) {
    case TcpState::kSynSent:
      if (++syn_retries_ > config_.max_syn_retries) {
        enter_dead_state();
        if (on_error) on_error();
        return;
      }
      rto_backoff_++;
      send_control(/*syn=*/true, /*ack=*/false, /*fin=*/false, /*seq=*/0);
      arm_rto();
      return;
    case TcpState::kSynReceived:
      if (++syn_retries_ > config_.max_syn_retries) {
        enter_dead_state();
        if (on_error) on_error();
        return;
      }
      rto_backoff_++;
      send_control(/*syn=*/true, /*ack=*/true, /*fin=*/false, /*seq=*/0);
      arm_rto();
      return;
    default:
      break;
  }

  if (in_flight_.empty() && !(fin_sent_ && !fin_acked_)) return;

  if (rto_backoff_ >= config_.max_rto_retries) {
    // The peer is gone: stop retransmitting into the void.
    enter_dead_state();
    if (on_error) on_error();
    return;
  }
  stats_.rtos++;
  rto_backoff_++;
  cc_->on_rto(now);
  note_cc_event("rto");
  prr_credit_ = config_.mss;
  rto_recovery_ = true;

  // Everything outstanding is presumed lost.
  for (auto& [seq, seg] : in_flight_) {
    if (!seg.sacked && !seg.lost) {
      seg.lost = true;
      lost_unsacked_++;
    }
  }
  rack_scan_floor_ = TimePoint::infinite();  // no RACK candidates remain
  bytes_in_flight_ = 0;
  in_recovery_ = true;
  recovery_point_ = 1 + snd_nxt_data_;

  // Retransmit the head segment immediately.
  if (!in_flight_.empty()) {
    auto& [seq, seg] = *in_flight_.begin();
    if (!seg.sacked) send_segment(seq, seg.len, /*retransmission=*/true);
  } else if (fin_sent_ && !fin_acked_) {
    send_control(/*syn=*/false, /*ack=*/true, /*fin=*/true, fin_seq());
  }
  arm_rto();
}

}  // namespace slp::tcp
