#include "tcp/bbr.hpp"

#include <algorithm>

namespace slp::cc {

namespace {
constexpr double kStartupGain = 2.885;  // 2/ln2
constexpr double kDrainGain = 1.0 / kStartupGain;
constexpr double kProbeGains[8] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr double kCwndGain = 2.0;
}  // namespace

Bbr::Bbr(CcConfig config) : config_{config} {
  cwnd_ = static_cast<std::uint64_t>(config_.initial_window_segments) * config_.mss;
}

double Bbr::bdp_bytes() const {
  if (max_bw_.is_zero() || min_rtt_.is_infinite()) {
    return static_cast<double>(config_.initial_window_segments) * config_.mss;
  }
  return max_bw_.bits_per_second() / 8.0 * min_rtt_.to_seconds();
}

void Bbr::update_filters(std::uint64_t acked_bytes, Duration rtt, TimePoint now) {
  // Bandwidth samples from the ack train. Acks arrive bunched on jittery
  // links, so bytes accumulate until enough wall time has passed for a
  // meaningful rate estimate — otherwise bunched acks would be discarded
  // and the filter would systematically underestimate.
  pending_bytes_ += acked_bytes;
  if (!have_ack_time_) {
    last_sample_at_ = now;
    have_ack_time_ = true;
    pending_bytes_ = 0;
  } else {
    const Duration gap = now - last_sample_at_;
    if (gap >= Duration::millis(2)) {
      bw_samples_.emplace_back(now, rate_of(pending_bytes_, gap));
      last_sample_at_ = now;
      pending_bytes_ = 0;
    }
  }

  // Expire samples outside the window (~10 min-RTTs, floor 100 ms).
  const Duration window =
      std::max(min_rtt_.is_infinite() ? Duration::millis(100) : min_rtt_ * 10.0,
               Duration::millis(100));
  while (!bw_samples_.empty() && bw_samples_.front().first + window < now) {
    bw_samples_.pop_front();
  }
  max_bw_ = DataRate::zero();
  for (const auto& [at, sample] : bw_samples_) {
    (void)at;
    max_bw_ = std::max(max_bw_, sample);
  }

  // The min filter only moves down; staleness is handled by PROBE_RTT
  // (which resets the filter so the drained-queue samples re-establish it).
  if (rtt > Duration::zero() && rtt <= min_rtt_) {
    min_rtt_ = rtt;
    min_rtt_stamp_ = now;
  }
}

void Bbr::advance_state(TimePoint now) {
  switch (state_) {
    case State::kStartup: {
      // Bandwidth plateau: <25% growth for 3 consecutive checks.
      if (max_bw_.bits_per_second() > full_bw_.bits_per_second() * 1.25) {
        full_bw_ = max_bw_;
        full_bw_rounds_ = 0;
      } else if (!max_bw_.is_zero() && ++full_bw_rounds_ >= 3) {
        state_ = State::kDrain;
      }
      return;
    }
    case State::kDrain:
      if (static_cast<double>(cwnd_) <= bdp_bytes() * 1.05) {
        state_ = State::kProbeBw;
        cycle_index_ = 0;
        cycle_start_ = now;
      }
      return;
    case State::kProbeBw: {
      const Duration phase = min_rtt_.is_infinite() ? Duration::millis(100) : min_rtt_;
      if (now - cycle_start_ >= phase) {
        cycle_index_ = (cycle_index_ + 1) % 8;
        cycle_start_ = now;
      }
      // PROBE_RTT entry: the min-RTT estimate is stale. Reset the filter so
      // the dip's drained-queue samples re-establish it.
      if (min_rtt_stamp_ + Duration::seconds(10) < now) {
        state_before_probe_ = State::kProbeBw;
        state_ = State::kProbeRtt;
        probe_rtt_start_ = now;
        min_rtt_ = Duration::infinite();
      }
      return;
    }
    case State::kProbeRtt:
      if (now - probe_rtt_start_ >= Duration::millis(200)) {
        min_rtt_stamp_ = now;  // refreshed by the dip
        state_ = state_before_probe_;
        cycle_start_ = now;
      }
      return;
  }
}

void Bbr::set_cwnd() {
  double gain = kCwndGain;
  switch (state_) {
    case State::kStartup: gain = kStartupGain; break;
    case State::kDrain: gain = kDrainGain; break;
    case State::kProbeBw: gain = kCwndGain * kProbeGains[cycle_index_]; break;
    case State::kProbeRtt: gain = 0.0; break;  // floor applies below
  }
  const double target = bdp_bytes() * gain;
  cwnd_ = std::max<std::uint64_t>(
      state_ == State::kProbeRtt ? 4ull * config_.mss : config_.min_cwnd_bytes,
      static_cast<std::uint64_t>(target));
  // Never collapse below 4 segments outside PROBE_RTT either.
  cwnd_ = std::max<std::uint64_t>(cwnd_, 4ull * config_.mss);
}

void Bbr::on_ack(std::uint64_t acked_bytes, Duration rtt, TimePoint now) {
  update_filters(acked_bytes, rtt, now);
  advance_state(now);
  set_cwnd();
}

void Bbr::on_congestion_event(TimePoint now) {
  // BBRv1's defining trait: packet loss is not a control signal.
  (void)now;
}

void Bbr::on_rto(TimePoint now) {
  // Total ack silence is different: restart the model conservatively.
  (void)now;
  bw_samples_.clear();
  max_bw_ = DataRate::zero();
  full_bw_ = DataRate::zero();
  full_bw_rounds_ = 0;
  state_ = State::kStartup;
  cwnd_ = std::max<std::uint64_t>(config_.min_cwnd_bytes, 4ull * config_.mss);
}

}  // namespace slp::cc
