// speedtest.hpp — an Ookla-style TCP speed test (§2 "Throughput").
//
// "The application selects the closest test server and probes download and
// upload capacity by opening several parallel TCP connections." We open
// `connections` parallel TCP streams, run for `duration`, and report the
// goodput over the measurement window with the initial ramp excluded —
// which is how speedtest services discount slow start.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tcp/tcp.hpp"

namespace slp::apps {

/// Server counterpart: serves unlimited download bytes on `download_port`
/// and swallows upload bytes on `upload_port`.
class SpeedtestServer {
 public:
  SpeedtestServer(tcp::TcpStack& stack, std::uint16_t download_port = 8080,
                  std::uint16_t upload_port = 8081);

  [[nodiscard]] std::uint64_t bytes_served() const { return bytes_served_; }
  [[nodiscard]] std::uint64_t bytes_absorbed() const { return bytes_absorbed_; }

 private:
  std::uint64_t bytes_served_ = 0;
  std::uint64_t bytes_absorbed_ = 0;
};

class Speedtest {
 public:
  struct Config {
    sim::Ipv4Addr server = 0;
    std::uint16_t download_port = 8080;
    std::uint16_t upload_port = 8081;
    int connections = 8;  ///< Ookla uses "several"; 4-16 depending on class
    Duration duration = Duration::seconds(15);
    /// Head of the test excluded from the rate computation (ramp).
    Duration ramp_exclusion = Duration::seconds(3);
    bool download = true;
    tcp::TcpConfig tcp;
  };

  struct Result {
    DataRate goodput;
    std::uint64_t bytes_measured = 0;
    Duration window = Duration::zero();
    int connections_established = 0;
  };

  Speedtest(tcp::TcpStack& stack, Config config);

  void start();
  std::function<void(const Result&)> on_complete;

 private:
  void finish();
  /// Download: bytes delivered to us. Upload: bytes the server has acked.
  [[nodiscard]] std::uint64_t measured_bytes_now() const;

  tcp::TcpStack* stack_;
  Config config_;
  std::vector<tcp::TcpConnection*> conns_;
  std::uint64_t bytes_before_window_ = 0;
  std::uint64_t bytes_total_ = 0;
  TimePoint start_;
  TimePoint window_start_;
  TimePoint test_end_;
  int established_ = 0;
  sim::Timer window_timer_;
  sim::Timer end_timer_;
};

}  // namespace slp::apps
