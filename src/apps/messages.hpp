// messages.hpp — the low-bitrate messaging workload (§2 "QUIC measurements").
//
// "The latter sends 25 variable length messages per second during 2 minutes.
// Each message has a size in the 5-25kB range. The average bitrate of this
// transfer is 3 Mbit/s" — a stand-in for real-time video traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "quic/quic.hpp"
#include "util/rng.hpp"

namespace slp::apps {

/// Drives an established QuicConnection with the paper's message schedule.
/// The *receiving* endpoint observes completions via its on_message hook.
class MessageSender {
 public:
  struct Config {
    double rate_hz = 25.0;
    std::uint64_t min_bytes = 5'000;
    std::uint64_t max_bytes = 25'000;
    Duration duration = Duration::minutes(2);
  };

  MessageSender(quic::QuicConnection& conn, Config config, Rng rng);

  void start();
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] int messages_sent() const { return sent_; }
  std::function<void()> on_complete;

 private:
  void tick();

  quic::QuicConnection* conn_;
  Config config_;
  Rng rng_;
  sim::Timer timer_;
  TimePoint start_time_;
  int sent_ = 0;
  bool finished_ = false;
};

/// Collects per-message delivery latency on the receiving connection.
class MessageReceiver {
 public:
  struct Delivery {
    std::uint64_t msg_id = 0;
    std::uint64_t bytes = 0;
    Duration latency = Duration::zero();  ///< queued at sender -> complete
  };

  explicit MessageReceiver(quic::QuicConnection& conn);

  [[nodiscard]] const std::vector<Delivery>& deliveries() const { return deliveries_; }
  std::function<void(const Delivery&)> on_delivery;

 private:
  std::vector<Delivery> deliveries_;
};

}  // namespace slp::apps
