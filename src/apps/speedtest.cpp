#include "apps/speedtest.hpp"

#include "obs/json.hpp"

namespace slp::apps {

namespace {
// "Unlimited" supply for the duration of any test.
constexpr std::uint64_t kFloodBytes = 4ull * 1000 * 1000 * 1000;
}  // namespace

SpeedtestServer::SpeedtestServer(tcp::TcpStack& stack, std::uint16_t download_port,
                                 std::uint16_t upload_port) {
  tcp::TcpConfig server_tcp;
  // Test servers are tuned: big receive buffers from the start.
  server_tcp.initial_rcv_buffer = 1 * 1024 * 1024;
  server_tcp.max_rcv_buffer = 16 * 1024 * 1024;
  stack.listen(download_port, [this](tcp::TcpConnection& c) {
    c.on_data = [this, &c](std::uint64_t) {
      // Any request byte triggers the flood, once.
      if (c.stats().bytes_acked == 0 && c.bytes_unsent() == 0) {
        c.send(kFloodBytes);
        bytes_served_ += kFloodBytes;
      }
    };
  }, server_tcp);
  stack.listen(upload_port, [this](tcp::TcpConnection& c) {
    c.on_data = [this](std::uint64_t n) { bytes_absorbed_ += n; };
  }, server_tcp);
}

Speedtest::Speedtest(tcp::TcpStack& stack, Config config)
    : stack_{&stack}, config_{config}, window_timer_{stack.sim()}, end_timer_{stack.sim()} {}

void Speedtest::start() {
  start_ = stack_->sim().now();
  const std::uint16_t port = config_.download ? config_.download_port : config_.upload_port;
  for (int i = 0; i < config_.connections; ++i) {
    tcp::TcpConnection& conn = stack_->connect(config_.server, port, config_.tcp);
    conns_.push_back(&conn);
    if (config_.download) {
      conn.on_established = [&conn, this] {
        ++established_;
        conn.send(64);  // the "GET"
      };
      conn.on_data = [this](std::uint64_t n) { bytes_total_ += n; };
    } else {
      conn.on_established = [&conn, this] {
        ++established_;
        conn.send(kFloodBytes);
      };
    }
  }

  window_timer_.arm(config_.ramp_exclusion, [this] {
    window_start_ = stack_->sim().now();
    bytes_before_window_ = measured_bytes_now();
  });
  end_timer_.arm(config_.duration, [this] { finish(); });
}

std::uint64_t Speedtest::measured_bytes_now() const {
  if (config_.download) return bytes_total_;
  std::uint64_t acked = 0;
  for (const tcp::TcpConnection* conn : conns_) acked += conn->stats().bytes_acked;
  return acked;
}

void Speedtest::finish() {
  Result result;
  result.window = stack_->sim().now() - window_start_;
  result.bytes_measured = measured_bytes_now() - bytes_before_window_;
  result.goodput = rate_of(result.bytes_measured, result.window);
  result.connections_established = established_;
  if (auto* rec = stack_->sim().obs(); rec != nullptr && rec->trace().enabled()) {
    const char* dir = config_.download ? "down" : "up";
    rec->trace().span("apps.speedtest", std::string{"ramp."} + dir, start_, window_start_);
    rec->trace().span(
        "apps.speedtest", std::string{"window."} + dir, window_start_, stack_->sim().now(),
        "{\"mbps\":" + obs::json_number(result.goodput.to_mbps()) +
            ",\"conns\":" + std::to_string(result.connections_established) + "}");
  }
  for (tcp::TcpConnection* conn : conns_) conn->abort();
  conns_.clear();
  if (on_complete) on_complete(result);
}

}  // namespace slp::apps
