#include "apps/messages.hpp"

namespace slp::apps {

MessageSender::MessageSender(quic::QuicConnection& conn, Config config, Rng rng)
    : conn_{&conn}, config_{config}, rng_{rng}, timer_{conn.sim()} {}

void MessageSender::start() {
  start_time_ = conn_->sim().now();
  tick();
}

void MessageSender::tick() {
  const TimePoint now = conn_->sim().now();
  if (now - start_time_ >= config_.duration) {
    finished_ = true;
    if (on_complete) on_complete();
    return;
  }
  const auto bytes = static_cast<std::uint64_t>(rng_.uniform_int(
      static_cast<std::int64_t>(config_.min_bytes), static_cast<std::int64_t>(config_.max_bytes)));
  conn_->send_message(bytes);
  ++sent_;
  timer_.arm(Duration::from_seconds(1.0 / config_.rate_hz), [this] { tick(); });
}

MessageReceiver::MessageReceiver(quic::QuicConnection& conn) {
  conn.on_message = [this, &conn](std::uint64_t msg_id, std::uint64_t bytes, TimePoint queued_at) {
    Delivery d;
    d.msg_id = msg_id;
    d.bytes = bytes;
    d.latency = conn.sim().now() - queued_at;
    deliveries_.push_back(d);
    if (on_delivery) on_delivery(d);
  };
}

}  // namespace slp::apps
