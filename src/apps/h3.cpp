#include "apps/h3.hpp"

namespace slp::apps {

H3Server::H3Server(quic::QuicStack& stack, Config config) : config_{config} {
  stack.listen(config_.get_port, [this](quic::QuicConnection& conn) {
    auto responded = std::make_shared<bool>(false);
    conn.on_stream_data = [this, &conn, responded](std::uint64_t n) {
      bytes_received_ += n;
      if (!*responded) {
        *responded = true;
        requests_served_++;
        conn.send_stream(config_.object_bytes);
      }
    };
    if (on_connection) on_connection(conn);
  }, config_.quic);
  stack.listen(config_.put_port, [this](quic::QuicConnection& conn) {
    conn.on_stream_data = [this](std::uint64_t n) { bytes_received_ += n; };
    if (on_connection) on_connection(conn);
  }, config_.quic);
}

H3Client::H3Client(quic::QuicStack& stack, Config config) : stack_{&stack}, config_{config} {}

void H3Client::start() {
  conn_ = &stack_->connect(config_.server,
                           config_.download ? config_.get_port : config_.put_port,
                           config_.quic);
  quic::QuicConnection& conn = *conn_;

  if (config_.download) {
    conn.on_established = [this, &conn] {
      started_ = stack_->sim().now();
      conn.send_stream(config_.request_bytes);  // the request
    };
    conn.on_stream_data = [this](std::uint64_t n) {
      transferred_ += n;
      if (transferred_ >= config_.bytes) finish();
    };
  } else {
    conn.on_established = [this, &conn] {
      started_ = stack_->sim().now();
      conn.send_stream(config_.bytes);
    };
    conn.on_stream_acked = [this](std::uint64_t acked) {
      transferred_ = acked;
      if (acked >= config_.bytes) finish();
    };
  }
}

void H3Client::finish() {
  if (done_) return;
  done_ = true;
  Result result;
  result.duration = stack_->sim().now() - started_;
  result.bytes = transferred_;
  result.goodput = rate_of(result.bytes, result.duration);
  result.packets_lost = conn_->stats().packets_lost;
  if (on_complete) on_complete(result);
}

}  // namespace slp::apps
