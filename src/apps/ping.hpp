// ping.hpp — the ICMP echo measurement tool (§2 "Latency").
//
// The paper probes 11 anchors with 3 pings every five minutes for five
// months. PingApp performs one such round: `count` echo requests at
// `interval`, RTTs collected, losses marked by timeout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/breakdown.hpp"
#include "sim/host.hpp"
#include "sim/simulator.hpp"

namespace slp::apps {

class PingApp {
 public:
  struct Config {
    sim::Ipv4Addr target = 0;
    int count = 3;
    Duration interval = Duration::seconds(1);
    Duration timeout = Duration::seconds(2);
    std::uint32_t packet_bytes = 64;
    /// Provenance flow key for the probes (0 = anonymous). Campaigns use the
    /// anchor index so per-anchor RTT decompositions group naturally.
    std::uint64_t flow = 0;
  };

  struct Probe {
    int seq = 0;
    Duration rtt = Duration::zero();
    bool lost = false;
    /// Round-trip component breakdown (obs::Component-indexed), captured
    /// from the reply's provenance tag; all-zero when provenance is off.
    std::int64_t comp_ns[obs::kTagComponents] = {};
  };

  PingApp(sim::Host& host, Config config);
  ~PingApp();

  PingApp(const PingApp&) = delete;
  PingApp& operator=(const PingApp&) = delete;

  /// Begins the round; on_complete fires after the last reply or timeout.
  void start();

  std::function<void(const std::vector<Probe>&)> on_complete;

  [[nodiscard]] bool running() const { return running_; }

 private:
  void send_next();
  void finish();

  sim::Host* host_;
  Config config_;
  std::uint16_t icmp_id_;
  std::vector<Probe> probes_;
  std::vector<TimePoint> sent_at_;
  int next_seq_ = 0;
  int outstanding_ = 0;
  bool running_ = false;
  sim::Timer send_timer_;
  sim::Timer timeout_timer_;
};

}  // namespace slp::apps
