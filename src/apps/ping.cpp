#include "apps/ping.hpp"

#include <algorithm>
#include <cassert>

#include "obs/recorder.hpp"
#include "sim/provenance.hpp"

namespace slp::apps {

PingApp::PingApp(sim::Host& host, Config config)
    : host_{&host},
      config_{config},
      icmp_id_{host.ephemeral_port()},  // unique id per app instance
      send_timer_{host.sim()},
      timeout_timer_{host.sim()} {}

PingApp::~PingApp() {
  if (running_) host_->unbind_echo_reply(icmp_id_);
}

void PingApp::start() {
  assert(!running_);
  running_ = true;
  probes_.clear();
  sent_at_.clear();
  next_seq_ = 0;
  outstanding_ = 0;

  host_->bind_echo_reply(icmp_id_, [this](const sim::Packet& pkt) {
    const int seq = pkt.icmp->seq;
    if (seq < 0 || static_cast<std::size_t>(seq) >= probes_.size()) return;
    Probe& probe = probes_[static_cast<std::size_t>(seq)];
    if (probe.lost || probe.rtt > Duration::zero()) return;  // late or dup
    probe.rtt = host_->sim().now() - sent_at_[static_cast<std::size_t>(seq)];
    // The reply carries the request's tag (copied at the echo responder), so
    // its components span the full round trip.
    if (const sim::ProvenanceTag* tag = sim::prov_tag(pkt)) {
      std::copy(tag->comp_ns, tag->comp_ns + obs::kTagComponents, probe.comp_ns);
      if (obs::Recorder* rec = host_->sim().obs()) {
        rec->record_breakdown(host_->sim().now().ns(), config_.flow, tag->comp_ns,
                              probe.rtt.ns() - tag->comp_ns[obs::kLossRecovery]);
      }
    }
    if (--outstanding_ == 0 && next_seq_ >= config_.count) finish();
  });
  send_next();
}

void PingApp::send_next() {
  if (next_seq_ >= config_.count) return;
  const int seq = next_seq_++;
  probes_.push_back(Probe{seq, Duration::zero(), false});
  sent_at_.push_back(host_->sim().now());
  ++outstanding_;

  sim::Packet ping;
  ping.dst = config_.target;
  ping.proto = sim::Protocol::kIcmp;
  ping.size_bytes = config_.packet_bytes;
  ping.flow_id = config_.flow;
  ping.icmp = sim::IcmpHeader{sim::IcmpType::kEchoRequest, icmp_id_,
                              static_cast<std::uint16_t>(seq), nullptr};
  host_->send(std::move(ping));

  if (next_seq_ < config_.count) {
    send_timer_.arm(config_.interval, [this] { send_next(); });
  } else {
    // After the last probe, wait out the timeout for stragglers.
    timeout_timer_.arm(config_.timeout, [this] { finish(); });
  }
}

void PingApp::finish() {
  if (!running_) return;
  running_ = false;
  send_timer_.cancel();
  timeout_timer_.cancel();
  host_->unbind_echo_reply(icmp_id_);
  for (Probe& probe : probes_) {
    if (probe.rtt.is_zero()) probe.lost = true;
  }
  if (on_complete) on_complete(probes_);
}

}  // namespace slp::apps
