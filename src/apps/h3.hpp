// h3.hpp — HTTP/3-style bulk transfers over QUIC (§2 "QUIC measurements").
//
// The paper's H3 workload is a single-connection 100 MB transfer, download
// (server -> client) or upload (client -> server). H3Server answers any
// request with a configured object size; H3Client runs one transfer and
// reports timing. Loss/RTT hooks hang off the exposed QuicConnection, which
// is how measure::LossAnalyzer instruments the transfers.
#pragma once

#include <cstdint>
#include <functional>

#include "quic/quic.hpp"

namespace slp::apps {

class H3Server {
 public:
  struct Config {
    std::uint16_t get_port = 443;     ///< GET: respond with the object
    std::uint16_t put_port = 444;     ///< PUT: absorb the upload
    std::uint64_t object_bytes = 100ull * 1000 * 1000;  ///< response size
    quic::QuicConfig quic;
  };

  H3Server(quic::QuicStack& stack, Config config);
  explicit H3Server(quic::QuicStack& stack) : H3Server(stack, Config{}) {}

  /// Fires for every accepted connection, before any data flows — attach
  /// measurement hooks here.
  std::function<void(quic::QuicConnection&)> on_connection;

  [[nodiscard]] std::uint64_t requests_served() const { return requests_served_; }
  /// Upload bytes received across all connections.
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  Config config_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t bytes_received_ = 0;
};

class H3Client {
 public:
  struct Config {
    sim::Ipv4Addr server = 0;
    std::uint16_t get_port = 443;
    std::uint16_t put_port = 444;
    bool download = true;
    std::uint64_t bytes = 100ull * 1000 * 1000;
    std::uint32_t request_bytes = 300;
    quic::QuicConfig quic;
  };

  struct Result {
    Duration duration = Duration::zero();   ///< established -> last byte
    DataRate goodput;
    std::uint64_t bytes = 0;
    std::uint64_t packets_lost = 0;          ///< sender-side view
  };

  H3Client(quic::QuicStack& stack, Config config);

  void start();

  /// The underlying connection (valid after start()); attach hooks here.
  [[nodiscard]] quic::QuicConnection& connection() { return *conn_; }

  std::function<void(const Result&)> on_complete;

 private:
  void finish();

  quic::QuicStack* stack_;
  Config config_;
  quic::QuicConnection* conn_ = nullptr;
  std::uint64_t transferred_ = 0;
  TimePoint started_;
  bool done_ = false;
};

}  // namespace slp::apps
