// geo_access.hpp — the traditional geostationary SatCom access (PC-SatCom).
//
//   client -- modem NAT ==GEO satellite link (100/10 plan)== gateway router
//          -- PEP -- exit router -- (caller attaches the internet)
//
// Latency: 35,786 km geostationary altitude; user terminal and gateway in
// Western Europe at ~51 deg N see slant ranges near 38,600 km. Two hops
// (up + down) per direction give ~258 ms propagation one-way; modem/gateway
// processing and DVB-S2 framing push the minimum RTT to the ~560-600 ms the
// paper's reference [37] reports.
#pragma once

#include <memory>

#include "geo/pep.hpp"
#include "leo/geodesy.hpp"
#include "phy/gilbert_elliott.hpp"
#include "sim/network.hpp"

namespace slp::geo {

class GeoAccess {
 public:
  struct Config {
    /// Plan shaping. The subscription says "up to 100 Mbit/s downlink and
    /// 10 Mbit/s uplink"; the IP-layer rates below account for DVB-S2(X)
    /// forward-link overhead and the MF-TDMA return channel's much poorer
    /// efficiency — the paper measured medians of 82 and 4.5 Mbit/s.
    DataRate plan_downlink = DataRate::mbps(90);
    DataRate plan_uplink = DataRate::mbps(5.2);

    /// One-way satellite path: ~2x 38,600 km slant + processing.
    Duration propagation_one_way = Duration::from_millis(258);
    Duration processing_one_way = Duration::from_millis(22);
    /// DVB-S2 frame scheduling jitter, U(0, x) per packet.
    Duration frame_jitter = Duration::from_millis(12);

    std::size_t downlink_queue_bytes = 2 * 1024 * 1024;
    std::size_t uplink_queue_bytes = 256 * 1024;

    /// Rain-fade / medium loss: rare, mild.
    phy::GilbertElliott::Config medium_loss{
        .mean_good = Duration::minutes(30),
        .mean_bad = Duration::from_millis(40),
        .loss_good = 0.0,
        .loss_bad = 0.5};

    Pep::Config pep;  ///< pep.enabled=false for the ablation

    std::string rng_label = "geo-access";
  };

  GeoAccess(sim::Network& net, Config config);

  [[nodiscard]] sim::Host& client() { return *client_; }
  /// Exit router on the terrestrial side; attach the internet here.
  [[nodiscard]] sim::Router& pop() { return *pop_; }
  [[nodiscard]] Pep& pep() { return *pep_; }
  [[nodiscard]] sim::Nat& modem() { return *modem_; }
  [[nodiscard]] sim::Link& satellite_link() { return *sat_link_; }
  [[nodiscard]] sim::Ipv4Addr public_addr() const;
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  [[nodiscard]] Duration access_delay(TimePoint t, int direction);

  Config config_;
  std::unique_ptr<phy::GilbertElliott> loss_up_;
  std::unique_ptr<phy::GilbertElliott> loss_down_;
  Rng jitter_rng_;

  sim::Host* client_ = nullptr;
  sim::Nat* modem_ = nullptr;
  sim::Router* gateway_ = nullptr;
  Pep* pep_ = nullptr;
  sim::Router* pop_ = nullptr;
  sim::Link* sat_link_ = nullptr;
  TimePoint last_arrival_[2];
};

}  // namespace slp::geo
