#include "geo/pep.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "util/log.hpp"

namespace slp::geo {

Pep::Pep(sim::Simulator& sim, std::string name, Config config)
    : Node(sim, std::move(name)), config_{config} {
  // Interface addresses are internal only: the PEP is transparent (no TTL
  // decrement, no ICMP) and never appears as a traceroute hop.
  add_interface(sim::make_addr(10, 255, 0, 1));
  add_interface(sim::make_addr(10, 255, 0, 2));
  sat_stack_ = std::make_unique<tcp::TcpStack>(
      sim, [this](sim::Packet pkt) { sat_side().send(std::move(pkt)); });
  net_stack_ = std::make_unique<tcp::TcpStack>(
      sim, [this](sim::Packet pkt) { net_side().send(std::move(pkt)); });
  if (auto* rec = sim.obs(); rec != nullptr && rec->options().metrics) {
    obs_splits_ = rec->registry().counter("geo.pep.flows_split");
  }
}

void Pep::intercept_syn(const sim::Packet& pkt) {
  const FlowKey key{pkt.src, pkt.src_port, pkt.dst, pkt.dst_port};
  if (flows_.contains(key)) return;  // duplicate SYN: leg handles retransmit

  Flow& flow = flows_[key];
  stats_.flows_split++;
  obs_splits_.add();
  if (auto* rec = sim().obs(); rec != nullptr && rec->trace().enabled()) {
    rec->trace().instant("geo.pep", "split", sim().now(),
                         "{\"client_port\":" + std::to_string(pkt.src_port) +
                             ",\"server_port\":" + std::to_string(pkt.dst_port) + "}");
  }

  // Client leg: impersonate the server.
  flow.client_leg =
      &sat_stack_->accept_spoofed(pkt.dst, pkt.dst_port, pkt.src, pkt.src_port, config_.sat_leg);
  // Server leg: impersonate the client.
  flow.server_leg =
      &net_stack_->connect_spoofed(pkt.src, pkt.src_port, pkt.dst, pkt.dst_port, config_.net_leg);

  tcp::TcpConnection* client_leg = flow.client_leg;
  tcp::TcpConnection* server_leg = flow.server_leg;

  // Relay plumbing. Byte counts only: the data is synthetic. The server leg
  // uses manual reads: bytes stay "unread" (closing its receive window)
  // until the client leg has acked them downstream — real split-TCP relay
  // backpressure.
  server_leg->set_manual_read(true);
  client_leg->on_data = [this, server_leg](std::uint64_t n) {
    stats_.bytes_relayed_up += n;
    server_leg->send(n);
  };
  // Latency provenance: downstream bytes enter the relay FIFO when the
  // server leg delivers them and leave when the client leg acks them — that
  // residency is the split-processing component the PEP adds.
  Flow* flow_state = &flow;  // std::map nodes are address-stable
  const bool provenance = sim().provenance();
  server_leg->on_data = [this, client_leg, flow_state, provenance](std::uint64_t n) {
    stats_.bytes_relayed_down += n;
    if (provenance) flow_state->down_fifo.emplace_back(sim().now(), n);
    client_leg->send(n);
  };
  client_leg->on_bytes_acked = [this, server_leg, client_leg, flow_state,
                                provenance](std::uint64_t n) {
    if (provenance) {
      obs::Recorder* rec = sim().obs();
      std::uint64_t left = n;
      while (left > 0 && !flow_state->down_fifo.empty()) {
        auto& [arrived, bytes] = flow_state->down_fifo.front();
        const std::uint64_t take = std::min(bytes, left);
        if (rec != nullptr) {
          rec->record_component(client_leg->flow_id(), obs::kPepProc,
                                (sim().now() - arrived).ns());
        }
        bytes -= take;
        left -= take;
        if (bytes == 0) flow_state->down_fifo.pop_front();
      }
    }
    server_leg->consume(n);
  };
  client_leg->on_closed = [server_leg] { server_leg->close(); };
  server_leg->on_closed = [client_leg] { client_leg->close(); };
  client_leg->on_error = [server_leg] { server_leg->abort(); };
  server_leg->on_error = [client_leg] { client_leg->abort(); };
}

void Pep::handle_packet(sim::Packet pkt, sim::Interface& in) {
  const bool from_sat = &in == &sat_side();
  sim::Interface& out = from_sat ? net_side() : sat_side();

  if (!config_.enabled || pkt.proto != sim::Protocol::kTcp || !pkt.tcp) {
    // Transparent wire for non-TCP (QUIC/UDP, ICMP) and when disabled.
    stats_.forwarded_non_tcp++;
    out.send(std::move(pkt));
    return;
  }

  if (from_sat) {
    if (pkt.tcp->syn && !pkt.tcp->ack_flag) intercept_syn(pkt);
    if (sat_stack_->deliver(pkt)) return;
  } else {
    if (net_stack_->deliver(pkt)) return;
  }
  // TCP traffic that belongs to no split flow (e.g. a server-initiated
  // connection) passes through untouched.
  out.send(std::move(pkt));
}

}  // namespace slp::geo
