// pep.hpp — a transparent TCP Performance Enhancing Proxy (RFC 3135).
//
// SatCom operators deploy split-connection PEPs at the gateway to hide the
// ~600 ms GEO RTT from TCP dynamics (§1 and §3.5 of the paper). This node
// sits on-path and:
//   * terminates client TCP connections locally, answering the SYN with a
//     spoofed SYN/ACK *as if it were the server* — which is precisely the
//     behaviour Tracebox uses to detect a PEP (the handshake completes
//     before the destination network);
//   * opens its own TCP connection to the real server, impersonating the
//     client (it is on-path, so return traffic flows back through it);
//   * relays bytes between the legs, using aggressive TCP parameters on the
//     satellite leg (large IW, large buffers) — the whole point of a PEP;
//   * forwards everything that is not TCP untouched. QUIC is encrypted UDP:
//     the PEP cannot split it, reproducing the paper's motivation for
//     measuring with QUIC.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "obs/registry.hpp"
#include "sim/node.hpp"
#include "tcp/tcp.hpp"

namespace slp::geo {

class Pep : public sim::Node {
 public:
  struct Config {
    /// Satellite-leg TCP: tuned for the long fat pipe.
    tcp::TcpConfig sat_leg;
    /// Server-leg TCP: standard.
    tcp::TcpConfig net_leg;
    /// Per-flow relay buffer cap: data acked from one leg but not yet acked
    /// by the other counts against this.
    std::uint64_t relay_buffer_bytes = 4 * 1024 * 1024;
    bool enabled = true;  ///< false = pure wire (ablation)

    Config() {
      // PEPs disable slow-start conservatism on the satellite leg: the
      // operator knows the shaped plan rate, so the proxy opens with a
      // large window and lets HyStart settle it near the BDP.
      sat_leg.initial_window_segments = 120;
      sat_leg.initial_rcv_buffer = 2 * 1024 * 1024;
      sat_leg.max_rcv_buffer = 32 * 1024 * 1024;
      sat_leg.max_burst_segments = 20;
      // Server leg: sized to keep the satellite leg's BDP fed, no more —
      // together with manual-read backpressure this stops fast servers from
      // flooding the relay far above the satellite drain rate.
      net_leg.initial_rcv_buffer = 8 * 1024 * 1024;
      net_leg.max_rcv_buffer = 32 * 1024 * 1024;
    }
  };

  Pep(sim::Simulator& sim, std::string name, Config config);

  /// Interface toward the satellite/access side.
  [[nodiscard]] sim::Interface& sat_side() const { return interface(0); }
  /// Interface toward the terrestrial internet.
  [[nodiscard]] sim::Interface& net_side() const { return interface(1); }

  void handle_packet(sim::Packet pkt, sim::Interface& in) override;

  struct Stats {
    std::uint64_t flows_split = 0;
    std::uint64_t bytes_relayed_up = 0;    ///< client -> server
    std::uint64_t bytes_relayed_down = 0;  ///< server -> client
    std::uint64_t forwarded_non_tcp = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Visits every split flow (testing/diagnostics).
  void visit_flows(const std::function<void(const tcp::TcpConnection& client_leg,
                                            const tcp::TcpConnection& server_leg)>& fn) const {
    for (const auto& [key, flow] : flows_) {
      (void)key;
      if (flow.client_leg != nullptr && flow.server_leg != nullptr) {
        fn(*flow.client_leg, *flow.server_leg);
      }
    }
  }

 private:
  struct Flow {
    tcp::TcpConnection* client_leg = nullptr;  ///< we impersonate the server
    tcp::TcpConnection* server_leg = nullptr;  ///< we impersonate the client
    std::uint64_t up_buffered = 0;
    std::uint64_t down_buffered = 0;
    bool client_closed = false;
    bool server_closed = false;
    /// Provenance only: (arrival instant, bytes) of downstream relay data,
    /// drained as the client leg acks — FIFO residency = split-processing
    /// time the PEP added to each byte's journey.
    std::deque<std::pair<TimePoint, std::uint64_t>> down_fifo;
  };
  struct FlowKey {
    sim::Ipv4Addr client_addr;
    std::uint16_t client_port;
    sim::Ipv4Addr server_addr;
    std::uint16_t server_port;
    auto operator<=>(const FlowKey&) const = default;
  };

  void intercept_syn(const sim::Packet& pkt);

  Config config_;
  obs::Counter obs_splits_;
  /// Stack facing the client (transmits out of sat_side).
  std::unique_ptr<tcp::TcpStack> sat_stack_;
  /// Stack facing the server (transmits out of net_side).
  std::unique_ptr<tcp::TcpStack> net_stack_;
  std::map<FlowKey, Flow> flows_;
  Stats stats_;
};

}  // namespace slp::geo
