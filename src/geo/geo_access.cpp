#include "geo/geo_access.hpp"

namespace slp::geo {

namespace {

using sim::make_addr;

constexpr sim::Ipv4Addr kClientAddr = make_addr(192, 168, 3, 100);
constexpr sim::Ipv4Addr kModemLan = make_addr(192, 168, 3, 1);
constexpr sim::Ipv4Addr kModemExternal = make_addr(185, 44, 3, 2);
constexpr sim::Ipv4Addr kGatewaySatIf = make_addr(185, 44, 3, 1);
constexpr sim::Ipv4Addr kGatewayNetIf = make_addr(185, 12, 0, 1);
constexpr sim::Ipv4Addr kPopPepIf = make_addr(185, 12, 0, 254);

}  // namespace

GeoAccess::GeoAccess(sim::Network& net, Config config)
    : config_{std::move(config)},
      jitter_rng_{net.sim().fork_rng(config_.rng_label + "/jitter")} {
  loss_up_ = std::make_unique<phy::GilbertElliott>(
      config_.medium_loss, net.sim().fork_rng(config_.rng_label + "/ge-up"));
  loss_down_ = std::make_unique<phy::GilbertElliott>(
      config_.medium_loss, net.sim().fork_rng(config_.rng_label + "/ge-down"));

  client_ = &net.add_host("pc-satcom", kClientAddr);
  modem_ = &net.add_nat("satcom-modem", kModemLan, kModemExternal);
  gateway_ = &net.add_router("satcom-gateway");
  pep_ = &net.add_node<Pep>("satcom-pep", config_.pep);
  pop_ = &net.add_router("satcom-pop");

  // LAN: client <-> modem.
  net.connect(client_->uplink(), modem_->inside(),
              sim::Network::symmetric(DataRate::gbps(1), Duration::from_micros(250),
                                      8 * 1024 * 1024));

  // Satellite link: modem <-> gateway, plan-shaped.
  sim::Interface& gw_sat = gateway_->add_interface(kGatewaySatIf);
  sim::Link::Config sat;
  sat.a_to_b.rate = config_.plan_uplink;
  sat.a_to_b.delay_fn = [this](TimePoint t) { return access_delay(t, 0); };
  sat.a_to_b.queue_capacity_bytes = config_.uplink_queue_bytes;
  sat.a_to_b.loss = loss_up_.get();
  sat.b_to_a.rate = config_.plan_downlink;
  sat.b_to_a.delay_fn = [this](TimePoint t) { return access_delay(t, 1); };
  sat.b_to_a.queue_capacity_bytes = config_.downlink_queue_bytes;
  sat.b_to_a.loss = loss_down_.get();
  sat_link_ = &net.connect(modem_->outside(), gw_sat, std::move(sat));

  // Gateway <-> PEP <-> exit PoP (fast terrestrial hops).
  sim::Interface& gw_net = gateway_->add_interface(kGatewayNetIf);
  net.connect(gw_net, pep_->sat_side(),
              sim::Network::symmetric(DataRate::gbps(10), Duration::from_micros(200)));
  sim::Interface& pop_if = pop_->add_interface(kPopPepIf);
  net.connect(pep_->net_side(), pop_if,
              sim::Network::symmetric(DataRate::gbps(10), Duration::from_micros(200)));

  // Routing: the gateway sends user-bound traffic over the satellite and
  // everything else toward the PEP; the PoP returns user traffic to the PEP.
  gateway_->routes().add_route(make_addr(185, 44, 3, 0), 24, gw_sat);
  gateway_->routes().add_default(gw_net);
  pop_->routes().add_route(make_addr(185, 44, 3, 0), 24, pop_if);
}

sim::Ipv4Addr GeoAccess::public_addr() const { return kModemExternal; }

Duration GeoAccess::access_delay(TimePoint t, int direction) {
  Duration delay = config_.propagation_one_way + config_.processing_one_way;
  delay += Duration::from_seconds(
      jitter_rng_.uniform(0.0, config_.frame_jitter.to_seconds()));
  // FIFO per direction: jitter must never reorder packets.
  TimePoint arrival = t + delay;
  if (arrival <= last_arrival_[direction]) {
    arrival = last_arrival_[direction] + Duration::nanos(1);
  }
  last_arrival_[direction] = arrival;
  return arrival - t;
}

}  // namespace slp::geo
