#include "leo/isl.hpp"

#include <cmath>

namespace slp::leo {

IslEstimate isl_latency(const GeoPoint& a, const GeoPoint& b, const IslModelConfig& config) {
  IslEstimate est;
  // Up and down legs: assume a satellite at ~40 deg elevation near each end.
  const double slant_m = config.altitude_m / std::sin(deg_to_rad(40.0));
  // The ISL segment rides above the ground track: arc at orbit radius.
  const double ground_m = great_circle_distance_m(a, b);
  const double arc_m =
      ground_m * (kEarthRadiusM + config.altitude_m) / kEarthRadiusM * config.path_stretch;
  est.hops = std::max(1, static_cast<int>(std::ceil(arc_m / config.hop_length_m)));
  const double path_m = 2.0 * slant_m + arc_m;
  est.path_km = path_m / 1000.0;
  est.one_way = rf_propagation_delay(path_m) +
                config.per_hop_processing * static_cast<double>(est.hops) +
                config.end_processing;
  est.rtt = est.one_way * 2.0;
  return est;
}

Duration fiber_rtt(const GeoPoint& a, const GeoPoint& b) { return fiber_delay(a, b) * 2.0; }

}  // namespace slp::leo
