#include "leo/geodesy.hpp"

#include <algorithm>

namespace slp::leo {

Vec3 to_ecef(const GeoPoint& p) {
  const double lat = deg_to_rad(p.lat_deg);
  const double lon = deg_to_rad(p.lon_deg);
  const double r = kEarthRadiusM + p.alt_m;
  return Vec3{r * std::cos(lat) * std::cos(lon), r * std::cos(lat) * std::sin(lon),
              r * std::sin(lat)};
}

double great_circle_distance_m(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  // Haversine formula.
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double slant_range_m(const GeoPoint& ground, const Vec3& sat_ecef) {
  return (sat_ecef - to_ecef(ground)).norm();
}

double slant_range_m(const Vec3& ground_ecef, const Vec3& sat_ecef) {
  return (sat_ecef - ground_ecef).norm();
}

double elevation_deg(const GeoPoint& ground, const Vec3& sat_ecef) {
  return elevation_deg(to_ecef(ground), sat_ecef);
}

double elevation_deg(const Vec3& ground_ecef, const Vec3& sat_ecef) {
  const Vec3& g = ground_ecef;
  const Vec3 to_sat = sat_ecef - g;
  const double range = to_sat.norm();
  if (range == 0.0) return 90.0;
  // sin(elevation) = (up-vector . to_sat) / |to_sat|, with up = g / |g|.
  const double sin_el = g.dot(to_sat) / (g.norm() * range);
  return rad_to_deg(std::asin(std::clamp(sin_el, -1.0, 1.0)));
}

GeoPoint from_ecef(const Vec3& v) {
  const double r = v.norm();
  if (r == 0.0) return GeoPoint{};
  const double lat = std::asin(std::clamp(v.z / r, -1.0, 1.0));
  const double lon = std::atan2(v.y, v.x);
  return GeoPoint{rad_to_deg(lat), rad_to_deg(lon), r - kEarthRadiusM};
}

double initial_bearing_deg(const GeoPoint& from, const GeoPoint& to) {
  const double lat1 = deg_to_rad(from.lat_deg);
  const double lat2 = deg_to_rad(to.lat_deg);
  const double dlon = deg_to_rad(to.lon_deg - from.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x =
      std::cos(lat1) * std::sin(lat2) - std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  if (x == 0.0 && y == 0.0) return 0.0;  // coincident or antipodal: bearing undefined
  const double deg = rad_to_deg(std::atan2(y, x));
  return deg < 0.0 ? deg + 360.0 : deg;
}

double azimuth_deg(const GeoPoint& ground, const Vec3& sat_ecef) {
  const double lat = deg_to_rad(ground.lat_deg);
  const double lon = deg_to_rad(ground.lon_deg);
  const Vec3 d = sat_ecef - to_ecef(ground);
  // Local ENU basis at the ground point (spherical Earth).
  const Vec3 east{-std::sin(lon), std::cos(lon), 0.0};
  const Vec3 north{-std::sin(lat) * std::cos(lon), -std::sin(lat) * std::sin(lon), std::cos(lat)};
  const double e = d.dot(east);
  const double n = d.dot(north);
  if (e == 0.0 && n == 0.0) return 0.0;  // directly overhead: azimuth undefined
  const double deg = rad_to_deg(std::atan2(e, n));
  return deg < 0.0 ? deg + 360.0 : deg;
}

Duration rf_propagation_delay(double distance_m) {
  return Duration::from_seconds(distance_m / kRfSpeedMps);
}

Duration fiber_delay(const GeoPoint& a, const GeoPoint& b, double path_stretch) {
  const double path_m = great_circle_distance_m(a, b) * path_stretch;
  const double glass_speed = kSpeedOfLightMps * 2.0 / 3.0;
  return Duration::from_seconds(path_m / glass_speed);
}

}  // namespace slp::leo
