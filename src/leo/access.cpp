#include "leo/access.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/provenance.hpp"

namespace slp::leo {

namespace {

using sim::make_addr;

constexpr sim::Ipv4Addr kClientAddr = make_addr(192, 168, 1, 100);
constexpr sim::Ipv4Addr kCpeExternal = make_addr(100, 64, 7, 23);
constexpr sim::Ipv4Addr kCgnExternal = make_addr(149, 6, 50, 1);
constexpr sim::Ipv4Addr kPopGatewayIf = make_addr(149, 6, 50, 254);

}  // namespace

StarlinkAccess::StarlinkAccess(sim::Network& net, Config config)
    : config_{std::move(config)},
      jitter_rng_{net.sim().fork_rng(config_.rng_label + "/jitter")} {
  constellation_ = std::make_unique<Constellation>(config_.shell);

  HandoverScheduler::Config ho;
  ho.terminal = config_.terminal;
  ho.slot = config_.handover_slot;
  ho.terminal_min_elevation_deg = config_.terminal_min_elevation_deg;
  ho.gateways = default_european_gateways();
  ho.active_planes_fn = config_.active_planes_fn;
  scheduler_ = std::make_unique<HandoverScheduler>(*constellation_, std::move(ho),
                                                   net.sim().fork_rng(config_.rng_label + "/ho"));

  down_load_ = std::make_unique<phy::LoadProcess>(
      config_.downlink_load, net.sim().fork_rng(config_.rng_label + "/load-down"));
  up_load_ = std::make_unique<phy::LoadProcess>(
      config_.uplink_load, net.sim().fork_rng(config_.rng_label + "/load-up"));

  phy::GilbertElliott::Config up_loss = config_.medium_loss;
  up_loss.mean_good = config_.uplink_medium_good;
  loss_up_ = std::make_unique<phy::GilbertElliott>(
      up_loss, net.sim().fork_rng(config_.rng_label + "/ge-up"));
  loss_down_ = std::make_unique<phy::GilbertElliott>(
      config_.medium_loss, net.sim().fork_rng(config_.rng_label + "/ge-down"));
  outage_up_ = std::make_unique<phy::OutageProcess>(
      config_.outage, net.sim().fork_rng(config_.rng_label + "/outage"));
  // Outages hit both directions simultaneously (the link is gone): share the
  // window by forking the *same* label so both processes draw identically.
  outage_down_ = std::make_unique<phy::OutageProcess>(
      config_.outage, net.sim().fork_rng(config_.rng_label + "/outage"));
  // Scenario and mobility gates last: they draw no randomness, so their
  // presence (open or closed) leaves the stochastic children's streams
  // untouched.
  composite_up_ = std::make_unique<phy::CompositeLossModel>(std::vector<sim::LossModel*>{
      loss_up_.get(), outage_up_.get(), &gate_up_, &mobility_gate_up_});
  composite_down_ = std::make_unique<phy::CompositeLossModel>(std::vector<sim::LossModel*>{
      loss_down_.get(), outage_down_.get(), &gate_down_, &mobility_gate_down_});
  loaded_up_ = std::make_unique<phy::UtilizationLoss>(
      config_.loaded_loss, net.sim().fork_rng(config_.rng_label + "/loaded-up"));
  loaded_down_ = std::make_unique<phy::UtilizationLoss>(
      config_.loaded_loss, net.sim().fork_rng(config_.rng_label + "/loaded-down"));

  // --- nodes ---------------------------------------------------------
  client_ = &net.add_host("pc-starlink", kClientAddr);
  cpe_ = &net.add_nat("starlink-cpe", sim::kCpeNatAddr, kCpeExternal);
  cgn_ = &net.add_nat("starlink-cgn", sim::kCgnNatAddr, kCgnExternal);
  pop_ = &net.add_router("starlink-pop");

  // --- LAN: client <-> CPE ------------------------------------------
  // Generous queue: the host NIC/qdisc absorbs cwnd-sized bursts; drops
  // must happen at the satellite bottleneck, not on gigabit Ethernet.
  net.connect(client_->uplink(), cpe_->inside(),
              sim::Network::symmetric(DataRate::gbps(1), Duration::from_micros(250),
                                      /*queue_bytes=*/8 * 1024 * 1024));

  // --- satellite link: CPE <-> CGN -----------------------------------
  sim::Link::Config sat;
  sat.a_to_b.rate_fn = [this](TimePoint t) { return uplink_capacity(t); };
  sat.a_to_b.delay_fn = [this](TimePoint t) { return access_delay(t, /*up=*/true); };
  sat.a_to_b.queue_capacity_bytes = config_.uplink_queue_bytes;
  sat.a_to_b.loss = composite_up_.get();
  sat.a_to_b.aqm = [this](TimePoint t, const sim::Packet& pkt, double fraction) {
    note_enqueue(0, pkt.size_bytes, t);
    return loaded_up_->should_drop(t, pkt, fraction);
  };
  sat.a_to_b.delay_attribution = [this](sim::ProvenanceTag& tag, Duration total) {
    attribute_delay(0, tag, total);
  };
  sat.b_to_a.rate_fn = [this](TimePoint t) { return downlink_capacity(t); };
  sat.b_to_a.delay_fn = [this](TimePoint t) { return access_delay(t, /*up=*/false); };
  sat.b_to_a.queue_capacity_bytes = config_.downlink_queue_bytes;
  sat.b_to_a.loss = composite_down_.get();
  sat.b_to_a.aqm = [this](TimePoint t, const sim::Packet& pkt, double fraction) {
    note_enqueue(1, pkt.size_bytes, t);
    return loaded_down_->should_drop(t, pkt, fraction);
  };
  sat.b_to_a.delay_attribution = [this](sim::ProvenanceTag& tag, Duration total) {
    attribute_delay(1, tag, total);
  };
  sat.name = "sat";
  sat_link_ = &net.connect(cpe_->outside(), cgn_->inside(), std::move(sat));

  // --- observability --------------------------------------------------
  sim_ = &net.sim();
  if (auto* rec = sim_->obs()) {
    scheduler_->set_obs(rec);
    loss_up_->set_obs(rec, "up");
    loss_down_->set_obs(rec, "down");
    // Up and down outage processes draw identical windows; wire one.
    outage_up_->set_obs(rec);
    if (rec->sampler() != nullptr) {
      visible_probe_id_ = rec->sampler()->add_probe("leo.visible_sats", [this](TimePoint t) {
        const int active =
            config_.active_planes_fn ? config_.active_planes_fn(t) : 0;
        return static_cast<double>(constellation_->count_visible(
            config_.terminal, t, config_.terminal_min_elevation_deg, active));
      });
    }
  }

  // --- backhaul: CGN <-> exit PoP -------------------------------------
  sim::Interface& pop_if = pop_->add_interface(kPopGatewayIf);
  net.connect(cgn_->outside(), pop_if,
              sim::Network::symmetric(DataRate::gbps(10), config_.backhaul_delay));
  pop_->routes().add_route(make_addr(149, 6, 50, 0), 24, pop_if);
}

StarlinkAccess::~StarlinkAccess() {
  if (visible_probe_id_ != 0 && sim_->obs() != nullptr && sim_->obs()->sampler() != nullptr) {
    sim_->obs()->sampler()->remove_probe(visible_probe_id_);
  }
}

sim::Ipv4Addr StarlinkAccess::public_addr() const { return kCgnExternal; }

DataRate StarlinkAccess::downlink_capacity(TimePoint t) {
  double fraction = (cell_model_ != nullptr ? cell_model_->available_fraction(1, t)
                                            : down_load_->available_fraction(t)) *
                    rain_factor_;
  if (config_.epoch_capacity_factor) fraction *= config_.epoch_capacity_factor(t);
  const DataRate r = config_.cell_downlink * fraction;
  return std::max(r, DataRate::mbps(1));
}

DataRate StarlinkAccess::uplink_capacity(TimePoint t) {
  double fraction = (cell_model_ != nullptr ? cell_model_->available_fraction(0, t)
                                            : up_load_->available_fraction(t)) *
                    rain_factor_;
  if (config_.epoch_capacity_factor) fraction *= config_.epoch_capacity_factor(t);
  const DataRate r = config_.cell_uplink * fraction;
  return std::max(r, DataRate::mbps(1));
}

void StarlinkAccess::set_rain_attenuation_db(double db) {
  rain_db_ = std::max(0.0, db);
  // Relative spectral efficiency log2(1+SNR) at the faded SNR, against a
  // ~10 dB clear-sky link margin: 3 dB of rain costs ~25% capacity, 10 dB
  // about 70% — the collapse WetLinks correlates with heavy rain.
  constexpr double kClearSkySnrDb = 10.0;
  const double clear = std::log2(1.0 + std::pow(10.0, kClearSkySnrDb / 10.0));
  const double faded = std::log2(1.0 + std::pow(10.0, (kClearSkySnrDb - rain_db_) / 10.0));
  rain_factor_ = std::clamp(faded / clear, 0.05, 1.0);
  // The wet medium is also burstier: Bad states arrive more often in
  // proportion to the lost margin.
  loss_up_->set_good_scale(sim_->now(), rain_factor_);
  loss_down_->set_good_scale(sim_->now(), rain_factor_);
}

void StarlinkAccess::set_hard_outage(bool active) {
  gate_up_.set_open(!active);
  gate_down_.set_open(!active);
}

void StarlinkAccess::set_satellite_health(SatIndex sat, bool healthy) {
  scheduler_->set_satellite_health(sat, healthy);
}

void StarlinkAccess::set_plane_health(int plane, bool healthy) {
  scheduler_->set_plane_health(plane, healthy);
}

void StarlinkAccess::set_gateway_health(int gateway, bool healthy) {
  scheduler_->set_gateway_health(gateway, healthy);
}

void StarlinkAccess::set_load_override(int direction, double utilization) {
  (direction == 0 ? up_load_ : down_load_)->set_utilization_override(utilization);
  if (cell_model_ != nullptr) cell_model_->set_load_override(direction, utilization);
}

void StarlinkAccess::clear_load_override(int direction) {
  (direction == 0 ? up_load_ : down_load_)->clear_override();
  if (cell_model_ != nullptr) cell_model_->clear_load_override(direction);
}

void StarlinkAccess::force_reconfiguration() { scheduler_->invalidate(); }

void StarlinkAccess::set_terminal_position(const GeoPoint& p) {
  config_.terminal = p;
  scheduler_->set_terminal(p);  // the leo.visible_sats probe reads config_.terminal
}

void StarlinkAccess::set_mobility_outage(bool active) {
  mobility_gate_up_.set_open(!active);
  mobility_gate_down_.set_open(!active);
}

Duration StarlinkAccess::propagation_one_way(TimePoint t) {
  const HandoverScheduler::Path& path = scheduler_->path_at(t);
  if (!path.connected) return config_.handover_slot;  // effectively stalled
  return path.propagation_one_way();
}

void StarlinkAccess::note_enqueue(int direction, std::uint32_t bytes, TimePoint now) {
  const double window_s = config_.utilization_window.to_seconds();
  const double dt = (now - ema_last_[direction]).to_seconds();
  if (dt > 0) {
    ema_bytes_[direction] *= std::exp(-dt / window_s);
    ema_last_[direction] = now;
  }
  ema_bytes_[direction] += bytes;
}

double StarlinkAccess::own_utilization(int direction, TimePoint now, DataRate capacity) {
  const double window_s = config_.utilization_window.to_seconds();
  const double dt = (now - ema_last_[direction]).to_seconds();
  const double bytes = ema_bytes_[direction] * std::exp(-std::max(0.0, dt) / window_s);
  const double rate_bps = bytes * 8.0 / window_s;
  return std::clamp(rate_bps / capacity.bits_per_second(), 0.0, 1.0);
}

Duration StarlinkAccess::access_delay(TimePoint t, bool up) {
  const int direction = up ? 0 : 1;
  DelayPieces& pieces = last_draw_[direction];
  pieces = DelayPieces{};

  // Each term is accumulated into exactly one provenance piece, so the four
  // pieces always sum to the returned delay to the nanosecond. path_at is
  // slot-cached, so re-querying connectivity draws nothing.
  const Duration prop = propagation_one_way(t);
  const bool stalled = !scheduler_->path_at(t).connected;
  (stalled ? pieces.stall_ns : pieces.prop_ns) += prop.ns();
  Duration delay = prop;

  const Duration proc = up ? config_.processing_up : config_.processing_down;
  pieces.access_ns += proc.ns();
  delay += proc;

  // Sub-IP (MAC/PHY) queueing under own load.
  const DataRate capacity = up ? uplink_capacity(t) : downlink_capacity(t);
  const double utilization = own_utilization(direction, t, capacity);
  const Duration loaded = (up ? config_.loaded_latency_max_up : config_.loaded_latency_max_down) *
                          (utilization * utilization);
  pieces.queue_ns += loaded.ns();
  delay += loaded;

  // Frame-scheduling wait: fresh draw per packet.
  const Duration frame = up ? config_.uplink_frame : config_.downlink_frame;
  const Duration frame_wait =
      Duration::from_seconds(jitter_rng_.uniform(0.0, frame.to_seconds()));
  pieces.access_ns += frame_wait.ns();
  delay += frame_wait;
  // Heavy-tail component (PHY retransmissions, scheduling collisions).
  const Duration tail = Duration::from_seconds(
      jitter_rng_.exponential(config_.tail_jitter_mean.to_seconds()));
  pieces.access_ns += tail.ns();
  delay += tail;

  // Beam/MCS allocation penalty: constant within a 15s slot & direction.
  const std::int64_t slot = t.ns() / config_.handover_slot.ns();
  Rng slot_rng = jitter_rng_.fork((up ? "slot-up/" : "slot-down/") + std::to_string(slot));
  const Duration slot_penalty = Duration::from_seconds(
      slot_rng.uniform(0.0, config_.slot_penalty_max.to_seconds()));
  pieces.stall_ns += slot_penalty.ns();
  delay += slot_penalty;

  if (config_.epoch_latency_offset) {
    const Duration offset = config_.epoch_latency_offset(t);
    pieces.prop_ns += offset.ns();
    delay += offset;
  }

  // FIFO preservation: never deliver before the previous packet in this
  // direction (real schedulers drain queues in order). The pushback is time
  // spent behind the previous packet, i.e. queueing.
  TimePoint& last = up ? last_arrival_up_ : last_arrival_down_;
  TimePoint arrival = t + delay;
  if (arrival <= last) arrival = last + Duration::nanos(1);
  last = arrival;
  pieces.queue_ns += ((arrival - t) - delay).ns();
  return arrival - t;
}

void StarlinkAccess::attribute_delay(int direction, sim::ProvenanceTag& tag,
                                     Duration total) const {
  const DelayPieces& p = last_draw_[direction];
  if (p.prop_ns != 0) tag.add(obs::kPropagation, Duration::nanos(p.prop_ns));
  if (p.queue_ns != 0) tag.add(obs::kQueue, Duration::nanos(p.queue_ns));
  if (p.access_ns != 0) tag.add(obs::kAccessProc, Duration::nanos(p.access_ns));
  if (p.stall_ns != 0) tag.add(obs::kHandoverStall, Duration::nanos(p.stall_ns));
  assert(p.prop_ns + p.queue_ns + p.access_ns + p.stall_ns == total.ns() &&
         "access-delay pieces must sum to the drawn delay");
  (void)total;
}

}  // namespace slp::leo
