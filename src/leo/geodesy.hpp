// geodesy.hpp — Earth geometry for satellite links.
//
// A spherical Earth is accurate to ~0.3% in distance, far below the latency
// calibration tolerances of this reproduction, and keeps the math auditable.
#pragma once

#include <cmath>
#include <string>

#include "util/units.hpp"

namespace slp::leo {

inline constexpr double kEarthRadiusM = 6'371'000.0;
inline constexpr double kMuEarth = 3.986004418e14;        ///< gravitational parameter, m^3/s^2
inline constexpr double kEarthRotationRadS = 7.2921159e-5;
inline constexpr double kSpeedOfLightMps = 299'792'458.0;
/// Effective propagation speed in RF free space is c (unlike fiber's ~2c/3).
inline constexpr double kRfSpeedMps = kSpeedOfLightMps;

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return {a.x * s, a.y * s, a.z * s}; }
  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y + z * z); }
  [[nodiscard]] constexpr double dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
};

/// A point on (or above) the Earth surface.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
  double alt_m = 0.0;
};

[[nodiscard]] constexpr double deg_to_rad(double deg) { return deg * std::numbers::pi / 180.0; }
[[nodiscard]] constexpr double rad_to_deg(double rad) { return rad * 180.0 / std::numbers::pi; }

/// Earth-centred, Earth-fixed cartesian coordinates of a geographic point.
[[nodiscard]] Vec3 to_ecef(const GeoPoint& p);

/// Great-circle (surface) distance between two points, metres.
[[nodiscard]] double great_circle_distance_m(const GeoPoint& a, const GeoPoint& b);

/// Straight-line distance between a ground point and a position in ECEF.
[[nodiscard]] double slant_range_m(const GeoPoint& ground, const Vec3& sat_ecef);

/// Same, with the ground point already converted (hot visibility loops call
/// this thousands of times per tick against one fixed ground point; the
/// result is bit-identical to the GeoPoint overload).
[[nodiscard]] double slant_range_m(const Vec3& ground_ecef, const Vec3& sat_ecef);

/// Elevation angle (degrees above horizon) of `sat_ecef` seen from `ground`.
/// Negative if below the horizon.
[[nodiscard]] double elevation_deg(const GeoPoint& ground, const Vec3& sat_ecef);

/// Same, with the ground point already converted (bit-identical result).
[[nodiscard]] double elevation_deg(const Vec3& ground_ecef, const Vec3& sat_ecef);

/// Inverse of to_ecef (spherical Earth): geographic coordinates of an ECEF
/// position. Longitude lands in [-180, 180].
[[nodiscard]] GeoPoint from_ecef(const Vec3& v);

/// Initial great-circle bearing from `from` toward `to`, degrees clockwise
/// from true north in [0, 360).
[[nodiscard]] double initial_bearing_deg(const GeoPoint& from, const GeoPoint& to);

/// Azimuth (degrees clockwise from true north, [0, 360)) of `sat_ecef` as
/// seen from `ground`. Together with elevation_deg this places a satellite
/// on the local sky dome, which is what heading-relative obstruction masks
/// (src/mobility/obstruction.hpp) consume.
[[nodiscard]] double azimuth_deg(const GeoPoint& ground, const Vec3& sat_ecef);

/// One-way propagation delay over a straight-line RF path.
[[nodiscard]] Duration rf_propagation_delay(double distance_m);

/// One-way delay of a terrestrial fiber path between two points, assuming a
/// typical path-stretch factor and 2/3 c in glass.
[[nodiscard]] Duration fiber_delay(const GeoPoint& a, const GeoPoint& b,
                                   double path_stretch = 1.7);

}  // namespace slp::leo
