// access.hpp — the Starlink access network as a pluggable topology slice.
//
// Builds the chain the paper's PC-Starlink sat behind:
//
//   client -- CPE NAT (192.168.1.1) ==satellite link== CGN (100.64.0.1)
//          -- backhaul -- exit PoP router -- (caller attaches the internet)
//
// The satellite link is where all the Starlink-specific physics lives:
//   * per-packet one-way delay = bent-pipe propagation (from the handover
//     scheduler's geometry) + fixed processing + frame-scheduling jitter,
//     with FIFO order preserved;
//   * time-varying capacity = cell capacity x available fraction from the
//     shared-cell load process;
//   * medium loss = Gilbert-Elliott bursts + rare outages.
//
// Calibration constants target the paper's Figure 1/3/5 numbers and are
// documented field by field.
#pragma once

#include <memory>

#include "leo/handover.hpp"
#include "leo/places.hpp"
#include "phy/gilbert_elliott.hpp"
#include "phy/load_process.hpp"
#include "phy/outage.hpp"
#include "sim/network.hpp"

namespace slp::leo {

/// Pluggable source of the shared-cell available fraction. The default is
/// the synthetic phy::LoadProcess pair owned by StarlinkAccess; fleet::Fleet
/// installs an implementation backed by real per-cell contention among
/// simulated terminals (src/fleet/cell_arbiter.hpp). Directions follow
/// set_load_override: 0 = up, 1 = down.
class CellShareModel {
 public:
  virtual ~CellShareModel() = default;
  /// Fraction of the nominal cell capacity available to this terminal.
  virtual double available_fraction(int direction, TimePoint t) = 0;
  /// Scenario load-surge hooks (mirror LoadProcess's override semantics).
  virtual void set_load_override(int direction, double utilization) = 0;
  virtual void clear_load_override(int direction) = 0;
};

class StarlinkAccess {
 public:
  struct Config {
    GeoPoint terminal = places::kLouvainLaNeuve;
    Constellation::Config shell;          ///< default: Shell 1 (72x22 @ 550km/53deg)
    Duration handover_slot = Duration::seconds(15);
    double terminal_min_elevation_deg = 25.0;

    // --- capacity (calibrated to Figure 5) ---------------------------
    /// Nominal per-cell capacities; the user sees capacity x (1 - load).
    DataRate cell_downlink = DataRate::mbps(450);
    DataRate cell_uplink = DataRate::mbps(80);
    /// Fast-moving shared-cell load: the 2-second steps are what fills the
    /// queue at roughly constant cwnd and produces Figure 3's RTT-under-load
    /// distribution (capacity dips faster than cubic reacts).
    phy::LoadProcess::Config downlink_load{
        .mean_utilization = 0.55, .volatility = 0.05, .reversion = 0.15,
        .step = Duration::seconds(2), .diurnal_amplitude = 0.0,
        .diurnal_period = Duration::hours(24), .floor = 0.10, .ceiling = 0.93};
    phy::LoadProcess::Config uplink_load{
        .mean_utilization = 0.76, .volatility = 0.04, .reversion = 0.15,
        .step = Duration::seconds(2), .diurnal_amplitude = 0.0,
        .diurnal_period = Duration::hours(24), .floor = 0.2, .ceiling = 0.93};

    // --- latency (calibrated to Figure 1) ----------------------------
    /// Fixed per-direction processing: PHY/MAC pipeline + gateway modem.
    Duration processing_up = Duration::from_millis(1.5);
    Duration processing_down = Duration::from_millis(1.5);
    /// Frame-scheduling jitter: uplink grants arrive on a ~13.3ms cycle
    /// (packets wait U(0, cycle)), downlink scheduling is finer-grained.
    Duration uplink_frame = Duration::from_millis(13.3);
    Duration downlink_frame = Duration::from_millis(4.0);
    /// Per-slot beam/MCS allocation penalty, U(0, x) per direction, constant
    /// within a 15s slot: creates the slot-to-slot dispersion of Figure 1.
    Duration slot_penalty_max = Duration::from_millis(8.0);
    /// Heavy-tail per-packet component (scheduling collisions, retransmit at
    /// the PHY): exponential with this mean, per direction. Produces the
    /// paper's p95 near 70 ms without moving the median much.
    Duration tail_jitter_mean = Duration::from_millis(1.8);
    /// Gateway -> exit PoP terrestrial backhaul (one-way).
    Duration backhaul_delay = Duration::from_millis(2.0);
    /// MAC/PHY-layer queueing under load: extra one-way latency that grows
    /// with the user's own utilization of the direction (square law). This
    /// is sub-IP buffering in dish/gateway modems: it inflates the RTT of
    /// bulk transfers (Figure 3's +45 ms on the median) without requiring
    /// the transport to hold a deep IP queue.
    Duration loaded_latency_max_down = Duration::from_millis(95);
    Duration loaded_latency_max_up = Duration::from_millis(45);
    Duration utilization_window = Duration::seconds(1);

    // --- buffering (calibrated to Figure 3 RTT-under-load) -----------
    std::size_t downlink_queue_bytes = 1536 * 1024;
    std::size_t uplink_queue_bytes = 320 * 1024;

    // --- loss (calibrated to Table 2 / Figure 4) ---------------------
    /// Calibrated for Table 2's messages-mode ratios (~0.40-0.45%): bad
    /// states of ~250ms mean arriving every ~33s give a ~0.42% stationary
    /// loss share; the 0.55 in-state drop rate splits an episode into the
    /// few-packet bursts of Figure 4 while leaving most 12-second transfers
    /// untouched (the paper's Ookla tests mostly ran clean).
    phy::GilbertElliott::Config medium_loss{
        .mean_good = Duration::seconds(24),
        .mean_bad = Duration::from_millis(100),
        .loss_good = 0.0,
        .loss_bad = 0.55};
    /// The uplink medium is slightly worse than the downlink (Table 2 shows
    /// higher loss for uploads in both workloads): same chain, shorter good
    /// states.
    Duration uplink_medium_good = Duration::seconds(16);
    phy::OutageProcess::Config outage{
        .mean_interarrival = Duration::hours(3), .duration_mu = 0.3, .duration_sigma = 0.6};
    /// Loaded-link loss (Table 2's H3 columns): engages only when the
    /// satellite queue is filled past the threshold, producing the paper's
    /// frequent short loss events during bulk transfers while leaving the
    /// idle-link workloads (pings, messages) untouched.
    phy::UtilizationLoss::Config loaded_loss{
        .threshold = 0.45, .p_drop = 0.006, .burst_continue = 0.5, .max_burst = 4};

    /// Multiplies available capacity (campaign epochs, e.g. late-April dip).
    std::function<double(TimePoint)> epoch_capacity_factor;
    /// Adds a per-direction latency offset (campaign epochs).
    std::function<Duration(TimePoint)> epoch_latency_offset;
    /// Planes in service at t (densification epoch of Figure 2); null = all.
    std::function<int(TimePoint)> active_planes_fn;

    std::string rng_label = "starlink-access";
  };

  /// Builds the access slice inside `net`. The caller then wires
  /// `pop_uplink_interface()` into its internet topology.
  StarlinkAccess(sim::Network& net, Config config);
  ~StarlinkAccess();

  [[nodiscard]] sim::Host& client() { return *client_; }
  [[nodiscard]] sim::Router& pop() { return *pop_; }
  [[nodiscard]] sim::Nat& cpe() { return *cpe_; }
  [[nodiscard]] sim::Nat& cgn() { return *cgn_; }
  [[nodiscard]] sim::Link& satellite_link() { return *sat_link_; }
  [[nodiscard]] HandoverScheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Public address of the access (what servers see): the CGN external side.
  [[nodiscard]] sim::Ipv4Addr public_addr() const;

  /// Instantaneous capacities (for tests and debugging).
  [[nodiscard]] DataRate downlink_capacity(TimePoint t);
  [[nodiscard]] DataRate uplink_capacity(TimePoint t);

  /// One-way delay components, exclusive of jitter (for tests).
  [[nodiscard]] Duration propagation_one_way(TimePoint t);

  // --- scenario hooks (src/scenario/) --------------------------------
  // Typed entry points the scenario Injector drives. None of them draws
  // randomness, so applying a scenario never perturbs the seeded streams —
  // the same timeline composes deterministically with any --seeds cell.

  /// Rain fade: attenuates the RF link by `db`. Capacity scales with the
  /// relative spectral efficiency at the faded SNR, and the Gilbert-Elliott
  /// Good-state mean shrinks by the same factor (a wet medium both slows
  /// and roughens the link — WetLinks' observation). 0 restores clear sky.
  void set_rain_attenuation_db(double db);
  [[nodiscard]] double rain_attenuation_db() const { return rain_db_; }

  /// Hard outage window (PoP failure, maintenance blip): closes a loss gate
  /// on both directions of the satellite link; every packet in the window is
  /// destroyed while the stochastic loss chains keep advancing through it.
  void set_hard_outage(bool active);
  [[nodiscard]] bool in_hard_outage() const { return !gate_up_.is_open(); }

  /// Satellite / plane / ground-station failures: delegate to the handover
  /// scheduler's health masks and force a reroute at the next path query.
  void set_satellite_health(SatIndex sat, bool healthy);
  void set_plane_health(int plane, bool healthy);
  void set_gateway_health(int gateway, bool healthy);

  /// Cell load surge: pins the shared-cell utilization of a direction
  /// (0 = up, 1 = down) until cleared.
  void set_load_override(int direction, double utilization);
  void clear_load_override(int direction);

  /// Maintenance reconfiguration: drops the cached handover slot so the
  /// terminal re-acquires a (possibly different) satellite immediately.
  void force_reconfiguration();

  /// Installs (or, with nullptr, removes) the shared-cell capacity source.
  /// While installed, downlink_capacity()/uplink_capacity() read the model
  /// instead of the built-in LoadProcess pair, and load-surge overrides are
  /// forwarded to it. The model must outlive its installation.
  void set_cell_share_model(CellShareModel* model) { cell_model_ = model; }
  [[nodiscard]] CellShareModel* cell_share_model() const { return cell_model_; }

  // --- mobility hooks (src/mobility/) --------------------------------
  // Like the scenario hooks, none of these draws randomness: a moving
  // terminal perturbs geometry and gating only, never the seeded streams.

  /// Re-homes the terminal: future visibility queries (scheduler slots and
  /// the leo.visible_sats probe) run from the new vantage point.
  void set_terminal_position(const GeoPoint& p);

  /// Full sky blockage while driving through a tunnel/underpass: closes a
  /// dedicated loss-gate pair on the satellite link. Kept separate from the
  /// scenario hard-outage gates so a tunnel window composes with (does not
  /// cancel) an overlapping PoP outage.
  void set_mobility_outage(bool active);
  [[nodiscard]] bool in_mobility_outage() const { return !mobility_gate_up_.is_open(); }

  [[nodiscard]] const Constellation& constellation() const { return *constellation_; }

 private:
  [[nodiscard]] Duration access_delay(TimePoint t, bool up);

  /// Exact nanosecond pieces of the most recent access_delay draw for one
  /// direction (0 = up, 1 = down). access_delay fills them as it composes
  /// the delay; the sat link's delay_attribution hook reads them immediately
  /// afterwards, so the pieces always sum to the drawn total exactly.
  struct DelayPieces {
    std::int64_t prop_ns = 0;    ///< bent-pipe propagation + epoch offsets
    std::int64_t queue_ns = 0;   ///< sub-IP loaded latency + FIFO pushback
    std::int64_t access_ns = 0;  ///< processing + frame wait + tail jitter
    std::int64_t stall_ns = 0;   ///< disconnected stall + per-slot penalty
  };
  void attribute_delay(int direction, sim::ProvenanceTag& tag, Duration total) const;

  Config config_;
  std::unique_ptr<Constellation> constellation_;
  std::unique_ptr<HandoverScheduler> scheduler_;
  std::unique_ptr<phy::LoadProcess> down_load_;
  std::unique_ptr<phy::LoadProcess> up_load_;
  std::unique_ptr<phy::GilbertElliott> loss_up_;
  std::unique_ptr<phy::GilbertElliott> loss_down_;
  std::unique_ptr<phy::OutageProcess> outage_up_;
  std::unique_ptr<phy::OutageProcess> outage_down_;
  std::unique_ptr<phy::CompositeLossModel> composite_up_;
  std::unique_ptr<phy::CompositeLossModel> composite_down_;
  std::unique_ptr<phy::UtilizationLoss> loaded_up_;
  std::unique_ptr<phy::UtilizationLoss> loaded_down_;
  phy::GateLoss gate_up_;    ///< scenario hard-outage gates (normally open)
  phy::GateLoss gate_down_;
  phy::GateLoss mobility_gate_up_;  ///< tunnel gates (normally open)
  phy::GateLoss mobility_gate_down_;
  CellShareModel* cell_model_ = nullptr;  ///< non-owning; null = LoadProcess
  double rain_db_ = 0.0;
  double rain_factor_ = 1.0;  ///< capacity multiplier derived from rain_db_
  Rng jitter_rng_;

  sim::Simulator* sim_ = nullptr;
  std::uint64_t visible_probe_id_ = 0;  ///< "leo.visible_sats" sampler probe

  sim::Host* client_ = nullptr;
  sim::Nat* cpe_ = nullptr;
  sim::Nat* cgn_ = nullptr;
  sim::Router* pop_ = nullptr;
  sim::Link* sat_link_ = nullptr;

  // FIFO preservation under jittered delay: a packet may never overtake the
  // previous one on the same direction.
  TimePoint last_arrival_up_;
  TimePoint last_arrival_down_;

  DelayPieces last_draw_[2];  ///< provenance pieces of the latest delay draw

  // Own-traffic utilization EMA per direction (0 = up, 1 = down), fed by the
  // enqueue hook, consumed by access_delay.
  double ema_bytes_[2] = {0.0, 0.0};
  TimePoint ema_last_[2];
  void note_enqueue(int direction, std::uint32_t bytes, TimePoint now);
  [[nodiscard]] double own_utilization(int direction, TimePoint now, DataRate capacity);
};

}  // namespace slp::leo
