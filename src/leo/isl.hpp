// isl.hpp — inter-satellite-link latency estimation (the paper's §4 outlook).
//
// The paper observed that ISLs were not yet enabled (transatlantic traffic
// exited in Europe) and anticipated their activation. This analytic model
// estimates what ISL routing would do to the RTTs of Figure 1's distant
// anchors: up to the constellation, a grid of laser hops approximating the
// great circle, and back down near the destination — at c in vacuum, which
// beats terrestrial fiber (2c/3 with path stretch) on long routes.
#pragma once

#include "leo/geodesy.hpp"

namespace slp::leo {

struct IslEstimate {
  double path_km = 0.0;
  Duration one_way;
  Duration rtt;
  int hops = 0;  ///< inter-satellite hops
};

struct IslModelConfig {
  double altitude_m = 550'000.0;
  /// Mean hop length of the ISL grid (neighbours in Shell 1 geometry).
  double hop_length_m = 1'900'000.0;
  /// Zig-zag factor of grid routing vs the great circle.
  double path_stretch = 1.25;
  /// Per-satellite forwarding latency.
  Duration per_hop_processing = Duration::from_micros(300);
  /// Ground-segment processing at both ends (UT + gateway/PoP).
  Duration end_processing = Duration::from_millis(6);
};

/// Estimated latency from ground point `a` to ground point `b` over ISLs.
[[nodiscard]] IslEstimate isl_latency(const GeoPoint& a, const GeoPoint& b,
                                      const IslModelConfig& config = {});

/// Terrestrial-fiber reference for the same pair (for the comparison table).
[[nodiscard]] Duration fiber_rtt(const GeoPoint& a, const GeoPoint& b);

}  // namespace slp::leo
