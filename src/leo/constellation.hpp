// constellation.hpp — Walker-delta LEO constellation kinematics.
//
// We model the Starlink Shell 1 deployment the paper measured against:
// ~1584 satellites at 550 km / 53° in 72 planes of 22. Orbits are circular;
// positions are propagated analytically (two-body, no perturbations), which
// is plenty for latency geometry over a measurement campaign.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "leo/geodesy.hpp"
#include "util/units.hpp"

namespace slp::leo {

struct SatIndex {
  int plane = -1;
  int slot = -1;  ///< position within the plane
  [[nodiscard]] bool valid() const { return plane >= 0 && slot >= 0; }
  friend bool operator==(SatIndex, SatIndex) = default;
};

class Constellation {
 public:
  struct Config {
    double altitude_m = 550'000.0;
    double inclination_deg = 53.0;
    int num_planes = 72;
    int sats_per_plane = 22;
    /// Walker phasing factor F: inter-plane phase offset = F * 360 / (P*S).
    int phase_factor = 17;
    /// RAAN of plane 0 at t=0 (degrees).
    double raan0_deg = 0.0;
  };

  explicit Constellation(Config config);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] int total_satellites() const {
    return config_.num_planes * config_.sats_per_plane;
  }
  [[nodiscard]] Duration orbital_period() const;

  /// ECEF position of a satellite at simulation time t.
  [[nodiscard]] Vec3 position_ecef(SatIndex sat, TimePoint t) const;

  struct VisibleSat {
    SatIndex sat;
    double elevation_deg = 0.0;
    double slant_range_m = 0.0;
  };

  /// All satellites above `min_elevation_deg` from `ground` at time t,
  /// restricted to the first `active_planes` planes (constellation
  /// densification epochs enable more planes). Pass 0 for all planes.
  [[nodiscard]] std::vector<VisibleSat> visible_from(const GeoPoint& ground, TimePoint t,
                                                     double min_elevation_deg,
                                                     int active_planes = 0) const;

  /// Buffer-reusing overload for periodic callers (the 15 s handover tick):
  /// clears `out` and fills it with the same result as the returning
  /// overload, without allocating once `out` has warmed up.
  void visible_from(const GeoPoint& ground, TimePoint t, double min_elevation_deg,
                    int active_planes, std::vector<VisibleSat>& out) const;

  /// Number of satellites visible_from would return, without materializing
  /// them (observability probes only need the count).
  [[nodiscard]] int count_visible(const GeoPoint& ground, TimePoint t,
                                  double min_elevation_deg, int active_planes = 0) const;

  /// The visible satellite with the highest elevation, if any.
  [[nodiscard]] std::optional<VisibleSat> best_visible(const GeoPoint& ground, TimePoint t,
                                                       double min_elevation_deg,
                                                       int active_planes = 0) const;

 private:
  /// Calls f(SatIndex, elevation_deg, ecef_position) for every satellite in
  /// the first `planes` planes above `min_elevation_deg`, in (plane, slot)
  /// order. Whole planes whose orbital band cannot clear the elevation mask
  /// from `ground` are skipped without touching their satellites.
  template <typename F>
  void for_each_visible(const GeoPoint& ground, TimePoint t, double min_elevation_deg,
                        int active_planes, F&& f) const;

  [[nodiscard]] int clamp_planes(int active_planes) const {
    return (active_planes <= 0 || active_planes > config_.num_planes) ? config_.num_planes
                                                                      : active_planes;
  }

  Config config_;
  double mean_motion_rad_s_;  ///< orbital angular velocity
  double semi_major_m_;

  // Time-invariant ephemeris constants, precomputed at construction so the
  // per-query work is one sincos of each time-dependent angle. All values
  // are produced by the exact expressions the original per-call code used,
  // keeping every position bit-identical.
  double cos_incl_ = 1.0;
  double sin_incl_ = 0.0;
  double node_drift_rad_s_ = 0.0;        ///< d(RAAN)/dt: J2 regression − Earth rotation
  std::vector<double> plane_node0_rad_;  ///< RAAN of each plane at t=0
  std::vector<double> theta0_rad_;       ///< [plane*S+slot]: slot + Walker phase angle
};

/// The paper's ground segment: gateways the Belgian beta service used, with
/// the two exit PoPs (Netherlands & Germany) the authors observed.
struct Gateway {
  std::string name;
  GeoPoint location;
};

[[nodiscard]] std::vector<Gateway> default_european_gateways();

/// The European trio plus gateways near the testbed's overseas anchors
/// (New York, Fremont, Singapore), for multi-vantage campaigns that span
/// the paper's full anchor set.
[[nodiscard]] std::vector<Gateway> default_global_gateways();

}  // namespace slp::leo
