#include "leo/handover.hpp"

#include <cassert>
#include <limits>
#include <string>

namespace slp::leo {

HandoverScheduler::HandoverScheduler(const Constellation& constellation, Config config, Rng rng)
    : constellation_{&constellation}, config_{std::move(config)}, rng_{rng} {
  assert(!config_.gateways.empty());
  gateway_ecef_.reserve(config_.gateways.size());
  for (const Gateway& gw : config_.gateways) gateway_ecef_.push_back(to_ecef(gw.location));
}

void HandoverScheduler::set_obs(obs::Recorder* rec) {
  if (rec == nullptr) {
    obs_slots_ = {};
    obs_handovers_ = {};
    obs_unconnected_ = {};
    trace_ = nullptr;
    return;
  }
  if (rec->options().metrics) {
    obs_slots_ = rec->registry().counter("leo.slots_computed");
    obs_handovers_ = rec->registry().counter("leo.handovers");
    obs_unconnected_ = rec->registry().counter("leo.unconnected_slots");
  }
  trace_ = rec->trace().enabled() ? &rec->trace() : nullptr;
}

void HandoverScheduler::set_satellite_health(SatIndex sat, bool healthy) {
  if (!sat.valid()) return;
  if (healthy) failed_sats_.erase({sat.plane, sat.slot});
  else failed_sats_.insert({sat.plane, sat.slot});
  invalidate();
}

void HandoverScheduler::set_plane_health(int plane, bool healthy) {
  if (healthy) failed_planes_.erase(plane);
  else failed_planes_.insert(plane);
  invalidate();
}

void HandoverScheduler::set_gateway_health(int gateway, bool healthy) {
  if (gateway < 0 || gateway >= static_cast<int>(config_.gateways.size())) return;
  if (healthy) failed_gateways_.erase(gateway);
  else failed_gateways_.insert(gateway);
  invalidate();
}

bool HandoverScheduler::satellite_healthy(SatIndex sat) const {
  return !failed_planes_.contains(sat.plane) && !failed_sats_.contains({sat.plane, sat.slot});
}

bool HandoverScheduler::gateway_healthy(int gateway) const {
  return !failed_gateways_.contains(gateway);
}

void HandoverScheduler::invalidate() { cached_slot_ = -1; }

const HandoverScheduler::Path& HandoverScheduler::path_at(TimePoint t) {
  const std::int64_t slot = t.ns() / config_.slot.ns();
  if (slot != cached_slot_) {
    cached_slot_ = slot;
    const TimePoint slot_start = TimePoint::from_ns(slot * config_.slot.ns());
    cached_path_ = compute_path(slot_start);
    stats_.slots_computed++;
    obs_slots_.add();
    bool handover = false;
    if (cached_path_.connected) {
      handover = last_sat_.valid() && !(cached_path_.sat == last_sat_);
      if (handover) {
        stats_.handovers++;
        obs_handovers_.add();
      }
      last_sat_ = cached_path_.sat;
    } else {
      stats_.unconnected_slots++;
      obs_unconnected_.add();
    }
    if (trace_ != nullptr) {
      // One complete span per reconfiguration slot: visible in Perfetto as a
      // contiguous ribbon with sat/gateway identity, gaps = unconnected.
      std::string args = "{\"connected\":";
      args += cached_path_.connected ? "true" : "false";
      if (cached_path_.connected) {
        args += ",\"sat\":\"" + std::to_string(cached_path_.sat.plane) + "/" +
                std::to_string(cached_path_.sat.slot) + "\",\"gw\":" +
                std::to_string(cached_path_.gateway) +
                ",\"handover\":" + (handover ? "true" : "false");
      }
      args += "}";
      trace_->span("leo", cached_path_.connected ? "slot" : "unconnected", slot_start,
                   slot_start + config_.slot, std::move(args));
      if (handover) trace_->instant("leo", "handover", slot_start);
    }
  }
  return cached_path_;
}

HandoverScheduler::Path HandoverScheduler::compute_path(TimePoint slot_start) {
  const int active_planes =
      config_.active_planes_fn ? config_.active_planes_fn(slot_start) : 0;
  constellation_->visible_from(config_.terminal, slot_start,
                               config_.terminal_min_elevation_deg, active_planes,
                               candidates_buf_);

  // Deterministic per-slot choice, independent of query order: derive the
  // randomness from the slot index, not from a shared advancing stream.
  Rng slot_rng = rng_.fork(std::to_string(slot_start.ns() / config_.slot.ns()));

  // Random serving satellite among candidates that can also reach a gateway
  // (bent-pipe requirement: same satellite must see UT and gateway).
  usable_buf_.clear();
  for (const auto& cand : candidates_buf_) {
    if (!satellite_healthy(cand.sat)) continue;
    const Vec3 sat_pos = constellation_->position_ecef(cand.sat, slot_start);
    if (filter_ && !filter_(cand, azimuth_deg(config_.terminal, sat_pos))) continue;
    int best_gw = -1;
    double best_slant = std::numeric_limits<double>::max();
    for (std::size_t g = 0; g < config_.gateways.size(); ++g) {
      if (failed_gateways_.contains(static_cast<int>(g))) continue;
      if (elevation_deg(gateway_ecef_[g], sat_pos) < config_.gateway_min_elevation_deg) continue;
      const double slant = slant_range_m(gateway_ecef_[g], sat_pos);
      if (slant < best_slant) {
        best_slant = slant;
        best_gw = static_cast<int>(g);
      }
    }
    if (best_gw >= 0) usable_buf_.emplace_back(cand, best_gw);
  }

  Path path;
  if (usable_buf_.empty()) return path;  // not connected this slot

  const auto& [sat, gw] = usable_buf_[slot_rng.index(usable_buf_.size())];
  path.connected = true;
  path.sat = sat.sat;
  path.gateway = gw;
  path.terminal_slant_m = sat.slant_range_m;
  path.terminal_elevation_deg = sat.elevation_deg;
  path.gateway_slant_m =
      slant_range_m(gateway_ecef_[static_cast<std::size_t>(gw)],
                    constellation_->position_ecef(sat.sat, slot_start));
  return path;
}

}  // namespace slp::leo
