#include "leo/constellation.hpp"

#include <cassert>
#include <cmath>

#include "obs/profile.hpp"

namespace slp::leo {

Constellation::Constellation(Config config) : config_{config} {
  assert(config_.num_planes > 0 && config_.sats_per_plane > 0);
  semi_major_m_ = kEarthRadiusM + config_.altitude_m;
  mean_motion_rad_s_ = std::sqrt(kMuEarth / (semi_major_m_ * semi_major_m_ * semi_major_m_));

  // Precompute every time-invariant term of the ephemeris. The expressions
  // below are verbatim from the previous per-call code (same literals, same
  // association), so each precomputed constant — and therefore every
  // position — is bit-identical to what the old path produced.
  const double incl = deg_to_rad(config_.inclination_deg);
  cos_incl_ = std::cos(incl);
  sin_incl_ = std::sin(incl);

  // Earth rotation moves the ECEF-frame node westward, and J2 nodal
  // regression precesses the planes (~-4.5 deg/day at 550 km / 53 deg).
  // Without precession the geometry repeats every sidereal day and
  // manufactures a spurious hour-of-day RTT pattern that the paper's Mood's
  // test (correctly) does not see.
  const double j2_rate = -1.5 * 1.08263e-3 *
                         (kEarthRadiusM / semi_major_m_) * (kEarthRadiusM / semi_major_m_) *
                         mean_motion_rad_s_ * cos_incl_;
  node_drift_rad_s_ = j2_rate - kEarthRotationRadS;

  plane_node0_rad_.resize(static_cast<std::size_t>(config_.num_planes));
  for (int plane = 0; plane < config_.num_planes; ++plane) {
    // Ascending node at t=0: planes spread over 360 deg.
    plane_node0_rad_[static_cast<std::size_t>(plane)] =
        deg_to_rad(config_.raan0_deg) +
        2.0 * std::numbers::pi * static_cast<double>(plane) / config_.num_planes;
  }

  theta0_rad_.resize(static_cast<std::size_t>(config_.num_planes) *
                     static_cast<std::size_t>(config_.sats_per_plane));
  for (int plane = 0; plane < config_.num_planes; ++plane) {
    for (int slot = 0; slot < config_.sats_per_plane; ++slot) {
      // In-plane true anomaly at t=0: slot spacing + Walker inter-plane
      // phasing (motion adds mean_motion * t at query time).
      const double slot_angle =
          2.0 * std::numbers::pi * static_cast<double>(slot) / config_.sats_per_plane;
      const double phase_angle = 2.0 * std::numbers::pi * config_.phase_factor *
                                 static_cast<double>(plane) /
                                 (config_.num_planes * config_.sats_per_plane);
      theta0_rad_[static_cast<std::size_t>(plane) * config_.sats_per_plane + slot] =
          slot_angle + phase_angle;
    }
  }
}

Duration Constellation::orbital_period() const {
  return Duration::from_seconds(2.0 * std::numbers::pi / mean_motion_rad_s_);
}

Vec3 Constellation::position_ecef(SatIndex sat, TimePoint t) const {
  assert(sat.plane >= 0 && sat.plane < config_.num_planes);
  assert(sat.slot >= 0 && sat.slot < config_.sats_per_plane);
  const double ts = t.to_seconds();

  const double theta =
      theta0_rad_[static_cast<std::size_t>(sat.plane) * config_.sats_per_plane + sat.slot] +
      mean_motion_rad_s_ * ts;
  const double raan = plane_node0_rad_[static_cast<std::size_t>(sat.plane)] +
                      node_drift_rad_s_ * ts;

  // Position in the orbital plane, then rotate by inclination and RAAN.
  const double xp = semi_major_m_ * std::cos(theta);
  const double yp = semi_major_m_ * std::sin(theta);
  const Vec3 in_plane{xp, yp * cos_incl_, yp * sin_incl_};
  const double cr = std::cos(raan);
  const double sr = std::sin(raan);
  return Vec3{in_plane.x * cr - in_plane.y * sr,
              in_plane.x * sr + in_plane.y * cr, in_plane.z};
}

template <typename F>
void Constellation::for_each_visible(const GeoPoint& ground, TimePoint t,
                                     double min_elevation_deg, int active_planes,
                                     F&& f) const {
  const int planes = clamp_planes(active_planes);
  const int sats_per_plane = config_.sats_per_plane;
  const double ts = t.to_seconds();
  const double motion = mean_motion_rad_s_ * ts;
  const double drift = node_drift_rad_s_ * ts;

  const Vec3 g = to_ecef(ground);
  const double r_g = g.norm();

  // Plane-level culling. A satellite at orbit radius a is above elevation e
  // from a ground point at radius r only within central angle
  // λmax = acos((r/a)·cos e) − e of that point (spherical Earth, exact). The
  // minimum central angle from the ground direction u to a plane's orbital
  // ring is arcsin|u·w| (w = ring normal), so |u·w| > sin λmax proves the
  // whole plane invisible without touching its satellites. The margin keeps
  // the bound conservative against FP rounding, so culling can never change
  // a result — surviving planes are evaluated exactly as before.
  bool cull = false;
  double sin_lam_max = 1.0;
  Vec3 u{};
  if (r_g > 0.0 && r_g < semi_major_m_) {
    const double e_rad = deg_to_rad(min_elevation_deg);
    const double arg = (r_g / semi_major_m_) * std::cos(e_rad);
    if (arg > -1.0 && arg < 1.0) {
      constexpr double kMarginRad = 1e-4;
      const double lam_max = std::acos(arg) - e_rad + kMarginRad;
      if (lam_max > 0.0 && lam_max < std::numbers::pi / 2.0) {
        cull = true;
        sin_lam_max = std::sin(lam_max);
        u = g * (1.0 / r_g);
      }
    }
  }

  for (int plane = 0; plane < planes; ++plane) {
    const double raan = plane_node0_rad_[static_cast<std::size_t>(plane)] + drift;
    const double cr = std::cos(raan);
    const double sr = std::sin(raan);
    if (cull) {
      const double dot = u.x * (sr * sin_incl_) - u.y * (cr * sin_incl_) + u.z * cos_incl_;
      if (std::abs(dot) > sin_lam_max) continue;
    }
    const double* theta0 =
        &theta0_rad_[static_cast<std::size_t>(plane) * sats_per_plane];
    for (int slot = 0; slot < sats_per_plane; ++slot) {
      const double theta = theta0[slot] + motion;
      const double xp = semi_major_m_ * std::cos(theta);
      const double yp = semi_major_m_ * std::sin(theta);
      const Vec3 in_plane{xp, yp * cos_incl_, yp * sin_incl_};
      const Vec3 pos{in_plane.x * cr - in_plane.y * sr,
                     in_plane.x * sr + in_plane.y * cr, in_plane.z};
      const double el = elevation_deg(g, pos);
      if (el >= min_elevation_deg) f(SatIndex{plane, slot}, el, slant_range_m(g, pos));
    }
  }
}

std::vector<Constellation::VisibleSat> Constellation::visible_from(const GeoPoint& ground,
                                                                   TimePoint t,
                                                                   double min_elevation_deg,
                                                                   int active_planes) const {
  std::vector<VisibleSat> out;
  visible_from(ground, t, min_elevation_deg, active_planes, out);
  return out;
}

void Constellation::visible_from(const GeoPoint& ground, TimePoint t,
                                 double min_elevation_deg, int active_planes,
                                 std::vector<VisibleSat>& out) const {
  const obs::SectionTimer wall{obs::Section::kEphemeris};
  out.clear();
  for_each_visible(ground, t, min_elevation_deg, active_planes,
                   [&out](SatIndex sat, double el, double slant) {
                     out.push_back(VisibleSat{sat, el, slant});
                   });
}

int Constellation::count_visible(const GeoPoint& ground, TimePoint t,
                                 double min_elevation_deg, int active_planes) const {
  const obs::SectionTimer wall{obs::Section::kEphemeris};
  int count = 0;
  for_each_visible(ground, t, min_elevation_deg, active_planes,
                   [&count](SatIndex, double, double) { ++count; });
  return count;
}

std::optional<Constellation::VisibleSat> Constellation::best_visible(const GeoPoint& ground,
                                                                     TimePoint t,
                                                                     double min_elevation_deg,
                                                                     int active_planes) const {
  const obs::SectionTimer wall{obs::Section::kEphemeris};
  std::optional<VisibleSat> best;
  for_each_visible(ground, t, min_elevation_deg, active_planes,
                   [&best](SatIndex sat, double el, double slant) {
                     if (!best || el > best->elevation_deg) best = VisibleSat{sat, el, slant};
                   });
  return best;
}

std::vector<Gateway> default_european_gateways() {
  // Early Starlink gateways serving Benelux beta users; the paper observed
  // exit points in the Netherlands and Germany.
  return {
      Gateway{"aerzen-de", GeoPoint{52.05, 9.26, 0.0}},
      Gateway{"turnhout-be", GeoPoint{51.32, 4.95, 0.0}},
      Gateway{"gravelines-fr", GeoPoint{50.99, 2.13, 0.0}},
  };
}

std::vector<Gateway> default_global_gateways() {
  std::vector<Gateway> gws = default_european_gateways();
  // Gateways close to the testbed's non-European anchor metros, so every
  // multi-vantage terminal has a plausible bent-pipe exit nearby.
  gws.push_back(Gateway{"newyork-us", GeoPoint{41.07, -74.54, 0.0}});
  gws.push_back(Gateway{"fremont-us", GeoPoint{37.49, -121.93, 0.0}});
  gws.push_back(Gateway{"singapore-sg", GeoPoint{1.33, 103.70, 0.0}});
  return gws;
}

}  // namespace slp::leo
