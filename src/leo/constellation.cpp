#include "leo/constellation.hpp"

#include <cassert>
#include <cmath>

namespace slp::leo {

Constellation::Constellation(Config config) : config_{config} {
  assert(config_.num_planes > 0 && config_.sats_per_plane > 0);
  semi_major_m_ = kEarthRadiusM + config_.altitude_m;
  mean_motion_rad_s_ = std::sqrt(kMuEarth / (semi_major_m_ * semi_major_m_ * semi_major_m_));
}

Duration Constellation::orbital_period() const {
  return Duration::from_seconds(2.0 * std::numbers::pi / mean_motion_rad_s_);
}

Vec3 Constellation::position_ecef(SatIndex sat, TimePoint t) const {
  assert(sat.plane >= 0 && sat.plane < config_.num_planes);
  assert(sat.slot >= 0 && sat.slot < config_.sats_per_plane);
  const double ts = t.to_seconds();

  // In-plane true anomaly: slot spacing + Walker inter-plane phasing + motion.
  const double slot_angle =
      2.0 * std::numbers::pi * static_cast<double>(sat.slot) / config_.sats_per_plane;
  const double phase_angle = 2.0 * std::numbers::pi * config_.phase_factor *
                             static_cast<double>(sat.plane) /
                             (config_.num_planes * config_.sats_per_plane);
  const double theta = slot_angle + phase_angle + mean_motion_rad_s_ * ts;

  // Ascending node: planes spread over 360 deg; Earth rotation moves the
  // ECEF-frame node westward, and J2 nodal regression precesses the planes
  // (~-4.5 deg/day at 550 km / 53 deg). Without precession the geometry
  // repeats every sidereal day and manufactures a spurious hour-of-day RTT
  // pattern that the paper's Mood's test (correctly) does not see.
  const double cos_i = std::cos(deg_to_rad(config_.inclination_deg));
  const double j2_rate = -1.5 * 1.08263e-3 *
                         (kEarthRadiusM / semi_major_m_) * (kEarthRadiusM / semi_major_m_) *
                         mean_motion_rad_s_ * cos_i;
  const double raan = deg_to_rad(config_.raan0_deg) +
                      2.0 * std::numbers::pi * static_cast<double>(sat.plane) /
                          config_.num_planes +
                      (j2_rate - kEarthRotationRadS) * ts;
  const double incl = deg_to_rad(config_.inclination_deg);

  // Position in the orbital plane, then rotate by inclination and RAAN.
  const double xp = semi_major_m_ * std::cos(theta);
  const double yp = semi_major_m_ * std::sin(theta);
  const Vec3 in_plane{xp, yp * std::cos(incl), yp * std::sin(incl)};
  return Vec3{in_plane.x * std::cos(raan) - in_plane.y * std::sin(raan),
              in_plane.x * std::sin(raan) + in_plane.y * std::cos(raan), in_plane.z};
}

std::vector<Constellation::VisibleSat> Constellation::visible_from(const GeoPoint& ground,
                                                                   TimePoint t,
                                                                   double min_elevation_deg,
                                                                   int active_planes) const {
  const int planes = (active_planes <= 0 || active_planes > config_.num_planes)
                         ? config_.num_planes
                         : active_planes;
  std::vector<VisibleSat> out;
  for (int plane = 0; plane < planes; ++plane) {
    for (int slot = 0; slot < config_.sats_per_plane; ++slot) {
      const SatIndex idx{plane, slot};
      const Vec3 pos = position_ecef(idx, t);
      const double el = elevation_deg(ground, pos);
      if (el >= min_elevation_deg) {
        out.push_back(VisibleSat{idx, el, slant_range_m(ground, pos)});
      }
    }
  }
  return out;
}

std::optional<Constellation::VisibleSat> Constellation::best_visible(const GeoPoint& ground,
                                                                     TimePoint t,
                                                                     double min_elevation_deg,
                                                                     int active_planes) const {
  const auto all = visible_from(ground, t, min_elevation_deg, active_planes);
  std::optional<VisibleSat> best;
  for (const auto& v : all) {
    if (!best || v.elevation_deg > best->elevation_deg) best = v;
  }
  return best;
}

std::vector<Gateway> default_european_gateways() {
  // Early Starlink gateways serving Benelux beta users; the paper observed
  // exit points in the Netherlands and Germany.
  return {
      Gateway{"aerzen-de", GeoPoint{52.05, 9.26, 0.0}},
      Gateway{"turnhout-be", GeoPoint{51.32, 4.95, 0.0}},
      Gateway{"gravelines-fr", GeoPoint{50.99, 2.13, 0.0}},
  };
}

}  // namespace slp::leo
