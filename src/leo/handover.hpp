// handover.hpp — serving-satellite selection on the 15-second grid.
//
// Starlink user terminals are re-scheduled onto a (possibly different)
// satellite every 15 seconds. The scheduler below reproduces the observable
// consequences: the UT<->satellite<->gateway geometry (and hence the
// propagation component of RTT) is piecewise-constant over 15 s slots and
// jumps at slot boundaries. Satellite choice is *randomized among visible
// candidates* rather than always-best — the operator balances cells, the
// user does not get the optimal beam — which produces the few-ms slot-to-slot
// RTT dispersion seen in the paper's Figure 1 boxplots.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <utility>

#include "leo/constellation.hpp"
#include "obs/recorder.hpp"
#include "util/rng.hpp"

namespace slp::leo {

class HandoverScheduler {
 public:
  struct Config {
    GeoPoint terminal;
    Duration slot = Duration::seconds(15);
    double terminal_min_elevation_deg = 25.0;
    double gateway_min_elevation_deg = 20.0;
    std::vector<Gateway> gateways;
    /// Number of orbital planes in service at time t (densification epochs).
    /// Null = all planes.
    std::function<int(TimePoint)> active_planes_fn;
  };

  HandoverScheduler(const Constellation& constellation, Config config, Rng rng);

  struct Path {
    bool connected = false;
    SatIndex sat;
    int gateway = -1;               ///< index into config().gateways
    double terminal_slant_m = 0.0;  ///< UT -> satellite
    double gateway_slant_m = 0.0;   ///< satellite -> gateway
    double terminal_elevation_deg = 0.0;

    /// One-way bent-pipe propagation delay (UT -> sat -> gateway).
    [[nodiscard]] Duration propagation_one_way() const {
      return rf_propagation_delay(terminal_slant_m + gateway_slant_m);
    }
  };

  /// The serving path during the slot containing t. Cached per slot.
  [[nodiscard]] const Path& path_at(TimePoint t);

  // --- scenario fault hooks (src/scenario/) --------------------------
  // Failed satellites/planes/gateways are excluded from candidate sets; a
  // health change also invalidates the cached slot, so the terminal reroutes
  // at the *next* path query instead of waiting out the 15 s slot — the
  // observable behaviour of an in-service failure. Selection stays
  // deterministic: the per-slot RNG is forked from the slot index, so a
  // recomputed slot draws reproducibly from the filtered candidate set.
  void set_satellite_health(SatIndex sat, bool healthy);
  void set_plane_health(int plane, bool healthy);
  /// `gateway` indexes config().gateways; out-of-range indices are ignored.
  void set_gateway_health(int gateway, bool healthy);
  [[nodiscard]] bool satellite_healthy(SatIndex sat) const;
  [[nodiscard]] bool gateway_healthy(int gateway) const;
  /// Forces the next path_at() to recompute (maintenance reconfiguration).
  void invalidate();

  // --- mobility hooks (src/mobility/) --------------------------------
  // Re-homes the terminal to a new vantage point. Deliberately does NOT
  // invalidate the cached slot: the new position takes effect at the next
  // slot computation, and in-motion re-routes within a slot are driven
  // explicitly by the mobility epoch check (mobile_terminal.hpp), which
  // knows whether the *serving* satellite actually dropped out of view.
  void set_terminal(const GeoPoint& p) { config_.terminal = p; }

  /// Extra per-candidate gate composed on top of terminal_min_elevation_deg
  /// (heading-relative obstruction sectors). Receives the candidate and its
  /// azimuth from the terminal; returning false excludes it from the slot's
  /// usable set. Null disables. Azimuths are only computed while a filter is
  /// installed, so the static path pays nothing.
  using CandidateFilter = std::function<bool(const Constellation::VisibleSat&, double az_deg)>;
  void set_candidate_filter(CandidateFilter filter) { filter_ = std::move(filter); }

  [[nodiscard]] const Config& config() const { return config_; }

  struct Stats {
    std::uint64_t slots_computed = 0;
    std::uint64_t handovers = 0;     ///< serving satellite changed
    std::uint64_t unconnected_slots = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Wires metrics counters and per-slot trace spans (category "leo").
  /// Safe to call with nullptr (disables again).
  void set_obs(obs::Recorder* rec);

 private:
  [[nodiscard]] Path compute_path(TimePoint slot_start);

  const Constellation* constellation_;
  Config config_;
  Rng rng_;
  std::vector<Vec3> gateway_ecef_;  ///< precomputed config_.gateways locations
  // Scratch buffers reused across slots so the 15 s tick stops allocating.
  std::vector<Constellation::VisibleSat> candidates_buf_;
  std::vector<std::pair<Constellation::VisibleSat, int>> usable_buf_;  ///< sat, gateway idx
  CandidateFilter filter_;
  std::set<std::pair<int, int>> failed_sats_;  ///< (plane, slot)
  std::set<int> failed_planes_;
  std::set<int> failed_gateways_;
  std::int64_t cached_slot_ = -1;
  Path cached_path_;
  SatIndex last_sat_;
  Stats stats_;
  obs::Counter obs_slots_;
  obs::Counter obs_handovers_;
  obs::Counter obs_unconnected_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace slp::leo
