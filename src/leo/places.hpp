// places.hpp — geographic fixed points of the paper's measurement universe.
#pragma once

#include "leo/geodesy.hpp"

namespace slp::leo::places {

// The vantage point: UCLouvain campus, Louvain-la-Neuve, Belgium.
inline constexpr GeoPoint kLouvainLaNeuve{50.668, 4.611, 0.0};

// RIPE Atlas anchor cities from §2 ("Latency").
inline constexpr GeoPoint kBrussels{50.850, 4.352, 0.0};
inline constexpr GeoPoint kAntwerp{51.219, 4.402, 0.0};
inline constexpr GeoPoint kGhent{51.054, 3.725, 0.0};
inline constexpr GeoPoint kLiege{50.633, 5.567, 0.0};
inline constexpr GeoPoint kAmsterdam{52.370, 4.895, 0.0};
inline constexpr GeoPoint kNuremberg{49.452, 11.077, 0.0};
inline constexpr GeoPoint kNewYork{40.713, -74.006, 0.0};
inline constexpr GeoPoint kFremont{37.548, -121.989, 0.0};
inline constexpr GeoPoint kSingapore{1.352, 103.820, 0.0};

// Exit PoPs the paper observed (Netherlands and Germany).
inline constexpr GeoPoint kPopAmsterdam{52.303, 4.941, 0.0};   // AMS metro
inline constexpr GeoPoint kPopFrankfurt{50.110, 8.682, 0.0};   // FRA metro

}  // namespace slp::leo::places
