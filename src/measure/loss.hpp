// loss.hpp — QUIC packet-loss analysis, the paper's §3.2 methodology.
//
// "As in QUIC retransmitted data have different packet numbers from the
// original data and as quiche does not introduce packet number gaps, every
// missing packet number means the packet has been lost."
//
// The analyzer ingests the receiver-side (pn, arrival time) stream of one
// connection and derives: loss ratio, loss-*burst* lengths (consecutive
// missing pns per event, Figure 4) and loss-event durations (arrival gap
// bracketing the missing range, §3.2's microsecond-scale distribution).
#pragma once

#include <cstdint>
#include <vector>

#include "quic/quic.hpp"
#include "stats/histogram.hpp"
#include "stats/quantiles.hpp"

namespace slp::measure {

class LossAnalyzer {
 public:
  /// Subscribes to the connection's receive hook. The connection must
  /// outlive the analyzer's collection phase.
  void attach(quic::QuicConnection& conn);

  /// Manual feed (testing, or traces from elsewhere).
  void note_received(std::uint64_t pn, TimePoint at);

  struct Report {
    std::uint64_t packets_received = 0;
    std::uint64_t packets_lost = 0;
    std::uint64_t loss_events = 0;
    double loss_ratio = 0.0;
    stats::IntHistogram burst_lengths;      ///< per event, Figure 4
    stats::Samples event_durations_ms;      ///< per event, §3.2
    std::uint64_t outage_events = 0;        ///< events lasting > 1 s
  };

  /// Analyzes everything collected so far (across all attached connections,
  /// each with its own packet-number space).
  [[nodiscard]] Report analyze() const;

  /// Combines reports (e.g. across campaign transfers).
  static Report combine(const std::vector<Report>& reports);

 private:
  struct Arrival {
    std::uint64_t pn;
    TimePoint at;
  };
  std::vector<std::vector<Arrival>> traces_;  ///< one per attached connection

  static void analyze_trace(const std::vector<Arrival>& trace, Report& report);
};

}  // namespace slp::measure
