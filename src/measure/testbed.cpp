#include "measure/testbed.hpp"

#include <cassert>
#include <iostream>
#include <sstream>

#include "leo/places.hpp"

namespace slp::measure {

namespace {

using sim::make_addr;
namespace places = leo::places;

constexpr sim::Ipv4Addr kWiredClientAddr = make_addr(130, 104, 0, 2);
constexpr sim::Ipv4Addr kCampusServerAddr = make_addr(130, 104, 0, 10);
constexpr sim::Ipv4Addr kOoklaAddr = make_addr(198, 19, 1, 1);

}  // namespace

std::string_view to_string(AccessKind kind) {
  switch (kind) {
    case AccessKind::kStarlink: return "starlink";
    case AccessKind::kSatCom: return "satcom";
    case AccessKind::kWired: return "wired";
  }
  return "?";
}

Testbed::Testbed(TestbedConfig config)
    : config_{std::move(config)}, sim_{config_.seed}, net_{sim_} {
  sim_.set_fast_forward(config_.fast_forward);
  if (config_.obs.any()) sim_.enable_obs(config_.obs);
  build_core();
}

obs::Snapshot Testbed::take_obs() {
  auto* rec = sim_.obs();
  if (rec == nullptr) {
    obs::Snapshot empty;
    empty.cells = 1;
    return empty;
  }
  if (rec->options().metrics) {
    rec->registry().counter("sim.events_processed").add(sim_.events_processed());
  }
  // Subsystem wall-profile report to stderr, one "wall-profile " prefixed
  // line each so bench/perf_report.py --profile can scrape it from bench
  // output without parsing the export files.
  if (const obs::WallProfile* prof = sim_.wall_profile()) {
    std::istringstream lines{prof->report()};
    for (std::string line; std::getline(lines, line);) {
      if (!line.empty()) std::cerr << "wall-profile " << line << "\n";
    }
  }
  return rec->take_snapshot();
}

sim::Host& Testbed::attach_to_core(const std::string& name, sim::Ipv4Addr addr,
                                   Duration one_way, DataRate rate) {
  sim::Host& host = net_.add_host(name, addr);
  sim::Interface& core_if =
      core_->add_interface(make_addr(198, 18, 0, static_cast<std::uint8_t>(next_core_if_++)));
  net_.connect(core_if, host.uplink(), sim::Network::symmetric(rate, one_way, 4 * 1024 * 1024));
  core_->routes().add_route(addr, 32, core_if);
  return host;
}

void Testbed::add_anchor(const std::string& name, const leo::GeoPoint& where, bool european,
                         bool local, Duration tail) {
  // Terrestrial path from the *nearer* European exit (the paper observed two
  // exits, Netherlands and Germany; German anchors ride the Frankfurt one),
  // plus a per-anchor access tail: datacenter anchors sit right in the
  // metro, RIPE volunteer nodes add a residential last mile.
  const Duration path = std::min(leo::fiber_delay(places::kPopAmsterdam, where),
                                 leo::fiber_delay(places::kPopFrankfurt, where));
  const auto index = static_cast<std::uint8_t>(anchors_.size() + 1);
  sim::Host& host = attach_to_core("anchor-" + name, make_addr(198, 19, 0, index), path + tail);
  anchors_.push_back(Anchor{name, &host, where, european, local});
}

void Testbed::build_core() {
  core_ = &net_.add_router("internet-core");

  // --- Starlink access -------------------------------------------------
  starlink_ = std::make_unique<leo::StarlinkAccess>(net_, config_.starlink);
  {
    sim::Interface& pop_if = starlink_->pop().add_interface(make_addr(198, 18, 1, 1));
    sim::Interface& core_if = core_->add_interface(make_addr(198, 18, 1, 2));
    net_.connect(pop_if, core_if, sim::Network::symmetric(DataRate::gbps(40),
                                                          Duration::from_micros(300),
                                                          8 * 1024 * 1024));
    starlink_->pop().routes().add_default(pop_if);
    core_->routes().add_route(make_addr(149, 6, 50, 0), 24, core_if);
  }
  // Mobility before injector/fleet: a config-driven route moves the
  // terminal to its start at construction, so the fleet's foreground cell
  // and the first scenario epoch both see the departed vantage.
  const bool want_mobility =
      !config_.mobility.route.trivial() ||
      (config_.scenario != nullptr && config_.scenario->contains(scenario::EventKind::kMove));
  if (want_mobility) {
    mobile_ = std::make_unique<mobility::MobileTerminal>(sim_, *starlink_, config_.mobility);
  }
  if (config_.scenario != nullptr && !config_.scenario->empty()) {
    injector_ = std::make_unique<scenario::Injector>(
        sim_, config_.scenario, scenario::Injector::Hooks{starlink_.get(), mobile_.get()});
  }
  if (config_.fleet.enabled()) {
    fleet_ = std::make_unique<fleet::Fleet>(sim_, *starlink_, config_.fleet);
    if (mobile_ != nullptr) mobile_->set_fleet(fleet_.get());
  }

  // --- SatCom access ---------------------------------------------------
  if (config_.with_satcom) {
    geo_ = std::make_unique<geo::GeoAccess>(net_, config_.geo);
    sim::Interface& pop_if = geo_->pop().add_interface(make_addr(198, 18, 2, 1));
    sim::Interface& core_if = core_->add_interface(make_addr(198, 18, 2, 2));
    net_.connect(pop_if, core_if, sim::Network::symmetric(DataRate::gbps(40),
                                                          Duration::from_micros(300),
                                                          8 * 1024 * 1024));
    geo_->pop().routes().add_default(pop_if);
    core_->routes().add_route(make_addr(185, 44, 3, 0), 24, core_if);
  }

  // --- Campus: PC-Wired and the measurement server ----------------------
  {
    sim::Router& campus = net_.add_router("uclouvain-gw");
    wired_client_ = &net_.add_host("pc-wired", kWiredClientAddr);
    campus_server_ = &net_.add_host("campus-server", kCampusServerAddr);
    sim::Interface& campus_c = campus.add_interface(make_addr(130, 104, 0, 1));
    sim::Interface& campus_s = campus.add_interface(make_addr(130, 104, 0, 9));
    net_.connect(wired_client_->uplink(), campus_c,
                 sim::Network::symmetric(DataRate::gbps(1), Duration::from_micros(250),
                                         8 * 1024 * 1024));
    net_.connect(campus_server_->uplink(), campus_s,
                 sim::Network::symmetric(DataRate::gbps(10), Duration::from_micros(150),
                                         16 * 1024 * 1024));
    sim::Interface& campus_up = campus.add_interface(make_addr(198, 18, 3, 1));
    sim::Interface& core_if = core_->add_interface(make_addr(198, 18, 3, 2));
    net_.connect(campus_up, core_if,
                 sim::Network::symmetric(DataRate::gbps(10), config_.campus_core_delay,
                                         16 * 1024 * 1024));
    campus.routes().add_route(kWiredClientAddr, 32, campus_c);
    campus.routes().add_route(kCampusServerAddr, 32, campus_s);
    campus.routes().add_default(campus_up);
    core_->routes().add_route(make_addr(130, 104, 0, 0), 16, core_if);
  }

  // --- Anchors (paper §2: 11 of them) ------------------------------------
  // Tails: Belgian RIPE volunteer nodes carry a residential last mile (the
  // paper's locals have *higher* medians than the German datacenter probes);
  // Singapore's tail stands in for the Suez/India cable detour that the
  // great-circle estimate misses.
  const Duration residential = Duration::from_millis(2.5);
  const Duration metro = Duration::from_micros(300);
  add_anchor("brussels-be", places::kBrussels, true, true, residential);
  add_anchor("antwerp-be", places::kAntwerp, true, true, residential);
  add_anchor("ghent-be", places::kGhent, true, true, residential);
  add_anchor("liege-be", places::kLiege, true, true, residential);
  // The paper's Dutch anchors sit between the Belgians and the Germans.
  add_anchor("amsterdam-1", places::kAmsterdam, true, false, Duration::from_millis(2.0));
  add_anchor("amsterdam-2", places::kAmsterdam, true, false, Duration::from_millis(2.4));
  add_anchor("nuremberg-1", places::kNuremberg, true, false, metro);
  add_anchor("nuremberg-2", places::kNuremberg, true, false, Duration::from_micros(600));
  add_anchor("new-york", places::kNewYork, false, false, Duration::from_millis(1.0));
  add_anchor("fremont", places::kFremont, false, false, Duration::from_millis(1.0));
  add_anchor("singapore", places::kSingapore, false, false, Duration::from_millis(22.0));

  // --- Ookla-style test server: closest to the vantage (Brussels metro).
  ookla_server_ = &attach_to_core(
      "ookla-brussels", kOoklaAddr,
      leo::fiber_delay(places::kPopAmsterdam, places::kBrussels) + Duration::from_micros(300),
      DataRate::gbps(40));

  // --- The recursive resolver everyone uses (near the exit PoPs). --------
  resolver_host_ = &attach_to_core("resolver", make_addr(198, 19, 3, 1),
                                   Duration::from_micros(800), DataRate::gbps(40));
  dns_server_ = std::make_unique<web::DnsServer>(*resolver_host_);

  // --- One web-server host per access (see header). ----------------------
  for (int i = 0; i < 3; ++i) {
    web_hosts_[i] = &attach_to_core(
        "web-" + std::string{to_string(static_cast<AccessKind>(i))},
        make_addr(198, 19, 2, static_cast<std::uint8_t>(i + 1)), Duration::from_millis(1.5),
        DataRate::gbps(40));
  }
}

sim::Host& Testbed::client(AccessKind kind) {
  switch (kind) {
    case AccessKind::kStarlink: return starlink_->client();
    case AccessKind::kSatCom:
      assert(geo_ != nullptr);
      return geo_->client();
    case AccessKind::kWired: return *wired_client_;
  }
  return *wired_client_;
}

sim::Host& Testbed::web_server_host(AccessKind kind) {
  return *web_hosts_[static_cast<int>(kind)];
}

}  // namespace slp::measure
