// testbed.hpp — the complete measurement universe of the paper, §2.
//
// One simulated internet containing:
//   * PC-Starlink behind the leo:: access (exit PoP in the AMS/FRA region);
//   * PC-SatCom behind the geo:: access with its PEP;
//   * PC-Wired on the UCLouvain campus network (1 Gbit/s);
//   * the campus measurement server (QUIC H3 + speedtest + Wehe targets);
//   * the 11 ping anchors: 4 Belgian RIPE nodes, Amsterdam x2, Nuremberg x2,
//     New York, Fremont, Singapore — terrestrial latencies derived from
//     fiber great-circle distances out of the European exit region (no ISLs:
//     transatlantic traffic leaves through the same exits, §3.1);
//   * an Ookla-style test server close to the vantage (Brussels);
//   * one web-server host per access (the paper's three PCs visit the same
//     sites; separate hosts keep the plan bookkeeping exact, DESIGN.md §4).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "geo/geo_access.hpp"
#include "leo/access.hpp"
#include "mobility/mobile_terminal.hpp"
#include "obs/recorder.hpp"
#include "scenario/injector.hpp"
#include "sim/network.hpp"
#include "web/dns.hpp"
#include "tcp/tcp.hpp"
#include "quic/quic.hpp"

namespace slp::measure {

enum class AccessKind { kStarlink, kSatCom, kWired };

[[nodiscard]] std::string_view to_string(AccessKind kind);

struct TestbedConfig {
  std::uint64_t seed = 1;
  leo::StarlinkAccess::Config starlink;
  geo::GeoAccess::Config geo;
  bool with_satcom = true;
  /// Campus <-> internet-core one-way delay (Louvain-la-Neuve to AMS).
  Duration campus_core_delay = Duration::from_millis(2.2);
  /// Observability: enabled on the Simulator *before* the topology is built
  /// so every component binds its handles/probes at construction.
  obs::Options obs;
  /// Environment/fault timeline replayed onto the Starlink access (null =
  /// clear sky). Shared across sweep cells: scenarios are seed-independent,
  /// so every cell schedules the identical timeline.
  std::shared_ptr<const scenario::Scenario> scenario;
  /// Simulated neighbour terminals sharing the Starlink cells (src/fleet/).
  /// size 0 keeps the synthetic LoadProcess; size 1 attaches only the
  /// foreground terminal (bit-identical to size 0 by construction).
  fleet::Fleet::Config fleet;
  /// Terminal motion (src/mobility/). A trivial route builds no
  /// MobileTerminal at all unless the scenario carries a `move` directive;
  /// a non-trivial route with speed_scale 0 builds a fully passive one —
  /// both keep exports byte-identical to a static run.
  mobility::MobileTerminal::Config mobility;
  /// Analytic fast paths (link express serialization, transport scan
  /// skipping). Exports are identical either way; `false` runs the
  /// packet-level reference the differential suite compares against.
  bool fast_forward = true;
};

class Testbed {
 public:
  struct Anchor {
    std::string name;
    sim::Host* host = nullptr;
    leo::GeoPoint location;
    bool european = false;
    bool local = false;  ///< in Belgium, like the 4 local RIPE nodes
  };

  explicit Testbed(TestbedConfig config = {});

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::Network& net() { return net_; }
  [[nodiscard]] leo::StarlinkAccess& starlink() { return *starlink_; }
  /// Null unless the config carried a non-empty scenario.
  [[nodiscard]] const scenario::Injector* injector() const { return injector_.get(); }
  /// Null unless the config asked for a fleet (fleet.size > 0).
  [[nodiscard]] fleet::Fleet* fleet() { return fleet_.get(); }
  /// Null unless the config carried a non-trivial route or a `move` event.
  [[nodiscard]] mobility::MobileTerminal* mobility() { return mobile_.get(); }
  [[nodiscard]] geo::GeoAccess& satcom() { return *geo_; }
  [[nodiscard]] bool has_satcom() const { return geo_ != nullptr; }

  /// The measurement client of a given access technology.
  [[nodiscard]] sim::Host& client(AccessKind kind);

  [[nodiscard]] sim::Host& campus_server() { return *campus_server_; }
  [[nodiscard]] sim::Host& ookla_server() { return *ookla_server_; }
  /// The ISP-side recursive resolver (reached across the access link).
  [[nodiscard]] sim::Host& resolver_host() { return *resolver_host_; }
  [[nodiscard]] web::DnsServer& dns() { return *dns_server_; }
  [[nodiscard]] sim::Host& web_server_host(AccessKind kind);
  [[nodiscard]] const std::vector<Anchor>& anchors() const { return anchors_; }
  [[nodiscard]] const Anchor& anchor(std::size_t i) const { return anchors_.at(i); }

  /// Runs the simulation for `d` of simulated time.
  void run_for(Duration d) { sim_.run_for(d); }

  /// Freezes this cell's observability data (a valid empty snapshot when obs
  /// is off, so campaign results merge uniformly across configurations).
  [[nodiscard]] obs::Snapshot take_obs();

 private:
  void build_core();
  void add_anchor(const std::string& name, const leo::GeoPoint& where, bool european,
                  bool local, Duration tail);
  sim::Host& attach_to_core(const std::string& name, sim::Ipv4Addr addr, Duration one_way,
                            DataRate rate = DataRate::gbps(10));

  TestbedConfig config_;
  sim::Simulator sim_;
  sim::Network net_;
  std::unique_ptr<leo::StarlinkAccess> starlink_;
  /// Declared after starlink_: repositions the access's terminal; its
  /// destructor uninstalls the scheduler's candidate filter.
  std::unique_ptr<mobility::MobileTerminal> mobile_;
  /// Declared after both: the injector's hooks point into the access and
  /// the mobile terminal.
  std::unique_ptr<scenario::Injector> injector_;
  /// Declared after both: the fleet installs itself as the access's cell
  /// share model and must uninstall before the access dies.
  std::unique_ptr<fleet::Fleet> fleet_;
  std::unique_ptr<geo::GeoAccess> geo_;
  sim::Router* core_ = nullptr;
  sim::Host* wired_client_ = nullptr;
  sim::Host* campus_server_ = nullptr;
  sim::Host* ookla_server_ = nullptr;
  sim::Host* resolver_host_ = nullptr;
  std::unique_ptr<web::DnsServer> dns_server_;
  sim::Host* web_hosts_[3] = {nullptr, nullptr, nullptr};
  std::vector<Anchor> anchors_;
  int next_core_if_ = 1;
};

}  // namespace slp::measure
