#include "measure/campaign.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>
#include <stdexcept>

#include "apps/h3.hpp"
#include "apps/messages.hpp"
#include "apps/ping.hpp"
#include "apps/speedtest.hpp"
#include "web/browser.hpp"
#include "web/page.hpp"
#include "web/server.hpp"

namespace slp::measure {

void apply_paper_epochs(leo::StarlinkAccess::Config& config) {
  const TimePoint feb11 = TimePoint::epoch() + Duration::days(53);
  const TimePoint late_april = TimePoint::epoch() + Duration::days(125);
  const TimePoint early_may = TimePoint::epoch() + Duration::days(139);
  const TimePoint session2 = TimePoint::epoch() + Duration::days(126);

  config.active_planes_fn = [feb11](TimePoint t) { return t < feb11 ? 56 : 72; };
  config.epoch_latency_offset = [feb11, late_april, early_may](TimePoint t) {
    // Pre-densification: sparser candidate set means worse assigned beams
    // on top of the longer slant ranges (the Figure 2 step is ~2-3 ms).
    if (t < feb11) return Duration::from_millis(1.4);
    if (t >= late_april && t < early_may) return Duration::from_millis(4.0);
    return Duration::zero();
  };
  config.epoch_capacity_factor = [late_april, early_may, session2](TimePoint t) {
    double factor = 1.0;
    if (t >= session2) factor *= 1.05;                     // more downlink capacity
    if (t >= late_april && t < early_may) factor *= 0.92;  // loaded period
    return factor;
  };
}

// ===================================================================== pings

PingCampaign::Result PingCampaign::run(const Config& config) {
  TestbedConfig tb_config;
  tb_config.seed = config.seed;
  tb_config.with_satcom = false;  // the paper pings over Starlink only
  tb_config.obs = config.obs;
  tb_config.scenario = config.scenario;
  tb_config.fast_forward = config.fast_forward;
  tb_config.fleet = config.fleet;
  if (config.epochs) apply_paper_epochs(tb_config.starlink);
  Testbed bed{tb_config};

  Result result;
  for (const auto& anchor : bed.anchors()) {
    result.anchors.push_back(AnchorResult{anchor.name, anchor.european, anchor.local, {}});
  }
  if (config.obs.provenance) {
    result.eu_components.assign(obs::kTagComponents, stats::TimeBinner{Duration::hours(6)});
  }

  sim::Host& client = bed.starlink().client();
  std::vector<std::unique_ptr<apps::PingApp>> live;

  const auto rounds = static_cast<std::int64_t>(config.duration / config.cadence);
  for (std::int64_t round = 0; round < rounds; ++round) {
    const TimePoint at = TimePoint::epoch() + config.cadence * static_cast<double>(round);
    bed.sim().schedule_at(at, [&, at] {
      // Anchors are probed staggered, like a sequential ping script: packets
      // launched back-to-back would otherwise share the access link's FIFO
      // and let later probes inherit earlier probes' worst-case jitter.
      for (std::size_t a = 0; a < bed.anchors().size(); ++a) {
        apps::PingApp::Config ping_cfg;
        ping_cfg.target = bed.anchor(a).host->addr();
        ping_cfg.count = config.pings_per_round;
        ping_cfg.flow = a + 1;  // provenance key: anchor index (0 = anonymous)
        auto app = std::make_unique<apps::PingApp>(client, ping_cfg);
        apps::PingApp* raw = app.get();
        app->on_complete = [&, a, at, raw](const std::vector<apps::PingApp::Probe>& probes) {
          AnchorResult& anchor = result.anchors[a];
          for (const auto& probe : probes) {
            result.pings_sent++;
            if (probe.lost) {
              result.pings_lost++;
              continue;
            }
            const double ms = probe.rtt.to_millis();
            anchor.rtt_ms.add(ms);
            if (anchor.european) {
              result.eu_timeline.add(at, ms);
              for (std::size_t c = 0; c < result.eu_components.size(); ++c) {
                result.eu_components[c].add(at, static_cast<double>(probe.comp_ns[c]) * 1e-6);
              }
              const auto hour =
                  static_cast<std::size_t>((at.ns() / Duration::hours(1).ns()) % 24);
              result.eu_by_hour[hour].push_back(ms);
            }
          }
          // Self-cleanup.
          for (auto& slot : live) {
            if (slot.get() == raw) {
              slot.reset();
              break;
            }
          }
        };
        bed.sim().schedule_in(Duration::from_millis(350.0 * static_cast<double>(a)),
                              [raw] { raw->start(); });
        live.push_back(std::move(app));
      }
      // Compact the pool occasionally.
      if (live.size() > 256) {
        std::erase_if(live, [](const auto& p) { return p == nullptr; });
      }
    });
  }
  bed.sim().run();
  result.obs = bed.take_obs();
  return result;
}

// ===================================================================== H3

H3Campaign::Result H3Campaign::run(const Config& config) {
  TestbedConfig tb_config;
  tb_config.seed = config.seed;
  tb_config.with_satcom = false;
  tb_config.obs = config.obs;
  tb_config.scenario = config.scenario;
  tb_config.fast_forward = config.fast_forward;
  tb_config.fleet = config.fleet;
  if (config.epochs) apply_paper_epochs(tb_config.starlink);
  Testbed bed{tb_config};

  // The paper's second H3 session: run inside the post-April-25 epoch.
  const TimePoint session_start =
      config.epochs ? TimePoint::epoch() + Duration::days(140) : TimePoint::epoch();
  bed.sim().run_until(session_start);

  Result result;
  quic::QuicStack client_stack{bed.starlink().client()};
  quic::QuicStack server_stack{bed.campus_server()};

  quic::QuicConfig quic_config;
  quic_config.pacing = config.pacing;

  apps::H3Server::Config server_config;
  server_config.object_bytes = config.bytes;
  server_config.quic = quic_config;
  apps::H3Server server{server_stack, server_config};

  LossAnalyzer analyzer;
  std::vector<std::unique_ptr<apps::H3Client>> clients;

  // RTT sampling happens at the data *sender*: the server for downloads
  // (the paper captured at the server for its download curves), the client
  // for uploads. Loss is observed at the receiver's packet-number gaps.
  server.on_connection = [&](quic::QuicConnection& conn) {
    if (config.download) {
      conn.hooks.on_packet_acked = [&result](std::uint64_t, Duration rtt) {
        result.rtt_ms.add(rtt.to_millis());
      };
    } else {
      analyzer.attach(conn);
    }
  };

  std::function<void(int)> launch = [&](int remaining) {
    if (remaining <= 0) return;
    apps::H3Client::Config cc;
    cc.server = bed.campus_server().addr();
    cc.download = config.download;
    cc.bytes = config.bytes;
    cc.quic = quic_config;
    clients.push_back(std::make_unique<apps::H3Client>(client_stack, cc));
    apps::H3Client& h3 = *clients.back();
    h3.start();
    if (config.download) {
      analyzer.attach(h3.connection());
    } else {
      h3.connection().hooks.on_packet_acked = [&result](std::uint64_t, Duration rtt) {
        result.rtt_ms.add(rtt.to_millis());
      };
    }
    auto done = std::make_shared<bool>(false);
    h3.on_complete = [&, remaining, done](const apps::H3Client::Result& r) {
      *done = true;
      result.goodput_mbps.add(r.goodput.to_mbps());
      result.transfers_completed++;
      bed.sim().schedule_in(config.gap, [&launch, remaining] { launch(remaining - 1); });
    };
    // Watchdog: a transfer stuck past the timeout is abandoned.
    bed.sim().schedule_in(config.transfer_timeout, [&, remaining, done] {
      if (!*done) {
        *done = true;
        bed.sim().schedule_in(config.gap, [&launch, remaining] { launch(remaining - 1); });
      }
    });
  };
  launch(config.transfers);
  bed.sim().run();

  result.loss = analyzer.analyze();
  result.obs = bed.take_obs();
  return result;
}

// ================================================================= messages

MessageCampaign::Result MessageCampaign::run(const Config& config) {
  TestbedConfig tb_config;
  tb_config.seed = config.seed;
  tb_config.with_satcom = false;
  tb_config.obs = config.obs;
  tb_config.scenario = config.scenario;
  tb_config.fast_forward = config.fast_forward;
  tb_config.fleet = config.fleet;
  Testbed bed{tb_config};

  Result result;
  quic::QuicStack client_stack{bed.starlink().client()};
  quic::QuicStack server_stack{bed.campus_server()};

  quic::QuicConfig quic_config;
  quic_config.pacing = config.pacing;

  LossAnalyzer analyzer;
  std::vector<std::unique_ptr<apps::MessageSender>> senders;
  std::vector<std::unique_ptr<apps::MessageReceiver>> receivers;

  // For downloads the *server* drives the messages; its connection appears
  // via the listener. For uploads the client drives.
  quic::QuicConnection* server_conn = nullptr;
  server_stack.listen(443, [&](quic::QuicConnection& conn) {
    server_conn = &conn;
    if (config.upload) {
      analyzer.attach(conn);
      receivers.push_back(std::make_unique<apps::MessageReceiver>(conn));
      receivers.back()->on_delivery = [&result](const apps::MessageReceiver::Delivery& d) {
        result.latency_ms.add(d.latency.to_millis());
      };
    } else {
      conn.hooks.on_packet_acked = [&result](std::uint64_t, Duration rtt) {
        result.rtt_ms.add(rtt.to_millis());
      };
    }
  }, quic_config);

  std::function<void(int)> launch = [&](int remaining) {
    if (remaining <= 0) return;
    quic::QuicConnection& conn = client_stack.connect(bed.campus_server().addr(), 443,
                                                      quic_config);
    if (config.upload) {
      conn.hooks.on_packet_acked = [&result](std::uint64_t, Duration rtt) {
        result.rtt_ms.add(rtt.to_millis());
      };
    } else {
      analyzer.attach(conn);
      receivers.push_back(std::make_unique<apps::MessageReceiver>(conn));
      receivers.back()->on_delivery = [&result](const apps::MessageReceiver::Delivery& d) {
        result.latency_ms.add(d.latency.to_millis());
      };
    }
    conn.on_established = [&, remaining] {
      apps::MessageSender::Config sender_config;
      sender_config.duration = config.session_duration;
      // Downloads: the sender runs on the server side of this connection.
      quic::QuicConnection& driving = config.upload ? conn : *server_conn;
      senders.push_back(std::make_unique<apps::MessageSender>(
          driving, sender_config,
          bed.sim().fork_rng("msg-session-" + std::to_string(remaining))));
      apps::MessageSender& sender = *senders.back();
      sender.on_complete = [&, remaining] {
        result.messages_sent += sender.messages_sent();
        bed.sim().schedule_in(config.gap, [&launch, remaining] { launch(remaining - 1); });
      };
      sender.start();
    };
  };
  launch(config.sessions);
  bed.sim().run();

  result.loss = analyzer.analyze();
  result.obs = bed.take_obs();
  return result;
}

// ================================================================ speedtest

SpeedtestCampaign::Result SpeedtestCampaign::run(const Config& config) {
  TestbedConfig tb_config;
  tb_config.seed = config.seed;
  tb_config.with_satcom = config.access == AccessKind::kSatCom;
  tb_config.geo.pep.enabled = config.satcom_pep;
  tb_config.obs = config.obs;
  tb_config.scenario = config.scenario;
  tb_config.fast_forward = config.fast_forward;
  if (config.access == AccessKind::kStarlink) tb_config.fleet = config.fleet;
  Testbed bed{tb_config};

  Result result;
  tcp::TcpStack client_stack{bed.client(config.access)};
  tcp::TcpStack server_stack{bed.ookla_server()};
  apps::SpeedtestServer server{server_stack};

  std::vector<std::unique_ptr<apps::Speedtest>> tests;
  std::function<void(int)> launch = [&](int remaining) {
    if (remaining <= 0) return;
    apps::Speedtest::Config test_config;
    test_config.server = bed.ookla_server().addr();
    test_config.connections = config.connections;
    test_config.duration = config.test_duration;
    test_config.download = config.download;
    tests.push_back(std::make_unique<apps::Speedtest>(client_stack, test_config));
    apps::Speedtest& test = *tests.back();
    test.on_complete = [&, remaining](const apps::Speedtest::Result& r) {
      result.mbps.add(r.goodput.to_mbps());
      bed.sim().schedule_in(config.gap, [&launch, remaining] { launch(remaining - 1); });
    };
    test.start();
  };
  launch(config.tests);
  bed.sim().run();
  result.obs = bed.take_obs();
  return result;
}

// ====================================================================== web

WebCampaign::Result WebCampaign::run(const Config& config) {
  TestbedConfig tb_config;
  tb_config.seed = config.seed;
  tb_config.with_satcom = config.access == AccessKind::kSatCom;
  tb_config.geo.pep.enabled = config.satcom_pep;
  tb_config.obs = config.obs;
  tb_config.scenario = config.scenario;
  tb_config.fast_forward = config.fast_forward;
  if (config.access == AccessKind::kStarlink) tb_config.fleet = config.fleet;
  Testbed bed{tb_config};

  Result result;
  const web::SiteCatalog catalog =
      web::SiteCatalog::generate(config.catalog_sites, bed.sim().fork_rng("catalog"));

  tcp::TcpStack client_stack{bed.client(config.access)};
  tcp::TcpStack server_stack{bed.web_server_host(config.access)};
  web::WebServer::Config server_config;
  server_config.num_origins = catalog.max_origins();
  web::WebServer server{server_stack, server_config, bed.sim().fork_rng("webserver")};

  // DNS: register every origin hostname of the catalog at the resolver and
  // give the browser a stub resolver on the client.
  std::unique_ptr<web::DnsResolver> resolver;
  web::Browser::Config browser_config;
  browser_config.server_addr = bed.web_server_host(config.access).addr();
  browser_config.visit_timeout = config.visit_timeout;
  if (config.dns) {
    for (const web::WebPage& page : catalog.sites()) {
      for (int origin = 0; origin < page.num_origins; ++origin) {
        bed.dns().add_record(web::Browser::origin_hostname(page, origin),
                             bed.web_server_host(config.access).addr());
      }
    }
    web::DnsResolver::Config dns_config;
    dns_config.server = bed.resolver_host().addr();
    resolver = std::make_unique<web::DnsResolver>(bed.client(config.access), dns_config);
    browser_config.dns = resolver.get();
  }
  web::Browser browser{client_stack, server, browser_config};

  Rng site_rng = bed.sim().fork_rng("site-choice");
  double total_connections = 0.0;

  std::function<void(int)> visit_next = [&](int remaining) {
    if (remaining <= 0) return;
    const web::WebPage& page = catalog.site(site_rng.index(catalog.size()));
    server.clear_plans();
    browser.visit(page, [&, remaining](const web::Browser::VisitResult& r) {
      if (r.complete) {
        result.visits_completed++;
        result.onload_s.add(r.on_load.to_seconds());
        result.speedindex_s.add(r.speed_index.to_seconds());
        result.setup_ms.add(r.mean_connection_setup.to_millis());
        total_connections += r.connections_opened;
      } else {
        result.visits_timed_out++;
      }
      bed.sim().schedule_in(config.gap, [&visit_next, remaining] { visit_next(remaining - 1); });
    });
  };
  visit_next(config.visits);
  bed.sim().run();

  if (result.visits_completed > 0) {
    result.mean_connections = total_connections / result.visits_completed;
  }
  result.obs = bed.take_obs();
  return result;
}

// ================================================================ road trip

RoadTripCampaign::Result RoadTripCampaign::run(const Config& config) {
  const std::optional<mobility::Route> route = mobility::routes::lookup(config.route);
  if (!route.has_value()) {
    throw std::invalid_argument("road trip: unknown route '" + config.route + "'");
  }

  TestbedConfig tb_config;
  tb_config.seed = config.seed;
  tb_config.with_satcom = false;
  tb_config.obs = config.obs;
  tb_config.scenario = config.scenario;
  tb_config.fast_forward = config.fast_forward;
  tb_config.fleet = config.fleet;
  tb_config.mobility.route = *route;
  tb_config.mobility.speed_scale = config.speed_scale;
  tb_config.mobility.obstructions = config.obstructions;
  Testbed bed{tb_config};

  Result result;
  // RTT edges: moving-terminal RTTs live between the static ~40 ms median
  // and multi-hundred-ms reacquisition spikes.
  result.rtt_by_speed =
      stats::KeyedSamples{{25, 50, 75, 100, 150, 200, 300, 500, 1000}};
  result.route_km = route->trajectory.total_distance_m() / 1000.0;

  Duration drive = config.duration;
  if (drive <= Duration::zero()) {
    drive = config.speed_scale > 0.0
                ? route->trajectory.total_duration() * (1.0 / config.speed_scale) +
                      Duration::seconds(30)
                : Duration::minutes(5);
  }
  const auto rounds = static_cast<std::int64_t>(drive / config.cadence);

  // Per-round probe outcome: -1 unanswered (run ended first), 0 ok, 1 lost.
  // Consecutive 1s fold into outage durations after the run.
  std::vector<signed char> outcomes(static_cast<std::size_t>(rounds), -1);

  sim::Host& client = bed.starlink().client();
  const sim::Ipv4Addr target = bed.anchor(0).host->addr();  // brussels-be
  std::vector<std::unique_ptr<apps::PingApp>> live;

  for (std::int64_t round = 0; round < rounds; ++round) {
    const TimePoint at = TimePoint::epoch() + config.cadence * static_cast<double>(round);
    bed.sim().schedule_at(at, [&, at, round] {
      apps::PingApp::Config ping_cfg;
      ping_cfg.target = target;
      ping_cfg.count = 1;
      ping_cfg.flow = 1;
      auto app = std::make_unique<apps::PingApp>(client, ping_cfg);
      apps::PingApp* raw = app.get();
      app->on_complete = [&, at, round, raw](const std::vector<apps::PingApp::Probe>& probes) {
        // Bin by the vehicle's speed at probe launch (0 while parked or
        // before departure), 20 km/h per bin.
        const mobility::Trajectory::State st = bed.mobility()->state_at(at);
        const auto key = static_cast<std::uint64_t>(st.speed_mps * 3.6 / 20.0);
        for (const auto& probe : probes) {
          result.probes_sent++;
          result.loss_by_speed.add(key, probe.lost ? 1.0 : 0.0);
          outcomes[static_cast<std::size_t>(round)] = probe.lost ? 1 : 0;
          if (probe.lost) {
            result.probes_lost++;
            continue;
          }
          result.rtt_by_speed.add(key, probe.rtt.to_millis());
          for (int c = 0; c < obs::kTagComponents; ++c) {
            result.comp_ns[static_cast<std::size_t>(c)] += probe.comp_ns[c];
          }
        }
        for (auto& slot : live) {
          if (slot.get() == raw) {
            slot.reset();
            break;
          }
        }
      };
      raw->start();
      live.push_back(std::move(app));
      if (live.size() > 256) {
        std::erase_if(live, [](const auto& p) { return p == nullptr; });
      }
    });
  }
  bed.sim().run();

  int streak = 0;
  for (std::int64_t round = 0; round <= rounds; ++round) {
    const bool lost = round < rounds && outcomes[static_cast<std::size_t>(round)] == 1;
    if (lost) {
      streak++;
    } else if (streak > 0) {
      result.outage_s.add(streak * config.cadence.to_seconds());
      streak = 0;
    }
  }

  const mobility::MobileTerminal::Stats& ms = bed.mobility()->stats();
  result.reroutes = ms.reroutes;
  result.cell_migrations = ms.cell_migrations;
  result.tunnels = ms.tunnels;
  result.obs = bed.take_obs();
  return result;
}

// ============================================================ sweep support

namespace {

void append(stats::Samples& into, const stats::Samples& from) {
  into.reserve(into.size() + from.size());
  into.add_all(from.values());
}

}  // namespace

void merge(PingCampaign::Result& into, const PingCampaign::Result& from) {
  assert(into.anchors.size() == from.anchors.size());
  for (std::size_t i = 0; i < into.anchors.size(); ++i) {
    append(into.anchors[i].rtt_ms, from.anchors[i].rtt_ms);
  }
  into.eu_timeline.merge(from.eu_timeline);
  if (into.eu_components.size() < from.eu_components.size()) {
    into.eu_components.resize(from.eu_components.size(),
                              stats::TimeBinner{Duration::hours(6)});
  }
  for (std::size_t c = 0; c < from.eu_components.size(); ++c) {
    into.eu_components[c].merge(from.eu_components[c]);
  }
  for (std::size_t h = 0; h < into.eu_by_hour.size(); ++h) {
    into.eu_by_hour[h].insert(into.eu_by_hour[h].end(), from.eu_by_hour[h].begin(),
                              from.eu_by_hour[h].end());
  }
  into.pings_sent += from.pings_sent;
  into.pings_lost += from.pings_lost;
  obs::merge(into.obs, from.obs);
}

void merge(H3Campaign::Result& into, const H3Campaign::Result& from) {
  append(into.rtt_ms, from.rtt_ms);
  append(into.goodput_mbps, from.goodput_mbps);
  into.loss = LossAnalyzer::combine({into.loss, from.loss});
  into.transfers_completed += from.transfers_completed;
  obs::merge(into.obs, from.obs);
}

void merge(MessageCampaign::Result& into, const MessageCampaign::Result& from) {
  append(into.rtt_ms, from.rtt_ms);
  append(into.latency_ms, from.latency_ms);
  into.loss = LossAnalyzer::combine({into.loss, from.loss});
  into.messages_sent += from.messages_sent;
  obs::merge(into.obs, from.obs);
}

void merge(SpeedtestCampaign::Result& into, const SpeedtestCampaign::Result& from) {
  append(into.mbps, from.mbps);
  obs::merge(into.obs, from.obs);
}

void merge(RoadTripCampaign::Result& into, const RoadTripCampaign::Result& from) {
  into.rtt_by_speed.merge(from.rtt_by_speed);
  into.loss_by_speed.merge(from.loss_by_speed);
  append(into.outage_s, from.outage_s);
  for (std::size_t c = 0; c < into.comp_ns.size(); ++c) into.comp_ns[c] += from.comp_ns[c];
  into.probes_sent += from.probes_sent;
  into.probes_lost += from.probes_lost;
  into.reroutes += from.reroutes;
  into.cell_migrations += from.cell_migrations;
  into.tunnels += from.tunnels;
  into.route_km = std::max(into.route_km, from.route_km);
  obs::merge(into.obs, from.obs);
}

void merge(WebCampaign::Result& into, const WebCampaign::Result& from) {
  append(into.onload_s, from.onload_s);
  append(into.speedindex_s, from.speedindex_s);
  append(into.setup_ms, from.setup_ms);
  const int total = into.visits_completed + from.visits_completed;
  if (total > 0) {
    into.mean_connections = (into.mean_connections * into.visits_completed +
                             from.mean_connections * from.visits_completed) /
                            total;
  }
  into.visits_completed = total;
  into.visits_timed_out += from.visits_timed_out;
  obs::merge(into.obs, from.obs);
}

// =============================================================== middleboxes

MiddleboxAudit::Result MiddleboxAudit::run(const Config& config) {
  TestbedConfig tb_config;
  tb_config.seed = config.seed;
  tb_config.with_satcom = config.access == AccessKind::kSatCom;
  tb_config.obs = config.obs;
  tb_config.scenario = config.scenario;
  tb_config.fast_forward = config.fast_forward;
  Testbed bed{tb_config};

  Result result;
  sim::Host& client = bed.client(config.access);

  // The campus server answers TCP on port 80 for Tracebox and hosts Wehe.
  tcp::TcpStack server_stack{bed.campus_server()};
  server_stack.listen(80, [](tcp::TcpConnection&) {});
  mbox::WeheServer wehe_server{bed.campus_server()};

  // Phase 1: traceroute.
  mbox::Traceroute::Config tr_config;
  tr_config.target = bed.campus_server().addr();
  mbox::Traceroute traceroute{client, tr_config};
  traceroute.on_complete = [&](const std::vector<mbox::Traceroute::Hop>& hops) {
    result.traceroute = hops;
  };
  traceroute.start();
  bed.run_for(Duration::minutes(2));

  // Phase 2: Tracebox.
  mbox::Tracebox::Config tb_cfg;
  tb_cfg.target = bed.campus_server().addr();
  mbox::Tracebox tracebox{client, tb_cfg};
  tracebox.on_complete = [&](const mbox::Tracebox::Report& r) { result.tracebox = r; };
  tracebox.start();
  bed.run_for(Duration::minutes(3));

  // Phase 3: Wehe.
  mbox::WeheClient::Config wehe_config;
  wehe_config.server = bed.campus_server().addr();
  wehe_config.repetitions = config.wehe_repetitions;
  mbox::WeheClient wehe{client, wehe_config};
  wehe.on_complete = [&](const mbox::WeheClient::Report& r) { result.wehe = r; };
  wehe.start();
  bed.sim().run();

  result.obs = bed.take_obs();
  return result;
}

}  // namespace slp::measure
