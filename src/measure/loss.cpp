#include "measure/loss.hpp"

#include <algorithm>

namespace slp::measure {

void LossAnalyzer::attach(quic::QuicConnection& conn) {
  traces_.emplace_back();
  const std::size_t index = traces_.size() - 1;
  conn.hooks.on_packet_received = [this, index](std::uint64_t pn, TimePoint at) {
    traces_[index].push_back(Arrival{pn, at});
  };
}

void LossAnalyzer::note_received(std::uint64_t pn, TimePoint at) {
  if (traces_.empty()) traces_.emplace_back();
  traces_.back().push_back(Arrival{pn, at});
}

void LossAnalyzer::analyze_trace(const std::vector<Arrival>& trace, Report& report) {
  if (trace.empty()) return;
  std::vector<Arrival> sorted = trace;
  std::sort(sorted.begin(), sorted.end(),
            [](const Arrival& a, const Arrival& b) { return a.pn < b.pn; });
  // Drop duplicates (spurious retransmissions never reuse pns, but be safe).
  sorted.erase(std::unique(sorted.begin(), sorted.end(),
                           [](const Arrival& a, const Arrival& b) { return a.pn == b.pn; }),
               sorted.end());

  report.packets_received += sorted.size();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const std::uint64_t gap = sorted[i].pn - sorted[i - 1].pn - 1;
    if (gap == 0) continue;
    report.packets_lost += gap;
    report.loss_events += 1;
    report.burst_lengths.add(gap);
    const Duration duration = sorted[i].at - sorted[i - 1].at;
    report.event_durations_ms.add(duration.to_millis());
    if (duration > Duration::seconds(1)) report.outage_events += 1;
  }
}

LossAnalyzer::Report LossAnalyzer::analyze() const {
  Report report;
  for (const auto& trace : traces_) analyze_trace(trace, report);
  const std::uint64_t total = report.packets_received + report.packets_lost;
  report.loss_ratio = total == 0 ? 0.0 : static_cast<double>(report.packets_lost) / total;
  return report;
}

LossAnalyzer::Report LossAnalyzer::combine(const std::vector<Report>& reports) {
  Report out;
  for (const Report& r : reports) {
    out.packets_received += r.packets_received;
    out.packets_lost += r.packets_lost;
    out.loss_events += r.loss_events;
    out.outage_events += r.outage_events;
    for (const auto& [len, count] : r.burst_lengths.buckets()) {
      out.burst_lengths.add(len, count);
    }
    out.event_durations_ms.add_all(r.event_durations_ms.values());
  }
  const std::uint64_t total = out.packets_received + out.packets_lost;
  out.loss_ratio = total == 0 ? 0.0 : static_cast<double>(out.packets_lost) / total;
  return out;
}

}  // namespace slp::measure
