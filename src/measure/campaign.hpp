// campaign.hpp — the paper's measurement campaigns as runnable experiments.
//
// Each sub-campaign reproduces one slice of Table 1 and feeds one or more
// figures/tables (the experiment index lives in DESIGN.md §3):
//
//   PingCampaign       -> Figure 1, Figure 2, Mood's-test paragraph
//   H3Campaign         -> Figure 3, Table 2, Figure 4a, Figure 5 (H3 bars)
//   MessageCampaign    -> §3.1 messages RTT, Table 2, Figure 4b
//   SpeedtestCampaign  -> Figure 5 (Ookla bars, Starlink & SatCom)
//   WebCampaign        -> Figure 6 (onLoad / SpeedIndex ECDFs)
//   MiddleboxAudit     -> §3.5 (traceroute, Tracebox, Wehe)
//
// Every run() builds its own Testbed from a seed, so campaigns are
// independent and reproducible. Timeline compression: cadences are
// parameters; the paper's five months are replayed at a configurable pace.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "measure/loss.hpp"
#include "measure/testbed.hpp"
#include "obs/breakdown.hpp"
#include "mbox/tracebox.hpp"
#include "mbox/traceroute.hpp"
#include "mbox/wehe.hpp"
#include "stats/quantiles.hpp"
#include "stats/timeseries.hpp"

namespace slp::measure {

/// Installs the paper's campaign epochs on a Starlink config:
///   * constellation densification on day 53 (the Feb-11 step of Figure 2);
///   * a loaded/reorganization period over days 125-139 (the late-April
///     RTT rise) with higher cell utilization;
///   * a QUIC download-capacity increase from day 126 (the paper's second
///     H3 session measured more downlink).
void apply_paper_epochs(leo::StarlinkAccess::Config& config);

// ===================================================================== pings

struct PingCampaign {
  struct Config {
    std::uint64_t seed = 1;
    Duration duration = Duration::days(146);  ///< Dec 20 -> mid May
    Duration cadence = Duration::minutes(5);
    int pings_per_round = 3;
    bool epochs = true;
    obs::Options obs;  ///< per-cell observability (testbed-wide)
    /// Optional environment/fault timeline (seed-independent; see scenario.hpp).
    std::shared_ptr<const scenario::Scenario> scenario;
    /// Optional simulated-neighbour fleet (src/fleet/); size 0 keeps the
    /// synthetic cell load, size N > 1 puts real contention under Figure 2.
    fleet::Fleet::Config fleet;
    /// Analytic fast paths (see TestbedConfig::fast_forward). Same exports
    /// either way; false runs the packet-level reference.
    bool fast_forward = true;
  };

  struct AnchorResult {
    std::string name;
    bool european = false;
    bool local = false;
    stats::Samples rtt_ms;
  };

  struct Result {
    std::vector<AnchorResult> anchors;
    stats::TimeBinner eu_timeline{Duration::hours(6)};  ///< Figure 2
    /// Per-component EU RTT timelines (obs::Component-indexed, ms), filled
    /// only when Config::obs.provenance is on — the fig2b dominant-cause
    /// annotation reads the per-bin means side by side with eu_timeline.
    std::vector<stats::TimeBinner> eu_components;
    std::array<std::vector<double>, 24> eu_by_hour;     ///< Mood's test input
    std::uint64_t pings_sent = 0;
    std::uint64_t pings_lost = 0;
    obs::Snapshot obs;  ///< metrics/trace/series of this cell (or merged)
  };

  static Result run(const Config& config);
};

// ===================================================================== H3

struct H3Campaign {
  struct Config {
    std::uint64_t seed = 2;
    int transfers = 12;
    bool download = true;
    std::uint64_t bytes = 100ull * 1000 * 1000;
    Duration gap = Duration::seconds(20);
    bool pacing = false;     ///< quiche default; true for the ablation
    bool epochs = true;      ///< second-session capacity applies
    Duration transfer_timeout = Duration::minutes(5);
    obs::Options obs;
    std::shared_ptr<const scenario::Scenario> scenario;
    /// Optional simulated-neighbour fleet (src/fleet/); size 0 keeps the
    /// synthetic cell load, size N > 1 puts real contention under Figure 3.
    fleet::Fleet::Config fleet;
    bool fast_forward = true;  ///< see TestbedConfig::fast_forward
  };

  struct Result {
    stats::Samples rtt_ms;            ///< RTT of every acked packet (Fig. 3)
    stats::Samples goodput_mbps;      ///< per transfer (Fig. 5)
    LossAnalyzer::Report loss;        ///< Table 2 / Fig. 4a / §3.2 durations
    int transfers_completed = 0;
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

// ================================================================= messages

struct MessageCampaign {
  struct Config {
    std::uint64_t seed = 3;
    int sessions = 6;
    bool upload = true;                    ///< client -> server
    Duration session_duration = Duration::minutes(2);
    Duration gap = Duration::seconds(10);
    bool pacing = false;
    obs::Options obs;
    std::shared_ptr<const scenario::Scenario> scenario;
    /// Optional simulated-neighbour fleet (src/fleet/); size 0 keeps the
    /// synthetic cell load, size N > 1 puts real contention under Figure 4b.
    fleet::Fleet::Config fleet;
    bool fast_forward = true;  ///< see TestbedConfig::fast_forward
  };

  struct Result {
    stats::Samples rtt_ms;        ///< per acked packet, §3.1 messages RTT
    stats::Samples latency_ms;    ///< per message, queue -> delivered
    LossAnalyzer::Report loss;    ///< Table 2 / Fig. 4b
    int messages_sent = 0;
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

// ================================================================ speedtest

struct SpeedtestCampaign {
  struct Config {
    std::uint64_t seed = 4;
    AccessKind access = AccessKind::kStarlink;
    int tests = 24;
    bool download = true;
    int connections = 8;
    Duration test_duration = Duration::seconds(12);
    Duration gap = Duration::minutes(2);
    bool satcom_pep = true;  ///< PEP ablation switch (SatCom access only)
    obs::Options obs;
    std::shared_ptr<const scenario::Scenario> scenario;
    /// Optional simulated-neighbour fleet (Starlink access only).
    fleet::Fleet::Config fleet;
    bool fast_forward = true;  ///< see TestbedConfig::fast_forward
  };

  struct Result {
    stats::Samples mbps;  ///< one sample per test (Fig. 5)
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

// ====================================================================== web

struct WebCampaign {
  struct Config {
    std::uint64_t seed = 5;
    AccessKind access = AccessKind::kStarlink;
    int catalog_sites = 120;
    int visits = 60;              ///< total page loads
    Duration gap = Duration::seconds(4);
    Duration visit_timeout = Duration::seconds(90);
    bool satcom_pep = true;  ///< PEP ablation switch (SatCom access only)
    /// Name resolution across the access link (one lookup per origin per
    /// cold cache) — part of every real onLoad.
    bool dns = true;
    obs::Options obs;
    std::shared_ptr<const scenario::Scenario> scenario;
    /// Optional simulated-neighbour fleet (Starlink access only); puts real
    /// contention under the Figure 6 page loads.
    fleet::Fleet::Config fleet;
    bool fast_forward = true;  ///< see TestbedConfig::fast_forward
  };

  struct Result {
    stats::Samples onload_s;       ///< Figure 6a
    stats::Samples speedindex_s;   ///< Figure 6b
    stats::Samples setup_ms;       ///< per-connection TCP+TLS setup
    double mean_connections = 0.0;
    int visits_completed = 0;
    int visits_timed_out = 0;
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

// ================================================================ road trip

/// The mobility extension (bench/fig7_road_trip): 1 Hz latency probes to the
/// nearest anchor while the terminal drives a mobility::Route. Probes are
/// binned by the vehicle's instantaneous speed, consecutive losses fold into
/// outage durations, and the provenance sums expose how much of the moving
/// RTT is handover stall.
struct RoadTripCampaign {
  struct Config {
    std::uint64_t seed = 7;
    std::string route = "highway";  ///< mobility::routes::lookup name
    double speed_scale = 1.0;       ///< multiplies the route's leg speeds
    Duration cadence = Duration::seconds(1);
    /// Zero = drive the whole route (scaled) plus a 30 s settled tail.
    Duration duration = Duration::zero();
    bool obstructions = true;  ///< false strips the route's masks (ablation)
    obs::Options obs;
    std::shared_ptr<const scenario::Scenario> scenario;
    /// Optional simulated-neighbour fleet: makes cell migrations land in
    /// arbiters with real background members.
    fleet::Fleet::Config fleet;
    bool fast_forward = true;  ///< see TestbedConfig::fast_forward
  };

  struct Result {
    /// RTT (ms) grouped by speed bin: key = floor(speed_kmh / 20).
    stats::KeyedSamples rtt_by_speed;
    /// Loss indicator (1 = lost) per probe, same keys: mean() = loss rate.
    stats::KeyedSamples loss_by_speed;
    stats::Samples outage_s;  ///< consecutive-loss run lengths, seconds
    /// Provenance component sums over all answered probes (ns); all zero
    /// unless Config::obs.provenance is on.
    std::array<std::int64_t, obs::kTagComponents> comp_ns{};
    std::uint64_t probes_sent = 0;
    std::uint64_t probes_lost = 0;
    std::uint64_t reroutes = 0;         ///< mobility.* counter mirrors
    std::uint64_t cell_migrations = 0;
    std::uint64_t tunnels = 0;
    double route_km = 0.0;  ///< same route in every cell; merge keeps max
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

// ============================================================ sweep support
//
// Per-cell result folds for runner::run_merged (runner/sweep.hpp): each
// merge() appends `from`'s distributions to `into` and sums its counters.
// Folds are applied in cell-id order by the sweep, which keeps multi-seed
// campaigns bit-identical across --jobs settings. Requires both results to
// come from the same campaign shape (e.g. the same anchor set for pings).

void merge(PingCampaign::Result& into, const PingCampaign::Result& from);
void merge(H3Campaign::Result& into, const H3Campaign::Result& from);
void merge(MessageCampaign::Result& into, const MessageCampaign::Result& from);
void merge(SpeedtestCampaign::Result& into, const SpeedtestCampaign::Result& from);
void merge(WebCampaign::Result& into, const WebCampaign::Result& from);
void merge(RoadTripCampaign::Result& into, const RoadTripCampaign::Result& from);

// =============================================================== middleboxes

struct MiddleboxAudit {
  struct Config {
    std::uint64_t seed = 6;
    AccessKind access = AccessKind::kStarlink;
    int wehe_repetitions = 10;  ///< the paper ran the suite ten times
    obs::Options obs;
    std::shared_ptr<const scenario::Scenario> scenario;
    bool fast_forward = true;  ///< see TestbedConfig::fast_forward
  };

  struct Result {
    std::vector<mbox::Traceroute::Hop> traceroute;
    mbox::Tracebox::Report tracebox;
    mbox::WeheClient::Report wehe;
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

}  // namespace slp::measure
