#include "measure/qoe_campaign.hpp"

#include <functional>
#include <memory>
#include <vector>

#include "sim/provenance.hpp"

namespace slp::measure {

std::uint64_t handover_slot_phase(TimePoint t) {
  const std::int64_t slot_ns = Duration::seconds(15).ns();
  std::int64_t ns = t.ns() % slot_ns;
  if (ns < 0) ns += slot_ns;
  return static_cast<std::uint64_t>(ns / Duration::seconds(1).ns());
}

namespace {

TestbedConfig make_testbed_config(std::uint64_t seed, const obs::Options& obs,
                                  const std::shared_ptr<const scenario::Scenario>& scenario,
                                  const fleet::Fleet::Config& fleet, bool fast_forward) {
  TestbedConfig tb;
  tb.seed = seed;
  tb.with_satcom = false;
  tb.obs = obs;
  tb.scenario = scenario;
  tb.fleet = fleet;
  tb.fast_forward = fast_forward;
  return tb;
}

}  // namespace

// ================================================================ ABR video

AbrCampaign::Result AbrCampaign::run(const Config& config) {
  Testbed bed{make_testbed_config(config.seed, config.obs, config.scenario, config.fleet,
                                  config.fast_forward)};

  Result result;
  quic::QuicStack client_stack{bed.starlink().client()};
  quic::QuicStack server_stack{bed.campus_server()};
  const quic::QuicConfig quic_config;

  // Sessions run one at a time, so the listener always hands the accepted
  // connection to the session launched last (see AbrVideoSession's wiring
  // contract: accept precedes the client handshake completing).
  std::vector<std::unique_ptr<qoe::AbrVideoSession>> sessions;
  qoe::AbrVideoSession* pending = nullptr;
  server_stack.listen(443, [&](quic::QuicConnection& conn) {
    if (pending != nullptr) pending->attach_server(conn);
  }, quic_config);

  std::function<void(int)> launch = [&](int remaining) {
    if (remaining <= 0) return;
    quic::QuicConnection& conn =
        client_stack.connect(bed.campus_server().addr(), 443, quic_config);
    sessions.push_back(std::make_unique<qoe::AbrVideoSession>(conn, config.session));
    qoe::AbrVideoSession& session = *sessions.back();
    pending = &session;
    session.on_complete = [&, remaining](const qoe::AbrVideoSession::Metrics& m) {
      result.startup_s.add(m.startup_delay.to_seconds());
      result.rebuffer_ratio.add(m.rebuffer_ratio());
      if (m.segments_downloaded > 0) result.mean_rung_mbps.add(m.mean_rung_mbps);
      for (double mbps : m.segment_mbps) result.segment_mbps.add(mbps);
      for (TimePoint at : m.rebuffer_at) {
        result.rebuffer_by_phase.add(handover_slot_phase(at), 1.0);
      }
      result.rebuffer_events += static_cast<std::uint64_t>(m.rebuffer_events);
      result.quality_switches += static_cast<std::uint64_t>(m.quality_switches);
      result.segments += static_cast<std::uint64_t>(m.segments_downloaded);
      result.sessions_completed++;
      bed.sim().schedule_in(config.gap, [&launch, remaining] { launch(remaining - 1); });
    };
    session.start();
  };
  launch(config.sessions);
  bed.sim().run();
  result.obs = bed.take_obs();
  return result;
}

// ======================================================== videoconferencing

VcCampaign::Result VcCampaign::run(const Config& config) {
  Testbed bed{make_testbed_config(config.seed, config.obs, config.scenario, config.fleet,
                                  config.fast_forward)};

  Result result;
  quic::QuicStack client_stack{bed.starlink().client()};
  quic::QuicStack server_stack{bed.campus_server()};
  const quic::QuicConfig quic_config;

  std::vector<std::unique_ptr<qoe::VcSession>> calls;
  qoe::VcSession* pending = nullptr;
  server_stack.listen(443, [&](quic::QuicConnection& conn) {
    if (pending != nullptr) pending->attach_server(conn);
  }, quic_config);

  const auto fold_dir = [&result](const qoe::VcSession::DirMetrics& dir) {
    for (const qoe::VcSession::Window& win : dir.windows) {
      result.mos.add(win.mos);
      result.window_loss_pct.add(win.loss_pct);
      result.mos_by_phase.add(handover_slot_phase(win.mid), win.mos);
    }
    for (double ms : dir.transit_ms) result.transit_ms.add(ms);
    result.frames_sent += dir.frames_sent;
    result.frames_missed += dir.frames_missed;
    result.datagrams_lost += dir.datagrams_lost;
  };

  std::function<void(int)> launch = [&](int remaining) {
    if (remaining <= 0) return;
    quic::QuicConnection& conn =
        client_stack.connect(bed.campus_server().addr(), 443, quic_config);
    calls.push_back(std::make_unique<qoe::VcSession>(conn, config.session));
    qoe::VcSession& call = *calls.back();
    pending = &call;
    call.on_complete = [&, remaining](const qoe::VcSession::Metrics& m) {
      fold_dir(m.up);
      fold_dir(m.down);
      result.calls_completed++;
      bed.sim().schedule_in(config.gap, [&launch, remaining] { launch(remaining - 1); });
    };
    call.start();
  };
  launch(config.calls);
  bed.sim().run();
  result.obs = bed.take_obs();
  return result;
}

// ============================================================= game traffic

GameCampaign::Result GameCampaign::run(const Config& config) {
  Testbed bed{make_testbed_config(config.seed, config.obs, config.scenario, config.fleet,
                                  config.fast_forward)};

  Result result;
  std::vector<std::unique_ptr<qoe::GameSession>> matches;

  std::function<void(int)> launch = [&](int remaining) {
    if (remaining <= 0) return;
    // Distinct server port per match: earlier sessions stay alive (their
    // metrics belong to them) and a port stays bound for its session's life.
    qoe::GameSession::Config session_config = config.session;
    session_config.server_port = static_cast<std::uint16_t>(
        config.session.server_port + (config.matches - remaining));
    matches.push_back(std::make_unique<qoe::GameSession>(
        bed.starlink().client(), bed.campus_server(), session_config));
    qoe::GameSession& match = *matches.back();
    match.on_complete = [&, remaining](const qoe::GameSession::Metrics& m) {
      for (const qoe::GameSession::Tick& t : m.ticks) {
        result.ticks_sent++;
        const double stall_ms = static_cast<double>(t.handover_stall_ns) * 1e-6;
        if (t.lost) {
          result.ticks_lost++;
        } else {
          result.rtt_ms.add(t.rtt_ms);
          result.stall_ms.add(stall_ms);
          if (stall_ms >= kStallHighMs) {
            result.ticks_high_stall++;
            if (t.spike) result.spikes_high_stall++;
          } else if (stall_ms <= kStallLowMs) {
            result.ticks_low_stall++;
            if (t.spike) result.spikes_low_stall++;
          }
        }
        if (t.spike) {
          result.spikes++;
          result.spikes_by_phase.add(handover_slot_phase(t.sent_at), 1.0);
          if (t.handover_stall_ns > 0) {
            result.spikes_with_stall++;
            result.spike_stall_ms.add(stall_ms);
          }
        }
      }
      result.matches_completed++;
      bed.sim().schedule_in(config.gap, [&launch, remaining] { launch(remaining - 1); });
    };
    match.start();
  };
  launch(config.matches);
  bed.sim().run();
  result.obs = bed.take_obs();
  return result;
}

// ============================================================ sweep support

namespace {

void append(stats::Samples& into, const stats::Samples& from) {
  into.reserve(into.size() + from.size());
  into.add_all(from.values());
}

}  // namespace

void merge(AbrCampaign::Result& into, const AbrCampaign::Result& from) {
  append(into.startup_s, from.startup_s);
  append(into.rebuffer_ratio, from.rebuffer_ratio);
  append(into.mean_rung_mbps, from.mean_rung_mbps);
  append(into.segment_mbps, from.segment_mbps);
  into.rebuffer_by_phase.merge(from.rebuffer_by_phase);
  into.rebuffer_events += from.rebuffer_events;
  into.quality_switches += from.quality_switches;
  into.segments += from.segments;
  into.sessions_completed += from.sessions_completed;
  obs::merge(into.obs, from.obs);
}

void merge(VcCampaign::Result& into, const VcCampaign::Result& from) {
  append(into.mos, from.mos);
  append(into.window_loss_pct, from.window_loss_pct);
  append(into.transit_ms, from.transit_ms);
  into.mos_by_phase.merge(from.mos_by_phase);
  into.frames_sent += from.frames_sent;
  into.frames_missed += from.frames_missed;
  into.datagrams_lost += from.datagrams_lost;
  into.calls_completed += from.calls_completed;
  obs::merge(into.obs, from.obs);
}

void merge(GameCampaign::Result& into, const GameCampaign::Result& from) {
  append(into.rtt_ms, from.rtt_ms);
  into.spikes_by_phase.merge(from.spikes_by_phase);
  append(into.spike_stall_ms, from.spike_stall_ms);
  append(into.stall_ms, from.stall_ms);
  into.ticks_high_stall += from.ticks_high_stall;
  into.ticks_low_stall += from.ticks_low_stall;
  into.spikes_high_stall += from.spikes_high_stall;
  into.spikes_low_stall += from.spikes_low_stall;
  into.ticks_sent += from.ticks_sent;
  into.ticks_lost += from.ticks_lost;
  into.spikes += from.spikes;
  into.spikes_with_stall += from.spikes_with_stall;
  into.matches_completed += from.matches_completed;
  obs::merge(into.obs, from.obs);
}

}  // namespace slp::measure
