#include "measure/multivantage.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "leo/constellation.hpp"
#include "leo/handover.hpp"
#include "leo/places.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace slp::measure {

std::vector<MultiVantageCampaign::Anchor> MultiVantageCampaign::paper_anchors() {
  using leo::places::kAmsterdam;
  return {
      {"brussels-be", leo::places::kBrussels, true, true},
      {"antwerp-be", leo::places::kAntwerp, true, true},
      {"ghent-be", leo::places::kGhent, true, true},
      {"liege-be", leo::places::kLiege, true, true},
      {"amsterdam-1", kAmsterdam, true, false},
      {"amsterdam-2", kAmsterdam, true, false},
      {"nuremberg-1", leo::places::kNuremberg, true, false},
      {"nuremberg-2", leo::places::kNuremberg, true, false},
      {"new-york", leo::places::kNewYork, false, false},
      {"fremont", leo::places::kFremont, false, false},
      {"singapore", leo::places::kSingapore, false, false},
  };
}

MultiVantageCampaign::Result MultiVantageCampaign::run(const Config& config) {
  sim::Simulator sim{config.seed};
  if (config.obs.any()) sim.enable_obs(config.obs);
  sim::Network net{sim};
  leo::StarlinkAccess access{net, config.starlink};

  // Sentinel: keeps the fleet's epoch timer alive through the whole window
  // (same daemon contract as FleetCampaign), scheduled before the Fleet so
  // its construction-time epoch sees a non-empty queue.
  sim.schedule_in(config.duration, [] {});

  fleet::Fleet::Config fleet_config = config.fleet;
  fleet_config.size = std::max(1, fleet_config.size);
  fleet::Fleet fleet{sim, access, fleet_config};

  const std::vector<Anchor> anchors =
      config.anchors.empty() ? paper_anchors() : config.anchors;

  // Every vantage watches the sky from its own coordinates, against the
  // global gateway set, with a label-forked stream of its own — one shared
  // Constellation supplies the geometry.
  leo::Constellation constellation{config.starlink.shell};
  struct Station {
    fleet::TerminalId vantage = 0;
    std::unique_ptr<leo::HandoverScheduler> scheduler;
    Rng rng;
  };
  std::vector<Station> stations;
  stations.reserve(anchors.size());
  Result result;
  result.vantages.reserve(anchors.size());
  for (const Anchor& a : anchors) {
    leo::HandoverScheduler::Config ho;
    ho.terminal = a.location;
    ho.slot = config.starlink.handover_slot;
    ho.terminal_min_elevation_deg = config.starlink.terminal_min_elevation_deg;
    ho.gateways = leo::default_global_gateways();
    ho.active_planes_fn = config.starlink.active_planes_fn;
    Station s;
    s.vantage = fleet.add_vantage(a.location);
    s.scheduler = std::make_unique<leo::HandoverScheduler>(
        constellation, std::move(ho), sim.fork_rng("mv/" + a.name));
    s.rng = sim.fork_rng("mv/" + a.name + "/probe");
    stations.push_back(std::move(s));
    result.vantages.push_back({a.name, a.european, a.local, {}, {}, 0, 0});
  }

  const leo::StarlinkAccess::Config& ac = config.starlink;
  const double nominal_down_mbps = ac.cell_downlink.bits_per_second() / 1e6;

  const auto probe_round = [&] {
    const TimePoint now = sim.now();
    for (std::size_t i = 0; i < stations.size(); ++i) {
      Station& s = stations[i];
      VantageResult& v = result.vantages[i];
      const leo::HandoverScheduler::Path& path = s.scheduler->path_at(now);
      v.probes_sent += static_cast<std::uint64_t>(config.probes_per_round);
      if (!path.connected) {
        v.probes_lost += static_cast<std::uint64_t>(config.probes_per_round);
        continue;
      }
      fleet::CellArbiter* arb = fleet.arbiter(fleet.vantage_cell(s.vantage));
      const double util_down =
          arb == nullptr ? 0.0 : arb->utilization(fleet::CellArbiter::kDown, now);
      const double util_up =
          arb == nullptr ? 0.0 : arb->utilization(fleet::CellArbiter::kUp, now);
      const Duration prop = path.propagation_one_way();
      for (int k = 0; k < config.probes_per_round; ++k) {
        // The access model's one-way composition, both directions: bent-pipe
        // propagation + fixed processing + a uniform wait for the next frame
        // grant, plus an exponential scheduling tail. Contention adds queueing
        // proportional to the cell's utilization (an M/D/1-flavoured term:
        // deeper frames queue when the arbiter runs the cell hotter).
        const Duration up_wait =
            Duration::from_seconds(s.rng.uniform(0.0, ac.uplink_frame.to_seconds()) +
                                   util_up * ac.uplink_frame.to_seconds() * 0.5);
        const Duration down_wait =
            Duration::from_seconds(s.rng.uniform(0.0, ac.downlink_frame.to_seconds()) +
                                   util_down * ac.downlink_frame.to_seconds() * 0.5);
        const Duration tail =
            Duration::from_seconds(s.rng.exponential(ac.tail_jitter_mean.to_seconds()));
        const Duration rtt = prop + prop + ac.processing_up + ac.processing_down +
                             up_wait + down_wait + tail;
        v.rtt_ms.add(rtt.to_millis());
      }
      v.down_mbps.add(nominal_down_mbps *
                      fleet.vantage_available_fraction(
                          s.vantage, fleet::CellArbiter::kDown, now));
    }
  };

  // Rounds at t = 0, cadence, 2*cadence, ... while inside the window.
  std::function<void()> schedule_round = [&] {
    probe_round();
    if (sim.now() + config.cadence <= TimePoint::epoch() + config.duration) {
      sim.schedule_in(config.cadence, [&schedule_round] { schedule_round(); });
    }
  };
  sim.schedule_in(Duration::zero(), [&schedule_round] { schedule_round(); });

  sim.run_for(config.duration);

  result.hot_cells = fleet.cell_count();
  result.supercells = fleet.aggregates().size();
  result.aggregated_terminals = fleet.aggregated_terminal_count();
  if (auto* rec = sim.obs()) {
    result.obs = rec->take_snapshot();
  } else {
    result.obs.cells = 1;
  }
  return result;
}

void merge(MultiVantageCampaign::Result& into, const MultiVantageCampaign::Result& from) {
  if (into.vantages.empty()) {
    into.vantages = from.vantages;
  } else {
    for (std::size_t i = 0; i < into.vantages.size() && i < from.vantages.size(); ++i) {
      into.vantages[i].rtt_ms.add_all(from.vantages[i].rtt_ms.values());
      into.vantages[i].down_mbps.add_all(from.vantages[i].down_mbps.values());
      into.vantages[i].probes_sent += from.vantages[i].probes_sent;
      into.vantages[i].probes_lost += from.vantages[i].probes_lost;
    }
  }
  into.hot_cells = std::max(into.hot_cells, from.hot_cells);
  into.supercells = std::max(into.supercells, from.supercells);
  into.aggregated_terminals = std::max(into.aggregated_terminals, from.aggregated_terminals);
  obs::merge(into.obs, from.obs);
}

}  // namespace slp::measure
