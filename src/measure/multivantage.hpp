// multivantage.hpp — the paper's 11 anchors as measured terminals in one fleet.
//
// The IMC'22 study measured ONE Starlink dish and pinged 11 anchors; the
// follow-up studies it motivated ("A Multifaceted Look at Starlink
// Performance", "Democratizing LEO Satellite Network Measurement") place a
// *dish* in every metro instead. MultiVantageCampaign is that inversion run
// inside a single simulation: each anchor city hosts a measured vantage
// terminal (fleet::Fleet::add_vantage) sharing one continental fleet, with
// its own handover scheduler watching the sky from its own coordinates and
// a global gateway set, so per-city RTT and capacity distributions come out
// of ONE deterministic run instead of 11 separate single-vantage campaigns.
//
// Vantage probes are model-level (no per-vantage packet stacks): RTT is the
// bent-pipe geometry (2x propagation) + the access model's processing and
// frame-scheduling terms + a contention-dependent queueing term from the
// vantage cell's arbiter; capacity is the nominal cell rate times the
// vantage's elastic share (Fleet::vantage_available_fraction). That keeps 11
// vantages over a million-terminal fleet as cheap as one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "leo/access.hpp"
#include "obs/recorder.hpp"
#include "stats/quantiles.hpp"

namespace slp::measure {

struct MultiVantageCampaign {
  struct Anchor {
    std::string name;
    leo::GeoPoint location;
    bool european = false;
    bool local = false;  ///< in Belgium, like the 4 local RIPE nodes
  };

  /// The paper's 11 anchors (testbed.cpp order).
  [[nodiscard]] static std::vector<Anchor> paper_anchors();

  struct Config {
    std::uint64_t seed = 8;
    Duration duration = Duration::hours(1);
    Duration cadence = Duration::minutes(5);
    int probes_per_round = 3;
    /// The shared fleet. size < 1 is promoted to 1 (vantages only, ambient
    /// cell load); continental presets + aggregate_idle scale to millions.
    fleet::Fleet::Config fleet;
    leo::StarlinkAccess::Config starlink;
    /// Empty = paper_anchors().
    std::vector<Anchor> anchors;
    obs::Options obs;
  };

  struct VantageResult {
    std::string name;
    bool european = false;
    bool local = false;
    stats::Samples rtt_ms;     ///< per answered probe
    stats::Samples down_mbps;  ///< elastic-share capacity, one per round
    std::uint64_t probes_sent = 0;
    std::uint64_t probes_lost = 0;  ///< rounds with no serving satellite
  };

  struct Result {
    std::vector<VantageResult> vantages;  ///< anchor order, stable across seeds
    std::uint64_t hot_cells = 0;
    std::uint64_t supercells = 0;
    std::uint64_t aggregated_terminals = 0;
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

/// Per-vantage fold for runner::run_merged (requires the same anchor set).
void merge(MultiVantageCampaign::Result& into, const MultiVantageCampaign::Result& from);

}  // namespace slp::measure
