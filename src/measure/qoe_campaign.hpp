// qoe_campaign.hpp — real-time application QoE campaigns (bench/fig8).
//
// Three campaigns put the src/qoe/ session models on the measurement
// testbed, one per application class:
//
//   AbrCampaign   -> ABR video: startup delay, rebuffer ratio, bitrate
//   VcCampaign    -> videoconferencing: per-window E-model MOS
//   GameCampaign  -> game traffic: tick RTT, lag spikes, handover stalls
//
// Each result carries the distributions plus a *slot-phase* view: QoE
// impairments keyed by `floor((t mod 15 s) / 1 s)` — second-of-slot within
// the 15-second Starlink handover grid. The paper family observes rebuffer
// events, MOS dips, and lag spikes clustering at the slot boundary (phases
// 14/0); these exports make that clustering a first-class, mergeable
// statistic. The usual sweep contract holds: merge() folds cells in id
// order, so any --jobs produces byte-identical results.
#pragma once

#include <cstdint>
#include <memory>

#include "fleet/fleet.hpp"
#include "measure/testbed.hpp"
#include "obs/recorder.hpp"
#include "qoe/abr.hpp"
#include "qoe/game.hpp"
#include "qoe/vc.hpp"
#include "scenario/scenario.hpp"
#include "stats/groupby.hpp"
#include "stats/quantiles.hpp"

namespace slp::measure {

/// Second-of-slot of a sim timestamp within the 15 s handover grid:
/// floor((t mod 15 s) / 1 s), in [0, 14]. Slots are indexed from the sim
/// epoch, matching leo::StarlinkAccess's reconfiguration clock.
[[nodiscard]] std::uint64_t handover_slot_phase(TimePoint t);

// ================================================================ ABR video

struct AbrCampaign {
  struct Config {
    std::uint64_t seed = 8;
    int sessions = 4;                      ///< sequential watch sessions
    Duration gap = Duration::seconds(10);  ///< idle gap between sessions
    qoe::AbrVideoSession::Config session;
    obs::Options obs;
    std::shared_ptr<const scenario::Scenario> scenario;
    /// Optional simulated-neighbour fleet: puts real cell contention under
    /// the video downloads (use fleet::named_mix("streaming") for fig8).
    fleet::Fleet::Config fleet;
    bool fast_forward = true;  ///< see TestbedConfig::fast_forward
  };

  struct Result {
    stats::Samples startup_s;        ///< per session
    stats::Samples rebuffer_ratio;   ///< per session
    stats::Samples mean_rung_mbps;   ///< per session, segment-weighted
    stats::Samples segment_mbps;     ///< per segment download throughput
    /// Rebuffer-stall onsets keyed by slot phase (value = 1 per event);
    /// counts cluster at the boundary phases when handovers cause stalls.
    stats::KeyedSamples rebuffer_by_phase;
    std::uint64_t rebuffer_events = 0;
    std::uint64_t quality_switches = 0;
    std::uint64_t segments = 0;
    int sessions_completed = 0;
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

// ======================================================== videoconferencing

struct VcCampaign {
  struct Config {
    std::uint64_t seed = 9;
    int calls = 3;                         ///< sequential calls
    Duration gap = Duration::seconds(10);
    qoe::VcSession::Config session;
    obs::Options obs;
    std::shared_ptr<const scenario::Scenario> scenario;
    /// Optional simulated-neighbour fleet (fleet::named_mix("realtime")).
    fleet::Fleet::Config fleet;
    bool fast_forward = true;  ///< see TestbedConfig::fast_forward
  };

  struct Result {
    stats::Samples mos;             ///< per window, both directions pooled
    stats::Samples window_loss_pct; ///< per window frames late/missing
    stats::Samples transit_ms;      ///< per playable frame, capture -> arrived
    /// Per-window MOS keyed by the slot phase of the window's capture
    /// midpoint: the boundary phases carry the MOS dips.
    stats::KeyedSamples mos_by_phase;
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_missed = 0;
    std::uint64_t datagrams_lost = 0;
    int calls_completed = 0;
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

// ============================================================= game traffic

struct GameCampaign {
  /// Stall buckets for Result::*_high_stall / *_low_stall: the top and
  /// bottom quarters of the combined per-slot beam-penalty range
  /// (2 x uniform(0, 8 ms)); the middle half is left out to sharpen the
  /// contrast.
  static constexpr double kStallHighMs = 12.0;
  static constexpr double kStallLowMs = 4.0;

  struct Config {
    std::uint64_t seed = 10;
    int matches = 3;                       ///< sequential matches
    Duration gap = Duration::seconds(5);
    qoe::GameSession::Config session;
    obs::Options obs;  ///< turn provenance on for the stall correlation
    std::shared_ptr<const scenario::Scenario> scenario;
    /// Optional simulated-neighbour fleet (fleet::named_mix("realtime")).
    fleet::Fleet::Config fleet;
    bool fast_forward = true;  ///< see TestbedConfig::fast_forward
  };

  struct Result {
    stats::Samples rtt_ms;          ///< per answered tick
    /// Lag-spike onsets keyed by slot phase (value = 1 per spike).
    stats::KeyedSamples spikes_by_phase;
    /// Per-spike handover-stall attribution (ms, from the snapshot's
    /// provenance tag); all zero unless Config::obs.provenance is on.
    stats::Samples spike_stall_ms;
    /// Answered ticks and spikes bucketed by the handover_stall carried in
    /// their provenance (>= kStallHighMs vs <= kStallLowMs). The slot's beam
    /// penalty shifts every RTT in the slot toward the spike threshold, so
    /// the spike *rate* in high-stall slots sits far above the low-stall
    /// rate — the quantitative form of the spike/handover_stall correlation.
    std::uint64_t ticks_high_stall = 0;
    std::uint64_t ticks_low_stall = 0;
    std::uint64_t spikes_high_stall = 0;
    std::uint64_t spikes_low_stall = 0;
    /// Handover stall of *every* answered tick (ms) — the baseline the
    /// spike attribution is compared against (spikes should sit well above).
    stats::Samples stall_ms;
    std::uint64_t ticks_sent = 0;
    std::uint64_t ticks_lost = 0;
    std::uint64_t spikes = 0;
    /// Spikes whose provenance carried handover stall (the paper-family
    /// correlation: most spikes should land here, not in random loss).
    std::uint64_t spikes_with_stall = 0;
    int matches_completed = 0;
    obs::Snapshot obs;
  };

  static Result run(const Config& config);
};

// ============================================================ sweep support

void merge(AbrCampaign::Result& into, const AbrCampaign::Result& from);
void merge(VcCampaign::Result& into, const VcCampaign::Result& from);
void merge(GameCampaign::Result& into, const GameCampaign::Result& from);

}  // namespace slp::measure
