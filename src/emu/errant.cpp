#include "emu/errant.hpp"

#include <cmath>
#include <sstream>

#include "phy/outage.hpp"

namespace slp::emu {

double ErrantProfile::LogNormal::median() const { return std::exp(mu); }

double ErrantProfile::LogNormal::sample(Rng& rng) const { return rng.lognormal(mu, sigma); }

ErrantProfile::ErrantProfile(std::string name, LogNormal down_mbps, LogNormal up_mbps,
                             LogNormal rtt_ms, double jitter_fraction, double loss_ratio)
    : name_{std::move(name)},
      down_mbps_{down_mbps},
      up_mbps_{up_mbps},
      rtt_ms_{rtt_ms},
      jitter_fraction_{jitter_fraction},
      loss_ratio_{loss_ratio} {}

namespace {

ErrantProfile::LogNormal fit_lognormal(const stats::Samples& samples) {
  // Moment fit on the logs.
  stats::StreamingSummary logs;
  for (const double x : samples.values()) {
    if (x > 0.0) logs.add(std::log(x));
  }
  ErrantProfile::LogNormal ln;
  ln.mu = logs.mean();
  ln.sigma = logs.stddev();
  return ln;
}

}  // namespace

ErrantProfile ErrantProfile::fit(std::string name, const stats::Samples& down_mbps,
                                 const stats::Samples& up_mbps, const stats::Samples& rtt_ms,
                                 double loss_ratio) {
  ErrantProfile profile;
  profile.name_ = std::move(name);
  profile.down_mbps_ = fit_lognormal(down_mbps);
  profile.up_mbps_ = fit_lognormal(up_mbps);
  profile.rtt_ms_ = fit_lognormal(rtt_ms);
  // Jitter fraction: dispersion of the RTT distribution (IQR over median).
  if (rtt_ms.size() >= 4) {
    const double iqr = rtt_ms.percentile(75) - rtt_ms.percentile(25);
    profile.jitter_fraction_ = std::clamp(iqr / (2.0 * rtt_ms.median()), 0.02, 0.5);
  }
  profile.loss_ratio_ = loss_ratio;
  return profile;
}

NetemParams ErrantProfile::sample(Rng& rng) const {
  NetemParams params;
  params.profile = name_;
  params.rate_down = DataRate::mbps(down_mbps_.sample(rng));
  params.rate_up = DataRate::mbps(up_mbps_.sample(rng));
  const double rtt = rtt_ms_.sample(rng);
  params.delay_one_way = Duration::from_millis(rtt / 2.0);
  params.jitter = Duration::from_millis(rtt * jitter_fraction_ / 2.0);
  params.loss_ratio = loss_ratio_;
  return params;
}

NetemParams ErrantProfile::median() const {
  NetemParams params;
  params.profile = name_;
  params.rate_down = DataRate::mbps(down_mbps_.median());
  params.rate_up = DataRate::mbps(up_mbps_.median());
  params.delay_one_way = Duration::from_millis(rtt_ms_.median() / 2.0);
  params.jitter = Duration::from_millis(rtt_ms_.median() * jitter_fraction_ / 2.0);
  params.loss_ratio = loss_ratio_;
  return params;
}

std::string ErrantProfile::describe() const {
  std::ostringstream os;
  os << name_ << ": down ~LogN(median " << std::exp(down_mbps_.mu) << " Mbit/s, sigma "
     << down_mbps_.sigma << "), up ~LogN(median " << std::exp(up_mbps_.mu) << " Mbit/s, sigma "
     << up_mbps_.sigma << "), RTT ~LogN(median " << std::exp(rtt_ms_.mu) << " ms, sigma "
     << rtt_ms_.sigma << "), loss " << loss_ratio_ * 100.0 << "%";
  return os.str();
}

std::vector<std::string> NetemParams::netem_commands(const std::string& dev,
                                                     const std::string& ifb_dev) const {
  auto fmt_rate = [](DataRate r) {
    std::ostringstream os;
    os << r.to_mbps() << "mbit";
    return os.str();
  };
  std::ostringstream egress;
  egress << "tc qdisc add dev " << dev << " root netem rate " << fmt_rate(rate_up) << " delay "
         << delay_one_way.to_millis() << "ms " << jitter.to_millis() << "ms loss "
         << loss_ratio * 100.0 << "%";
  std::ostringstream redirect;
  redirect << "tc filter add dev " << dev << " parent ffff: protocol ip u32 match u32 0 0 "
           << "action mirred egress redirect dev " << ifb_dev;
  std::ostringstream ingress;
  ingress << "tc qdisc add dev " << ifb_dev << " root netem rate " << fmt_rate(rate_down)
          << " delay " << delay_one_way.to_millis() << "ms " << jitter.to_millis()
          << "ms loss " << loss_ratio * 100.0 << "%";
  return {egress.str(), redirect.str(), ingress.str()};
}

ErrantProfile profile_4g_good() {
  // MONROE campaigns [29]: 4G good signal, ~29.5 down / 14 up Mbit/s median.
  return ErrantProfile{"4g-good",
                       {std::log(29.5), 0.45},
                       {std::log(14.0), 0.5},
                       {std::log(45.0), 0.35},
                       0.2,
                       0.002};
}

ErrantProfile profile_3g() {
  return ErrantProfile{"3g",
                       {std::log(7.5), 0.55},
                       {std::log(2.5), 0.6},
                       {std::log(75.0), 0.4},
                       0.25,
                       0.005};
}

ErrantProfile profile_geo_satcom() {
  // The paper's SatCom subscription: ~82/4.5 Mbit/s medians, ~600 ms RTT.
  return ErrantProfile{"geo-satcom",
                       {std::log(82.0), 0.25},
                       {std::log(4.5), 0.35},
                       {std::log(600.0), 0.05},
                       0.04,
                       0.003};
}

ErrantProfile profile_wired() {
  return ErrantProfile{"wired",
                       {std::log(940.0), 0.05},
                       {std::log(940.0), 0.05},
                       {std::log(8.0), 0.2},
                       0.1,
                       0.0001};
}

void apply(const NetemParams& params, sim::Link& link,
           std::vector<std::unique_ptr<sim::LossModel>>& loss_models, Rng rng) {
  link.set_rate(0, params.rate_up);
  link.set_rate(1, params.rate_down);
  link.set_delay(0, params.delay_one_way);
  link.set_delay(1, params.delay_one_way);
  if (params.loss_ratio > 0.0) {
    auto up = std::make_unique<phy::BernoulliLoss>(params.loss_ratio, rng.fork("netem-up"));
    auto down = std::make_unique<phy::BernoulliLoss>(params.loss_ratio, rng.fork("netem-down"));
    link.set_loss(0, up.get());
    link.set_loss(1, down.get());
    loss_models.push_back(std::move(up));
    loss_models.push_back(std::move(down));
  } else {
    link.set_loss(0, nullptr);
    link.set_loss(1, nullptr);
  }
}

}  // namespace slp::emu
