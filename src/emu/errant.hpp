// errant.hpp — data-driven network emulation profiles (the paper's artifact).
//
// The paper's contribution to tooling is a Starlink model for the ERRANT
// emulator (Trevisan et al., Computer Networks 2020): per-technology
// distributions of rate/delay/jitter/loss fitted from measurements, which
// ERRANT replays through netem. This module reproduces that artifact:
//   * ErrantProfile::fit() builds a profile from campaign samples;
//   * built-in reference profiles for 3G/4G (from the MONROE campaigns the
//     paper compares against) and for GEO SatCom and wired;
//   * NetemParams::netem_commands() emits the tc/netem invocations a user
//     would run, and apply() configures a simulated link the same way.
#pragma once

#include <string>
#include <vector>

#include "sim/link.hpp"
#include "stats/quantiles.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace slp::emu {

/// One concrete emulation setting (a netem instance).
struct NetemParams {
  std::string profile;
  DataRate rate_down;
  DataRate rate_up;
  Duration delay_one_way;
  Duration jitter;
  double loss_ratio = 0.0;

  /// The tc commands that realize this setting on `dev` (egress) and
  /// `ifb_dev` (ingress redirect), ERRANT-style.
  [[nodiscard]] std::vector<std::string> netem_commands(const std::string& dev = "eth0",
                                                        const std::string& ifb_dev = "ifb0") const;
};

/// A distributional profile: lognormal rates and RTT (the canonical ERRANT
/// choice), plus a mean loss ratio.
class ErrantProfile {
 public:
  struct LogNormal {
    double mu = 0.0;     ///< of the underlying normal
    double sigma = 0.0;
    [[nodiscard]] double median() const;
    [[nodiscard]] double sample(Rng& rng) const;
  };

  ErrantProfile() = default;
  ErrantProfile(std::string name, LogNormal down_mbps, LogNormal up_mbps, LogNormal rtt_ms,
                double jitter_fraction, double loss_ratio);

  /// Fits a profile from measured samples (download/upload in Mbit/s, RTT in
  /// ms, loss as a ratio). This is what the campaign runs on its own output.
  static ErrantProfile fit(std::string name, const stats::Samples& down_mbps,
                           const stats::Samples& up_mbps, const stats::Samples& rtt_ms,
                           double loss_ratio);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Draws one concrete emulation setting.
  [[nodiscard]] NetemParams sample(Rng& rng) const;
  /// The distribution medians as a setting.
  [[nodiscard]] NetemParams median() const;

  /// Renders the profile line ERRANT stores per technology.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] const LogNormal& down_mbps() const { return down_mbps_; }
  [[nodiscard]] const LogNormal& up_mbps() const { return up_mbps_; }
  [[nodiscard]] const LogNormal& rtt_ms() const { return rtt_ms_; }
  [[nodiscard]] double loss_ratio() const { return loss_ratio_; }

 private:
  std::string name_;
  LogNormal down_mbps_;
  LogNormal up_mbps_;
  LogNormal rtt_ms_;
  double jitter_fraction_ = 0.15;
  double loss_ratio_ = 0.0;
};

/// Reference profiles from the related work the paper compares against
/// ([29, 43]: MONROE 3G/4G medians) plus GEO SatCom and wired baselines.
[[nodiscard]] ErrantProfile profile_4g_good();
[[nodiscard]] ErrantProfile profile_3g();
[[nodiscard]] ErrantProfile profile_geo_satcom();
[[nodiscard]] ErrantProfile profile_wired();

/// Configures a simulated link (direction 0 = a->b = uplink) to one drawn
/// setting. `loss_models` receives ownership of the Bernoulli loss models
/// (they must outlive the link).
void apply(const NetemParams& params, sim::Link& link,
           std::vector<std::unique_ptr<sim::LossModel>>& loss_models, Rng rng);

}  // namespace slp::emu
