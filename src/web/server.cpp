#include "web/server.hpp"

namespace slp::web {

WebServer::WebServer(tcp::TcpStack& stack, Config config, Rng rng)
    : stack_{&stack}, config_{config}, rng_{rng} {
  for (int origin = 0; origin < config_.num_origins; ++origin) {
    const auto port = static_cast<std::uint16_t>(config_.base_port + origin);
    stack.listen(port, [this, origin](tcp::TcpConnection& conn) {
      connections_accepted_++;
      auto state = std::make_shared<ConnState>();
      state->think_timer = std::make_unique<sim::Timer>(stack_->sim());
      auto& plans = pending_plans_[origin];
      if (!plans.empty()) {
        state->plan.assign(plans.front().begin(), plans.front().end());
        plans.pop_front();
      }
      conn.on_data = [this, &conn, state](std::uint64_t n) { on_data(conn, *state, n); };
    }, config_.tcp);
  }
}

void WebServer::queue_plan(int origin, std::vector<std::uint64_t> body_sizes) {
  pending_plans_[origin].push_back(std::move(body_sizes));
}

void WebServer::clear_plans() { pending_plans_.clear(); }

void WebServer::on_data(tcp::TcpConnection& conn, ConnState& state, std::uint64_t n) {
  state.buffered += n;
  switch (state.tls) {
    case TlsState::kAwaitHello:
      if (state.buffered >= config_.tls_client_hello_bytes) {
        state.buffered -= config_.tls_client_hello_bytes;
        state.tls = TlsState::kAwaitFinished;
        conn.send(config_.tls_server_flight_bytes);
      }
      return;
    case TlsState::kAwaitFinished:
      if (state.buffered >= config_.tls_finished_bytes) {
        state.buffered -= config_.tls_finished_bytes;
        state.tls = TlsState::kEstablished;
        conn.send(config_.tls_ticket_bytes);
      }
      return;
    case TlsState::kEstablished:
      // Requests on one connection are strictly sequential (the browser
      // sends the next only after the previous response completes), so a
      // single think timer per connection suffices.
      while (state.buffered >= config_.request_bytes && !state.plan.empty()) {
        state.buffered -= config_.request_bytes;
        const std::uint64_t body = state.plan.front();
        state.plan.pop_front();
        responses_sent_++;
        const Duration think =
            Duration::from_seconds(rng_.lognormal(config_.think_mu, config_.think_sigma));
        const std::uint64_t total = body + config_.response_header_bytes;
        state.think_timer->arm(think, [&conn, total] { conn.send(total); });
      }
      return;
  }
}

}  // namespace slp::web
