#include "web/page.hpp"

#include <algorithm>
#include <cmath>

namespace slp::web {

std::uint64_t WebPage::total_bytes() const {
  std::uint64_t total = html_bytes;
  for (const WebObject& object : objects) total += object.bytes;
  return total;
}

std::uint64_t WebPage::above_fold_bytes() const {
  std::uint64_t total = html_bytes;
  for (const WebObject& object : objects) {
    if (object.above_fold) total += object.bytes;
  }
  return total;
}

int WebPage::objects_on_origin(int origin) const {
  int count = 0;
  for (const WebObject& object : objects) {
    if (object.origin == origin) ++count;
  }
  return count;
}

SiteCatalog SiteCatalog::generate(int n, Rng rng) {
  SiteCatalog catalog;
  catalog.sites_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    WebPage page;
    page.name = "site-" + std::to_string(i);
    page.html_bytes = static_cast<std::uint64_t>(
        std::clamp(rng.lognormal(std::log(30'000.0), 0.6), 8'000.0, 150'000.0));

    const int num_objects = static_cast<int>(
        std::clamp(rng.lognormal(std::log(55.0), 0.5), 8.0, 180.0));
    // ~25% as many origins as objects, the paper's "15 connections on
    // average" emerges from this together with the browser's pooling.
    page.num_origins = std::clamp(
        static_cast<int>(std::lround(num_objects * rng.uniform(0.15, 0.35))), 1, 40);

    page.objects.reserve(static_cast<std::size_t>(num_objects));
    for (int k = 0; k < num_objects; ++k) {
      WebObject object;
      object.bytes = static_cast<std::uint64_t>(
          std::clamp(rng.lognormal(std::log(12'000.0), 1.2), 250.0, 3'000'000.0));
      // The primary origin hosts ~30% of objects, the rest spread uniformly.
      object.origin = rng.chance(0.3)
                          ? 0
                          : static_cast<int>(rng.index(static_cast<std::size_t>(page.num_origins)));
      // Above-the-fold content is interleaved through the document (layout
      // images early, but fonts/CSS-gated paints late): roughly a third of
      // objects gate the visual completeness, spread across the load.
      object.above_fold = k % 3 == 0;
      page.objects.push_back(object);
    }
    catalog.sites_.push_back(std::move(page));
  }
  return catalog;
}

int SiteCatalog::max_origins() const {
  int max_origins = 0;
  for (const WebPage& page : sites_) max_origins = std::max(max_origins, page.num_origins);
  return max_origins;
}

}  // namespace slp::web
