// page.hpp — the synthetic web-page model behind the QoE experiments (§3.4).
//
// The paper visits the top-120 Belgian websites with BrowserTime. We cannot
// fetch real pages, so SiteCatalog generates 120 synthetic object graphs
// whose aggregate statistics follow the published web-measurement consensus
// for 2022 landing pages (~50-70 requests, ~15 origins, ~1.5-2.5 MB, ~30%
// of content above the fold) — the characteristics that drive onLoad and
// SpeedIndex through connection setup and transfer times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace slp::web {

struct WebObject {
  std::uint64_t bytes = 0;
  int origin = 0;        ///< index into the page's origin list
  bool above_fold = false;
};

struct WebPage {
  std::string name;
  std::uint64_t html_bytes = 30'000;
  int num_origins = 1;
  std::vector<WebObject> objects;

  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] std::uint64_t above_fold_bytes() const;  ///< incl. HTML
  [[nodiscard]] int objects_on_origin(int origin) const;
};

class SiteCatalog {
 public:
  /// Generates `n` sites deterministically from `rng`.
  static SiteCatalog generate(int n, Rng rng);

  [[nodiscard]] std::size_t size() const { return sites_.size(); }
  [[nodiscard]] const WebPage& site(std::size_t i) const { return sites_.at(i); }
  [[nodiscard]] const std::vector<WebPage>& sites() const { return sites_; }

  /// The maximum origin count across the catalog (how many ports a
  /// WebServer must listen on).
  [[nodiscard]] int max_origins() const;

 private:
  std::vector<WebPage> sites_;
};

}  // namespace slp::web
