#include "web/dns.hpp"

namespace slp::web {

namespace {

sim::Packet make_dns_packet(sim::Ipv4Addr dst, std::uint16_t src_port, std::uint16_t dst_port,
                            DnsMessage message) {
  sim::Packet pkt;
  pkt.dst = dst;
  pkt.src_port = src_port;
  pkt.dst_port = dst_port;
  pkt.proto = sim::Protocol::kUdp;
  // Typical DNS datagram sizes: ~60-80 B query, ~100-200 B answer.
  pkt.size_bytes = message.response ? 140 : 72;
  pkt.payload = sim::PacketPool::local().make<DnsMessage>(std::move(message));
  return pkt;
}

}  // namespace

// ------------------------------------------------------------- DnsServer

DnsServer::DnsServer(sim::Host& host, std::uint16_t port) : host_{&host}, port_{port} {
  host.bind(sim::Protocol::kUdp, port, [this](const sim::Packet& pkt) {
    const auto* query = pkt.payload.as<DnsMessage>();
    if (!query || query->response) return;
    DnsMessage answer;
    answer.id = query->id;
    answer.response = true;
    answer.name = query->name;
    const auto it = records_.find(query->name);
    if (it != records_.end()) {
      answer.found = true;
      answer.addr = it->second;
      queries_served_++;
    } else {
      queries_unknown_++;
    }
    host_->send(make_dns_packet(pkt.src, port_, pkt.src_port, std::move(answer)));
  });
}

void DnsServer::add_record(const std::string& name, sim::Ipv4Addr addr) {
  records_[name] = addr;
}

// ------------------------------------------------------------- DnsResolver

DnsResolver::DnsResolver(sim::Host& host, Config config)
    : host_{&host}, config_{config}, local_port_{host.ephemeral_port()} {
  host.bind(sim::Protocol::kUdp, local_port_,
            [this](const sim::Packet& pkt) { on_packet(pkt); });
}

DnsResolver::~DnsResolver() { host_->unbind(sim::Protocol::kUdp, local_port_); }

void DnsResolver::flush() { cache_.clear(); }

void DnsResolver::resolve(const std::string& name, Callback callback) {
  // Cache first.
  const auto cached = cache_.find(name);
  if (cached != cache_.end()) {
    if (cached->second.expires > host_->sim().now()) {
      cache_hits_++;
      callback(cached->second.addr);
      return;
    }
    cache_.erase(cached);
  }

  // Coalesce with an in-flight lookup.
  auto [it, inserted] = pending_.try_emplace(name);
  Pending& pending = it->second;
  pending.waiters.push_back(std::move(callback));
  if (!inserted) return;

  pending.attempts_left = config_.retries + 1;
  pending.id = next_id_++;
  pending.timer = std::make_unique<sim::Timer>(host_->sim());
  send_query(name, pending);
}

void DnsResolver::send_query(const std::string& name, Pending& pending) {
  pending.attempts_left--;
  lookups_sent_++;
  DnsMessage query;
  query.id = pending.id;
  query.name = name;
  host_->send(make_dns_packet(config_.server, local_port_, config_.server_port,
                              std::move(query)));
  pending.timer->arm(config_.timeout, [this, name] {
    auto it = pending_.find(name);
    if (it == pending_.end()) return;
    if (it->second.attempts_left > 0) {
      send_query(name, it->second);
    } else {
      failures_++;
      finish(name, 0);
    }
  });
}

void DnsResolver::on_packet(const sim::Packet& pkt) {
  const auto* answer = pkt.payload.as<DnsMessage>();
  if (!answer || !answer->response) return;
  const auto it = pending_.find(answer->name);
  if (it == pending_.end() || it->second.id != answer->id) return;  // stale
  if (answer->found) {
    cache_[answer->name] =
        CacheEntry{answer->addr, host_->sim().now() + config_.cache_ttl};
    finish(answer->name, answer->addr);
  } else {
    failures_++;
    finish(answer->name, 0);
  }
}

void DnsResolver::finish(const std::string& name, sim::Ipv4Addr addr) {
  const auto it = pending_.find(name);
  if (it == pending_.end()) return;
  // Detach before invoking waiters: a callback may re-resolve the name.
  std::vector<Callback> waiters = std::move(it->second.waiters);
  pending_.erase(it);
  for (Callback& waiter : waiters) waiter(addr);
}

}  // namespace slp::web
