// dns.hpp — DNS resolution for the web pipeline.
//
// Every real page load starts with name lookups: one query per origin,
// answered by the ISP resolver *across the access link* — which is why DNS
// contributes a full access-RTT per uncached origin to onLoad (tens of ms on
// Starlink, ~600 ms on GEO). The browser uses a stub resolver with a cache;
// the authoritative side is a simple name -> address table.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/host.hpp"
#include "sim/simulator.hpp"

namespace slp::web {

/// Query/response payload (rides opaque in UDP packets, like everything
/// above layer 4 in this model).
struct DnsMessage {
  std::uint16_t id = 0;
  bool response = false;
  bool found = false;
  std::string name;
  sim::Ipv4Addr addr = 0;
};

/// Authoritative server: answers queries on port 53 from a static table.
class DnsServer {
 public:
  explicit DnsServer(sim::Host& host, std::uint16_t port = 53);

  void add_record(const std::string& name, sim::Ipv4Addr addr);

  [[nodiscard]] std::uint64_t queries_served() const { return queries_served_; }
  [[nodiscard]] std::uint64_t queries_unknown() const { return queries_unknown_; }

 private:
  sim::Host* host_;
  std::uint16_t port_;
  std::map<std::string, sim::Ipv4Addr> records_;
  std::uint64_t queries_served_ = 0;
  std::uint64_t queries_unknown_ = 0;
};

/// Client-side stub resolver with a TTL cache, retry and timeout.
class DnsResolver {
 public:
  struct Config {
    sim::Ipv4Addr server = 0;
    std::uint16_t server_port = 53;
    Duration timeout = Duration::seconds(2);
    int retries = 2;
    Duration cache_ttl = Duration::seconds(60);
  };

  /// `addr == 0` on the callback means resolution failed.
  using Callback = std::function<void(sim::Ipv4Addr)>;

  DnsResolver(sim::Host& host, Config config);
  ~DnsResolver();

  /// Resolves `name`; served from cache when fresh. Concurrent queries for
  /// the same name coalesce into one wire lookup.
  void resolve(const std::string& name, Callback callback);

  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t lookups_sent() const { return lookups_sent_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }

  /// Drops all cached entries (e.g. between campaign phases).
  void flush();

 private:
  struct Pending {
    std::vector<Callback> waiters;
    std::unique_ptr<sim::Timer> timer;
    int attempts_left = 0;
    std::uint16_t id = 0;
  };
  struct CacheEntry {
    sim::Ipv4Addr addr = 0;
    TimePoint expires;
  };

  void send_query(const std::string& name, Pending& pending);
  void on_packet(const sim::Packet& pkt);
  void finish(const std::string& name, sim::Ipv4Addr addr);

  sim::Host* host_;
  Config config_;
  std::uint16_t local_port_;
  std::uint16_t next_id_ = 1;
  std::map<std::string, Pending> pending_;
  std::map<std::string, CacheEntry> cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t lookups_sent_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace slp::web
