#include "web/browser.hpp"

#include <algorithm>
#include <cassert>

namespace slp::web {

namespace {
enum class TlsPhase { kAwaitServerFlight, kAwaitTicket, kReady };
}  // namespace

struct Browser::Conn {
  tcp::TcpConnection* tcp = nullptr;
  int origin = 0;
  TlsPhase tls = TlsPhase::kAwaitServerFlight;
  std::uint64_t buffered = 0;
  std::vector<Fetch> plan;
  std::size_t next_fetch = 0;
  bool fetching = false;
  TimePoint opened_at;
  bool setup_recorded = false;
};

struct Browser::Visit {
  const WebPage* page = nullptr;
  std::function<void(const VisitResult&)> on_complete;
  TimePoint start;
  sim::Timer timeout_timer;
  std::vector<std::unique_ptr<Conn>> conns;

  // progress
  bool html_done = false;
  std::size_t objects_remaining = 0;

  // SpeedIndex state
  std::uint64_t above_fold_total = 0;
  std::uint64_t above_fold_done = 0;
  TimePoint last_paint_event;
  double speed_index_integral_s = 0.0;

  // setup-time accounting
  Duration setup_sum = Duration::zero();
  int setup_count = 0;

  explicit Visit(sim::Simulator& sim) : timeout_timer{sim} {}
};

Browser::Browser(tcp::TcpStack& stack, WebServer& server, Config config)
    : stack_{&stack}, server_{&server}, config_{config} {}

Browser::~Browser() = default;

void Browser::visit(const WebPage& page, std::function<void(const VisitResult&)> on_complete) {
  assert(active_ == nullptr && "one visit at a time");
  active_ = std::make_unique<Visit>(stack_->sim());
  Visit& v = *active_;
  v.page = &page;
  v.on_complete = std::move(on_complete);
  v.start = stack_->sim().now();
  v.last_paint_event = v.start;
  v.above_fold_total = page.above_fold_bytes();
  v.objects_remaining = page.objects.size();
  v.timeout_timer.arm(config_.visit_timeout, [this] { finish(false); });

  // Fetch the HTML document on the primary origin.
  open_connection(v, 0, {Fetch{page.html_bytes, true}});
}

std::string Browser::origin_hostname(const WebPage& page, int origin) {
  return "origin-" + std::to_string(origin) + "." + page.name + ".example";
}

void Browser::open_connection(Visit& visit, int origin, std::vector<Fetch> plan) {
  if (config_.dns != nullptr) {
    // Resolve first; the connection opens when the answer (or the cache)
    // comes back. The visit may time out while a lookup is in flight.
    Visit* vp = &visit;
    config_.dns->resolve(
        origin_hostname(*visit.page, origin),
        [this, vp, origin, plan = std::move(plan)](sim::Ipv4Addr addr) mutable {
          (void)addr;  // one web host serves all origins; timing is the point
          if (active_.get() != vp) return;  // visit already finished
          open_connection_resolved(*vp, origin, std::move(plan));
        });
    return;
  }
  open_connection_resolved(visit, origin, std::move(plan));
}

void Browser::open_connection_resolved(Visit& visit, int origin, std::vector<Fetch> plan) {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(plan.size());
  for (const Fetch& fetch : plan) sizes.push_back(fetch.body_bytes);
  server_->queue_plan(origin, std::move(sizes));

  auto conn = std::make_unique<Conn>();
  Conn& c = *conn;
  c.origin = origin;
  c.plan = std::move(plan);
  c.opened_at = stack_->sim().now();
  const auto port = static_cast<std::uint16_t>(server_->config().base_port + origin);
  c.tcp = &stack_->connect(config_.server_addr, port, config_.tcp);
  visit.conns.push_back(std::move(conn));

  Visit* vp = &visit;
  Conn* cp = &c;
  c.tcp->on_established = [this, cp] {
    cp->tcp->send(server_->config().tls_client_hello_bytes);
  };
  c.tcp->on_data = [this, vp, cp](std::uint64_t n) { on_conn_data(*vp, *cp, n); };
}

void Browser::on_conn_data(Visit& visit, Conn& conn, std::uint64_t n) {
  const WebServer::Config& scfg = server_->config();
  conn.buffered += n;
  switch (conn.tls) {
    case TlsPhase::kAwaitServerFlight:
      if (conn.buffered >= scfg.tls_server_flight_bytes) {
        conn.buffered -= scfg.tls_server_flight_bytes;
        conn.tls = TlsPhase::kAwaitTicket;
        conn.tcp->send(scfg.tls_finished_bytes);
      }
      return;
    case TlsPhase::kAwaitTicket:
      if (conn.buffered >= scfg.tls_ticket_bytes) {
        conn.buffered -= scfg.tls_ticket_bytes;
        conn.tls = TlsPhase::kReady;
        if (!conn.setup_recorded) {
          conn.setup_recorded = true;
          visit.setup_sum += stack_->sim().now() - conn.opened_at;
          visit.setup_count++;
        }
        // First request.
        if (conn.next_fetch < conn.plan.size()) {
          conn.fetching = true;
          conn.tcp->send(scfg.request_bytes);
        }
      }
      return;
    case TlsPhase::kReady:
      break;
  }

  // Response consumption: the current fetch completes when header+body have
  // arrived.
  while (conn.fetching && conn.next_fetch < conn.plan.size()) {
    const Fetch& fetch = conn.plan[conn.next_fetch];
    const std::uint64_t need = fetch.body_bytes + scfg.response_header_bytes;
    if (conn.buffered < need) return;
    conn.buffered -= need;
    conn.next_fetch++;

    // --- progress/QoE bookkeeping ---
    if (!visit.html_done && conn.origin == 0 && conn.next_fetch == 1 &&
        &conn == visit.conns.front().get()) {
      visit.html_done = true;
      record_paint(visit, visit.page->html_bytes);
      // Parse, then fan out.
      Visit* vp = &visit;
      stack_->sim().schedule_in(config_.parse_delay, [this, vp] {
        if (active_.get() == vp) start_subresources(*vp);
      });
    } else {
      if (fetch.above_fold) record_paint(visit, fetch.body_bytes);
      assert(visit.objects_remaining > 0);
      if (--visit.objects_remaining == 0) {
        finish(true);
        return;
      }
    }

    // Next request on this connection.
    if (conn.next_fetch < conn.plan.size()) {
      conn.tcp->send(scfg.request_bytes);
    } else {
      conn.fetching = false;
    }
  }
}

void Browser::start_subresources(Visit& visit) {
  const WebPage& page = *visit.page;
  if (page.objects.empty()) {
    finish(true);
    return;
  }
  // Group object indices by origin, preserving document order.
  std::vector<std::vector<std::size_t>> by_origin(
      static_cast<std::size_t>(page.num_origins));
  for (std::size_t i = 0; i < page.objects.size(); ++i) {
    by_origin[static_cast<std::size_t>(page.objects[i].origin)].push_back(i);
  }
  for (int origin = 0; origin < page.num_origins; ++origin) {
    const auto& indices = by_origin[static_cast<std::size_t>(origin)];
    if (indices.empty()) continue;
    const int pool = std::clamp(
        static_cast<int>((indices.size() + config_.objects_per_connection - 1) /
                         config_.objects_per_connection),
        1, config_.max_connections_per_origin);
    // Round-robin the origin's objects over the pool.
    std::vector<std::vector<Fetch>> plans(static_cast<std::size_t>(pool));
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const WebObject& object = page.objects[indices[k]];
      plans[k % static_cast<std::size_t>(pool)].push_back(
          Fetch{object.bytes, object.above_fold});
    }
    for (auto& plan : plans) open_connection(visit, origin, std::move(plan));
  }
}

void Browser::record_paint(Visit& visit, std::uint64_t bytes) {
  const TimePoint now = stack_->sim().now();
  const double completeness_before =
      visit.above_fold_total == 0
          ? 1.0
          : static_cast<double>(visit.above_fold_done) / visit.above_fold_total;
  visit.speed_index_integral_s +=
      (1.0 - completeness_before) * (now - visit.last_paint_event).to_seconds();
  visit.last_paint_event = now;
  visit.above_fold_done = std::min(visit.above_fold_total, visit.above_fold_done + bytes);
}

void Browser::finish(bool complete) {
  if (!active_) return;
  Visit& v = *active_;
  const TimePoint now = stack_->sim().now();

  VisitResult result;
  result.complete = complete;
  result.on_load = now - v.start;
  // Close the SpeedIndex integral: remaining above-fold deficit accrues up
  // to the end of the visit.
  const double completeness =
      v.above_fold_total == 0
          ? 1.0
          : static_cast<double>(v.above_fold_done) / v.above_fold_total;
  v.speed_index_integral_s += (1.0 - completeness) * (now - v.last_paint_event).to_seconds();
  result.speed_index = Duration::from_seconds(v.speed_index_integral_s);
  result.connections_opened = static_cast<int>(v.conns.size());
  if (v.setup_count > 0) {
    result.mean_connection_setup = v.setup_sum / static_cast<std::int64_t>(v.setup_count);
  }

  for (auto& conn : v.conns) conn->tcp->abort();
  auto on_complete = std::move(v.on_complete);
  active_.reset();
  if (on_complete) on_complete(result);
}

}  // namespace slp::web
