// browser.hpp — the BrowserTime stand-in: loads a WebPage through real TCP
// connections and computes the paper's two QoE metrics (§3.4).
//
//   * onLoad — when the full object closure has been downloaded and parsed;
//   * SpeedIndex — integral of (1 - visual completeness) over time, where
//     visual completeness is the fraction of above-the-fold bytes rendered.
//
// The load algorithm follows the classic waterfall: fetch the HTML on the
// primary origin, parse (fixed CPU delay), then fan out over per-origin
// connection pools, each fetching its assigned objects sequentially.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tcp/tcp.hpp"
#include "web/dns.hpp"
#include "web/page.hpp"
#include "web/server.hpp"

namespace slp::web {

class Browser {
 public:
  struct Config {
    sim::Ipv4Addr server_addr = 0;
    /// Optional stub resolver: every origin's first connection then pays a
    /// DNS lookup across the access link, like a real page load. nullptr =
    /// name resolution assumed free.
    DnsResolver* dns = nullptr;
    int max_connections_per_origin = 4;
    /// Target objects per connection: pool size = ceil(objects / target).
    /// Calibrated so a visit opens ~15 connections on average (§3.4).
    int objects_per_connection = 7;
    /// HTML parse/JS-evaluation delay before subresource fetching starts.
    Duration parse_delay = Duration::from_millis(230);
    Duration visit_timeout = Duration::seconds(60);
    tcp::TcpConfig tcp;  ///< client kernel defaults
  };

  struct VisitResult {
    bool complete = false;         ///< false = timeout
    Duration on_load = Duration::zero();
    Duration speed_index = Duration::zero();
    int connections_opened = 0;
    /// Mean TCP+TLS connection setup time (the paper: 167 ms on Starlink,
    /// 2030 ms on SatCom).
    Duration mean_connection_setup = Duration::zero();
  };

  Browser(tcp::TcpStack& stack, WebServer& server, Config config);
  ~Browser();  // out of line: Visit is incomplete here

  /// Starts a visit; exactly one visit may be active per Browser.
  void visit(const WebPage& page, std::function<void(const VisitResult&)> on_complete);

  [[nodiscard]] bool busy() const { return active_ != nullptr; }

  /// The synthetic hostname of a page's origin (what the resolver serves).
  [[nodiscard]] static std::string origin_hostname(const WebPage& page, int origin);

 private:
  struct Fetch {
    std::uint64_t body_bytes = 0;
    bool above_fold = false;
  };
  struct Conn;   // one pooled connection
  struct Visit;  // one page load in progress

  void open_connection(Visit& visit, int origin, std::vector<Fetch> plan);
  void open_connection_resolved(Visit& visit, int origin, std::vector<Fetch> plan);
  void on_conn_data(Visit& visit, Conn& conn, std::uint64_t n);
  void start_subresources(Visit& visit);
  void record_paint(Visit& visit, std::uint64_t bytes);
  void finish(bool complete);

  tcp::TcpStack* stack_;
  WebServer* server_;
  Config config_;
  std::unique_ptr<Visit> active_;
};

}  // namespace slp::web
