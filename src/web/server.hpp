// server.hpp — the web-serving side of the QoE experiments.
//
// One WebServer stands in for every origin of a page: origin k is the TCP
// listener on port `base_port + k`. Each connection runs a miniature
// HTTPS-like state machine:
//
//   TCP handshake -> TLS (two round trips: ClientHello/ServerHello, then
//   Finished/NewSessionTicket — TLS 1.2 era, which dominated the paper's
//   late-2021 measurement window) -> request/response cycles with a think
//   time per request.
//
// Responses are synthetic byte counts. What the server sends for each
// request is fixed by a per-connection *plan* the browser queues before
// connecting (the model equivalent of "the URLs name the objects"): plans
// are matched to accepted connections in per-origin FIFO order, which is
// exact as long as one WebServer serves one client access (the campaign
// gives each access its own server, like the paper's disjoint vantage PCs).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "tcp/tcp.hpp"
#include "util/rng.hpp"

namespace slp::web {

class WebServer {
 public:
  struct Config {
    std::uint16_t base_port = 4430;
    int num_origins = 40;
    std::uint32_t tls_client_hello_bytes = 350;
    std::uint32_t tls_server_flight_bytes = 3'800;  ///< cert chain etc.
    std::uint32_t tls_finished_bytes = 300;
    std::uint32_t tls_ticket_bytes = 250;
    std::uint32_t request_bytes = 420;
    std::uint32_t response_header_bytes = 450;
    /// Server think time per request: lognormal, median ~60 ms (includes
    /// CDN/miss mix and response generation).
    double think_mu = -2.81;  // ln(0.060)
    double think_sigma = 0.55;
    tcp::TcpConfig tcp;
  };

  WebServer(tcp::TcpStack& stack, Config config, Rng rng);
  WebServer(tcp::TcpStack& stack, Rng rng) : WebServer(stack, Config{}, rng) {}

  /// Queues the ordered response-body sizes for the *next* connection that
  /// will be accepted on `origin`. Call immediately before connecting.
  void queue_plan(int origin, std::vector<std::uint64_t> body_sizes);

  /// Drops any unconsumed plans (e.g. an aborted visit).
  void clear_plans();

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint64_t connections_accepted() const { return connections_accepted_; }
  [[nodiscard]] std::uint64_t responses_sent() const { return responses_sent_; }

 private:
  enum class TlsState { kAwaitHello, kAwaitFinished, kEstablished };

  struct ConnState {
    TlsState tls = TlsState::kAwaitHello;
    std::uint64_t buffered = 0;  ///< request bytes not yet consumed
    std::deque<std::uint64_t> plan;
    std::unique_ptr<sim::Timer> think_timer;
  };

  void on_data(tcp::TcpConnection& conn, ConnState& state, std::uint64_t n);

  tcp::TcpStack* stack_;
  Config config_;
  Rng rng_;
  std::map<int, std::deque<std::vector<std::uint64_t>>> pending_plans_;
  std::uint64_t connections_accepted_ = 0;
  std::uint64_t responses_sent_ = 0;
};

}  // namespace slp::web
