#include "stats/timeseries.hpp"

#include <cassert>

namespace slp::stats {

void TimeBinner::add(TimePoint t, double value) {
  assert(t.ns() >= 0);
  const auto idx = static_cast<std::size_t>(t.ns() / bin_width_.ns());
  if (idx >= bins_.size()) bins_.resize(idx + 1);
  bins_[idx].add(value);
}

void TimeBinner::merge(const TimeBinner& other) {
  assert(bin_width_ == other.bin_width_);
  if (other.bins_.size() > bins_.size()) bins_.resize(other.bins_.size());
  for (std::size_t i = 0; i < other.bins_.size(); ++i) {
    for (const double v : other.bins_[i].values()) bins_[i].add(v);
  }
}

TimePoint TimeBinner::bin_start(std::size_t i) const {
  return TimePoint::epoch() + bin_width_ * static_cast<double>(i);
}

std::vector<TimeBinner::Row> TimeBinner::rows() const {
  std::vector<Row> out;
  out.reserve(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const Samples& s = bins_[i];
    if (s.empty()) continue;
    Row row;
    row.start = bin_start(i);
    row.count = s.size();
    row.min = s.min();
    row.p25 = s.percentile(25);
    row.median = s.median();
    row.p75 = s.percentile(75);
    row.p95 = s.percentile(95);
    out.push_back(row);
  }
  return out;
}

}  // namespace slp::stats
