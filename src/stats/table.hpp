// table.hpp — fixed-width text tables for bench output.
//
// Every bench regenerates a paper table/figure as text; TextTable keeps that
// output aligned and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace slp::stats {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` digits after the decimal point.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  /// Formats a ratio as a percentage ("1.56%").
  [[nodiscard]] static std::string pct(double ratio, int precision = 2);

  [[nodiscard]] std::string str() const;
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace slp::stats
