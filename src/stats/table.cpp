#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace slp::stats {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double ratio, int precision) {
  return num(ratio * 100.0, precision) + "%";
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "|";
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << "|";
    os << '\n';
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) { return os << t.str(); }

}  // namespace slp::stats
