// timeseries.hpp — time-binned sample aggregation.
//
// Figure 2 of the paper plots RTT percentiles over five months in 6-hour
// bins; TimeBinner implements exactly that reduction.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/quantiles.hpp"
#include "util/units.hpp"

namespace slp::stats {

/// Collects (time, value) points and aggregates them into fixed-width bins.
class TimeBinner {
 public:
  explicit TimeBinner(Duration bin_width) : bin_width_{bin_width} {}

  void add(TimePoint t, double value);

  /// Pools `other`'s per-bin samples into this binner (same bin width
  /// required). Used to fold per-seed timelines of a parallel sweep.
  void merge(const TimeBinner& other);

  [[nodiscard]] std::size_t bins() const { return bins_.size(); }
  [[nodiscard]] Duration bin_width() const { return bin_width_; }
  /// Start time of bin i.
  [[nodiscard]] TimePoint bin_start(std::size_t i) const;
  /// Samples of bin i (empty Samples for gaps).
  [[nodiscard]] const Samples& bin(std::size_t i) const { return bins_.at(i); }

  struct Row {
    TimePoint start;
    std::size_t count = 0;
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double p95 = 0.0;
  };

  /// Percentile rows for every non-empty bin, in time order.
  [[nodiscard]] std::vector<Row> rows() const;

 private:
  Duration bin_width_;
  std::vector<Samples> bins_;
};

}  // namespace slp::stats
