#include "stats/moods_test.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/quantiles.hpp"

namespace slp::stats {

namespace {

// Lower incomplete gamma P(a, x) by series expansion; converges for x < a+1.
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper incomplete gamma Q(a, x) by continued fraction; converges for x >= a+1.
double gamma_q_contfrac(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double gamma_q(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_contfrac(a, x);
}

double chi2_sf(double x, std::size_t dof) {
  if (dof == 0) return 1.0;
  return gamma_q(static_cast<double>(dof) / 2.0, x / 2.0);
}

MoodsResult moods_median_test(std::span<const std::vector<double>> groups) {
  MoodsResult result;
  if (groups.size() < 2) return result;

  std::vector<double> pooled;
  for (const auto& g : groups) {
    if (g.empty()) return result;
    pooled.insert(pooled.end(), g.begin(), g.end());
  }
  std::sort(pooled.begin(), pooled.end());
  result.grand_median = quantile_sorted(pooled, 0.5);

  // 2 x k contingency table of counts above / not-above the grand median.
  const std::size_t k = groups.size();
  std::vector<double> above(k, 0.0);
  std::vector<double> total(k, 0.0);
  double total_above = 0.0;
  double grand_total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    for (const double v : groups[i]) {
      total[i] += 1.0;
      if (v > result.grand_median) above[i] += 1.0;
    }
    total_above += above[i];
    grand_total += total[i];
  }
  const double total_below = grand_total - total_above;
  if (total_above == 0.0 || total_below == 0.0) return result;  // degenerate

  double chi2 = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double exp_above = total[i] * total_above / grand_total;
    const double exp_below = total[i] * total_below / grand_total;
    const double obs_below = total[i] - above[i];
    chi2 += (above[i] - exp_above) * (above[i] - exp_above) / exp_above;
    chi2 += (obs_below - exp_below) * (obs_below - exp_below) / exp_below;
  }
  result.chi2 = chi2;
  result.dof = k - 1;
  result.p_value = chi2_sf(chi2, result.dof);
  result.valid = true;
  return result;
}

}  // namespace slp::stats

namespace slp::stats {

KsResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
  KsResult result;
  if (a.empty() || b.empty()) return result;
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  // Sweep the merged order tracking both ECDFs; ties must advance both
  // sides together or identical samples would show a spurious gap.
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] == x) ++i;
    while (j < sb.size() && sb[j] == x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }
  result.d = d;

  // Asymptotic p-value: Q_KS(sqrt(n_eff) * D) with the standard series.
  const double n_eff = na * nb / (na + nb);
  const double lambda = (std::sqrt(n_eff) + 0.12 + 0.11 / std::sqrt(n_eff)) * d;
  if (lambda < 0.3) {
    // The alternating series does not converge for tiny lambda; Q -> 1.
    result.p_value = 1.0;
    result.valid = true;
    return result;
  }
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  result.p_value = std::clamp(2.0 * p, 0.0, 1.0);
  result.valid = true;
  return result;
}

}  // namespace slp::stats
