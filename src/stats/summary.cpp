#include "stats/summary.hpp"

#include <cmath>

namespace slp::stats {

double StreamingSummary::stddev() const { return std::sqrt(sample_variance()); }

}  // namespace slp::stats
