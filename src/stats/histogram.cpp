#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>

namespace slp::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_{lo}, counts_(bins, 0) {
  assert(hi > lo && bins > 0);
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x, std::uint64_t weight) {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::edge(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::center(std::size_t i) const {
  return lo_ + width_ * (static_cast<double>(i) + 0.5);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double IntHistogram::cdf(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t cum = 0;
  for (const auto& [v, c] : counts_) {
    if (v > value) break;
    cum += c;
  }
  return static_cast<double>(cum) / static_cast<double>(total_);
}

}  // namespace slp::stats
