// groupby.hpp — streaming per-key sample accumulation with ordered merge.
//
// A 10k-terminal fleet observed every couple of seconds for a simulated hour
// produces ~2e7 (key, value) pairs per direction — far too many to retain as
// raw stats::Samples per key. KeyedSamples keeps O(keys x buckets) state
// instead: every key gets a StreamingSummary (exact moments, min, max) plus
// a bucket-count vector over one shared set of edges, which is enough for
// approximate quantiles and ECDF curves per key or pooled.
//
// Merge contract: groups fold in ascending key order and bucket counts add
// elementwise, so runner::run_merged's cell-id-ordered fold produces
// byte-identical results for any --jobs. Both operands must share the same
// edges (or be empty/edge-less, in which case the other side's edges are
// adopted) — in this codebase the edges come from config, so shards always
// agree.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "stats/quantiles.hpp"
#include "stats/summary.hpp"

namespace slp::stats {

class KeyedSamples {
 public:
  KeyedSamples() = default;
  /// `edges` must be strictly increasing; bucket i counts values in
  /// [edges[i-1], edges[i]), with open buckets below edges[0] and at/above
  /// edges.back(). Empty edges = a single bucket (summaries stay exact,
  /// quantiles interpolate min..max).
  explicit KeyedSamples(std::vector<double> edges);

  struct Group {
    StreamingSummary summary;
    std::vector<std::uint64_t> counts;  ///< size = edges.size() + 1
  };

  void add(std::uint64_t key, double x);

  /// Key-ordered deterministic fold (found by ADL from runner::run_merged
  /// through the campaign Results that embed KeyedSamples).
  void merge(const KeyedSamples& other);

  [[nodiscard]] bool empty() const { return groups_.empty(); }
  [[nodiscard]] std::size_t size() const { return groups_.size(); }
  [[nodiscard]] std::uint64_t total_count() const;
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  [[nodiscard]] const std::map<std::uint64_t, Group>& groups() const { return groups_; }

  /// Exact pooled moments (merge of every key's summary).
  [[nodiscard]] StreamingSummary pooled() const;

  /// Approximate quantile for one key: locate the bucket by rank, then
  /// interpolate linearly inside it (tail buckets are bounded by the key's
  /// observed min/max, so q=0/q=1 are exact). Returns 0 for unknown keys.
  [[nodiscard]] double quantile(std::uint64_t key, double q) const;
  /// Approximate quantile over all keys pooled.
  [[nodiscard]] double pooled_quantile(double q) const;

  /// Per-key means in ascending key order — the "distribution across cells /
  /// terminals" view the fleet ECDFs plot.
  [[nodiscard]] Samples means() const;

  /// Pooled ECDF evaluated at the bucket edges: (edge, P[X < edge]) pairs.
  [[nodiscard]] std::vector<std::pair<double, double>> pooled_ecdf() const;

 private:
  [[nodiscard]] static double bucket_quantile(const Group& g,
                                              const std::vector<double>& edges, double q);

  std::vector<double> edges_;
  std::map<std::uint64_t, Group> groups_;
};

}  // namespace slp::stats
