#include "stats/quantiles.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace slp::stats {

double quantile_sorted(std::span<const double> sorted, double q) {
  assert(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void Samples::clear() {
  values_.clear();
  sorted_.clear();
  dirty_ = false;
  summary_ = StreamingSummary{};
}

std::span<const double> Samples::sorted() const {
  if (dirty_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  return sorted_;
}

double Samples::quantile(double q) const {
  assert(!empty());
  return quantile_sorted(sorted(), q);
}

double Samples::min() const {
  assert(!empty());
  return summary_.min();
}

double Samples::max() const {
  assert(!empty());
  return summary_.max();
}

BoxplotSummary boxplot(const Samples& samples) {
  BoxplotSummary box;
  box.count = samples.size();
  if (samples.empty()) return box;
  box.min = samples.min();
  box.p5 = samples.percentile(5);
  box.p25 = samples.percentile(25);
  box.median = samples.median();
  box.p75 = samples.percentile(75);
  box.p95 = samples.percentile(95);
  box.max = samples.max();
  return box;
}

}  // namespace slp::stats
