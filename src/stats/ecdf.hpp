// ecdf.hpp — empirical cumulative distribution functions.
//
// Figures 4 and 6 of the paper are ECDF plots; this class evaluates F(x),
// inverts it, and renders the step curve at a chosen resolution for the
// bench harnesses' text output.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "stats/quantiles.hpp"

namespace slp::stats {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::span<const double> samples);
  explicit Ecdf(const Samples& samples) : Ecdf(std::span{samples.values()}) {}

  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// F(x) = P[X <= x]; 0 for empty.
  [[nodiscard]] double eval(double x) const;

  /// Smallest sample value v with F(v) >= q. Requires non-empty.
  [[nodiscard]] double inverse(double q) const;

  /// Renders `points` (x, F(x)) pairs spanning [min, max].
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points = 50) const;

 private:
  std::vector<double> sorted_;
};

/// One line of ASCII-art CDF per probability row — a quick visual check in
/// bench output. `unit` is appended to the x labels.
[[nodiscard]] std::string render_cdf_rows(const Ecdf& ecdf, std::span<const double> probs,
                                          const std::string& unit);

}  // namespace slp::stats
