#include "stats/groupby.hpp"

#include <algorithm>
#include <cmath>

namespace slp::stats {

KeyedSamples::KeyedSamples(std::vector<double> edges) : edges_{std::move(edges)} {}

void KeyedSamples::add(std::uint64_t key, double x) {
  Group& g = groups_[key];
  if (g.counts.empty()) g.counts.assign(edges_.size() + 1, 0);
  g.summary.add(x);
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  ++g.counts[static_cast<std::size_t>(it - edges_.begin())];
}

void KeyedSamples::merge(const KeyedSamples& other) {
  if (other.groups_.empty()) return;
  if (groups_.empty() && edges_.empty()) edges_ = other.edges_;
  const bool compatible = edges_ == other.edges_;
  for (const auto& [key, from] : other.groups_) {
    Group& into = groups_[key];
    if (into.counts.empty()) into.counts.assign(edges_.size() + 1, 0);
    into.summary.merge(from.summary);
    if (compatible) {
      for (std::size_t i = 0; i < into.counts.size() && i < from.counts.size(); ++i) {
        into.counts[i] += from.counts[i];
      }
    } else {
      // Mismatched edges (never happens for config-driven shards): fold the
      // foreign counts into the nearest local bucket via the foreign mean so
      // totals stay consistent even if shapes degrade.
      const auto it =
          std::upper_bound(edges_.begin(), edges_.end(), from.summary.mean());
      into.counts[static_cast<std::size_t>(it - edges_.begin())] += from.summary.count();
    }
  }
}

std::uint64_t KeyedSamples::total_count() const {
  std::uint64_t n = 0;
  for (const auto& [key, g] : groups_) n += g.summary.count();
  return n;
}

StreamingSummary KeyedSamples::pooled() const {
  StreamingSummary s;
  for (const auto& [key, g] : groups_) s.merge(g.summary);
  return s;
}

double KeyedSamples::bucket_quantile(const Group& g, const std::vector<double>& edges,
                                     double q) {
  if (g.summary.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(g.summary.count());
  double below = 0.0;
  for (std::size_t i = 0; i < g.counts.size(); ++i) {
    const double in_bucket = static_cast<double>(g.counts[i]);
    if (in_bucket > 0.0 && below + in_bucket >= target) {
      // Tail buckets are open-ended; bound them by the observed extrema so
      // interpolation never leaves the sample range.
      const double lo = i == 0 ? g.summary.min() : std::max(edges[i - 1], g.summary.min());
      const double hi =
          i == edges.size() ? g.summary.max() : std::min(edges[i], g.summary.max());
      const double f = std::clamp((target - below) / in_bucket, 0.0, 1.0);
      return lo + (std::max(hi, lo) - lo) * f;
    }
    below += in_bucket;
  }
  return g.summary.max();
}

double KeyedSamples::quantile(std::uint64_t key, double q) const {
  const auto it = groups_.find(key);
  return it == groups_.end() ? 0.0 : bucket_quantile(it->second, edges_, q);
}

double KeyedSamples::pooled_quantile(double q) const {
  Group all;
  all.counts.assign(edges_.size() + 1, 0);
  for (const auto& [key, g] : groups_) {
    all.summary.merge(g.summary);
    for (std::size_t i = 0; i < all.counts.size() && i < g.counts.size(); ++i) {
      all.counts[i] += g.counts[i];
    }
  }
  return bucket_quantile(all, edges_, q);
}

Samples KeyedSamples::means() const {
  Samples out;
  out.reserve(groups_.size());
  for (const auto& [key, g] : groups_) {
    if (!g.summary.empty()) out.add(g.summary.mean());
  }
  return out;
}

std::vector<std::pair<double, double>> KeyedSamples::pooled_ecdf() const {
  std::vector<std::pair<double, double>> out;
  const std::uint64_t total = total_count();
  if (total == 0 || edges_.empty()) return out;
  std::vector<std::uint64_t> counts(edges_.size() + 1, 0);
  for (const auto& [key, g] : groups_) {
    for (std::size_t i = 0; i < counts.size() && i < g.counts.size(); ++i) {
      counts[i] += g.counts[i];
    }
  }
  out.reserve(edges_.size());
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    below += counts[i];
    out.emplace_back(edges_[i], static_cast<double>(below) / static_cast<double>(total));
  }
  return out;
}

}  // namespace slp::stats
