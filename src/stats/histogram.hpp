// histogram.hpp — fixed-width and integer-count histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace slp::stats {

/// Fixed-width binning over [lo, hi); out-of-range values are clamped into
/// the first/last bin so the total count always equals the sample count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Left edge of bin i.
  [[nodiscard]] double edge(std::size_t i) const;
  /// Midpoint of bin i.
  [[nodiscard]] double center(std::size_t i) const;
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Sparse histogram over non-negative integers; used for loss-burst lengths
/// where the support is tiny but unbounded.
class IntHistogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1) {
    counts_[value] += weight;
    total_ += weight;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count(std::uint64_t value) const {
    const auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
  }
  /// P[X <= value].
  [[nodiscard]] double cdf(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t max_value() const {
    return counts_.empty() ? 0 : counts_.rbegin()->first;
  }
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& buckets() const { return counts_; }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace slp::stats
