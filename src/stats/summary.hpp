// summary.hpp — streaming moment statistics (Welford's algorithm).
#pragma once

#include <cstdint>
#include <limits>

namespace slp::stats {

/// Single-pass count/mean/variance/min/max accumulator.
///
/// Numerically stable for long campaigns (Welford update), O(1) memory, so it
/// can run inside per-packet hooks.
class StreamingSummary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const StreamingSummary& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  /// Sample (Bessel-corrected) variance; 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace slp::stats
