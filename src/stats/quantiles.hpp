// quantiles.hpp — exact quantiles over retained samples.
//
// The paper's figures are all quantile-based (boxplots, percentile bands,
// CDFs), so we retain samples and compute exact quantiles with the standard
// linear-interpolation estimator (type 7, the numpy/R default).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "stats/summary.hpp"

namespace slp::stats {

/// Quantile of a *sorted* span, q in [0, 1], linear interpolation (type 7).
/// Requires a non-empty span.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Sample container with lazily-sorted quantile queries.
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::vector<double> values) : values_(std::move(values)), dirty_(true) {
    for (const double x : values_) summary_.add(x);
  }
  Samples(std::initializer_list<double> values) : Samples(std::vector<double>{values}) {}

  void add(double x) {
    values_.push_back(x);
    summary_.add(x);
    dirty_ = true;
  }

  void add_all(std::span<const double> xs) {
    for (const double x : xs) add(x);
  }

  void reserve(std::size_t n) { values_.reserve(n); }
  void clear();

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] const StreamingSummary& summary() const { return summary_; }

  /// Quantile q in [0, 1]. Requires non-empty samples.
  [[nodiscard]] double quantile(double q) const;
  /// Percentile p in [0, 100].
  [[nodiscard]] double percentile(double p) const { return quantile(p / 100.0); }
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const { return summary_.mean(); }

  /// Sorted view (sorts on first use after mutation).
  [[nodiscard]] std::span<const double> sorted() const;

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
  StreamingSummary summary_;
};

/// Five-number-plus summary matching the paper's boxplots: whiskers at
/// p5/p95, box at p25/p75, median stroke, and the distribution minimum that
/// Figure 1 annotates on the top axis.
struct BoxplotSummary {
  double min = 0.0;
  double p5 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

[[nodiscard]] BoxplotSummary boxplot(const Samples& samples);

}  // namespace slp::stats
