#include "stats/ecdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace slp::stats {

Ecdf::Ecdf(std::span<const double> samples) : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::eval(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double q) const {
  assert(!sorted_.empty());
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  const auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  if (points == 1 || hi == lo) {
    out.emplace_back(lo, eval(lo));
    return out;
  }
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, eval(x));
  }
  return out;
}

std::string render_cdf_rows(const Ecdf& ecdf, std::span<const double> probs,
                            const std::string& unit) {
  std::ostringstream os;
  for (const double p : probs) {
    if (ecdf.empty()) break;
    os << "  p" << p * 100.0 << " <= " << ecdf.inverse(p) << unit << '\n';
  }
  return os.str();
}

}  // namespace slp::stats
