// moods_test.hpp — Mood's median test.
//
// §3.1 of the paper: "a Mood's test suggests the samples are drawn from
// distributions with the same median" (RTT across hours of day). We implement
// the k-sample median test with a chi-square p-value so the benches can run
// the same check on simulated data.
#pragma once

#include <span>
#include <vector>

namespace slp::stats {

struct MoodsResult {
  double grand_median = 0.0;
  double chi2 = 0.0;       ///< Pearson chi-square statistic (k-1 d.o.f.)
  double p_value = 1.0;    ///< survival probability of chi2
  std::size_t dof = 0;
  bool valid = false;      ///< false when expected counts are degenerate
};

/// k-sample Mood's median test. Each group must be non-empty; at least two
/// groups are required.
[[nodiscard]] MoodsResult moods_median_test(std::span<const std::vector<double>> groups);

/// Regularized upper incomplete gamma Q(a, x); chi-square survival is
/// Q(k/2, x/2). Exposed for testing.
[[nodiscard]] double gamma_q(double a, double x);

/// Chi-square survival function with `dof` degrees of freedom.
[[nodiscard]] double chi2_sf(double x, std::size_t dof);

}  // namespace slp::stats

namespace slp::stats {

/// Two-sample Kolmogorov-Smirnov test: D statistic and the asymptotic
/// p-value. Used to validate that samples drawn from a fitted ERRANT
/// profile are distributed like the campaign measurements they were fitted
/// from.
struct KsResult {
  double d = 0.0;        ///< sup |F1 - F2|
  double p_value = 1.0;  ///< asymptotic (Kolmogorov distribution)
  bool valid = false;
};

[[nodiscard]] KsResult ks_two_sample(std::span<const double> a, std::span<const double> b);

}  // namespace slp::stats
