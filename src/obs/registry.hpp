// registry.hpp — per-Simulator named metrics: counters, gauges, histograms.
//
// Hot-path contract: instrumented components resolve a *bound handle* once
// (at construction) and increment through it afterwards — one null check and
// one add, no string hashing, no map lookup per event. When observability is
// off the handle is unbound and every operation is a no-op, so the simulator
// pays only the null check.
//
// Names are hierarchical by convention ("link.sat.dropped_medium"); two
// lookups of the same name return handles to the same cell, so unnamed
// links/components naturally aggregate into shared counters.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace slp::obs {

class Registry;

/// Bound counter handle. Default-constructed = unbound = no-op.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (v_ != nullptr) *v_ += delta;
  }
  [[nodiscard]] bool bound() const { return v_ != nullptr; }

 private:
  friend class Registry;
  std::uint64_t* v_ = nullptr;
};

/// Bound gauge handle (a last-written double).
class Gauge {
 public:
  void set(double x) {
    if (v_ != nullptr) *v_ = x;
  }
  [[nodiscard]] bool bound() const { return v_ != nullptr; }

 private:
  friend class Registry;
  double* v_ = nullptr;
};

/// One fixed-bucket histogram: counts_[i] counts samples in
/// [edges_[i-1], edges_[i]); the first bucket is (-inf, edges_[0]) and the
/// last (counts_.back()) is [edges_.back(), +inf).
struct HistogramCell {
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;  ///< size = edges.size() + 1
  std::uint64_t total = 0;
  double sum = 0.0;

  void observe(double x);
};

/// Bound histogram handle.
class HistogramHandle {
 public:
  void observe(double x) {
    if (cell_ != nullptr) cell_->observe(x);
  }
  [[nodiscard]] bool bound() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  HistogramCell* cell_ = nullptr;
};

class Registry {
 public:
  /// Get-or-create; repeated lookups bind to the same cell.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  /// `edges` must be strictly increasing. If the name already exists its
  /// original edges win (same code path registers the same edges anyway).
  [[nodiscard]] HistogramHandle histogram(std::string_view name, std::span<const double> edges);

  /// Exponential bucket edges: `count` edges from `lo`, multiplying by
  /// `factor` — the standard latency/queue-depth bucketing.
  [[nodiscard]] static std::vector<double> exp_edges(double lo, double factor, int count);

  // Deterministic read-out (name-sorted; used by Recorder::snapshot).
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;
  [[nodiscard]] std::map<std::string, HistogramCell> histograms() const;

 private:
  // Deques give pointer stability to bound handles as cells are added.
  std::map<std::string, std::size_t, std::less<>> counter_index_;
  std::deque<std::uint64_t> counter_cells_;
  std::map<std::string, std::size_t, std::less<>> gauge_index_;
  std::deque<double> gauge_cells_;
  std::map<std::string, std::size_t, std::less<>> histogram_index_;
  std::deque<HistogramCell> histogram_cells_;
};

}  // namespace slp::obs
