#include "obs/anomaly.hpp"

#include <algorithm>
#include <cmath>

namespace slp::obs {

AnomalyDetector::AnomalyDetector() : cfg_{} {}

double AnomalyDetector::median_of(const Stream& s) {
  const auto& v = s.sorted;
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

void AnomalyDetector::insert(Stream& s, double value) {
  s.window.push_back(value);
  s.sorted.insert(std::upper_bound(s.sorted.begin(), s.sorted.end(), value), value);
  if (s.window.size() > cfg_.window) {
    const double evicted = s.window.front();
    s.window.pop_front();
    s.sorted.erase(std::lower_bound(s.sorted.begin(), s.sorted.end(), evicted));
  }
}

void AnomalyDetector::observe(std::string_view stream, std::int64_t t_ns, double value) {
  if (!std::isfinite(value)) return;
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    if (streams_.size() >= cfg_.max_streams) return;
    it = streams_.emplace(std::string{stream}, Stream{}).first;
  }
  Stream& s = it->second;
  if (s.window.size() >= cfg_.min_samples) {
    const double med = median_of(s);
    const char* kind = nullptr;
    if (value > med * cfg_.spike_factor && value - med > cfg_.min_delta) {
      kind = "spike";
    } else if (value < med / cfg_.drop_factor && med - value > cfg_.min_delta) {
      kind = "drop";
    }
    // The never-fired sentinel is checked explicitly: subtracting INT64_MIN
    // would overflow and (wrapping negative) suppress the first detection.
    const bool cooled = s.last_fire_ns == std::numeric_limits<std::int64_t>::min() ||
                        t_ns - s.last_fire_ns >= cfg_.cooldown.ns();
    if (kind != nullptr && cooled) {
      s.last_fire_ns = t_ns;
      ++anomalies_;
      if (cb_) cb_(Anomaly{kind, stream, t_ns, value, med});
    }
  }
  insert(s, value);
}

}  // namespace slp::obs
