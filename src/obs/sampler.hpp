// sampler.hpp — periodic sim-time gauge snapshots.
//
// Components register a gauge callback ("link.sat.down.queue_bytes",
// "leo.visible_sats", "quic.cwnd") and the Simulator's run loop calls
// `sample_until(now)` lazily before dispatching each event: all grid points
// that the clock is about to pass get sampled *at that moment's state*.
// Sampling is pull-based on purpose — a self-rescheduling sample event would
// keep the EventQueue non-empty forever and `run()` would never drain.
//
// Each series is a plain (t_ns, value) vector; `to_binner` converts to the
// stats::TimeBinner used everywhere else for percentile reduction.
//
// Series are bounded: when any probe reaches `max_points`, every series drops
// every other retained point and the sampling stride doubles, so a campaign
// that simulates 140 days at a 1 s grid still produces O(max_points) points
// per probe instead of 12 M. The schedule depends only on sim time, so
// decimation is deterministic and --jobs invariant.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/timeseries.hpp"
#include "util/units.hpp"

namespace slp::obs {

struct SeriesPoint {
  std::int64_t t_ns = 0;
  double value = 0.0;
  friend bool operator==(const SeriesPoint&, const SeriesPoint&) = default;
};

struct Series {
  std::string name;
  std::uint32_t cell = 0;  ///< sweep cell id; assigned during merge
  std::vector<SeriesPoint> points;
};

class Sampler {
 public:
  /// `max_points` bounds each probe's series; 0 = unlimited.
  explicit Sampler(Duration interval, std::size_t max_points = 0)
      : interval_{interval}, max_points_{max_points} {}

  /// Called with the grid TimePoint being sampled (probes that inspect
  /// time-dependent model state, e.g. satellite visibility, need it).
  using Probe = std::function<double(TimePoint)>;

  /// Registers a probe; returns an id usable with `remove` (needed by
  /// components that die before the run ends, e.g. per-connection cwnd).
  std::uint64_t add_probe(std::string name, Probe probe);
  void remove_probe(std::uint64_t id);

  /// Called once per (probe, grid point) as samples are taken — the anomaly
  /// detector's live feed. The points a series *retains* thin out under
  /// decimation, but the observer sees every sampled value.
  using Observer = std::function<void(const std::string& name, std::int64_t t_ns, double value)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Samples every grid point in (last_sampled, up_to]. Called by the
  /// Simulator before advancing the clock past `up_to`.
  void sample_until(TimePoint up_to);

  [[nodiscard]] Duration interval() const { return interval_; }
  /// Grid points skipped per sample; starts at 1, doubles on each decimation.
  [[nodiscard]] std::size_t stride() const { return stride_; }
  /// First grid point not yet sampled (for the run loop's cheap "due?" check).
  [[nodiscard]] TimePoint next_due() const { return next_; }

  /// Finished series, probe-registration order. Probes removed mid-run keep
  /// the points they produced.
  [[nodiscard]] std::vector<Series> take();

 private:
  struct Slot {
    std::uint64_t id = 0;
    std::string name;
    Probe probe;          ///< empty once removed
    std::vector<SeriesPoint> points;
  };

  /// Halves every series and doubles `stride_`.
  void decimate();

  Duration interval_;
  Observer observer_;
  std::size_t max_points_ = 0;  ///< per-probe series cap; 0 = unlimited
  std::size_t stride_ = 1;      ///< current grid decimation factor
  TimePoint next_;  ///< next unsampled grid point (starts at epoch)
  std::uint64_t next_id_ = 1;
  std::vector<Slot> slots_;
};

/// Pools one named series (across cells) into a TimeBinner for reduction.
[[nodiscard]] stats::TimeBinner series_to_binner(const std::vector<Series>& all,
                                                 const std::string& name, Duration bin_width);

}  // namespace slp::obs
