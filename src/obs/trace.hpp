// trace.hpp — structured sim-time event/span recording.
//
// The TraceSink collects Chrome trace-event-format records: instant events
// (ph="i") for point occurrences (queue drop, PEP split, CC transition) and
// complete events (ph="X") for spans with a duration (outage window, GE bad
// burst, handover reconfiguration slot, speedtest phase). Timestamps are
// sim-time microseconds; `pid` is the sweep cell id (assigned at merge time)
// and `tid` groups events by category so Perfetto lays each subsystem out on
// its own track.
//
// `args` is a pre-rendered JSON object fragment ("{...}") built by the call
// site with the json.hpp helpers — the sink never interprets it, it just
// splices it into the output, which keeps recording cheap and the exporter
// byte-deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace slp::obs {

struct TraceEvent {
  std::string category;  ///< becomes the Perfetto thread/track ("leo", "phy.ge", ...)
  std::string name;
  char phase = 'i';              ///< 'i' instant, 'X' complete (has dur)
  std::int64_t ts_ns = 0;        ///< sim time of the event (span start for 'X')
  std::int64_t dur_ns = 0;       ///< span length, 'X' only
  std::string args_json;         ///< pre-rendered JSON object ("{}" if none)
  std::uint32_t cell = 0;        ///< sweep cell id; offset during merge
};

class TraceSink {
 public:
  /// A disabled sink drops events on arrival; call sites stay unconditional.
  /// `max_events` makes the sink a ring of the most recent events (Chrome
  /// tracing's "trace buffer full" semantics) so a 140-day campaign that
  /// emits a handover span every 15 s cannot grow without bound; overwritten
  /// events are counted in `dropped()`. 0 = unlimited.
  explicit TraceSink(bool enabled = true, std::size_t max_events = 0)
      : enabled_{enabled}, max_events_{max_events} {}

  void instant(std::string category, std::string name, TimePoint at,
               std::string args_json = "{}");
  void span(std::string category, std::string name, TimePoint start, TimePoint end,
            std::string args_json = "{}");

  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Ring order once the sink has wrapped; `take()` restores chronology.
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::vector<TraceEvent> take();
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Chronological copy of the most recent min(n, size) events, without
  /// disturbing the ring — the flight recorder's "last N events" dump.
  [[nodiscard]] std::vector<TraceEvent> recent(std::size_t n) const;

 private:
  void push(TraceEvent&& ev);

  bool enabled_ = true;
  std::size_t max_events_ = 0;  ///< ring capacity; 0 = unlimited
  std::size_t head_ = 0;        ///< oldest slot once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

/// One serialized trace-event object (no trailing comma/newline).
[[nodiscard]] std::string trace_event_json(const TraceEvent& ev);

/// Chrome trace-event-format document: {"traceEvents":[...],"displayTimeUnit":"ms"}.
/// Loadable in Perfetto / about://tracing.
[[nodiscard]] std::string trace_json(const std::vector<TraceEvent>& events);

/// One JSON object per line — greppable / streamable form of the same data.
[[nodiscard]] std::string trace_jsonl(const std::vector<TraceEvent>& events);

}  // namespace slp::obs
