#include "obs/profile.hpp"

#include <cinttypes>
#include <cstdio>

namespace slp::obs {

std::uint64_t WallProfile::quantile_ns(double q) const {
  if (events_ == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(events_ - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) return std::uint64_t{1} << (b + 1);  // upper bucket edge
  }
  return std::uint64_t{1} << kBuckets;
}

std::string WallProfile::report() const {
  char buf[256];
  const double mean =
      events_ == 0 ? 0.0 : static_cast<double>(total_ns_) / static_cast<double>(events_);
  std::snprintf(buf, sizeof(buf),
                "events=%" PRIu64 " callback mean=%.0fns p50<=%" PRIu64 "ns p99<=%" PRIu64
                "ns max<=%" PRIu64 "ns",
                events_, mean, quantile_ns(0.50), quantile_ns(0.99), quantile_ns(1.0));
  return buf;
}

}  // namespace slp::obs
