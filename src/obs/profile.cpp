#include "obs/profile.hpp"

#include <cinttypes>
#include <cstdio>

namespace slp::obs {

namespace {
thread_local WallProfile* g_current_profile = nullptr;
}  // namespace

WallProfile* WallProfile::current() { return g_current_profile; }

WallProfile* WallProfile::exchange_current(WallProfile* p) {
  WallProfile* prev = g_current_profile;
  g_current_profile = p;
  return prev;
}

const char* section_name(Section s) {
  switch (s) {
    case Section::kEphemeris: return "ephemeris";
    case Section::kArbiter: return "arbiter";
    case Section::kLink: return "links";
    case Section::kCc: return "cc";
    default: return "?";
  }
}

std::uint64_t WallProfile::quantile_ns(double q) const {
  if (events_ == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(events_ - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) return std::uint64_t{1} << (b + 1);  // upper bucket edge
  }
  return std::uint64_t{1} << kBuckets;
}

std::string WallProfile::report() const {
  char buf[256];
  const double mean =
      events_ == 0 ? 0.0 : static_cast<double>(total_ns_) / static_cast<double>(events_);
  std::snprintf(buf, sizeof(buf),
                "events=%" PRIu64 " callback mean=%.0fns p50<=%" PRIu64 "ns p99<=%" PRIu64
                "ns max<=%" PRIu64 "ns",
                events_, mean, quantile_ns(0.50), quantile_ns(0.99), quantile_ns(1.0));
  std::string out = buf;
  for (int i = 0; i < static_cast<int>(Section::kCount); ++i) {
    const auto& sec = sections_[static_cast<std::size_t>(i)];
    if (sec.calls == 0) continue;
    const double share = total_ns_ == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(sec.total_ns) /
                                   static_cast<double>(total_ns_);
    std::snprintf(buf, sizeof(buf),
                  "\nsection %-9s calls=%-10" PRIu64 " total=%.3fms (%.1f%% of loop)",
                  section_name(static_cast<Section>(i)), sec.calls,
                  static_cast<double>(sec.total_ns) * 1e-6, share);
    out += buf;
  }
  return out;
}

}  // namespace slp::obs
