// anomaly.hpp — rolling-median spike/outage detection over sampled streams.
//
// The paper's fig 2/6 latency spikes and outage windows are *events*, not
// distribution shifts: a handover slot that stalls a probe for 400 ms, a
// beam outage that zeroes throughput for a minute. The AnomalyDetector
// watches every Sampler probe (and the provenance-measured latency stream)
// against its own rolling median and fires a callback when a value departs
// by a configurable factor — which the Recorder turns into a flight-recorder
// dump: the last-N trace events plus the metrics counters that moved since
// the previous dump.
//
// Everything here is driven by sim time and sampled values, so detections
// (and therefore flight dumps) are deterministic and --jobs invariant.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "util/units.hpp"

namespace slp::obs {

class AnomalyDetector {
 public:
  struct Config {
    std::size_t window = 64;        ///< rolling-median window (samples)
    std::size_t min_samples = 16;   ///< history required before detecting
    double spike_factor = 4.0;      ///< fire when value > median * factor
    double drop_factor = 4.0;       ///< fire when value < median / factor
    double min_delta = 1.0;         ///< |value - median| must also exceed this
    Duration cooldown = Duration::seconds(60);  ///< per-stream refractory period
    std::size_t max_streams = 256;  ///< new streams beyond this are ignored
  };

  struct Anomaly {
    const char* kind = "spike";  ///< "spike" | "drop"
    std::string_view stream;
    std::int64_t t_ns = 0;
    double value = 0.0;
    double median = 0.0;
  };
  using Callback = std::function<void(const Anomaly&)>;

  AnomalyDetector();  // default Config (defined out of line: nested-NSDMI quirk)
  explicit AnomalyDetector(const Config& cfg) : cfg_{cfg} {}

  void set_callback(Callback cb) { cb_ = std::move(cb); }

  /// Feeds one observation. The value is tested against the stream's history
  /// *before* being inserted, so a step change fires on its first sample.
  void observe(std::string_view stream, std::int64_t t_ns, double value);

  [[nodiscard]] std::uint64_t anomalies() const { return anomalies_; }

 private:
  struct Stream {
    std::deque<double> window;   ///< insertion order, for eviction
    std::vector<double> sorted;  ///< same values kept sorted, for the median
    std::int64_t last_fire_ns = std::numeric_limits<std::int64_t>::min();
  };

  void insert(Stream& s, double value);
  [[nodiscard]] static double median_of(const Stream& s);

  Config cfg_;
  Callback cb_;
  std::map<std::string, Stream, std::less<>> streams_;
  std::uint64_t anomalies_ = 0;
};

/// One flight-recorder dump, captured by the Recorder at each anomaly.
struct FlightDump {
  std::string stream;  ///< probe / stream that fired
  std::string kind;    ///< "spike" | "drop"
  std::int64_t t_ns = 0;
  double value = 0.0;
  double median = 0.0;
  std::uint32_t cell = 0;  ///< sweep cell id; offset during merge
  /// Counters that changed since the previous dump (name-sorted deltas).
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  /// Chronological tail of the trace ring at dump time.
  std::vector<TraceEvent> events;
};

}  // namespace slp::obs
