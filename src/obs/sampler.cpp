#include "obs/sampler.hpp"

#include <algorithm>
#include <utility>

namespace slp::obs {

std::uint64_t Sampler::add_probe(std::string name, Probe probe) {
  Slot slot;
  slot.id = next_id_++;
  slot.name = std::move(name);
  slot.probe = std::move(probe);
  slots_.push_back(std::move(slot));
  return slots_.back().id;
}

void Sampler::remove_probe(std::uint64_t id) {
  for (auto& slot : slots_) {
    if (slot.id == id) {
      slot.probe = nullptr;
      return;
    }
  }
}

void Sampler::sample_until(TimePoint up_to) {
  while (next_ <= up_to) {
    const std::int64_t t = next_.ns();
    std::size_t longest = 0;
    for (auto& slot : slots_) {
      if (slot.probe) {
        const double v = slot.probe(next_);
        slot.points.push_back({t, v});
        if (observer_) observer_(slot.name, t, v);
      }
      longest = std::max(longest, slot.points.size());
    }
    next_ = next_ + Duration::nanos(interval_.ns() * static_cast<std::int64_t>(stride_));
    if (max_points_ != 0 && longest >= max_points_) decimate();
  }
}

void Sampler::decimate() {
  // Keep every other retained point (series are stride-uniform, so this
  // leaves a uniform grid at double the spacing); removed probes' frozen
  // series thin too, which is what bounds their memory.
  for (auto& slot : slots_) {
    auto& p = slot.points;
    for (std::size_t i = 1, j = 2; j < p.size(); ++i, j += 2) p[i] = p[j];
    if (!p.empty()) p.resize((p.size() + 1) / 2);
  }
  stride_ *= 2;
}

std::vector<Series> Sampler::take() {
  std::vector<Series> out;
  out.reserve(slots_.size());
  for (auto& slot : slots_) {
    Series s;
    s.name = std::move(slot.name);
    s.points = std::move(slot.points);
    out.push_back(std::move(s));
  }
  slots_.clear();
  return out;
}

stats::TimeBinner series_to_binner(const std::vector<Series>& all, const std::string& name,
                                   Duration bin_width) {
  stats::TimeBinner binner{bin_width};
  for (const auto& series : all) {
    if (series.name != name) continue;
    for (const auto& p : series.points) binner.add(TimePoint::from_ns(p.t_ns), p.value);
  }
  return binner;
}

}  // namespace slp::obs
