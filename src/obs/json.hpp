// json.hpp — tiny deterministic JSON fragment helpers for the exporters.
//
// Every serializer in the system (metrics registry, trace sink, qlog) emits
// JSON by hand; these helpers keep the escaping correct and the number
// formatting byte-stable, which the --jobs invariance contract depends on
// (merged exports are compared with cmp/diff in CI).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace slp::obs {

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// and control characters; the latter as \uXXXX).
[[nodiscard]] std::string json_escape(std::string_view s);

/// `"escaped"` — the escaped string including surrounding quotes.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Shortest-ish deterministic rendering of a double ("%.12g"; -0, nan and
/// inf are normalized to 0 so the output is always valid JSON). Locale
/// independent: the active LC_NUMERIC decimal separator is normalized to '.'.
[[nodiscard]] std::string json_number(double v);

/// Round-trip-exact rendering ("%.17g", same normalization rules as
/// json_number). Used by metrics_json/breakdown_json, whose outputs are
/// byte-compared across processes in CI.
[[nodiscard]] std::string json_number_exact(double v);

}  // namespace slp::obs
