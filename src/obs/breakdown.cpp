#include "obs/breakdown.hpp"

namespace slp::obs {

const char* component_name(int component) {
  switch (component) {
    case kPropagation: return "propagation";
    case kQueue: return "queue";
    case kSerialize: return "serialize";
    case kAccessProc: return "access_proc";
    case kHandoverStall: return "handover_stall";
    case kLossRecovery: return "loss_recovery";
    case kPepProc: return "pep_proc";
    case kMeasured: return "measured";
    default: return "other";
  }
}

std::vector<double> Breakdown::default_edges() {
  // Exponential in ms: 0.0625, 0.125, ..., 2048. Covers sub-ms serialize
  // components up through multi-second outage stalls in 16 buckets.
  std::vector<double> edges;
  for (double e = 0.0625; e <= 2048.0; e *= 2.0) edges.push_back(e);
  return edges;
}

Breakdown::Breakdown() : flows_{default_edges()}, components_{default_edges()} {}

void Breakdown::add_component(std::uint64_t flow, int component, std::int64_t ns) {
  const double ms = static_cast<double>(ns) * 1e-6;
  flows_.add(breakdown_key(flow, component), ms);
  components_.add(static_cast<std::uint64_t>(component), ms);
}

void Breakdown::record(std::uint64_t flow, const std::int64_t* comp_ns,
                       std::int64_t latency_ns) {
  std::int64_t attributed = 0;
  for (int c = 0; c < kTagComponents; ++c) {
    attributed += comp_ns[c];
    // Zero components are skipped so e.g. ping flows don't grow empty
    // pep/loss groups; the skip is value-driven, hence deterministic.
    if (comp_ns[c] != 0) add_component(flow, c, comp_ns[c]);
  }
  // `latency_ns` is one network traversal: it excludes loss-recovery time
  // (which elapsed on *earlier* transmissions of the same data), so the
  // end-to-end measured latency re-adds that component.
  const std::int64_t recovery = comp_ns[kLossRecovery];
  const std::int64_t other = latency_ns - (attributed - recovery);
  if (other != 0) add_component(flow, kOther, other);
  add_component(flow, kMeasured, latency_ns + recovery);
}

}  // namespace slp::obs
