// recorder.hpp — per-Simulator observability bundle and its mergeable export.
//
// A Recorder owns one Registry, one TraceSink and (optionally) one Sampler
// for a single simulation. At the end of a run, `take_snapshot()` freezes
// everything into a plain `Snapshot` value that rides the campaign Result
// through `runner::run_merged`'s cell-id-ordered fold — obs::merge is
// associative over that ordering, which is what makes the merged export
// byte-identical for --jobs=1 vs --jobs=N.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/anomaly.hpp"
#include "obs/breakdown.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace slp::obs {

struct Options {
  bool metrics = false;              ///< collect registry counters/gauges/histograms
  bool trace = false;                ///< record trace events
  Duration sample_interval = Duration::zero();  ///< zero = sampling off
  bool profile = false;              ///< wall-clock event-loop profiling (Simulator-side)
  bool provenance = false;           ///< per-packet latency provenance + anomaly detection

  /// Bounds that keep months-long campaigns from producing gigabyte exports:
  /// the trace keeps a ring of the most recent events per cell (overwrites
  /// are counted in the "obs.trace.dropped_events" counter) and each sampled
  /// series decimates by stride doubling once it reaches the point cap.
  /// 0 = unlimited.
  std::size_t max_trace_events = 8192;    ///< per-cell trace ring capacity
  std::size_t max_series_points = 4096;   ///< per-probe per-cell series cap

  [[nodiscard]] bool any() const {
    return metrics || trace || profile || provenance || sample_interval > Duration::zero();
  }
};

/// Frozen, mergeable observability data for one or more sweep cells.
/// Trace events and series carry a cell id so a merged trace still shows
/// which seed produced each event (Perfetto pid = cell).
struct Snapshot {
  std::uint64_t cells = 0;  ///< how many per-cell snapshots were folded in
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;  ///< last-writer-wins in cell order
  std::map<std::string, HistogramCell> histograms;
  std::vector<Series> series;
  std::vector<TraceEvent> events;
  stats::KeyedSamples breakdown_flows;       ///< key = flow*stride + component
  stats::KeyedSamples breakdown_components;  ///< key = component, flows pooled
  std::vector<FlightDump> flights;           ///< anomaly flight-recorder dumps
};

/// Folds `from` into `into`: counters and histogram buckets sum, gauges take
/// the later cell's value, series/events append with their cell ids offset by
/// the cells already merged. Found by ADL from runner::run_merged.
void merge(Snapshot& into, const Snapshot& from);

/// Deterministic metrics document: cells, counters, gauges, histograms and
/// sampled series (name-sorted maps, locale-independent %.17g numbers).
[[nodiscard]] std::string metrics_json(const Snapshot& snap);

/// Deterministic latency-provenance document: shared bucket edges, pooled
/// per-component groups and per-flow × component groups, key-ordered. Byte
/// identical for any --jobs and for --fast-forward=0|1.
[[nodiscard]] std::string breakdown_json(const Snapshot& snap);

/// Flight-recorder dumps captured at anomalies: one record per dump with the
/// triggering stream/value/median, counter deltas and the trace-event tail.
[[nodiscard]] std::string flight_json(const Snapshot& snap);

class Recorder {
 public:
  explicit Recorder(const Options& opts);

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] TraceSink& trace() { return trace_; }
  /// Null when sampling is off; callers register probes only if present.
  [[nodiscard]] Sampler* sampler() { return sampler_.get(); }
  /// Null unless Options::provenance; callers record only if present.
  [[nodiscard]] Breakdown* breakdown() { return breakdown_.get(); }

  /// Records a finished per-packet decomposition (no-op when provenance is
  /// off) and feeds the measured latency to the anomaly detector.
  void record_breakdown(std::int64_t t_ns, std::uint64_t flow,
                        const std::int64_t* comp_ns, std::int64_t latency_ns);
  /// Records one standalone component sample (no-op when provenance is off).
  void record_component(std::uint64_t flow, int component, std::int64_t ns);

  /// Moves all collected data out as a single-cell snapshot (cells=1, cell
  /// id 0 on every event/series). The Recorder is spent afterwards.
  [[nodiscard]] Snapshot take_snapshot();

 private:
  void capture_flight(const AnomalyDetector::Anomaly& a);

  Options opts_;
  Registry registry_;
  TraceSink trace_;
  std::unique_ptr<Sampler> sampler_;
  std::unique_ptr<Breakdown> breakdown_;
  std::unique_ptr<AnomalyDetector> anomaly_;
  std::vector<FlightDump> flights_;
  std::map<std::string, std::uint64_t> last_flight_counters_;
};

}  // namespace slp::obs
