#include "obs/json.hpp"

#include <clocale>
#include <cmath>
#include <cstdio>
#include <string_view>

namespace slp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) { return '"' + json_escape(s) + '"'; }

namespace {

// snprintf honours the global LC_NUMERIC, so a host locale like de_DE would
// turn 3.14 into "3,14" and silently break every byte-compared export. All
// double rendering funnels through here: format, then swap whatever decimal
// separator the active locale produced back to '.'.
std::string format_double(const char* fmt, double v) {
  if (!std::isfinite(v)) return "0";
  if (v == 0.0) return "0";  // normalizes -0 too
  char buf[40];
  std::snprintf(buf, sizeof(buf), fmt, v);
  std::string out{buf};
  if (const char* dp = std::localeconv()->decimal_point; dp != nullptr && dp[0] != '\0' &&
                                                         !(dp[0] == '.' && dp[1] == '\0')) {
    const std::string_view sep{dp};
    if (const auto pos = out.find(sep); pos != std::string::npos) {
      out.replace(pos, sep.size(), ".");
    }
  }
  return out;
}

}  // namespace

std::string json_number(double v) { return format_double("%.12g", v); }

std::string json_number_exact(double v) { return format_double("%.17g", v); }

}  // namespace slp::obs
