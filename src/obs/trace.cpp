#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/json.hpp"

namespace slp::obs {

void TraceSink::push(TraceEvent&& ev) {
  if (max_events_ != 0 && events_.size() >= max_events_) {
    events_[head_] = std::move(ev);
    head_ = (head_ + 1) % max_events_;
    ++dropped_;
  } else {
    events_.push_back(std::move(ev));
  }
}

std::vector<TraceEvent> TraceSink::recent(std::size_t n) const {
  n = std::min(n, events_.size());
  std::vector<TraceEvent> out;
  out.reserve(n);
  // Chronological order is head_..end then begin()..head_ once wrapped; the
  // newest n events end just before head_ (or at end() while still filling).
  const std::size_t size = events_.size();
  const std::size_t newest_end = (max_events_ != 0 && size >= max_events_) ? head_ : size;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(events_[(newest_end + size - n + i) % size]);
  }
  return out;
}

std::vector<TraceEvent> TraceSink::take() {
  if (head_ != 0) {
    std::rotate(events_.begin(),
                events_.begin() + static_cast<std::ptrdiff_t>(head_), events_.end());
    head_ = 0;
  }
  return std::move(events_);
}

void TraceSink::instant(std::string category, std::string name, TimePoint at,
                        std::string args_json) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.phase = 'i';
  ev.ts_ns = at.ns();
  ev.args_json = std::move(args_json);
  push(std::move(ev));
}

void TraceSink::span(std::string category, std::string name, TimePoint start, TimePoint end,
                     std::string args_json) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.phase = 'X';
  ev.ts_ns = start.ns();
  ev.dur_ns = (end - start).ns();
  ev.args_json = std::move(args_json);
  push(std::move(ev));
}

std::string trace_event_json(const TraceEvent& ev) {
  // Chrome trace-event timestamps are in microseconds; keep sub-us precision
  // by emitting fractional us (ns are always exact multiples of 0.001 us).
  char num[64];
  std::string out = "{\"name\":" + json_quote(ev.name) +
                    ",\"cat\":" + json_quote(ev.category) + ",\"ph\":\"";
  out += ev.phase;
  out += '"';
  std::snprintf(num, sizeof(num), ",\"ts\":%" PRId64 ".%03d", ev.ts_ns / 1000,
                static_cast<int>(ev.ts_ns % 1000));
  out += num;
  if (ev.phase == 'X') {
    std::snprintf(num, sizeof(num), ",\"dur\":%" PRId64 ".%03d", ev.dur_ns / 1000,
                  static_cast<int>(ev.dur_ns % 1000));
    out += num;
  }
  std::snprintf(num, sizeof(num), ",\"pid\":%u,\"tid\":", ev.cell);
  out += num;
  out += json_quote(ev.category);
  out += ",\"args\":";
  out += ev.args_json.empty() ? "{}" : ev.args_json;
  out += '}';
  return out;
}

std::string trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "\n  ";
    out += trace_event_json(ev);
  }
  out += "\n]}\n";
  return out;
}

std::string trace_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const auto& ev : events) {
    out += trace_event_json(ev);
    out += '\n';
  }
  return out;
}

}  // namespace slp::obs
