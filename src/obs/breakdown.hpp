// breakdown.hpp — latency-provenance components and the per-flow sink.
//
// The paper's core move is *explaining* RTT, not just reporting it: access
// jitter vs. bent-pipe propagation vs. the 15-second handover slots. The
// provenance layer decomposes every measured latency into the stage
// components below. Packets carry a pooled sim::ProvenanceTag (see
// sim/provenance.hpp) that link/transport code advances as the packet
// crosses the stack; measurement endpoints feed the finished decomposition
// into a Breakdown sink, which keeps two stats::KeyedSamples views:
//
//   * flows:      key = flow * kComponentKeyStride + component
//   * components: key = component (all flows pooled)
//
// Both merge key-ordered through runner::run_merged, so the exported
// obs::breakdown_json is byte-identical for any --jobs value — and, because
// the fast path synthesizes the same component values analytically, for
// --fast-forward=0|1 too.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/groupby.hpp"

namespace slp::obs {

/// Stage components of one measured latency. The first kTagComponents are
/// accumulated on the wire by sim::ProvenanceTag; kOther and kMeasured are
/// synthesized by the sink at record time.
enum Component : int {
  kPropagation = 0,   ///< fixed/bent-pipe propagation legs (incl. epoch offsets)
  kQueue,             ///< IP queue wait + sub-IP loaded latency + FIFO pushback
  kSerialize,         ///< transmission time at the drawn link rate
  kAccessProc,        ///< fixed PHY/MAC processing + frame wait + tail jitter
  kHandoverStall,     ///< per-slot beam penalty; disconnected-path stall
  kLossRecovery,      ///< time lost to retransmission (TCP RACK / QUIC loss)
  kPepProc,           ///< residency in the geo:: PEP relay buffer
  kTagComponents,     ///< count of tag-accumulated components (= 7)
  kOther = kTagComponents,  ///< residual: measured minus attributed (sink-side)
  kMeasured,                ///< the end-to-end measured latency itself
  kComponentSlots,          ///< total keyed slots per flow
};

/// Key stride between flows in the flows view (> kComponentSlots, stable).
inline constexpr std::uint64_t kComponentKeyStride = 16;

[[nodiscard]] constexpr std::uint64_t breakdown_key(std::uint64_t flow, int component) {
  return flow * kComponentKeyStride + static_cast<std::uint64_t>(component);
}

/// Stable short name ("propagation", "queue", ...) used in exports.
[[nodiscard]] const char* component_name(int component);

/// Streaming per-flow / pooled-per-component latency decomposition sink.
/// Values are recorded in milliseconds over shared exponential edges.
class Breakdown {
 public:
  Breakdown();

  /// Records a finished decomposition: `comp_ns` points at kTagComponents
  /// nanosecond sums (a ProvenanceTag's array) and `latency_ns` is the
  /// measured network latency (send -> receive, excluding loss recovery —
  /// the sink re-adds comp_ns[kLossRecovery] to form kMeasured). The
  /// unattributed residual lands in kOther.
  void record(std::uint64_t flow, const std::int64_t* comp_ns, std::int64_t latency_ns);

  /// Records one standalone component sample (e.g. a QUIC loss-recovery
  /// interval or a PEP relay residency) without a full decomposition.
  void add_component(std::uint64_t flow, int component, std::int64_t ns);

  [[nodiscard]] const stats::KeyedSamples& flows() const { return flows_; }
  [[nodiscard]] const stats::KeyedSamples& components() const { return components_; }
  [[nodiscard]] stats::KeyedSamples take_flows() { return std::move(flows_); }
  [[nodiscard]] stats::KeyedSamples take_components() { return std::move(components_); }

  /// Shared bucket edges (ms): exponential, 0.0625 .. 2048.
  [[nodiscard]] static std::vector<double> default_edges();

 private:
  stats::KeyedSamples flows_;
  stats::KeyedSamples components_;
};

}  // namespace slp::obs
