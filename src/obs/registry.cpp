#include "obs/registry.hpp"

#include <algorithm>
#include <cassert>

namespace slp::obs {

void HistogramCell::observe(double x) {
  const auto it = std::upper_bound(edges.begin(), edges.end(), x);
  counts[static_cast<std::size_t>(it - edges.begin())]++;
  total++;
  sum += x;
}

Counter Registry::counter(std::string_view name) {
  auto it = counter_index_.find(name);
  if (it == counter_index_.end()) {
    counter_cells_.push_back(0);
    it = counter_index_.emplace(std::string{name}, counter_cells_.size() - 1).first;
  }
  Counter handle;
  handle.v_ = &counter_cells_[it->second];
  return handle;
}

Gauge Registry::gauge(std::string_view name) {
  auto it = gauge_index_.find(name);
  if (it == gauge_index_.end()) {
    gauge_cells_.push_back(0.0);
    it = gauge_index_.emplace(std::string{name}, gauge_cells_.size() - 1).first;
  }
  Gauge handle;
  handle.v_ = &gauge_cells_[it->second];
  return handle;
}

HistogramHandle Registry::histogram(std::string_view name, std::span<const double> edges) {
  auto it = histogram_index_.find(name);
  if (it == histogram_index_.end()) {
    assert(std::is_sorted(edges.begin(), edges.end()));
    HistogramCell cell;
    cell.edges.assign(edges.begin(), edges.end());
    cell.counts.assign(edges.size() + 1, 0);
    histogram_cells_.push_back(std::move(cell));
    it = histogram_index_.emplace(std::string{name}, histogram_cells_.size() - 1).first;
  }
  HistogramHandle handle;
  handle.cell_ = &histogram_cells_[it->second];
  return handle;
}

std::vector<double> Registry::exp_edges(double lo, double factor, int count) {
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(count));
  double edge = lo;
  for (int i = 0; i < count; ++i) {
    edges.push_back(edge);
    edge *= factor;
  }
  return edges;
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, idx] : counter_index_) out.emplace(name, counter_cells_[idx]);
  return out;
}

std::map<std::string, double> Registry::gauges() const {
  std::map<std::string, double> out;
  for (const auto& [name, idx] : gauge_index_) out.emplace(name, gauge_cells_[idx]);
  return out;
}

std::map<std::string, HistogramCell> Registry::histograms() const {
  std::map<std::string, HistogramCell> out;
  for (const auto& [name, idx] : histogram_index_) out.emplace(name, histogram_cells_[idx]);
  return out;
}

}  // namespace slp::obs
