#include "obs/recorder.hpp"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/json.hpp"

namespace slp::obs {

Recorder::Recorder(const Options& opts)
    : opts_{opts}, trace_{opts.trace, opts.max_trace_events} {
  if (opts_.sample_interval > Duration::zero()) {
    sampler_ = std::make_unique<Sampler>(opts_.sample_interval, opts_.max_series_points);
  }
}

Snapshot Recorder::take_snapshot() {
  Snapshot snap;
  snap.cells = 1;
  snap.counters = registry_.counters();
  snap.gauges = registry_.gauges();
  snap.histograms = registry_.histograms();
  if (sampler_) snap.series = sampler_->take();
  if (trace_.dropped() > 0) snap.counters["obs.trace.dropped_events"] += trace_.dropped();
  snap.events = trace_.take();
  return snap;
}

void merge(Snapshot& into, const Snapshot& from) {
  for (const auto& [name, v] : from.counters) into.counters[name] += v;
  for (const auto& [name, v] : from.gauges) into.gauges[name] = v;
  for (const auto& [name, cell] : from.histograms) {
    auto [it, inserted] = into.histograms.emplace(name, cell);
    if (!inserted) {
      auto& dst = it->second;
      assert(dst.edges == cell.edges && "histogram edges must match to merge");
      for (std::size_t i = 0; i < dst.counts.size() && i < cell.counts.size(); ++i) {
        dst.counts[i] += cell.counts[i];
      }
      dst.total += cell.total;
      dst.sum += cell.sum;
    }
  }
  const auto offset = static_cast<std::uint32_t>(into.cells);
  for (const auto& s : from.series) {
    into.series.push_back(s);
    into.series.back().cell += offset;
  }
  for (const auto& ev : from.events) {
    into.events.push_back(ev);
    into.events.back().cell += offset;
  }
  into.cells += from.cells;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string metrics_json(const Snapshot& snap) {
  std::string out = "{\n  \"cells\": ";
  append_u64(out, snap.cells);

  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": ";
    append_u64(out, v);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": " + json_number(v);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": {\"edges\": [";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      if (i != 0) out += ", ";
      out += json_number(h.edges[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out += ", ";
      append_u64(out, h.counts[i]);
    }
    out += "], \"total\": ";
    append_u64(out, h.total);
    out += ", \"sum\": " + json_number(h.sum) + "}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"series\": [";
  first = true;
  for (const auto& s : snap.series) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": " + json_quote(s.name) + ", \"cell\": ";
    append_u64(out, s.cell);
    out += ", \"points\": [";
    for (std::size_t i = 0; i < s.points.size(); ++i) {
      if (i != 0) out += ", ";
      out += '[';
      append_i64(out, s.points[i].t_ns);
      out += ", " + json_number(s.points[i].value) + ']';
    }
    out += "]}";
  }
  out += first ? "]" : "\n  ]";

  out += "\n}\n";
  return out;
}

}  // namespace slp::obs
