#include "obs/recorder.hpp"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/json.hpp"

namespace slp::obs {

Recorder::Recorder(const Options& opts)
    : opts_{opts}, trace_{opts.trace || opts.provenance, opts.max_trace_events} {
  if (opts_.sample_interval > Duration::zero()) {
    sampler_ = std::make_unique<Sampler>(opts_.sample_interval, opts_.max_series_points);
  }
  if (opts_.provenance) {
    breakdown_ = std::make_unique<Breakdown>();
    anomaly_ = std::make_unique<AnomalyDetector>();
    anomaly_->set_callback([this](const AnomalyDetector::Anomaly& a) { capture_flight(a); });
    if (sampler_) {
      sampler_->set_observer([this](const std::string& name, std::int64_t t_ns, double v) {
        anomaly_->observe(name, t_ns, v);
      });
    }
  }
}

void Recorder::record_breakdown(std::int64_t t_ns, std::uint64_t flow,
                                const std::int64_t* comp_ns, std::int64_t latency_ns) {
  if (!breakdown_) return;
  breakdown_->record(flow, comp_ns, latency_ns);
  const std::int64_t measured_ns = latency_ns + comp_ns[kLossRecovery];
  anomaly_->observe("provenance.measured_ms", t_ns, static_cast<double>(measured_ns) * 1e-6);
}

void Recorder::record_component(std::uint64_t flow, int component, std::int64_t ns) {
  if (!breakdown_) return;
  breakdown_->add_component(flow, component, ns);
}

void Recorder::capture_flight(const AnomalyDetector::Anomaly& a) {
  // Bounded so a pathological scenario (e.g. a 140-day outage storm) cannot
  // grow the snapshot without limit; the anomaly *count* keeps climbing and
  // is exported as a counter either way.
  static constexpr std::size_t kMaxFlights = 64;
  static constexpr std::size_t kEventTail = 64;
  if (flights_.size() >= kMaxFlights) return;
  FlightDump dump;
  dump.stream = std::string{a.stream};
  dump.kind = a.kind;
  dump.t_ns = a.t_ns;
  dump.value = a.value;
  dump.median = a.median;
  auto counters = registry_.counters();
  for (const auto& [name, v] : counters) {
    const auto it = last_flight_counters_.find(name);
    const std::uint64_t prev = it == last_flight_counters_.end() ? 0 : it->second;
    if (v != prev) dump.counter_deltas.emplace_back(name, v - prev);
  }
  last_flight_counters_ = std::move(counters);
  dump.events = trace_.recent(kEventTail);
  flights_.push_back(std::move(dump));
}

Snapshot Recorder::take_snapshot() {
  Snapshot snap;
  snap.cells = 1;
  snap.counters = registry_.counters();
  snap.gauges = registry_.gauges();
  snap.histograms = registry_.histograms();
  if (sampler_) snap.series = sampler_->take();
  if (trace_.dropped() > 0) snap.counters["obs.trace.dropped_events"] += trace_.dropped();
  // A provenance run records trace events for flight dumps even when the
  // trace export was not requested; don't leak them into the trace export.
  snap.events = opts_.trace ? trace_.take() : std::vector<TraceEvent>{};
  if (breakdown_) {
    snap.breakdown_flows = breakdown_->take_flows();
    snap.breakdown_components = breakdown_->take_components();
  }
  if (anomaly_ && anomaly_->anomalies() > 0) {
    snap.counters["obs.anomaly.count"] += anomaly_->anomalies();
  }
  snap.flights = std::move(flights_);
  return snap;
}

void merge(Snapshot& into, const Snapshot& from) {
  for (const auto& [name, v] : from.counters) into.counters[name] += v;
  for (const auto& [name, v] : from.gauges) into.gauges[name] = v;
  for (const auto& [name, cell] : from.histograms) {
    auto [it, inserted] = into.histograms.emplace(name, cell);
    if (!inserted) {
      auto& dst = it->second;
      assert(dst.edges == cell.edges && "histogram edges must match to merge");
      for (std::size_t i = 0; i < dst.counts.size() && i < cell.counts.size(); ++i) {
        dst.counts[i] += cell.counts[i];
      }
      dst.total += cell.total;
      dst.sum += cell.sum;
    }
  }
  const auto offset = static_cast<std::uint32_t>(into.cells);
  for (const auto& s : from.series) {
    into.series.push_back(s);
    into.series.back().cell += offset;
  }
  for (const auto& ev : from.events) {
    into.events.push_back(ev);
    into.events.back().cell += offset;
  }
  into.breakdown_flows.merge(from.breakdown_flows);
  into.breakdown_components.merge(from.breakdown_components);
  for (const auto& f : from.flights) {
    into.flights.push_back(f);
    into.flights.back().cell += offset;
  }
  into.cells += from.cells;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string metrics_json(const Snapshot& snap) {
  std::string out = "{\n  \"cells\": ";
  append_u64(out, snap.cells);

  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": ";
    append_u64(out, v);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": " + json_number_exact(v);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": {\"edges\": [";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      if (i != 0) out += ", ";
      out += json_number_exact(h.edges[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out += ", ";
      append_u64(out, h.counts[i]);
    }
    out += "], \"total\": ";
    append_u64(out, h.total);
    out += ", \"sum\": " + json_number_exact(h.sum) + "}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"series\": [";
  first = true;
  for (const auto& s : snap.series) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": " + json_quote(s.name) + ", \"cell\": ";
    append_u64(out, s.cell);
    out += ", \"points\": [";
    for (std::size_t i = 0; i < s.points.size(); ++i) {
      if (i != 0) out += ", ";
      out += '[';
      append_i64(out, s.points[i].t_ns);
      out += ", " + json_number_exact(s.points[i].value) + ']';
    }
    out += "]}";
  }
  out += first ? "]" : "\n  ]";

  out += "\n}\n";
  return out;
}

namespace {

void append_group(std::string& out, const stats::KeyedSamples::Group& g) {
  out += "{\"count\": ";
  append_u64(out, g.summary.count());
  out += ", \"mean\": " + json_number_exact(g.summary.mean());
  out += ", \"min\": " + json_number_exact(g.summary.min());
  out += ", \"max\": " + json_number_exact(g.summary.max());
  out += ", \"sum\": " + json_number_exact(g.summary.sum());
  out += ", \"counts\": [";
  for (std::size_t i = 0; i < g.counts.size(); ++i) {
    if (i != 0) out += ", ";
    append_u64(out, g.counts[i]);
  }
  out += "]}";
}

}  // namespace

std::string breakdown_json(const Snapshot& snap) {
  std::string out = "{\n  \"cells\": ";
  append_u64(out, snap.cells);

  out += ",\n  \"edges_ms\": [";
  const auto& edges = snap.breakdown_components.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_number_exact(edges[i]);
  }
  out += ']';

  out += ",\n  \"components\": {";
  bool first = true;
  for (const auto& [key, group] : snap.breakdown_components.groups()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(component_name(static_cast<int>(key))) + ": ";
    append_group(out, group);
  }
  out += first ? "}" : "\n  }";

  // Flow keys ascend, so each flow's components are contiguous in the map.
  out += ",\n  \"flows\": {";
  first = true;
  std::uint64_t open_flow = 0;
  bool flow_open = false;
  for (const auto& [key, group] : snap.breakdown_flows.groups()) {
    const std::uint64_t flow = key / kComponentKeyStride;
    const int comp = static_cast<int>(key % kComponentKeyStride);
    if (!flow_open || flow != open_flow) {
      if (flow_open) out += "\n    }";
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      append_u64(out, flow);
      out += "\": {\n";
      open_flow = flow;
      flow_open = true;
    } else {
      out += ",\n";
    }
    out += "      " + json_quote(component_name(comp)) + ": ";
    append_group(out, group);
  }
  if (flow_open) out += "\n    }";
  out += first ? "}" : "\n  }";

  out += "\n}\n";
  return out;
}

std::string flight_json(const Snapshot& snap) {
  std::string out = "{\n  \"cells\": ";
  append_u64(out, snap.cells);
  out += ",\n  \"flights\": [";
  bool first = true;
  for (const auto& f : snap.flights) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"stream\": " + json_quote(f.stream) + ", \"kind\": " + json_quote(f.kind) +
           ", \"t_ns\": ";
    append_i64(out, f.t_ns);
    out += ", \"value\": " + json_number_exact(f.value) +
           ", \"median\": " + json_number_exact(f.median) + ", \"cell\": ";
    append_u64(out, f.cell);
    out += ",\n     \"counter_deltas\": {";
    bool cd_first = true;
    for (const auto& [name, delta] : f.counter_deltas) {
      out += cd_first ? "" : ", ";
      cd_first = false;
      out += json_quote(name) + ": ";
      append_u64(out, delta);
    }
    out += "},\n     \"events\": [";
    bool ev_first = true;
    for (const auto& ev : f.events) {
      out += ev_first ? "\n      " : ",\n      ";
      ev_first = false;
      out += trace_event_json(ev);
    }
    out += ev_first ? "]}" : "\n     ]}";
  }
  out += first ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

}  // namespace slp::obs
