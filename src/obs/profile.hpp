// profile.hpp — wall-clock self-profiling of the event loop.
//
// Deliberately separate from the Registry/Snapshot: wall-clock numbers are
// nondeterministic, and the Snapshot export is compared byte-for-byte across
// --jobs values in CI. WallProfile lives on the Simulator, is off by default
// (the timing calls would cost ~2x on the micro benchmark), and is reported
// out-of-band (stderr / Pool task table), never merged into metrics JSON.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace slp::obs {

/// Log2-bucketed nanosecond histogram of event-callback latency plus an
/// event counter. Bucket i counts callbacks with latency in [2^i, 2^(i+1)) ns.
class WallProfile {
 public:
  static constexpr int kBuckets = 32;

  void record_callback_ns(std::uint64_t ns) {
    events_++;
    total_ns_ += ns;
    buckets_[bucket_of(ns)]++;
  }

  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t total_ns() const { return total_ns_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// Approximate latency quantile (upper edge of the bucket holding rank q).
  [[nodiscard]] std::uint64_t quantile_ns(double q) const;

  /// Multi-line human-readable report ("events=N mean=...ns p50=... p99=...").
  [[nodiscard]] std::string report() const;

 private:
  [[nodiscard]] static int bucket_of(std::uint64_t ns) {
    int b = 0;
    while (ns > 1 && b < kBuckets - 1) {
      ns >>= 1;
      b++;
    }
    return b;
  }

  std::uint64_t events_ = 0;
  std::uint64_t total_ns_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

}  // namespace slp::obs
