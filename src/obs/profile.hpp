// profile.hpp — wall-clock self-profiling of the event loop.
//
// Deliberately separate from the Registry/Snapshot: wall-clock numbers are
// nondeterministic, and the Snapshot export is compared byte-for-byte across
// --jobs values in CI. WallProfile lives on the Simulator, is off by default
// (the timing calls would cost ~2x on the micro benchmark), and is reported
// out-of-band (stderr / Pool task table), never merged into metrics JSON.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace slp::obs {

/// Subsystem attribution for wall-clock time inside the event loop. Sections
/// are coarse on purpose: each one is a well-known hot region (ephemeris
/// queries, the fleet arbiter, link delivery, congestion control) whose share
/// of the loop answers "where does the wall time go" without a real profiler.
enum class Section : int {
  kEphemeris = 0,  ///< leo::Constellation visibility / best-sat queries
  kArbiter,        ///< fleet::CellArbiter + Fleet epoch re-evaluation
  kLink,           ///< sim::Link delivery + transmission machinery
  kCc,             ///< TCP/QUIC ack processing and congestion control
  kCount,
};

[[nodiscard]] const char* section_name(Section s);

/// Log2-bucketed nanosecond histogram of event-callback latency plus an
/// event counter. Bucket i counts callbacks with latency in [2^i, 2^(i+1)) ns.
class WallProfile {
 public:
  static constexpr int kBuckets = 32;

  void record_callback_ns(std::uint64_t ns) {
    events_++;
    total_ns_ += ns;
    buckets_[bucket_of(ns)]++;
  }

  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t total_ns() const { return total_ns_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// Approximate latency quantile (upper edge of the bucket holding rank q).
  [[nodiscard]] std::uint64_t quantile_ns(double q) const;

  void record_section(Section s, std::uint64_t ns) {
    auto& sec = sections_[static_cast<int>(s)];
    sec.calls++;
    sec.total_ns += ns;
  }

  struct SectionStats {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };
  [[nodiscard]] const SectionStats& section(Section s) const {
    return sections_[static_cast<int>(s)];
  }

  /// The profile SectionTimers attribute to, thread-local so parallel sweep
  /// cells never share one. The Simulator installs its own profile for the
  /// duration of run()/run_until(); nullptr (the default) makes every
  /// SectionTimer a no-op.
  [[nodiscard]] static WallProfile* current();
  /// Installs `p` and returns the previous value (restore on scope exit).
  static WallProfile* exchange_current(WallProfile* p);

  /// Multi-line human-readable report ("events=N mean=...ns p50=... p99=...",
  /// then one "section ..." line per subsystem with its share of the loop).
  [[nodiscard]] std::string report() const;

 private:
  [[nodiscard]] static int bucket_of(std::uint64_t ns) {
    int b = 0;
    while (ns > 1 && b < kBuckets - 1) {
      ns >>= 1;
      b++;
    }
    return b;
  }

  std::uint64_t events_ = 0;
  std::uint64_t total_ns_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::array<SectionStats, static_cast<int>(Section::kCount)> sections_{};
};

/// RAII wall-clock attribution to one Section of the thread's current
/// profile. Checks WallProfile::current() once; when no profile is installed
/// (the default) construction is a TLS load and a branch — cheap enough to
/// leave in per-delivery code unconditionally.
class SectionTimer {
 public:
  explicit SectionTimer(Section s) : profile_{WallProfile::current()}, section_{s} {
    if (profile_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~SectionTimer() {
    if (profile_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      profile_->record_section(section_, static_cast<std::uint64_t>(ns));
    }
  }
  SectionTimer(const SectionTimer&) = delete;
  SectionTimer& operator=(const SectionTimer&) = delete;

 private:
  WallProfile* profile_;
  Section section_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace slp::obs
