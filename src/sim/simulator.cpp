#include "sim/simulator.hpp"

#include <cassert>

namespace slp::sim {

Simulator::Simulator(std::uint64_t seed) : rng_{seed} {}

EventId Simulator::schedule_at(TimePoint at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  return queue_.schedule(at, std::move(fn));
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    ++events_processed_;
    fn();
  }
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    ++events_processed_;
    fn();
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Timer::arm(Duration delay, std::function<void()> fn) {
  arm_at(sim_->now() + delay, std::move(fn));
}

void Timer::arm_at(TimePoint at, std::function<void()> fn) {
  cancel();
  armed_ = true;
  expiry_ = at;
  id_ = sim_->schedule_at(at, [this, fn = std::move(fn)] {
    armed_ = false;
    fn();
  });
}

void Timer::cancel() {
  if (armed_) {
    sim_->cancel(id_);
    armed_ = false;
  }
}

}  // namespace slp::sim
