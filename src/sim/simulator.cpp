#include "sim/simulator.hpp"

#include <cassert>
#include <chrono>

#include "util/log.hpp"

namespace slp::sim {

Simulator::Simulator(std::uint64_t seed) : rng_{seed} {
  // Log records from this thread carry this simulation's clock ("[t=...s]")
  // while it is the thread's live simulator. Sweep cells run one Testbed per
  // worker at a time, so last-registered-wins is exactly right.
  Logger::set_time_source(this, [](const void* owner) {
    return static_cast<const Simulator*>(owner)->now().ns();
  });
}

Simulator::~Simulator() { Logger::clear_time_source(this); }

EventId Simulator::schedule_at(TimePoint at, util::InlineFunction fn) {
  assert(at >= now_ && "cannot schedule into the past");
  return queue_.schedule(at, std::move(fn));
}

void Simulator::enable_obs(const obs::Options& opts) {
  recorder_ = std::make_unique<obs::Recorder>(opts);
  sampler_ = recorder_->sampler();
  provenance_ = opts.provenance;
  if (opts.profile) profile_ = std::make_unique<obs::WallProfile>();
}

namespace {

/// Installs this simulator's WallProfile as the thread's current one for the
/// duration of a run loop, so SectionTimers in subsystem code attribute to it.
class ProfileScope {
 public:
  explicit ProfileScope(obs::WallProfile* p)
      : prev_{obs::WallProfile::exchange_current(p)} {}
  ~ProfileScope() { obs::WallProfile::exchange_current(prev_); }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  obs::WallProfile* prev_;
};

}  // namespace

void Simulator::sample_up_to(TimePoint at) {
  // A grid point t is sampled when the clock first moves past it, so the
  // sample sees the state after every event at t has run — the same answer
  // regardless of how events at t are batched.
  if (sampler_->next_due() < at) {
    sampler_->sample_until(at - Duration::nanos(1));
  }
}

void Simulator::run() {
  stopped_ = false;
  if (profile_) {
    using Clock = std::chrono::steady_clock;
    const ProfileScope scope{profile_.get()};
    while (!queue_.empty() && !stopped_) {
      auto [at, fn] = queue_.pop();
      if (sampler_ != nullptr) sample_up_to(at);
      now_ = at;
      ++events_processed_;
      const auto t0 = Clock::now();
      fn();
      profile_->record_callback_ns(
          static_cast<std::uint64_t>((Clock::now() - t0).count()));
    }
    return;
  }
  while (!queue_.empty() && !stopped_) {
    auto [at, fn] = queue_.pop();
    if (sampler_ != nullptr) sample_up_to(at);
    now_ = at;
    ++events_processed_;
    fn();
  }
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  const ProfileScope scope{profile_ ? profile_.get() : obs::WallProfile::current()};
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    auto [at, fn] = queue_.pop();
    if (sampler_ != nullptr) sample_up_to(at);
    now_ = at;
    ++events_processed_;
    fn();
  }
  if (!stopped_ && now_ < deadline) {
    if (sampler_ != nullptr) sampler_->sample_until(deadline);
    now_ = deadline;
  }
}

void Timer::arm(Duration delay, util::InlineFunction fn) {
  arm_at(sim_->now() + delay, std::move(fn));
}

void Timer::arm_at(TimePoint at, util::InlineFunction fn) {
  cancel();
  armed_ = true;
  expiry_ = at;
  fn_ = std::move(fn);
  id_ = sim_->schedule_at(at, [this] { fire(); });
}

void Timer::fire() {
  armed_ = false;
  // Move out first so the callback may freely re-arm this timer.
  util::InlineFunction fn = std::move(fn_);
  fn();
}

void Timer::cancel() {
  if (armed_) {
    sim_->cancel(id_);
    armed_ = false;
    fn_.reset();
  }
}

}  // namespace slp::sim
