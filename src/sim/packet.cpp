#include "sim/packet.hpp"

#include <sstream>

#include "util/rng.hpp"

namespace slp::sim {

std::string addr_to_string(Ipv4Addr addr) {
  std::ostringstream os;
  os << ((addr >> 24) & 0xFF) << '.' << ((addr >> 16) & 0xFF) << '.' << ((addr >> 8) & 0xFF)
     << '.' << (addr & 0xFF);
  return os.str();
}

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::kIcmp: return "ICMP";
    case Protocol::kTcp: return "TCP";
    case Protocol::kUdp: return "UDP";
  }
  return "?";
}

std::uint16_t transport_checksum(const Packet& pkt) {
  // Mix the pseudo-header fields a real TCP/UDP checksum covers.
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(pkt.src);
  mix(pkt.dst);
  mix(pkt.src_port);
  mix(pkt.dst_port);
  mix(static_cast<std::uint64_t>(pkt.proto));
  mix(pkt.size_bytes);
  if (pkt.tcp) {
    mix(pkt.tcp->seq);
    mix(pkt.tcp->ack);
    mix((pkt.tcp->syn ? 1u : 0u) | (pkt.tcp->ack_flag ? 2u : 0u) | (pkt.tcp->fin ? 4u : 0u));
  }
  return static_cast<std::uint16_t>(h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48));
}

void refresh_checksum(Packet& pkt) { pkt.checksum = transport_checksum(pkt); }

namespace {

Packet make_icmp_error(IcmpType type, Ipv4Addr reporter, const Packet& offender) {
  Packet err;
  err.src = reporter;
  err.dst = offender.src;
  err.proto = Protocol::kIcmp;
  err.ttl = 64;
  // ICMP error: IP header (20) + ICMP header (8) + quoted IP header + 8 bytes.
  err.size_bytes = 56;
  IcmpHeader hdr;
  hdr.type = type;
  // The quote carries the offender's headers as seen *at this hop*, i.e.
  // after any upstream NAT rewrites — the observable Tracebox relies on.
  auto quoted = std::make_shared<Packet>(offender);
  quoted->icmp.reset();  // errors never quote nested ICMP payloads in full
  hdr.quoted = std::move(quoted);
  err.icmp = std::move(hdr);
  refresh_checksum(err);
  return err;
}

}  // namespace

Packet make_time_exceeded(Ipv4Addr reporter, const Packet& offender) {
  return make_icmp_error(IcmpType::kTimeExceeded, reporter, offender);
}

Packet make_dest_unreachable(Ipv4Addr reporter, const Packet& offender) {
  return make_icmp_error(IcmpType::kDestUnreachable, reporter, offender);
}

std::string to_string(const Packet& pkt) {
  std::ostringstream os;
  os << to_string(pkt.proto) << ' ' << addr_to_string(pkt.src) << ':' << pkt.src_port << " > "
     << addr_to_string(pkt.dst) << ':' << pkt.dst_port << " ttl=" << static_cast<int>(pkt.ttl)
     << " len=" << pkt.size_bytes;
  return os.str();
}

}  // namespace slp::sim
