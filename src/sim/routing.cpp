#include "sim/routing.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace slp::sim {

void RouteTable::add_route(Ipv4Addr prefix, int prefix_len, Interface& out) {
  entries_.push_back(Entry{prefix, prefix_len, &out});
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) { return a.prefix_len > b.prefix_len; });
}

Interface* RouteTable::lookup(Ipv4Addr dst) const {
  for (const Entry& e : entries_) {
    if (prefix_match(dst, e.prefix, e.prefix_len)) return e.out;
  }
  return nullptr;
}

bool Router::owns_address(Ipv4Addr addr) const {
  for (std::size_t i = 0; i < interface_count(); ++i) {
    if (interface(i).addr() == addr) return true;
  }
  return false;
}

void Router::send_local(Packet pkt) {
  Interface* out = routes_.lookup(pkt.dst);
  if (out == nullptr) {
    SLP_LOG(kDebug, "router", name() << ": no route for locally generated "
                                     << addr_to_string(pkt.dst));
    return;
  }
  if (pkt.uid == 0) pkt.uid = sim().next_packet_uid();
  out->send(std::move(pkt));
}

void Router::handle_packet(Packet pkt, Interface& in) {
  // Locally addressed traffic: answer pings, silently absorb the rest.
  if (owns_address(pkt.dst)) {
    if (pkt.proto == Protocol::kIcmp && pkt.icmp && pkt.icmp->type == IcmpType::kEchoRequest) {
      Packet reply;
      reply.src = pkt.dst;
      reply.dst = pkt.src;
      reply.proto = Protocol::kIcmp;
      reply.size_bytes = pkt.size_bytes;
      reply.icmp = IcmpHeader{IcmpType::kEchoReply, pkt.icmp->id, pkt.icmp->seq, nullptr};
      refresh_checksum(reply);
      send_local(std::move(reply));
    }
    return;
  }

  // Transit traffic: TTL check, then longest-prefix forward.
  if (pkt.ttl <= 1) {
    stats_.ttl_expired++;
    // Never answer an ICMP error with another ICMP error.
    if (!(pkt.proto == Protocol::kIcmp && pkt.icmp && pkt.icmp->type != IcmpType::kEchoRequest &&
          pkt.icmp->type != IcmpType::kEchoReply)) {
      send_local(make_time_exceeded(in.addr(), pkt));
    }
    return;
  }
  pkt.ttl--;

  Interface* out = routes_.lookup(pkt.dst);
  if (out == nullptr) {
    stats_.no_route++;
    send_local(make_dest_unreachable(in.addr(), pkt));
    return;
  }
  stats_.forwarded++;
  out->send(std::move(pkt));
}

}  // namespace slp::sim
