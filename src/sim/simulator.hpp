// simulator.hpp — discrete-event simulation kernel.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "sim/event_queue.hpp"
#include "util/inline_function.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace slp::sim {

/// The simulation kernel: a virtual clock plus the event queue.
///
/// Everything in the system — link transmissions, retransmission timers,
/// campaign rounds — is an event on this queue. The kernel is single-threaded
/// and deterministic: identical seeds and topology produce identical runs.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  /// Deterministic per-component stream, independent of draw order elsewhere.
  [[nodiscard]] Rng fork_rng(std::string_view label) const { return rng_.fork(label); }

  EventId schedule_at(TimePoint at, util::InlineFunction fn);
  EventId schedule_in(Duration delay, util::InlineFunction fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains or stop() is called.
  void run();
  /// Runs events with timestamp <= deadline; the clock lands on `deadline`.
  void run_until(TimePoint deadline);
  /// Runs for `d` of simulated time from now.
  void run_for(Duration d) { run_until(now_ + d); }
  /// Stops the current run() after the in-flight event returns.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// Read-only queue access (capacity introspection in regression tests).
  [[nodiscard]] const EventQueue& event_queue() const { return queue_; }

  /// Turns on observability for this simulation. Call before building the
  /// topology so components can bind handles / register probes at
  /// construction. No-op data collection when never called.
  void enable_obs(const obs::Options& opts);
  /// Null unless enable_obs() was called — instrumentation sites check this
  /// once at setup, so the per-event cost of disabled obs is zero.
  [[nodiscard]] obs::Recorder* obs() { return recorder_.get(); }
  /// Non-null only when Options::profile was set.
  [[nodiscard]] const obs::WallProfile* wall_profile() const { return profile_.get(); }

  /// Enables/disables analytic fast paths (link express serialization and
  /// transport scan skipping read it at component construction). Both
  /// settings produce identical exports — the knob exists so the
  /// differential suite can run the packet-level reference. Set before
  /// building the topology.
  void set_fast_forward(bool on) { fast_forward_ = on; }
  [[nodiscard]] bool fast_forward() const { return fast_forward_; }

  /// True when enable_obs() was called with Options::provenance — origin
  /// hosts/transports attach a pooled ProvenanceTag to each packet. Cached
  /// here so the per-send check is one bool load.
  [[nodiscard]] bool provenance() const { return provenance_; }

  /// Fresh globally-unique packet uid.
  [[nodiscard]] std::uint64_t next_packet_uid() { return next_packet_uid_++; }
  /// Fresh globally-unique flow id.
  [[nodiscard]] std::uint64_t next_flow_id() { return next_flow_id_++; }

 private:
  /// Emits any sample-grid points the clock is about to pass. Kept out of
  /// line so the run loop's fast path is a single null check.
  void sample_up_to(TimePoint at);

  EventQueue queue_;
  TimePoint now_;
  Rng rng_;
  bool stopped_ = false;
  bool fast_forward_ = true;
  bool provenance_ = false;
  std::uint64_t events_processed_ = 0;
  std::uint64_t next_packet_uid_ = 1;
  std::uint64_t next_flow_id_ = 1;
  std::unique_ptr<obs::Recorder> recorder_;
  obs::Sampler* sampler_ = nullptr;  ///< cached from recorder_ for the run loop
  std::unique_ptr<obs::WallProfile> profile_;
};

/// A re-armable one-shot timer bound to a simulator; cancels itself on
/// destruction so callbacks can never outlive their owner (RAII for events).
///
/// The callback is kept in the timer itself and the queue only holds a
/// `[this]` thunk, so re-arming never allocates no matter how large the
/// capture — the hot RTO/delayed-ACK path is pure pointer shuffling.
class Timer {
 public:
  explicit Timer(Simulator& sim) : sim_{&sim} {}
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer; a pending expiry is cancelled first.
  void arm(Duration delay, util::InlineFunction fn);
  void arm_at(TimePoint at, util::InlineFunction fn);
  void cancel();

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] TimePoint expiry() const { return expiry_; }

 private:
  void fire();

  Simulator* sim_;
  util::InlineFunction fn_;
  EventId id_{};
  bool armed_ = false;
  TimePoint expiry_;
};

}  // namespace slp::sim
