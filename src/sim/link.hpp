// link.hpp — point-to-point links with serialization, queuing, propagation
// and pluggable loss.
//
// A link is the only place where time "costs" anything in the simulator:
//   enqueue -> (drop-tail if full) -> serialize at `rate` -> propagate for
//   `delay` -> optional loss -> deliver to the peer interface.
//
// Rates and delays can be functions of time: the Starlink access link uses a
// delay function driven by satellite geometry (slant ranges change every
// handover slot) and a rate function driven by the shared-cell load process.
//
// Each direction runs in one of three modes, cheapest first:
//
//   * fast (analytic express): when the direction is static — fixed rate,
//     fixed delay, no loss model, no AQM, not traced — and the simulator's
//     fast-forward knob is on, serialization is computed analytically at
//     enqueue (a virtual busy-until horizon plus a virtual queue) and the
//     packet goes straight into the in-flight list with its delivery time.
//     One event per packet, zero per-packet allocations. Any live
//     reconfiguration (scenario epoch, shaper, handover retune) falls the
//     direction back to event mode mid-flight with exact state handover.
//   * batched events: dynamic directions serialize packet-by-packet, but the
//     serializer slot lives in the Direction (the event is a 16-byte
//     [this, direction] thunk, never a heap-spilled packet capture) and
//     deliveries share ONE armed event per direction: completions that land
//     due together coalesce into a single event-queue entry.
//   * unbatched reference: the original two-events-per-packet scheduling,
//     kept behind `Config::unbatched` as the behavioural reference for the
//     property suite (tests/property_test.cpp).
//
// Equivalence note (pinned by tests/packet_path_test.cpp): fast mode treats
// a serializer that frees at exactly t as idle for an enqueue at t, where
// event mode's outcome depends on event ordering within the same
// nanosecond. With fractional-nanosecond serialization times such ties do
// not occur in practice; the differential suite runs both modes and
// compares exports byte-for-byte. In fast/batched modes tx_packets/tx_bytes
// are accounted when the packet is delivered (or destroyed by the medium),
// not at serialization end, so both modes agree at any run cutoff; totals at
// quiescence are identical to the unbatched reference.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "obs/registry.hpp"
#include "sim/node.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace slp::sim {

struct ProvenanceTag;

/// Decides whether a packet in flight is destroyed by the medium.
/// Implementations live in slp::phy (Gilbert-Elliott, outages, ...).
class LossModel {
 public:
  virtual ~LossModel() = default;
  [[nodiscard]] virtual bool should_drop(TimePoint now, const Packet& pkt) = 0;
};

class Link {
 public:
  struct DirectionConfig {
    DataRate rate = DataRate::gbps(1);
    /// When set, sampled at each transmission start (time-varying capacity).
    std::function<DataRate(TimePoint)> rate_fn;
    Duration delay = Duration::millis(1);
    /// When set, sampled at each transmission end (dynamic propagation).
    std::function<Duration(TimePoint)> delay_fn;
    std::size_t queue_capacity_bytes = 256 * 1024;
    /// Not owned; must outlive the link. nullptr = lossless medium.
    LossModel* loss = nullptr;
    /// Optional AQM/scheduler drop decision, evaluated at enqueue with the
    /// instantaneous queue fill fraction. Models utilization-coupled loss
    /// (drops that only happen when the link is loaded).
    std::function<bool(TimePoint, const Packet&, double queue_fraction)> aqm;
    /// Latency-provenance attribution for dynamic delays: called immediately
    /// after `delay_fn` with the drawn total so the owner (e.g. the Starlink
    /// access model) can split it into components from the exact pieces it
    /// just composed. Must draw no RNG. When unset, the whole delay is
    /// attributed to obs::kPropagation. Only consulted when the packet
    /// carries a tag; directions with a delay_fn never run the fast path, so
    /// the hook never has to synthesize analytically.
    std::function<void(ProvenanceTag&, Duration)> delay_attribution;
  };

  struct Config {
    DirectionConfig a_to_b;
    DirectionConfig b_to_a;
    /// Observability name ("sat", "isp", ...). Links sharing a name share
    /// metric counters; empty = pooled under "other". Named links also get
    /// queue-depth sampler probes and drop trace events.
    std::string name;
    /// Reference mode: schedule every serialization completion and delivery
    /// as its own packet-capturing event, exactly as the original
    /// implementation did. Slow; exists so the property suite can compare
    /// the batched/fast paths against it packet-for-packet.
    bool unbatched = false;
  };

  struct DirStats {
    std::uint64_t enqueued_packets = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t dropped_overflow = 0;
    std::uint64_t dropped_medium = 0;
    std::uint64_t dropped_aqm = 0;
    std::uint64_t max_queue_bytes = 0;
  };

  /// Wires interfaces `a` and `b` together. Both must be unattached.
  Link(Simulator& sim, Interface& a, Interface& b, Config config);
  ~Link();

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  [[nodiscard]] const DirStats& stats_a_to_b() const { return dir_[0].stats; }
  [[nodiscard]] const DirStats& stats_b_to_a() const { return dir_[1].stats; }

  /// Bytes currently queued awaiting serialization (direction 0 = a->b).
  [[nodiscard]] std::size_t queued_bytes(int direction) const;

  /// Live re-configuration hooks (used by shapers and scenario epochs).
  /// On a fast-mode direction these first materialize the analytic state
  /// back into event mode so the change applies with packet-level exactness.
  void set_rate(int direction, DataRate rate);
  void set_delay(int direction, Duration delay);
  void set_loss(int direction, LossModel* loss);

  /// A tap sees every packet the moment it is delivered to the destination
  /// interface (after loss). Used by tests and packet captures.
  void set_delivery_tap(int direction, std::function<void(const Packet&)> tap);

  /// True while the direction serializes analytically (introspection for
  /// tests asserting fall-back/resume behaviour).
  [[nodiscard]] bool fast_path_active(int direction) const { return dir_[direction].fast; }

 private:
  friend class Interface;

  struct DirObs {
    obs::Counter enqueued;
    obs::Counter tx_bytes;
    obs::Counter delivered;
    obs::Counter dropped_overflow;
    obs::Counter dropped_medium;
    obs::Counter dropped_aqm;
    obs::Gauge fast_active;      ///< 1 while the analytic fast path serves
    std::uint64_t probe_id = 0;  ///< queue-depth sampler probe (0 = none)
  };

  /// A packet past the serializer, waiting out its propagation delay.
  struct Arrival {
    TimePoint due;       ///< delivery instant (tx_end + propagation)
    TimePoint tx_start;  ///< when serialization began
    TimePoint tx_end;    ///< when serialization completed/completes
    Packet pkt;
  };

  struct Direction {
    DirectionConfig config;
    Interface* to = nullptr;
    std::deque<Packet> queue;  ///< awaiting serialization (event modes)
    std::size_t queued_bytes = 0;
    bool transmitting = false;

    // Batched event mode: the packet occupying the serializer. Keeping it
    // here instead of in the event closure keeps the event a small thunk.
    bool tx_valid = false;
    TimePoint tx_started;
    TimePoint tx_ends;
    Packet tx_pkt;

    /// In-flight packets ordered by due time; one delivery event is armed
    /// for the front, and a single firing drains every arrival that is due.
    std::deque<Arrival> arrivals;
    EventId delivery_event{};
    TimePoint delivery_due = TimePoint::infinite();

    // Fast (analytic) serializer state.
    bool fast_capable = false;
    bool fast = false;
    TimePoint busy_until;  ///< end of the current virtual busy period
    /// Committed packets whose serialization has not started yet:
    /// (tx_start, wire bytes). Pruned lazily against the clock; the pruned
    /// byte sum is exactly event mode's queued_bytes at the same instant.
    std::deque<std::pair<TimePoint, std::uint32_t>> pipe;

    DirStats stats;
    std::function<void(const Packet&)> tap;
    DirObs obs;
  };

  void init_obs();
  void trace_drop(int direction, const char* kind, const Packet& pkt);

  /// Called by Interface::send.
  void enqueue(int direction, Packet pkt);
  void begin_transmission(int direction, Packet pkt);
  void start_transmission(int direction);
  void finish_transmission(int direction, Packet pkt);  ///< unbatched reference
  void on_tx_done(int direction);                       ///< batched mode
  void push_arrival(int direction, Arrival arr);
  void arm_delivery(int direction, TimePoint due);
  void deliver_due(int direction);
  /// Drops a fast direction back to event mode: packets not yet fully
  /// serialized return to the serializer slot / waiting queue with their
  /// exact event-mode state; fully-serialized ones keep their deliveries.
  void materialize(int direction);
  /// Recomputes fast eligibility after construction or reconfiguration and
  /// re-enters fast mode if the direction is idle.
  void update_fast_eligibility(int direction);

  Simulator* sim_;
  Direction dir_[2];
  std::string obs_name_;  ///< resolved metric name ("other" when unnamed)
  bool traced_ = false;   ///< emit per-drop trace events (named links only)
  bool unbatched_ = false;
  /// Fast-path disqualification events, pooled across all links so silent
  /// fall-backs (a scenario retune, a loss attach) are observable.
  obs::Counter materializations_;
};

}  // namespace slp::sim
