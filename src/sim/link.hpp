// link.hpp — point-to-point links with serialization, queuing, propagation
// and pluggable loss.
//
// A link is the only place where time "costs" anything in the simulator:
//   enqueue -> (drop-tail if full) -> serialize at `rate` -> propagate for
//   `delay` -> optional loss -> deliver to the peer interface.
//
// Rates and delays can be functions of time: the Starlink access link uses a
// delay function driven by satellite geometry (slant ranges change every
// handover slot) and a rate function driven by the shared-cell load process.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "obs/registry.hpp"
#include "sim/node.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace slp::sim {

/// Decides whether a packet in flight is destroyed by the medium.
/// Implementations live in slp::phy (Gilbert-Elliott, outages, ...).
class LossModel {
 public:
  virtual ~LossModel() = default;
  [[nodiscard]] virtual bool should_drop(TimePoint now, const Packet& pkt) = 0;
};

class Link {
 public:
  struct DirectionConfig {
    DataRate rate = DataRate::gbps(1);
    /// When set, sampled at each transmission start (time-varying capacity).
    std::function<DataRate(TimePoint)> rate_fn;
    Duration delay = Duration::millis(1);
    /// When set, sampled at each transmission end (dynamic propagation).
    std::function<Duration(TimePoint)> delay_fn;
    std::size_t queue_capacity_bytes = 256 * 1024;
    /// Not owned; must outlive the link. nullptr = lossless medium.
    LossModel* loss = nullptr;
    /// Optional AQM/scheduler drop decision, evaluated at enqueue with the
    /// instantaneous queue fill fraction. Models utilization-coupled loss
    /// (drops that only happen when the link is loaded).
    std::function<bool(TimePoint, const Packet&, double queue_fraction)> aqm;
  };

  struct Config {
    DirectionConfig a_to_b;
    DirectionConfig b_to_a;
    /// Observability name ("sat", "isp", ...). Links sharing a name share
    /// metric counters; empty = pooled under "other". Named links also get
    /// queue-depth sampler probes and drop trace events.
    std::string name;
  };

  struct DirStats {
    std::uint64_t enqueued_packets = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t dropped_overflow = 0;
    std::uint64_t dropped_medium = 0;
    std::uint64_t dropped_aqm = 0;
    std::uint64_t max_queue_bytes = 0;
  };

  /// Wires interfaces `a` and `b` together. Both must be unattached.
  Link(Simulator& sim, Interface& a, Interface& b, Config config);
  ~Link();

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  [[nodiscard]] const DirStats& stats_a_to_b() const { return dir_[0].stats; }
  [[nodiscard]] const DirStats& stats_b_to_a() const { return dir_[1].stats; }

  /// Bytes currently queued awaiting serialization (direction 0 = a->b).
  [[nodiscard]] std::size_t queued_bytes(int direction) const;

  /// Live re-configuration hooks (used by shapers and scenario epochs).
  void set_rate(int direction, DataRate rate);
  void set_delay(int direction, Duration delay);
  void set_loss(int direction, LossModel* loss);

  /// A tap sees every packet the moment it is delivered to the destination
  /// interface (after loss). Used by tests and packet captures.
  void set_delivery_tap(int direction, std::function<void(const Packet&)> tap);

 private:
  friend class Interface;

  struct DirObs {
    obs::Counter enqueued;
    obs::Counter tx_bytes;
    obs::Counter delivered;
    obs::Counter dropped_overflow;
    obs::Counter dropped_medium;
    obs::Counter dropped_aqm;
    std::uint64_t probe_id = 0;  ///< queue-depth sampler probe (0 = none)
  };

  struct Direction {
    DirectionConfig config;
    Interface* to = nullptr;
    std::deque<Packet> queue;
    std::size_t queued_bytes = 0;
    bool transmitting = false;
    DirStats stats;
    std::function<void(const Packet&)> tap;
    DirObs obs;
  };

  void init_obs();
  void trace_drop(int direction, const char* kind, const Packet& pkt);

  /// Called by Interface::send.
  void enqueue(int direction, Packet pkt);
  void start_transmission(int direction);
  void finish_transmission(int direction, Packet pkt);

  Simulator* sim_;
  Direction dir_[2];
  std::string obs_name_;  ///< resolved metric name ("other" when unnamed)
  bool traced_ = false;   ///< emit per-drop trace events (named links only)
};

}  // namespace slp::sim
