#include "sim/link.hpp"

#include <cassert>
#include <utility>

namespace slp::sim {

void Interface::send(Packet pkt) {
  assert(attached() && "interface not wired to a link");
  link_->enqueue(endpoint_, std::move(pkt));
}

Interface* Interface::peer() const {
  if (link_ == nullptr) return nullptr;
  return link_->dir_[endpoint_].to;
}

Interface& Node::add_interface(Ipv4Addr addr) {
  interfaces_.push_back(std::make_unique<Interface>(*this, addr));
  return *interfaces_.back();
}

Link::Link(Simulator& sim, Interface& a, Interface& b, Config config) : sim_{&sim} {
  assert(!a.attached() && !b.attached());
  a.link_ = this;
  a.endpoint_ = 0;
  b.link_ = this;
  b.endpoint_ = 1;
  dir_[0].config = std::move(config.a_to_b);
  dir_[0].to = &b;
  dir_[1].config = std::move(config.b_to_a);
  dir_[1].to = &a;
  obs_name_ = config.name.empty() ? "other" : config.name;
  traced_ = !config.name.empty();
  init_obs();
}

Link::~Link() {
  auto* rec = sim_->obs();
  if (rec == nullptr || rec->sampler() == nullptr) return;
  for (auto& d : dir_) {
    if (d.obs.probe_id != 0) rec->sampler()->remove_probe(d.obs.probe_id);
  }
}

void Link::init_obs() {
  auto* rec = sim_->obs();
  if (rec == nullptr) return;
  static const char* kDirTag[2] = {"ab", "ba"};
  for (int i = 0; i < 2; ++i) {
    Direction& d = dir_[i];
    if (rec->options().metrics) {
      const std::string prefix = "link." + obs_name_ + "." + kDirTag[i] + ".";
      d.obs.enqueued = rec->registry().counter(prefix + "enqueued_packets");
      d.obs.tx_bytes = rec->registry().counter(prefix + "tx_bytes");
      d.obs.delivered = rec->registry().counter(prefix + "delivered_packets");
      d.obs.dropped_overflow = rec->registry().counter(prefix + "dropped_overflow");
      d.obs.dropped_medium = rec->registry().counter(prefix + "dropped_medium");
      d.obs.dropped_aqm = rec->registry().counter(prefix + "dropped_aqm");
    }
    if (traced_ && rec->sampler() != nullptr) {
      d.obs.probe_id = rec->sampler()->add_probe(
          "link." + obs_name_ + "." + kDirTag[i] + ".queue_bytes",
          [&d](TimePoint) { return static_cast<double>(d.queued_bytes); });
    }
  }
}

void Link::trace_drop(int direction, const char* kind, const Packet& pkt) {
  auto* rec = sim_->obs();
  if (rec == nullptr || !traced_ || !rec->trace().enabled()) return;
  rec->trace().instant("sim.link", std::string{"drop."} + kind, sim_->now(),
                       "{\"link\":\"" + obs_name_ + "\",\"dir\":" + std::to_string(direction) +
                           ",\"bytes\":" + std::to_string(pkt.size_bytes) + "}");
}

std::size_t Link::queued_bytes(int direction) const { return dir_[direction].queued_bytes; }

void Link::set_rate(int direction, DataRate rate) {
  dir_[direction].config.rate = rate;
  dir_[direction].config.rate_fn = nullptr;
}

void Link::set_delay(int direction, Duration delay) {
  dir_[direction].config.delay = delay;
  dir_[direction].config.delay_fn = nullptr;
}

void Link::set_loss(int direction, LossModel* loss) { dir_[direction].config.loss = loss; }

void Link::set_delivery_tap(int direction, std::function<void(const Packet&)> tap) {
  dir_[direction].tap = std::move(tap);
}

void Link::enqueue(int direction, Packet pkt) {
  Direction& d = dir_[direction];
  d.stats.enqueued_packets++;
  d.obs.enqueued.add();
  if (d.config.aqm) {
    const double fraction =
        static_cast<double>(d.queued_bytes) / static_cast<double>(d.config.queue_capacity_bytes);
    if (d.config.aqm(sim_->now(), pkt, fraction)) {
      d.stats.dropped_aqm++;
      d.obs.dropped_aqm.add();
      trace_drop(direction, "aqm", pkt);
      return;
    }
  }
  if (d.transmitting || !d.queue.empty()) {
    if (d.queued_bytes + pkt.size_bytes > d.config.queue_capacity_bytes) {
      d.stats.dropped_overflow++;
      d.obs.dropped_overflow.add();
      trace_drop(direction, "overflow", pkt);
      return;  // drop-tail
    }
    d.queued_bytes += pkt.size_bytes;
    d.stats.max_queue_bytes = std::max<std::uint64_t>(d.stats.max_queue_bytes, d.queued_bytes);
    d.queue.push_back(std::move(pkt));
    return;
  }
  d.transmitting = true;
  const DataRate rate = d.config.rate_fn ? d.config.rate_fn(sim_->now()) : d.config.rate;
  const Duration tx_time = rate.transmission_time(pkt.size_bytes);
  sim_->schedule_in(tx_time, [this, direction, pkt = std::move(pkt)]() mutable {
    finish_transmission(direction, std::move(pkt));
  });
}

void Link::start_transmission(int direction) {
  Direction& d = dir_[direction];
  assert(!d.queue.empty());
  Packet pkt = std::move(d.queue.front());
  d.queue.pop_front();
  d.queued_bytes -= pkt.size_bytes;
  d.transmitting = true;
  const DataRate rate = d.config.rate_fn ? d.config.rate_fn(sim_->now()) : d.config.rate;
  const Duration tx_time = rate.transmission_time(pkt.size_bytes);
  sim_->schedule_in(tx_time, [this, direction, pkt = std::move(pkt)]() mutable {
    finish_transmission(direction, std::move(pkt));
  });
}

void Link::finish_transmission(int direction, Packet pkt) {
  Direction& d = dir_[direction];
  d.stats.tx_packets++;
  d.stats.tx_bytes += pkt.size_bytes;
  d.obs.tx_bytes.add(pkt.size_bytes);

  // Serialization finished; the next queued packet can start immediately.
  if (!d.queue.empty()) {
    start_transmission(direction);
  } else {
    d.transmitting = false;
  }

  // Medium loss destroys the frame in flight: the sender still paid the
  // serialization time, the receiver simply never sees it.
  if (d.config.loss != nullptr && d.config.loss->should_drop(sim_->now(), pkt)) {
    d.stats.dropped_medium++;
    d.obs.dropped_medium.add();
    trace_drop(direction, "medium", pkt);
    return;
  }

  const Duration delay = d.config.delay_fn ? d.config.delay_fn(sim_->now()) : d.config.delay;
  Interface* to = d.to;
  sim_->schedule_in(delay, [this, direction, to, pkt = std::move(pkt)]() mutable {
    Direction& dd = dir_[direction];
    dd.stats.delivered_packets++;
    dd.obs.delivered.add();
    if (dd.tap) dd.tap(pkt);
    to->owner().handle_packet(std::move(pkt), *to);
  });
}

}  // namespace slp::sim
