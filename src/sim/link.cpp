#include "sim/link.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/profile.hpp"
#include "sim/provenance.hpp"

namespace slp::sim {

void Interface::send(Packet pkt) {
  assert(attached() && "interface not wired to a link");
  link_->enqueue(endpoint_, std::move(pkt));
}

Interface* Interface::peer() const {
  if (link_ == nullptr) return nullptr;
  return link_->dir_[endpoint_].to;
}

Interface& Node::add_interface(Ipv4Addr addr) {
  interfaces_.push_back(std::make_unique<Interface>(*this, addr));
  return *interfaces_.back();
}

Link::Link(Simulator& sim, Interface& a, Interface& b, Config config) : sim_{&sim} {
  assert(!a.attached() && !b.attached());
  a.link_ = this;
  a.endpoint_ = 0;
  b.link_ = this;
  b.endpoint_ = 1;
  dir_[0].config = std::move(config.a_to_b);
  dir_[0].to = &b;
  dir_[1].config = std::move(config.b_to_a);
  dir_[1].to = &a;
  obs_name_ = config.name.empty() ? "other" : config.name;
  traced_ = !config.name.empty();
  unbatched_ = config.unbatched;
  init_obs();
  update_fast_eligibility(0);
  update_fast_eligibility(1);
}

Link::~Link() {
  auto* rec = sim_->obs();
  if (rec == nullptr || rec->sampler() == nullptr) return;
  for (auto& d : dir_) {
    if (d.obs.probe_id != 0) rec->sampler()->remove_probe(d.obs.probe_id);
  }
}

void Link::init_obs() {
  auto* rec = sim_->obs();
  if (rec == nullptr) return;
  static const char* kDirTag[2] = {"ab", "ba"};
  for (int i = 0; i < 2; ++i) {
    Direction& d = dir_[i];
    if (rec->options().metrics) {
      const std::string prefix = "link." + obs_name_ + "." + kDirTag[i] + ".";
      d.obs.enqueued = rec->registry().counter(prefix + "enqueued_packets");
      d.obs.tx_bytes = rec->registry().counter(prefix + "tx_bytes");
      d.obs.delivered = rec->registry().counter(prefix + "delivered_packets");
      d.obs.dropped_overflow = rec->registry().counter(prefix + "dropped_overflow");
      d.obs.dropped_medium = rec->registry().counter(prefix + "dropped_medium");
      d.obs.dropped_aqm = rec->registry().counter(prefix + "dropped_aqm");
      d.obs.fast_active = rec->registry().gauge(prefix + "fast_path_active");
      materializations_ = rec->registry().counter("sim.ff.materializations");
    }
    if (traced_ && rec->sampler() != nullptr) {
      d.obs.probe_id = rec->sampler()->add_probe(
          "link." + obs_name_ + "." + kDirTag[i] + ".queue_bytes",
          [&d](TimePoint) { return static_cast<double>(d.queued_bytes); });
    }
  }
}

void Link::trace_drop(int direction, const char* kind, const Packet& pkt) {
  auto* rec = sim_->obs();
  if (rec == nullptr || !traced_ || !rec->trace().enabled()) return;
  rec->trace().instant("sim.link", std::string{"drop."} + kind, sim_->now(),
                       "{\"link\":\"" + obs_name_ + "\",\"dir\":" + std::to_string(direction) +
                           ",\"bytes\":" + std::to_string(pkt.size_bytes) + "}");
}

std::size_t Link::queued_bytes(int direction) const {
  const Direction& d = dir_[direction];
  if (!d.fast) return d.queued_bytes;
  // Fast mode prunes the virtual queue lazily; report the pruned view
  // without mutating state.
  std::size_t bytes = d.queued_bytes;
  for (const auto& entry : d.pipe) {
    if (entry.first > sim_->now()) break;
    bytes -= entry.second;
  }
  return bytes;
}

void Link::update_fast_eligibility(int direction) {
  Direction& d = dir_[direction];
  d.fast_capable = sim_->fast_forward() && !unbatched_ && !traced_ && !d.config.rate_fn &&
                   !d.config.delay_fn && d.config.loss == nullptr && !d.config.aqm;
  if (d.fast_capable && !d.fast && !d.transmitting && d.queue.empty()) {
    d.fast = true;
    d.busy_until = sim_->now();
    d.obs.fast_active.set(1.0);
    assert(d.pipe.empty());
  }
}

void Link::set_rate(int direction, DataRate rate) {
  materialize(direction);
  dir_[direction].config.rate = rate;
  dir_[direction].config.rate_fn = nullptr;
  update_fast_eligibility(direction);
}

void Link::set_delay(int direction, Duration delay) {
  materialize(direction);
  dir_[direction].config.delay = delay;
  dir_[direction].config.delay_fn = nullptr;
  update_fast_eligibility(direction);
}

void Link::set_loss(int direction, LossModel* loss) {
  materialize(direction);
  dir_[direction].config.loss = loss;
  update_fast_eligibility(direction);
}

void Link::set_delivery_tap(int direction, std::function<void(const Packet&)> tap) {
  dir_[direction].tap = std::move(tap);
}

void Link::enqueue(int direction, Packet pkt) {
  Direction& d = dir_[direction];
  d.stats.enqueued_packets++;
  d.obs.enqueued.add();
  if (d.config.aqm) {
    const double fraction =
        static_cast<double>(d.queued_bytes) / static_cast<double>(d.config.queue_capacity_bytes);
    if (d.config.aqm(sim_->now(), pkt, fraction)) {
      d.stats.dropped_aqm++;
      d.obs.dropped_aqm.add();
      trace_drop(direction, "aqm", pkt);
      return;
    }
  }

  if (d.fast) {
    // Analytic serialization: commit the packet's whole timeline now.
    const TimePoint now = sim_->now();
    while (!d.pipe.empty() && d.pipe.front().first <= now) {
      d.queued_bytes -= d.pipe.front().second;
      d.pipe.pop_front();
    }
    const bool busy = d.busy_until > now;
    if (busy && d.queued_bytes + pkt.size_bytes > d.config.queue_capacity_bytes) {
      d.stats.dropped_overflow++;
      d.obs.dropped_overflow.add();
      trace_drop(direction, "overflow", pkt);
      return;  // drop-tail
    }
    const TimePoint tx_start = busy ? d.busy_until : now;
    const TimePoint tx_end = tx_start + d.config.rate.transmission_time(pkt.size_bytes);
    d.busy_until = tx_end;
    if (tx_start > now) {
      d.queued_bytes += pkt.size_bytes;
      d.stats.max_queue_bytes = std::max<std::uint64_t>(d.stats.max_queue_bytes, d.queued_bytes);
      d.pipe.emplace_back(tx_start, pkt.size_bytes);
    }
    push_arrival(direction, Arrival{tx_end + d.config.delay, tx_start, tx_end, std::move(pkt)});
    return;
  }

  if (d.transmitting || !d.queue.empty()) {
    if (d.queued_bytes + pkt.size_bytes > d.config.queue_capacity_bytes) {
      d.stats.dropped_overflow++;
      d.obs.dropped_overflow.add();
      trace_drop(direction, "overflow", pkt);
      return;  // drop-tail
    }
    d.queued_bytes += pkt.size_bytes;
    d.stats.max_queue_bytes = std::max<std::uint64_t>(d.stats.max_queue_bytes, d.queued_bytes);
    d.queue.push_back(std::move(pkt));
    return;
  }
  begin_transmission(direction, std::move(pkt));
}

void Link::begin_transmission(int direction, Packet pkt) {
  Direction& d = dir_[direction];
  d.transmitting = true;
  // Provenance: everything since the last watermark was queue wait (zero for
  // a packet that started serializing at enqueue).
  if (ProvenanceTag* tag = prov_tag(pkt)) tag->advance(obs::kQueue, sim_->now());
  const DataRate rate = d.config.rate_fn ? d.config.rate_fn(sim_->now()) : d.config.rate;
  const Duration tx_time = rate.transmission_time(pkt.size_bytes);
  if (unbatched_) {
    sim_->schedule_in(tx_time, [this, direction, pkt = std::move(pkt)]() mutable {
      finish_transmission(direction, std::move(pkt));
    });
    return;
  }
  d.tx_valid = true;
  d.tx_started = sim_->now();
  d.tx_ends = sim_->now() + tx_time;
  d.tx_pkt = std::move(pkt);
  sim_->schedule_at(d.tx_ends, [this, direction] { on_tx_done(direction); });
}

void Link::start_transmission(int direction) {
  Direction& d = dir_[direction];
  assert(!d.queue.empty());
  Packet pkt = std::move(d.queue.front());
  d.queue.pop_front();
  d.queued_bytes -= pkt.size_bytes;
  begin_transmission(direction, std::move(pkt));
}

// Unbatched reference path: identical to the original implementation —
// per-packet completion and delivery events that carry the packet in their
// closures, with tx stats counted at serialization end.
void Link::finish_transmission(int direction, Packet pkt) {
  Direction& d = dir_[direction];
  d.stats.tx_packets++;
  d.stats.tx_bytes += pkt.size_bytes;
  d.obs.tx_bytes.add(pkt.size_bytes);

  // Serialization finished; the next queued packet can start immediately.
  if (!d.queue.empty()) {
    start_transmission(direction);
  } else {
    d.transmitting = false;
  }

  // Medium loss destroys the frame in flight: the sender still paid the
  // serialization time, the receiver simply never sees it.
  if (d.config.loss != nullptr && d.config.loss->should_drop(sim_->now(), pkt)) {
    d.stats.dropped_medium++;
    d.obs.dropped_medium.add();
    trace_drop(direction, "medium", pkt);
    return;
  }

  const Duration delay = d.config.delay_fn ? d.config.delay_fn(sim_->now()) : d.config.delay;
  if (ProvenanceTag* tag = prov_tag(pkt)) {
    tag->advance(obs::kSerialize, sim_->now());
    if (d.config.delay_attribution) {
      d.config.delay_attribution(*tag, delay);
    } else {
      tag->add(obs::kPropagation, delay);
    }
    tag->set_mark(sim_->now() + delay);
  }
  Interface* to = d.to;
  sim_->schedule_in(delay, [this, direction, to, pkt = std::move(pkt)]() mutable {
    Direction& dd = dir_[direction];
    dd.stats.delivered_packets++;
    dd.obs.delivered.add();
    if (dd.tap) dd.tap(pkt);
    to->owner().handle_packet(std::move(pkt), *to);
  });
}

void Link::on_tx_done(int direction) {
  const obs::SectionTimer wall{obs::Section::kLink};
  Direction& d = dir_[direction];
  assert(d.tx_valid);
  Packet pkt = std::move(d.tx_pkt);
  const TimePoint tx_start = d.tx_started;
  const TimePoint tx_end = d.tx_ends;
  d.tx_valid = false;

  // Next queued packet starts serializing immediately; draw order (next
  // packet's rate, then this packet's loss, then its delay) matches the
  // reference path so seeded runs stay identical.
  if (!d.queue.empty()) {
    start_transmission(direction);
  } else {
    d.transmitting = false;
    update_fast_eligibility(direction);  // drained: analytic mode may resume
  }

  if (d.config.loss != nullptr && d.config.loss->should_drop(sim_->now(), pkt)) {
    // The sender paid the serialization time even though the frame died.
    d.stats.tx_packets++;
    d.stats.tx_bytes += pkt.size_bytes;
    d.obs.tx_bytes.add(pkt.size_bytes);
    d.stats.dropped_medium++;
    d.obs.dropped_medium.add();
    trace_drop(direction, "medium", pkt);
    return;
  }

  const Duration delay = d.config.delay_fn ? d.config.delay_fn(sim_->now()) : d.config.delay;
  if (ProvenanceTag* tag = prov_tag(pkt)) {
    // A materialized head entered the serializer without begin_transmission:
    // its watermark is still at enqueue. Catching up to tx_start attributes
    // the virtual-pipe wait to kQueue (a no-op for normal packets, whose
    // watermark already sits at tx_start).
    tag->advance(obs::kQueue, tx_start);
    tag->advance(obs::kSerialize, sim_->now());
    if (d.config.delay_attribution) {
      d.config.delay_attribution(*tag, delay);
    } else {
      tag->add(obs::kPropagation, delay);
    }
    tag->set_mark(sim_->now() + delay);
  }
  push_arrival(direction, Arrival{sim_->now() + delay, tx_start, tx_end, std::move(pkt)});
}

void Link::push_arrival(int direction, Arrival arr) {
  Direction& d = dir_[direction];
  const TimePoint due = arr.due;
  // Keep arrivals sorted by due time, stable for equal dues. Dynamic delays
  // can reorder, but the common case appends at the back.
  auto it = d.arrivals.end();
  while (it != d.arrivals.begin() && std::prev(it)->due > due) --it;
  d.arrivals.insert(it, std::move(arr));
  if (due < d.delivery_due) arm_delivery(direction, due);
}

void Link::arm_delivery(int direction, TimePoint due) {
  Direction& d = dir_[direction];
  if (!d.delivery_due.is_infinite()) sim_->cancel(d.delivery_event);
  d.delivery_due = due;
  d.delivery_event = sim_->schedule_at(due, [this, direction] { deliver_due(direction); });
}

void Link::deliver_due(int direction) {
  const obs::SectionTimer wall{obs::Section::kLink};
  Direction& d = dir_[direction];
  d.delivery_due = TimePoint::infinite();
  // One firing drains every arrival that is due — back-to-back completions
  // coalesce into a single event-queue entry.
  while (!d.arrivals.empty() && d.arrivals.front().due <= sim_->now()) {
    Arrival arr = std::move(d.arrivals.front());
    d.arrivals.pop_front();
    // Provenance for fast-committed arrivals: the event path stamped the
    // watermark to `due` at serialization end; a watermark that is NOT at
    // `due` means this packet's timeline was committed analytically at
    // enqueue, so synthesize the identical components from the Arrival's
    // exact (tx_start, tx_end, due) schedule. Packets pulled back by
    // materialize() re-ran the event path and are skipped by the guard.
    if (ProvenanceTag* tag = prov_tag(arr.pkt); tag != nullptr && tag->mark != arr.due) {
      tag->advance(obs::kQueue, arr.tx_start);
      tag->add(obs::kSerialize, arr.tx_end - arr.tx_start);
      tag->add(obs::kPropagation, arr.due - arr.tx_end);
      tag->set_mark(arr.due);
    }
    // tx accounting is deferred to delivery so the fast path (which never
    // sees serialization end as an event) produces identical counters at
    // any run cutoff.
    d.stats.tx_packets++;
    d.stats.tx_bytes += arr.pkt.size_bytes;
    d.obs.tx_bytes.add(arr.pkt.size_bytes);
    d.stats.delivered_packets++;
    d.obs.delivered.add();
    if (d.tap) d.tap(arr.pkt);
    Interface* to = d.to;
    to->owner().handle_packet(std::move(arr.pkt), *to);
  }
  if (d.arrivals.empty()) {
    // A handler may have re-armed for an arrival this loop then delivered
    // (zero-delay hairpin); drop the stale event.
    if (!d.delivery_due.is_infinite()) {
      sim_->cancel(d.delivery_event);
      d.delivery_due = TimePoint::infinite();
    }
  } else if (d.delivery_due.is_infinite()) {
    arm_delivery(direction, d.arrivals.front().due);
  }
  // else: an event armed re-entrantly during the loop is already pending;
  // if it fires early for a since-delivered arrival, the drain loop is a
  // no-op and re-arms correctly.
}

void Link::materialize(int direction) {
  Direction& d = dir_[direction];
  if (!d.fast) return;
  const TimePoint now = sim_->now();
  d.fast = false;
  d.obs.fast_active.set(0.0);
  materializations_.add();

  while (!d.pipe.empty() && d.pipe.front().first <= now) {
    d.queued_bytes -= d.pipe.front().second;
    d.pipe.pop_front();
  }
  d.pipe.clear();
  d.busy_until = now;

  // Arrivals are due-sorted and (constant delay) tx_end-sorted: the suffix
  // still being serialized comes back; fully-serialized frames keep their
  // committed delivery times (event mode would not re-touch them either).
  std::deque<Arrival> pending;
  while (!d.arrivals.empty() && d.arrivals.back().tx_end > now) {
    pending.push_front(std::move(d.arrivals.back()));
    d.arrivals.pop_back();
  }
  if (d.arrivals.empty() && !d.delivery_due.is_infinite()) {
    sim_->cancel(d.delivery_event);
    d.delivery_due = TimePoint::infinite();
  }

  if (pending.empty()) return;
  // The busy period is contiguous, so the head is mid-serialization: it
  // becomes the serializer slot and completes on its original schedule at
  // the old rate; propagation is drawn at completion under the new config,
  // exactly as event mode would.
  Arrival& head = pending.front();
  assert(head.tx_start <= now);
  d.transmitting = true;
  d.tx_valid = true;
  d.tx_started = head.tx_start;
  d.tx_ends = head.tx_end;
  d.tx_pkt = std::move(head.pkt);
  sim_->schedule_at(d.tx_ends, [this, direction] { on_tx_done(direction); });
  pending.pop_front();
  // The rest had not started serializing; their bytes are already counted
  // in queued_bytes (they sat in the virtual pipe).
  for (Arrival& a : pending) d.queue.push_back(std::move(a.pkt));
}

}  // namespace slp::sim
