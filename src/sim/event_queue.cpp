#include "sim/event_queue.hpp"

#include <cassert>

namespace slp::sim {

EventId EventQueue::schedule(TimePoint at, util::InlineFunction fn) {
  std::uint32_t slot;
  if (free_head_ != kNilIndex) {
    slot = free_head_;
    Node& n = node(slot);
    free_head_ = n.next_free;
    n.next_free = kNilIndex;
    n.fn = std::move(fn);
  } else {
    if (slab_size_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    }
    slot = static_cast<std::uint32_t>(slab_size_++);
    node(slot).fn = std::move(fn);
  }
  const std::uint32_t generation = node(slot).generation;
  heap_.push_back(HeapEntry{at, next_seq_++, slot, generation});
  sift_up(heap_.size() - 1);
  ++live_count_;
  return EventId{(static_cast<std::uint64_t>(slot) + 1) << 32 | generation};
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  const auto slot = static_cast<std::uint32_t>(id.value >> 32) - 1;
  const auto generation = static_cast<std::uint32_t>(id.value);
  // Cancelling an event that already fired (or was already cancelled) is a
  // harmless no-op — timers routinely race their own expiry. The generation
  // check also protects against the slot having been recycled since.
  if (slot >= slab_size_ || node(slot).generation != generation) return;
  release_slot(slot);
  --live_count_;
  ++stale_count_;
  maybe_compact();
}

void EventQueue::release_slot(std::uint32_t slot) {
  Node& n = node(slot);
  n.fn.reset();
  ++n.generation;
  n.next_free = free_head_;
  free_head_ = slot;
}

TimePoint EventQueue::next_time() {
  drop_stale_front();
  assert(!heap_.empty());
  return heap_[0].at;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale_front();
  assert(!heap_.empty());
  const HeapEntry front = heap_[0];
  Fired fired{front.at, std::move(node(front.slot).fn)};
  release_slot(front.slot);
  --live_count_;
  heap_remove_front();
  return fired;
}

void EventQueue::drop_stale_front() {
  while (!heap_.empty() && stale(heap_[0])) {
    heap_remove_front();
    --stale_count_;
  }
}

void EventQueue::heap_remove_front() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::maybe_compact() {
  if (heap_.size() < kCompactMinEntries || stale_count_ * 2 <= heap_.size()) return;
  std::size_t kept = 0;
  for (const HeapEntry& e : heap_) {
    if (!stale(e)) heap_[kept++] = e;
  }
  heap_.resize(kept);
  stale_count_ = 0;
  // Bottom-up heapify; (at, seq) is a strict total order, so the resulting
  // pop sequence — and therefore the simulation — is unchanged.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) sift_down(i);
  }
}

}  // namespace slp::sim
