#include "sim/event_queue.hpp"

#include <cassert>

namespace slp::sim {

EventId EventQueue::schedule(TimePoint at, std::function<void()> fn) {
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id,
                   std::make_shared<std::function<void()>>(std::move(fn))});
  live_.insert(id);
  ++live_count_;
  return EventId{id};
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  // Cancelling an event that already fired (or was already cancelled) is a
  // harmless no-op — timers routinely race their own expiry.
  if (live_.erase(id.value) == 1) --live_count_;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) heap_.pop();
}

TimePoint EventQueue::next_time() {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  Entry top = heap_.top();
  heap_.pop();
  live_.erase(top.id);
  --live_count_;
  return Fired{top.at, std::move(*top.fn)};
}

}  // namespace slp::sim
