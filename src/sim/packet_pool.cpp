#include "sim/packet_pool.hpp"

namespace slp::sim {

namespace detail {

void release_slot(SlotHeader* hdr) {
  PoolImpl* impl = hdr->impl;
  hdr->destroy(reinterpret_cast<std::byte*>(hdr) + sizeof(SlotHeader));
  hdr->generation++;
  hdr->next_free = impl->free_head;
  impl->free_head = hdr->slot;
  impl->live--;
  // Storage outlives the facade until the last straggling ref lets go.
  if (!impl->owner_alive && impl->live == 0) delete impl;
}

}  // namespace detail

PacketPool::~PacketPool() {
  impl_->owner_alive = false;
  if (impl_->live == 0) delete impl_;
}

PacketPool& PacketPool::local() {
  static thread_local PacketPool pool;
  return pool;
}

detail::SlotHeader* PacketPool::slot_header(std::uint32_t slot) const {
  const std::uint32_t chunk = slot >> kChunkShift;
  const std::uint32_t offset = slot & (kChunkSlots - 1);
  return reinterpret_cast<detail::SlotHeader*>(impl_->chunks[chunk].get() +
                                               std::size_t{offset} * kSlotBytes);
}

void PacketPool::grow() {
  const auto base = static_cast<std::uint32_t>(impl_->chunks.size()) << kChunkShift;
  impl_->chunks.push_back(std::make_unique<std::byte[]>(kChunkSlots * kSlotBytes));
  // Thread the fresh chunk onto the free list back-to-front so slots hand out
  // in ascending order, which keeps allocation patterns cache-friendly.
  for (std::uint32_t i = kChunkSlots; i-- > 0;) {
    detail::SlotHeader* hdr = slot_header(base + i);
    hdr->impl = impl_;
    hdr->refs = 0;
    hdr->generation = 0;
    hdr->slot = base + i;
    hdr->next_free = impl_->free_head;
    impl_->free_head = base + i;
  }
}

detail::SlotHeader* PacketPool::acquire_slot() {
  if (impl_->free_head == detail::kNilSlot) grow();
  detail::SlotHeader* hdr = slot_header(impl_->free_head);
  impl_->free_head = hdr->next_free;
  hdr->refs = 1;
  impl_->live++;
  impl_->total_allocs++;
  if (impl_->live > impl_->peak_live) impl_->peak_live = impl_->live;
  return hdr;
}

PacketPool::Handle PacketPool::handle(const PayloadRef& ref) const {
  if (ref.hdr_ == nullptr) return Handle{};
  assert(ref.hdr_->impl == impl_ && "handle() on a ref from a different pool");
  return Handle{ref.hdr_->slot, ref.hdr_->generation};
}

bool PacketPool::alive(Handle h) const {
  if (h.slot == detail::kNilSlot) return false;
  const std::uint32_t chunk = h.slot >> kChunkShift;
  if (chunk >= impl_->chunks.size()) return false;
  const detail::SlotHeader* hdr = slot_header(h.slot);
  return hdr->refs > 0 && hdr->generation == h.generation;
}

}  // namespace slp::sim
