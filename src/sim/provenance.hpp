// provenance.hpp — the pooled per-packet latency-provenance tag.
//
// When Simulator::provenance() is on, the origin host (or transport, for
// retransmissions) attaches a ProvenanceTag to each packet via the thread's
// PacketPool — allocation is the same slab fast path packets themselves use.
// The tag accumulates nanosecond sums per obs::Component as the packet
// crosses the stack, using a simple watermark discipline:
//
//   set_mark(t)        — "accounted up to t"
//   advance(c, now)    — attribute [mark, now) to component c, mark = now
//   add(c, d)          — attribute d without moving the mark (analytic hops)
//
// Because every producer either advances the mark or pairs add() with
// set_mark(), the component sums telescope: at delivery they cover exactly
// [first_send, delivery), so sum == measured one-way latency with int64
// exactness — the EXPECT_EQ contract in provenance_test. The fast path in
// sim::Link uses add()+set_mark() with the *same* analytically-derived
// delays the event path draws, which is what keeps --fast-forward=0|1
// breakdown exports byte-identical.
//
// Disabled cost: Packet::prov stays null and every instrumentation site is
// one pointer null check.
#pragma once

#include <cstdint>

#include "obs/breakdown.hpp"
#include "sim/packet.hpp"
#include "sim/packet_pool.hpp"
#include "util/units.hpp"

namespace slp::sim {

struct ProvenanceTag {
  std::int64_t comp_ns[obs::kTagComponents] = {};
  /// Watermark: sim time up to which this packet's journey is attributed.
  TimePoint mark;

  void set_mark(TimePoint t) { mark = t; }

  /// Attributes `d` to `c` without touching the watermark.
  void add(obs::Component c, Duration d) { comp_ns[c] += d.ns(); }

  /// Attributes [mark, now) to `c` and moves the watermark to `now`.
  void advance(obs::Component c, TimePoint now) {
    comp_ns[c] += (now - mark).ns();
    mark = now;
  }

  [[nodiscard]] std::int64_t total_ns() const {
    std::int64_t sum = 0;
    for (const std::int64_t v : comp_ns) sum += v;
    return sum;
  }
};

static_assert(sizeof(ProvenanceTag) <= PacketPool::kPayloadCapacity);

/// The packet's tag, or nullptr when provenance is off. Mutation through a
/// const Packet& is deliberate: forwarding copies share one tag, and the tag
/// is measurement metadata, not header state middleboxes could rewrite.
[[nodiscard]] inline ProvenanceTag* prov_tag(const Packet& pkt) {
  return pkt.prov ? pkt.prov.as_mutable<ProvenanceTag>() : nullptr;
}

/// Attaches a fresh tag with the watermark at `now` (the send instant).
inline void attach_provenance(Packet& pkt, TimePoint now) {
  pkt.prov = PacketPool::local().make<ProvenanceTag>();
  pkt.prov.as_mutable<ProvenanceTag>()->mark = now;
}

}  // namespace slp::sim
