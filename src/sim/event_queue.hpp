// event_queue.hpp — the discrete-event scheduler's priority queue.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/inline_function.hpp"
#include "util/units.hpp"

namespace slp::sim {

/// Opaque handle for cancellation. Id 0 is "invalid".
///
/// Encodes (slab slot + 1) in the high 32 bits and the slot's generation in
/// the low 32: a handle survives slot reuse because the generation bumps on
/// every release, so a stale cancel can never hit a recycled event.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Min-heap of timed callbacks with stable FIFO order for equal timestamps
/// (determinism requirement: two events scheduled for the same instant fire
/// in scheduling order, independent of heap internals).
///
/// Layout: event callbacks live in a free-listed, chunk-allocated slab (no
/// per-event allocation — the callback itself is a small-buffer
/// util::InlineFunction, and chunks mean nodes never move, so growth copies
/// nothing), while the heap orders 24-byte {time, seq, slot, generation}
/// entries in a flat 4-ary array (shallower than binary, and four children
/// share a cache line). cancel() is O(1): it checks the generation, destroys
/// the callback, and recycles the slot eagerly; the heap entry goes stale and
/// is skipped on pop. When stale entries outnumber live ones the heap is
/// compacted in one O(n) pass, so pathological timer-rearm churn (every
/// TCP/QUIC RTO re-arm is a cancel) cannot grow the heap unboundedly.
class EventQueue {
 public:
  EventId schedule(TimePoint at, util::InlineFunction fn);
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the next live event. Requires !empty().
  [[nodiscard]] TimePoint next_time();

  /// Pops and returns the next live event. Requires !empty().
  struct Fired {
    TimePoint at;
    util::InlineFunction fn;
  };
  [[nodiscard]] Fired pop();

  /// Introspection for capacity-regression tests: slots allocated in the
  /// callback slab, and entries (live + stale) in the heap array. Both must
  /// stay O(live events), not O(schedules ever made).
  [[nodiscard]] std::size_t slab_slots() const { return slab_size_; }
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

 private:
  static constexpr std::uint32_t kNilIndex = 0xFFFF'FFFF;
  static constexpr std::size_t kArity = 4;
  /// Below this heap size compaction isn't worth the pass.
  static constexpr std::size_t kCompactMinEntries = 64;
  /// Nodes per slab chunk (16 KiB at 64 B/node).
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  struct Node {
    util::InlineFunction fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNilIndex;
  };
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  [[nodiscard]] Node& node(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  [[nodiscard]] const Node& node(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  [[nodiscard]] bool stale(const HeapEntry& e) const {
    return node(e.slot).generation != e.generation;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Removes heap_[0], restoring heap order.
  void heap_remove_front();
  /// Pops stale front entries so heap_[0] (if any) is live.
  void drop_stale_front();
  /// Recycles a slot: destroys the callback, bumps the generation (which
  /// invalidates outstanding EventIds and heap entries) and free-lists it.
  void release_slot(std::uint32_t slot);
  /// One O(n) rebuild when stale entries outnumber live ones.
  void maybe_compact();

  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::size_t slab_size_ = 0;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNilIndex;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  std::size_t stale_count_ = 0;
};

}  // namespace slp::sim
