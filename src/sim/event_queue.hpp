// event_queue.hpp — the discrete-event scheduler's priority queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace slp::sim {

/// Opaque handle for cancellation. Id 0 is "invalid".
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Min-heap of timed callbacks with stable FIFO order for equal timestamps
/// (determinism requirement: two events scheduled for the same instant fire
/// in scheduling order, independent of heap internals).
///
/// Cancellation is lazy: cancelled ids are remembered and skipped on pop,
/// which keeps cancel() O(1) — important because every TCP/QUIC timer re-arm
/// is a cancel.
class EventQueue {
 public:
  EventId schedule(TimePoint at, std::function<void()> fn);
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the next live event. Requires !empty().
  [[nodiscard]] TimePoint next_time();

  /// Pops and returns the next live event. Requires !empty().
  struct Fired {
    TimePoint at;
    std::function<void()> fn;
  };
  [[nodiscard]] Fired pop();

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::uint64_t id;
    // Stored out-of-line so heap moves stay cheap.
    std::shared_ptr<std::function<void()>> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> live_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace slp::sim
