// nat.hpp — network address translation.
//
// The paper's traceroute (§3.5) shows two NAT levels on the Starlink path:
// the CPE router (192.168.1.1) and a carrier-grade NAT (100.64.0.1). This
// node reproduces both roles: source rewriting with port mapping, TTL
// decrement (so it appears as a traceroute hop), ICMP error translation, and
// checksum regeneration — the one alteration Tracebox reported.
#pragma once

#include <cstdint>
#include <map>

#include "sim/node.hpp"
#include "sim/packet.hpp"

namespace slp::sim {

class Nat : public Node {
 public:
  /// `inside_addr` is the LAN-facing interface address (what traceroute
  /// shows); `external_addr` is the address outbound traffic is rewritten to.
  Nat(Simulator& sim, std::string name, Ipv4Addr inside_addr, Ipv4Addr external_addr);

  [[nodiscard]] Interface& inside() const { return interface(0); }
  [[nodiscard]] Interface& outside() const { return interface(1); }
  [[nodiscard]] Ipv4Addr external_addr() const { return external_addr_; }

  void handle_packet(Packet pkt, Interface& in) override;

  struct Stats {
    std::uint64_t translated_out = 0;
    std::uint64_t translated_in = 0;
    std::uint64_t icmp_errors_translated = 0;
    std::uint64_t dropped_no_mapping = 0;
    std::uint64_t ttl_expired = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t mapping_count() const { return by_inside_.size(); }

 private:
  struct FlowKey {
    Protocol proto;
    Ipv4Addr addr;
    std::uint16_t port;
    auto operator<=>(const FlowKey&) const = default;
  };

  /// The "port" a mapping keys on: transport port, or ICMP id for echo.
  [[nodiscard]] static std::uint16_t flow_port(const Packet& pkt, bool src_side);

  void handle_outbound(Packet pkt);
  void handle_inbound(Packet pkt);
  void send_time_exceeded(const Packet& offender, Ipv4Addr reporter, Interface& out);

  Ipv4Addr external_addr_;
  std::map<FlowKey, std::uint16_t> by_inside_;              ///< inside flow -> external port
  std::map<std::pair<Protocol, std::uint16_t>, FlowKey> by_external_;
  std::uint16_t next_external_port_ = 20000;
  Stats stats_;
};

}  // namespace slp::sim
