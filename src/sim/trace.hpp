// trace.hpp — packet capture, the simulator's tcpdump.
//
// The paper's loss analysis runs on client/server packet captures; our
// analyzers consume PacketTrace records the same way.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/host.hpp"
#include "sim/packet.hpp"
#include "util/units.hpp"

namespace slp::sim {

struct CaptureRecord {
  TimePoint at;
  bool outbound = false;
  Packet pkt;
};

/// Records every packet seen by one host. Attach/detach is explicit so a
/// trace can cover exactly one experiment window.
class PacketTrace {
 public:
  /// Starts capturing on `host` (replaces any existing capture hook).
  void attach(Host& host);
  /// Stops capturing; records remain available.
  void detach();

  ~PacketTrace() { detach(); }

  [[nodiscard]] const std::vector<CaptureRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Records matching a predicate, in capture order.
  [[nodiscard]] std::vector<CaptureRecord> filter(
      const std::function<bool(const CaptureRecord&)>& pred) const;

 private:
  Host* host_ = nullptr;
  std::vector<CaptureRecord> records_;
};

}  // namespace slp::sim
