// packet.hpp — the unit of work flowing through the simulator.
//
// Packets are plain values: a small header struct plus a shared, immutable
// transport payload. Copying a packet (to enqueue it, quote it in an ICMP
// error, or tap it into a capture) is cheap and has no ownership pitfalls.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "sim/address.hpp"
#include "sim/packet_pool.hpp"
#include "util/small_vector.hpp"
#include "util/units.hpp"

namespace slp::sim {

enum class Protocol : std::uint8_t { kIcmp, kTcp, kUdp };

[[nodiscard]] std::string to_string(Protocol p);

enum class IcmpType : std::uint8_t {
  kEchoRequest,
  kEchoReply,
  kTimeExceeded,
  kDestUnreachable,
};

struct Packet;

/// ICMP header. Error messages (time-exceeded, unreachable) quote the
/// offending packet as observed at the reporting hop — this is what Tracebox
/// diffs to reveal middlebox rewrites.
struct IcmpHeader {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;
  std::shared_ptr<const Packet> quoted;  ///< only for error types
};

/// TCP header as observed on the wire (the parts middleboxes touch).
struct TcpHeader {
  // 64-bit sequence space: the model never wraps (campaign transfers stay
  // far below 2^64 bytes), which removes wraparound edge cases the paper's
  // questions do not touch.
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;
  std::uint32_t window = 0;
  std::uint16_t mss_option = 0;  ///< 0 when the option is absent
  /// Stream payload carried by this segment. Model metadata: real TCP
  /// derives this from the IP length; keeping it explicit avoids ambiguity
  /// with option-bearing pure ACKs.
  std::uint32_t payload_bytes = 0;
  /// SACK blocks (left edge inclusive, right edge exclusive). Almost always
  /// ≤ 4 blocks, and every pure-ACK copy duplicates them — inline storage
  /// keeps that copy off the heap.
  util::SmallVector<std::pair<std::uint64_t, std::uint64_t>, 4> sack;
};

struct Packet {
  std::uint64_t uid = 0;  ///< globally unique, assigned by Simulator
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol proto = Protocol::kUdp;
  std::uint8_t ttl = 64;
  /// Application/content marker (stand-in for what DPI classifies from SNI
  /// or traffic shape). 0 = unclassified. Wehe's randomized replays differ
  /// from originals exactly here.
  std::uint8_t dscp = 0;
  std::uint32_t size_bytes = 0;       ///< wire size including headers
  std::uint16_t checksum = 0;         ///< transport checksum (NATs rewrite it)
  std::optional<IcmpHeader> icmp;
  std::optional<TcpHeader> tcp;
  /// Transport-defined payload (e.g. a QUIC packet record). Immutable and
  /// shared: middleboxes cannot inspect it, mirroring QUIC's encryption.
  /// Pool-backed: copying a packet bumps a slab refcount instead of touching
  /// the heap (see packet_pool.hpp).
  PayloadRef payload;
  /// Latency-provenance tag (a pooled sim::ProvenanceTag), attached at the
  /// origin when the Simulator's provenance knob is on and carried through
  /// copies/forwards for free (slab refcount bump). Null when disabled.
  PayloadRef prov;
  std::uint64_t flow_id = 0;          ///< grouping key for traces/statistics
  TimePoint first_sent;               ///< stamped by the origin host
};

/// Model "transport checksum": a hash over the fields a real checksum covers.
/// NATs must recompute it after rewriting, which is exactly the alteration
/// the paper's Tracebox run observed on Starlink.
[[nodiscard]] std::uint16_t transport_checksum(const Packet& pkt);

/// Stamps a fresh checksum on the packet (call after any header rewrite).
void refresh_checksum(Packet& pkt);

/// Builds an ICMP time-exceeded error addressed to `offender.src`, quoting
/// the offender as seen at the reporting hop.
[[nodiscard]] Packet make_time_exceeded(Ipv4Addr reporter, const Packet& offender);

/// Builds an ICMP destination-unreachable error.
[[nodiscard]] Packet make_dest_unreachable(Ipv4Addr reporter, const Packet& offender);

[[nodiscard]] std::string to_string(const Packet& pkt);

}  // namespace slp::sim
