// address.hpp — IPv4-style addressing for the simulated internet.
//
// The simulator speaks real dotted-quad addresses so that the middlebox
// experiments (§3.5 of the paper) reproduce faithfully: traceroute through a
// Starlink access reveals 192.168.1.1 (CPE NAT) and 100.64.0.1 (CGN), which
// only works if addresses behave like addresses.
#pragma once

#include <cstdint>
#include <string>

namespace slp::sim {

using Ipv4Addr = std::uint32_t;

[[nodiscard]] constexpr Ipv4Addr make_addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                           std::uint8_t d) {
  return (static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d);
}

[[nodiscard]] std::string addr_to_string(Ipv4Addr addr);

/// True if `addr` falls within `prefix`/`prefix_len`.
[[nodiscard]] constexpr bool prefix_match(Ipv4Addr addr, Ipv4Addr prefix, int prefix_len) {
  if (prefix_len <= 0) return true;
  if (prefix_len >= 32) return addr == prefix;
  const Ipv4Addr mask = ~0u << (32 - prefix_len);
  return (addr & mask) == (prefix & mask);
}

// Well-known addresses observed in the paper's traceroutes.
inline constexpr Ipv4Addr kCpeNatAddr = make_addr(192, 168, 1, 1);   ///< Starlink router LAN side
inline constexpr Ipv4Addr kCgnNatAddr = make_addr(100, 64, 0, 1);    ///< carrier-grade NAT hop

}  // namespace slp::sim
