#include "sim/host.hpp"

#include <cassert>

#include "sim/provenance.hpp"
#include "util/log.hpp"

namespace slp::sim {

Host::Host(Simulator& sim, std::string name, Ipv4Addr addr)
    : Node(sim, std::move(name)), addr_{addr} {
  add_interface(addr);
}

void Host::send(Packet pkt) {
  if (pkt.src == 0) pkt.src = addr_;
  if (pkt.uid == 0) pkt.uid = sim().next_packet_uid();
  if (pkt.checksum == 0) refresh_checksum(pkt);
  pkt.first_sent = sim().now();
  // Transports that pre-attach (e.g. TCP retransmissions crediting recovery
  // time) keep their tag; everything else starts its journey here.
  if (sim().provenance() && !pkt.prov) attach_provenance(pkt, sim().now());
  stats_.sent++;
  if (capture_) capture_(pkt, /*outbound=*/true);
  uplink().send(std::move(pkt));
}

std::uint16_t Host::ephemeral_port() {
  if (next_ephemeral_ == 0) next_ephemeral_ = 49152;  // wrapped around
  return next_ephemeral_++;
}

void Host::bind(Protocol proto, std::uint16_t port, PacketHandler handler) {
  handlers_[{proto, port}] = std::move(handler);
}

void Host::unbind(Protocol proto, std::uint16_t port) { handlers_.erase({proto, port}); }

void Host::bind_echo_reply(std::uint16_t icmp_id, PacketHandler handler) {
  echo_reply_handlers_[icmp_id] = std::move(handler);
}

void Host::unbind_echo_reply(std::uint16_t icmp_id) { echo_reply_handlers_.erase(icmp_id); }

std::uint64_t Host::add_error_listener(PacketHandler handler) {
  const std::uint64_t id = next_listener_id_++;
  error_listeners_[id] = std::move(handler);
  return id;
}

void Host::remove_error_listener(std::uint64_t id) { error_listeners_.erase(id); }

void Host::deliver_icmp(const Packet& pkt) {
  assert(pkt.icmp.has_value());
  switch (pkt.icmp->type) {
    case IcmpType::kEchoRequest: {
      Packet reply;
      reply.dst = pkt.src;
      reply.proto = Protocol::kIcmp;
      reply.size_bytes = pkt.size_bytes;
      reply.icmp = IcmpHeader{IcmpType::kEchoReply, pkt.icmp->id, pkt.icmp->seq, nullptr};
      // The reply continues the request's provenance journey (and flow), so
      // the tag at the pinger covers the full round trip.
      reply.flow_id = pkt.flow_id;
      reply.prov = pkt.prov;
      send(std::move(reply));
      return;
    }
    case IcmpType::kEchoReply: {
      const auto it = echo_reply_handlers_.find(pkt.icmp->id);
      if (it != echo_reply_handlers_.end()) {
        it->second(pkt);
      } else {
        stats_.unclaimed++;
      }
      return;
    }
    case IcmpType::kTimeExceeded:
    case IcmpType::kDestUnreachable: {
      if (error_listeners_.empty()) {
        stats_.unclaimed++;
        return;
      }
      // Copy the listener map: a listener may unregister itself mid-delivery.
      const auto listeners = error_listeners_;
      for (const auto& [id, fn] : listeners) {
        (void)id;
        fn(pkt);
      }
      return;
    }
  }
}

void Host::handle_packet(Packet pkt, Interface& in) {
  (void)in;
  if (pkt.dst != addr_) {
    SLP_LOG(kDebug, "host", name() << " dropped misdelivered " << to_string(pkt));
    return;
  }
  stats_.received++;
  if (capture_) capture_(pkt, /*outbound=*/false);

  if (pkt.proto == Protocol::kIcmp && pkt.icmp) {
    deliver_icmp(pkt);
    return;
  }

  const auto it = handlers_.find({pkt.proto, pkt.dst_port});
  if (it == handlers_.end()) {
    stats_.unclaimed++;
    SLP_LOG(kDebug, "host", name() << " no handler for " << to_string(pkt));
    // Closed UDP ports answer with ICMP port-unreachable — how traceroute
    // knows it reached the destination.
    if (pkt.proto == Protocol::kUdp) {
      Packet err = make_dest_unreachable(addr_, pkt);
      err.src = 0;  // let send() stamp it
      send(std::move(err));
    }
    return;
  }
  it->second(pkt);
}

}  // namespace slp::sim
