// host.hpp — end hosts: transport demultiplexing and the socket-ish API the
// transport stacks (tcp::, quic::) and apps build upon.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/node.hpp"
#include "sim/packet.hpp"

namespace slp::sim {

/// An end host with one uplink interface.
///
/// Transports register per-(protocol, port) handlers; the host answers pings
/// by itself (every node in the paper's measurement universe — anchors,
/// servers — answers ICMP echo), and fans ICMP errors out to registered
/// error listeners (traceroute, Tracebox, TCP RTO-on-unreachable, ...).
class Host : public Node {
 public:
  using PacketHandler = std::function<void(const Packet&)>;

  Host(Simulator& sim, std::string name, Ipv4Addr addr);

  [[nodiscard]] Ipv4Addr addr() const { return addr_; }
  [[nodiscard]] Interface& uplink() const { return interface(0); }

  // -- sending ---------------------------------------------------------

  /// Fills in src address/uid/checksum/timestamp and transmits via the
  /// uplink. `pkt.dst` must be set.
  void send(Packet pkt);

  /// Allocates a fresh ephemeral port (49152...).
  [[nodiscard]] std::uint16_t ephemeral_port();

  // -- receiving -------------------------------------------------------

  /// Registers `handler` for (proto, local port). Overwrites silently.
  void bind(Protocol proto, std::uint16_t port, PacketHandler handler);
  void unbind(Protocol proto, std::uint16_t port);

  /// Registers a listener for ICMP echo replies with the given id.
  void bind_echo_reply(std::uint16_t icmp_id, PacketHandler handler);
  void unbind_echo_reply(std::uint16_t icmp_id);

  /// ICMP errors (time-exceeded, unreachable) are delivered to every error
  /// listener; listeners filter by the quoted packet. Returns listener id.
  std::uint64_t add_error_listener(PacketHandler handler);
  void remove_error_listener(std::uint64_t id);

  /// Observes every packet entering/leaving this host (packet capture).
  /// `outbound` is true for locally-originated packets.
  void set_capture(std::function<void(const Packet&, bool outbound)> tap) {
    capture_ = std::move(tap);
  }

  void handle_packet(Packet pkt, Interface& in) override;

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t unclaimed = 0;  ///< delivered but no handler matched
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void deliver_icmp(const Packet& pkt);

  Ipv4Addr addr_;
  std::map<std::pair<Protocol, std::uint16_t>, PacketHandler> handlers_;
  std::map<std::uint16_t, PacketHandler> echo_reply_handlers_;
  std::map<std::uint64_t, PacketHandler> error_listeners_;
  std::uint64_t next_listener_id_ = 1;
  std::uint16_t next_ephemeral_ = 49152;
  std::function<void(const Packet&, bool)> capture_;
  Stats stats_;
};

}  // namespace slp::sim
