#include "sim/nat.hpp"

#include <cassert>

#include "util/log.hpp"

namespace slp::sim {

Nat::Nat(Simulator& sim, std::string name, Ipv4Addr inside_addr, Ipv4Addr external_addr)
    : Node(sim, std::move(name)), external_addr_{external_addr} {
  add_interface(inside_addr);   // index 0: LAN side
  add_interface(external_addr); // index 1: WAN side
}

std::uint16_t Nat::flow_port(const Packet& pkt, bool src_side) {
  if (pkt.proto == Protocol::kIcmp && pkt.icmp) return pkt.icmp->id;
  return src_side ? pkt.src_port : pkt.dst_port;
}

void Nat::send_time_exceeded(const Packet& offender, Ipv4Addr reporter, Interface& out) {
  stats_.ttl_expired++;
  Packet err = make_time_exceeded(reporter, offender);
  err.uid = sim().next_packet_uid();
  out.send(std::move(err));
}

void Nat::handle_outbound(Packet pkt) {
  if (pkt.ttl <= 1) {
    // Report with the LAN address: this is exactly the 192.168.1.1 /
    // 100.64.0.1 hop the paper's traceroute surfaces.
    send_time_exceeded(pkt, inside().addr(), inside());
    return;
  }
  pkt.ttl--;

  const FlowKey key{pkt.proto, pkt.src, flow_port(pkt, /*src_side=*/true)};
  auto it = by_inside_.find(key);
  if (it == by_inside_.end()) {
    const std::uint16_t ext = next_external_port_++;
    it = by_inside_.emplace(key, ext).first;
    by_external_[{pkt.proto, ext}] = key;
  }
  const std::uint16_t ext_port = it->second;

  pkt.src = external_addr_;
  if (pkt.proto == Protocol::kIcmp && pkt.icmp) {
    pkt.icmp->id = ext_port;
  } else {
    pkt.src_port = ext_port;
  }
  refresh_checksum(pkt);
  stats_.translated_out++;
  outside().send(std::move(pkt));
}

void Nat::handle_inbound(Packet pkt) {
  if (pkt.ttl <= 1) {
    send_time_exceeded(pkt, outside().addr(), outside());
    return;
  }
  pkt.ttl--;

  // ICMP errors: translate using the *quoted* packet, which carries our
  // external address/port as its source.
  if (pkt.proto == Protocol::kIcmp && pkt.icmp &&
      (pkt.icmp->type == IcmpType::kTimeExceeded ||
       pkt.icmp->type == IcmpType::kDestUnreachable)) {
    if (!pkt.icmp->quoted) {
      stats_.dropped_no_mapping++;
      return;
    }
    const Packet& quoted = *pkt.icmp->quoted;
    const auto it = by_external_.find({quoted.proto, flow_port(quoted, /*src_side=*/true)});
    if (it == by_external_.end()) {
      stats_.dropped_no_mapping++;
      return;
    }
    const FlowKey& inside_key = it->second;
    pkt.dst = inside_key.addr;
    // Restore the quoted header so the end host can match its probe — but
    // deliberately keep the checksum as rewritten on the outside: this is
    // the alteration Tracebox observes ("only the TCP and UDP checksums are
    // altered by the NATs").
    auto restored = std::make_shared<Packet>(quoted);
    restored->src = inside_key.addr;
    if (restored->proto == Protocol::kIcmp && restored->icmp) {
      restored->icmp->id = inside_key.port;
    } else {
      restored->src_port = inside_key.port;
    }
    pkt.icmp->quoted = std::move(restored);
    stats_.icmp_errors_translated++;
    inside().send(std::move(pkt));
    return;
  }

  const auto it = by_external_.find({pkt.proto, flow_port(pkt, /*src_side=*/false)});
  if (it == by_external_.end()) {
    stats_.dropped_no_mapping++;
    SLP_LOG(kDebug, "nat", name() << " no mapping for inbound " << to_string(pkt));
    return;
  }
  const FlowKey& inside_key = it->second;
  pkt.dst = inside_key.addr;
  if (pkt.proto == Protocol::kIcmp && pkt.icmp) {
    pkt.icmp->id = inside_key.port;
  } else {
    pkt.dst_port = inside_key.port;
  }
  refresh_checksum(pkt);
  stats_.translated_in++;
  inside().send(std::move(pkt));
}

void Nat::handle_packet(Packet pkt, Interface& in) {
  // Pings addressed to the NAT itself (e.g. pinging the CPE at 192.168.1.1).
  // Note that inbound *data* addressed to the external address is NOT local
  // traffic — every translated inbound packet targets that address.
  const bool echo_request =
      pkt.proto == Protocol::kIcmp && pkt.icmp && pkt.icmp->type == IcmpType::kEchoRequest;
  const bool to_us = pkt.dst == inside().addr() || pkt.dst == outside().addr();
  if (echo_request && to_us) {
    Packet reply;
    reply.src = pkt.dst;
    reply.dst = pkt.src;
    reply.proto = Protocol::kIcmp;
    reply.size_bytes = pkt.size_bytes;
    reply.icmp = IcmpHeader{IcmpType::kEchoReply, pkt.icmp->id, pkt.icmp->seq, nullptr};
    refresh_checksum(reply);
    reply.uid = sim().next_packet_uid();
    (&in == &inside() ? inside() : outside()).send(std::move(reply));
    return;
  }
  if (&in == &inside()) {
    handle_outbound(std::move(pkt));
  } else {
    handle_inbound(std::move(pkt));
  }
}

}  // namespace slp::sim
