// routing.hpp — longest-prefix-match forwarding and the Router node.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/node.hpp"

namespace slp::sim {

/// Static longest-prefix-match table. Small networks, linear scan over
/// entries sorted by descending prefix length — simple and obviously correct.
class RouteTable {
 public:
  void add_route(Ipv4Addr prefix, int prefix_len, Interface& out);
  void add_default(Interface& out) { add_route(0, 0, out); }

  /// Longest-prefix match; nullptr if no route (not even a default).
  [[nodiscard]] Interface* lookup(Ipv4Addr dst) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Ipv4Addr prefix;
    int prefix_len;
    Interface* out;
  };
  std::vector<Entry> entries_;  // kept sorted by descending prefix_len
};

/// A plain IP router: decrements TTL, emits ICMP time-exceeded at TTL expiry
/// (traceroute support), forwards by longest-prefix match, and answers pings
/// addressed to any of its own interfaces.
class Router : public Node {
 public:
  Router(Simulator& sim, std::string name) : Node(sim, std::move(name)) {}

  [[nodiscard]] RouteTable& routes() { return routes_; }

  void handle_packet(Packet pkt, Interface& in) override;

  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t ttl_expired = 0;
    std::uint64_t no_route = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  /// Routes a locally-generated packet (ICMP errors, echo replies).
  void send_local(Packet pkt);
  /// True if `addr` is one of this node's interface addresses.
  [[nodiscard]] bool owns_address(Ipv4Addr addr) const;

 private:
  RouteTable routes_;
  Stats stats_;
};

}  // namespace slp::sim
