// node.hpp — nodes and interfaces of the simulated network graph.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace slp::sim {

class Node;
class Link;

/// One attachment point of a node to a link. Interfaces are owned by their
/// node and wired to exactly one link endpoint.
class Interface {
 public:
  Interface(Node& owner, Ipv4Addr addr) : owner_{&owner}, addr_{addr} {}

  Interface(const Interface&) = delete;
  Interface& operator=(const Interface&) = delete;

  [[nodiscard]] Node& owner() const { return *owner_; }
  [[nodiscard]] Ipv4Addr addr() const { return addr_; }
  [[nodiscard]] Link* link() const { return link_; }
  [[nodiscard]] bool attached() const { return link_ != nullptr; }

  /// Transmits a packet toward the other end of the attached link.
  /// Requires attached().
  void send(Packet pkt);

  /// The interface at the far end of the attached link, or nullptr.
  [[nodiscard]] Interface* peer() const;

 private:
  friend class Link;
  Node* owner_;
  Ipv4Addr addr_;
  Link* link_ = nullptr;
  int endpoint_ = -1;  ///< 0 = link side A, 1 = side B
};

/// Base class for everything that terminates or forwards packets.
class Node {
 public:
  Node(Simulator& sim, std::string name) : sim_{&sim}, name_{std::move(name)} {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Creates and owns a new interface with the given address.
  Interface& add_interface(Ipv4Addr addr);

  [[nodiscard]] Simulator& sim() const { return *sim_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t interface_count() const { return interfaces_.size(); }
  [[nodiscard]] Interface& interface(std::size_t i) const { return *interfaces_.at(i); }

  /// Delivery of a packet that arrived on `in`.
  virtual void handle_packet(Packet pkt, Interface& in) = 0;

 private:
  Simulator* sim_;
  std::string name_;
  std::vector<std::unique_ptr<Interface>> interfaces_;
};

}  // namespace slp::sim
